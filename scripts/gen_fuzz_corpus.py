#!/usr/bin/env python3
"""(Re)generate the committed fuzz regression corpus in ``tests/corpus/``.

Each corpus entry freezes one generated application as *source text*
(schema ``repro.fuzz.corpus/1``), so the regression suite replays the
exact program even if the generator evolves.  The selection covers every
archetype family, with dedicated shared-memory and forced-fallback
(race / unlowerable) entries.

Usage::

    PYTHONPATH=src python scripts/gen_fuzz_corpus.py [--out tests/corpus]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: (slug, seed, spec overrides, note).  Weighted specs force the rare
#: archetypes so the corpus stays diverse no matter what the default mix
#: happens to draw at these seeds.
ENTRIES = (
    ("default-a", 3, {}, "default archetype mix"),
    ("default-b", 11, {}, "default archetype mix"),
    ("default-c", 29, {}, "default archetype mix"),
    ("default-d", 41, {}, "default archetype mix"),
    (
        "shared-tiles",
        101,
        {"weights": (("shared", 3.0), ("stencil", 1.0))},
        "shared-memory tiled kernels (batched lattice)",
    ),
    (
        "shared-mixed",
        102,
        {"weights": (("shared", 2.0), ("pointwise", 1.0), ("fused", 1.0))},
        "shared tiles mixed with fusable pointwise work",
    ),
    (
        "race-inplace",
        201,
        {"weights": (("race", 3.0), ("stencil", 1.0))},
        "forced fallback: in-place shared update (unbatchable_shared)",
    ),
    (
        "race-heavy",
        202,
        {"weights": (("race", 1.0), ("shared", 1.0)), "min_kernels": 3},
        "forced fallback: every kernel stages through shared memory",
    ),
    (
        "unlowerable",
        301,
        {"weights": (("unlowerable", 3.0), ("pointwise", 1.0))},
        "forced fallback: maybe-defined scalar read (lowering refusal)",
    ),
    (
        "unlowerable-mixed",
        302,
        {
            "weights": (("unlowerable", 1.0), ("shared", 1.0), ("race", 1.0)),
            "min_kernels": 3,
        },
        "all three compiled-mode fallback archetypes in one app",
    ),
    (
        "deep-loops",
        401,
        {"weights": (("deep_loop", 2.0), ("fused", 2.0)), "deep_loop_trips": 5},
        "deep loop nests + almost-fused kernels (SCALE-LES shape)",
    ),
    (
        "boundary-latency",
        402,
        {
            "weights": (
                ("boundary", 2.0),
                ("latency", 2.0),
                ("compute", 1.0),
                ("stencil", 1.0),
            ),
            "min_kernels": 4,
        },
        "boundary faces, tiny-grid latency kernels and compute-bound work",
    ),
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="tests/corpus",
                        help="corpus directory (default tests/corpus)")
    args = parser.parse_args(argv)

    from repro.cudalite import parse_program, unparse
    from repro.fuzz import FuzzSpec, generate_app
    from repro.fuzz.campaign import CORPUS_SCHEMA
    from repro.fuzz.oracles import CHEAP_ORACLES

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    for slug, seed, overrides, note in ENTRIES:
        spec = FuzzSpec(**overrides) if overrides else None
        app = generate_app(seed, spec)
        source = unparse(app.program)
        # the stored text must replay through the production front door
        assert unparse(parse_program(source)) == source, slug
        entry = {
            "schema": CORPUS_SCHEMA,
            "name": f"{slug}-{app.name}",
            "seed": seed,
            "spec": overrides,
            "kernels": [k.name for k in app.program.kernels],
            "shared_kernels": list(app.shared_kernels),
            "fallback_kernels": list(app.fallback_kernels),
            "oracles": list(CHEAP_ORACLES),
            "note": note,
            "source": source,
        }
        path = out / f"{slug}.json"
        path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path} ({len(app.program.kernels)} kernels)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

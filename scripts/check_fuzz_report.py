#!/usr/bin/env python3
"""Validate a fuzz-campaign report (``repro.fuzz/1``).

Usage::

    python scripts/check_fuzz_report.py REPORT [--require-clean] \
        [--min-apps N]

Checks, with plain asserts and no dependencies:

* the schema tag and campaign/platform/summary structure;
* summary counts are consistent with the failure/crash lists;
* every crash record carries a well-formed three-part bucket key
  (``stage|exc_type|frame``) — ``--require-clean`` additionally demands
  zero failures and zero crashes (the PR-smoke gate), while the nightly
  job only demands zero *unbucketed* crashes;
* ``--min-apps`` guards against a silently truncated campaign.

Exit code 0 when everything validates, 1 with a message otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "repro.fuzz/1"

CAMPAIGN_FIELDS = (
    "seed_start", "seed_end", "seeds_run", "last_seed", "oracles",
    "budget_seconds", "stopped_early", "duration_seconds", "reduce",
)

SUMMARY_FIELDS = ("apps", "failures", "crashes", "unbucketed", "buckets")

FAILURE_FIELDS = ("seed", "app", "oracle", "kind", "detail")

CRASH_FIELDS = ("seed", "where", "bucket", "stage", "exc_type", "frame",
                "message")


def fail(message: str) -> None:
    print(f"check_fuzz_report: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def expect(condition: bool, message: str) -> None:
    if not condition:
        fail(message)


def load_json(path: Path) -> object:
    expect(path.is_file(), f"{path} does not exist")
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        fail(f"{path} is not valid JSON: {exc}")


def check_campaign(report: dict) -> None:
    campaign = report.get("campaign")
    expect(isinstance(campaign, dict), "report.campaign must be an object")
    missing = [f for f in CAMPAIGN_FIELDS if f not in campaign]
    expect(not missing, f"campaign missing fields {missing}")
    expect(campaign["seed_end"] >= campaign["seed_start"],
           "campaign seed range is empty")
    expect(isinstance(campaign["oracles"], list) and campaign["oracles"],
           "campaign ran no oracles")
    expect(campaign["seeds_run"] >= 0, "seeds_run must be non-negative")
    if not campaign["stopped_early"]:
        span = campaign["seed_end"] - campaign["seed_start"] + 1
        expect(campaign["seeds_run"] == span,
               f"campaign claims completion but ran {campaign['seeds_run']} "
               f"of {span} seeds")
    print(f"  campaign ok (seeds {campaign['seed_start']}.."
          f"{campaign['seed_end']}, {campaign['seeds_run']} run, "
          f"oracles {campaign['oracles']})")


def check_summary(report: dict) -> dict:
    summary = report.get("summary")
    expect(isinstance(summary, dict), "report.summary must be an object")
    missing = [f for f in SUMMARY_FIELDS if f not in summary]
    expect(not missing, f"summary missing fields {missing}")
    for key in ("apps", "failures", "crashes", "unbucketed"):
        value = summary[key]
        expect(isinstance(value, int) and value >= 0,
               f"summary.{key} must be a non-negative integer")
    expect(summary["failures"] == len(report.get("failures", [])),
           "summary.failures disagrees with the failures list")
    expect(summary["crashes"] == len(report.get("crashes", [])),
           "summary.crashes disagrees with the crashes list")
    buckets = summary["buckets"]
    expect(isinstance(buckets, dict), "summary.buckets must be an object")
    bucketed = sum(buckets.values())
    expect(bucketed + summary["unbucketed"] == summary["crashes"],
           "bucket counts + unbucketed must equal summary.crashes")
    print(f"  summary ok ({summary['apps']} apps, "
          f"{summary['failures']} failures, {summary['crashes']} crashes)")
    return summary


def check_records(report: dict) -> None:
    for record in report.get("failures", []):
        missing = [f for f in FAILURE_FIELDS if f not in record]
        expect(not missing, f"failure record missing fields {missing}: {record}")
    for record in report.get("crashes", []):
        missing = [f for f in CRASH_FIELDS if f not in record]
        expect(not missing, f"crash record missing fields {missing}: {record}")
        bucket = record["bucket"]
        expect(isinstance(bucket, str) and bucket.count("|") == 2,
               f"malformed bucket key {bucket!r} (want stage|exc_type|frame)")
        expect(bucket == f"{record['stage']}|{record['exc_type']}"
               f"|{record['frame']}",
               f"bucket key {bucket!r} disagrees with its fields")
    print(f"  records ok ({len(report.get('failures', []))} failures, "
          f"{len(report.get('crashes', []))} crashes)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="fuzz_report.json path")
    parser.add_argument("--require-clean", action="store_true",
                        help="additionally demand zero failures and crashes")
    parser.add_argument("--min-apps", type=int, default=1, metavar="N",
                        help="minimum generated apps (default 1)")
    args = parser.parse_args(argv)

    path = Path(args.report)
    print(f"checking fuzz report {path}")
    report = load_json(path)
    expect(isinstance(report, dict), "report must be a JSON object")
    expect(report.get("schema") == SCHEMA,
           f"schema tag must be {SCHEMA!r}, got {report.get('schema')!r}")
    expect(isinstance(report.get("platform"), dict)
           and "python" in report["platform"],
           "report.platform.python missing")
    check_campaign(report)
    summary = check_summary(report)
    check_records(report)
    expect(summary["apps"] >= args.min_apps,
           f"campaign generated {summary['apps']} apps, "
           f"expected at least {args.min_apps}")
    expect(summary["unbucketed"] == 0,
           f"{summary['unbucketed']} crash(es) escaped triage bucketing")
    if args.require_clean:
        expect(summary["failures"] == 0,
               f"{summary['failures']} oracle failure(s) recorded")
        expect(summary["crashes"] == 0,
               f"{summary['crashes']} crash(es) recorded")
    print("check_fuzz_report: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Guard the public API surface against accidental removals.

Compares the names exported today — ``repro.__all__``, ``repro.api``,
``repro.store``, the :class:`repro.api.TransformConfig` fields and the
:class:`repro.api.TransformResult` attributes — against the committed
snapshot (``scripts/api_surface.json``).

* a **removed** name fails the check (that's a breaking change; bump the
  snapshot deliberately with ``--update`` and call it out in the PR);
* an **added** name is reported but allowed — run ``--update`` to record
  it so the next accidental removal is caught.

Usage::

    PYTHONPATH=src python scripts/check_api_surface.py [--update]
"""

from __future__ import annotations

import json
import sys
from dataclasses import fields
from pathlib import Path

SNAPSHOT = Path(__file__).resolve().parent / "api_surface.json"


def current_surface() -> dict:
    import repro
    import repro.api
    import repro.store

    return {
        "repro": sorted(repro.__all__),
        "repro.api": sorted(repro.api.__all__),
        "repro.store": sorted(repro.store.__all__),
        "TransformConfig.fields": sorted(
            f.name for f in fields(repro.api.TransformConfig)
        ),
        "TransformResult.attrs": sorted(
            [f.name for f in fields(repro.api.TransformResult)]
            + [
                name
                for name, value in vars(repro.api.TransformResult).items()
                if isinstance(value, property)
            ]
        ),
    }


def main(argv: list[str]) -> int:
    update = "--update" in argv
    surface = current_surface()
    if update or not SNAPSHOT.exists():
        SNAPSHOT.write_text(json.dumps(surface, indent=2) + "\n")
        print(f"api surface snapshot written to {SNAPSHOT}")
        return 0
    snapshot = json.loads(SNAPSHOT.read_text())
    failed = False
    for group, names in snapshot.items():
        have = set(surface.get(group, []))
        removed = [n for n in names if n not in have]
        added = sorted(have - set(names))
        if removed:
            failed = True
            print(
                f"ERROR: {group} lost exported name(s): {', '.join(removed)}\n"
                f"  Removing public API is a breaking change. If intended,\n"
                f"  rerun with --update and document it in the changelog."
            )
        if added:
            print(
                f"note: {group} gained {', '.join(added)} "
                f"(run --update to record)"
            )
    for group in surface:
        if group not in snapshot:
            print(f"note: new surface group {group} (run --update to record)")
    if failed:
        return 1
    print("api surface OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

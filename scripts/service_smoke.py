#!/usr/bin/env python
"""Drive a running ``repro-serve`` with mixed multi-tenant traffic.

The CI smoke for the serving layer (and a runnable demo): against an
already-listening server this script issues 8 requests from concurrent
client threads —

* a **cold pair**: 2 distinct requests against the fresh store (the
  very first one must reuse nothing),
* a **warm pair**: the same 2 requests again, which must be served from
  the shared store with stages reused and finish in under 1 s,
* a **dedup burst**: one slow job submitted async plus 3 identical
  requests that must all join it (4 clients, 1 execution,
  byte-identical bodies).

It then checks the server's own accounting end to end: the ``/v1/
metrics`` counters and the ``kind == "service"`` records in the shared
store's run ledger (dedup client counts, warm reuse provenance).

Usage::

    PYTHONPATH=src python scripts/service_smoke.py \
        --port 8765 --store-root /tmp/service-store
"""

from __future__ import annotations

import argparse
import sys
import threading
import time

from repro.observability.ledger import RunLedger
from repro.service import ServiceClient

SOURCE = """
__global__ void k1(double *A, const double *B, int nx, int ny, int nz) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if (i >= 1 && i < nx - 1 && j >= 1 && j < ny - 1) {
        for (int k = 0; k < nz; k++) {
            A[i][j][k] = 0.25 * (B[i + 1][j][k] + B[i - 1][j][k] + B[i][j + 1][k] + B[i][j - 1][k]);
        }
    }
}
__global__ void k2(double *C, const double *B, int nx, int ny, int nz) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < nx && j < ny) {
        for (int k = 0; k < nz; k++) {
            C[i][j][k] = B[i][j][k] * 2.0;
        }
    }
}
__global__ void k3(double *D, const double *A, const double *C, int nx, int ny, int nz) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < nx && j < ny) {
        for (int k = 0; k < nz; k++) {
            D[i][j][k] = A[i][j][k] + C[i][j][k];
        }
    }
}
int main() {
    int nx = 32;
    int ny = 32;
    int nz = 8;
    double *A = cudaMalloc3D(nx, ny, nz);
    double *B = cudaMalloc3D(nx, ny, nz);
    double *C = cudaMalloc3D(nx, ny, nz);
    double *D = cudaMalloc3D(nx, ny, nz);
    deviceRandom(B, 7);
    dim3 grid(4, 4, 1);
    dim3 block(8, 8, 1);
    k1<<<grid, block>>>(A, B, nx, ny, nz);
    k2<<<grid, block>>>(C, B, nx, ny, nz);
    k3<<<grid, block>>>(D, A, C, nx, ny, nz);
    return 0;
}
"""

GA = {
    "population": 10,
    "generations": 6,
    "stall_generations": 3,
    "workers": 1,
    "executor": "thread",
}
SLOW_GA = {**GA, "population": 24, "generations": 18, "stall_generations": 18}


def dedup_burst(client: ServiceClient) -> str:
    """4 identical clients -> 1 execution; returns the shared job id."""
    submitted = client.submit(
        source=SOURCE, config={"ga_params": SLOW_GA, "seed": 77},
        request_id="burst-owner",
    )
    assert submitted.status == 202, submitted.body
    job_id = submitted.json()["job_id"]

    bodies, flags = [None] * 3, [None] * 3

    def join(slot: int) -> None:
        served = client.transform(
            source=SOURCE, config={"ga_params": SLOW_GA, "seed": 77},
            request_id=f"burst-{slot}",
        )
        bodies[slot], flags[slot] = served.body, served.dedup

    threads = [threading.Thread(target=join, args=(s,)) for s in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    owner = client.wait(job_id, timeout=300)
    assert owner.status == 200, owner.body
    assert all(flags), f"joins did not dedup: {flags}"
    assert all(b == owner.body for b in bodies), "bodies not bit-identical"
    print(f"dedup: 4 clients -> 1 execution ({job_id}), bit-identical bodies")
    return job_id


def cold_warm(client: ServiceClient) -> None:
    speedups = {}
    for phase in ("cold", "warm"):
        for seed in (101, 202):
            start = time.perf_counter()
            served = client.transform(
                source=SOURCE, config={"ga_params": GA, "seed": seed},
                request_id=f"{phase}-{seed}",
            )
            wall = time.perf_counter() - start
            assert served.status == 200, served.body
            response = served.response()
            if phase == "cold":
                if seed == 101:  # very first request on a fresh store
                    assert response.reused == {}, response.reused
                speedups[seed] = response.speedup
            else:
                assert response.reused, "warm request executed cold"
                assert response.speedup == speedups[seed]
                assert wall < 1.0, f"warm request took {wall:.2f}s"
            print(
                f"{phase} seed={seed}: {wall:.2f}s "
                f"speedup={response.speedup:.2f} reused={sorted(response.reused)}"
            )


def check_accounting(
    client: ServiceClient, store_root: str, burst_job_id: str
) -> None:
    counters = client.metrics().json()["counters"]
    assert counters.get("service_executions_total", 0) >= 5, counters
    assert counters.get("service_dedup_hits_total", 0) >= 3, counters

    records = RunLedger(store_root).list(kind="service")
    by_job = {r["service"]["job_id"]: r for r in records}
    assert by_job[burst_job_id]["service"]["dedup_clients"] == 4, (
        by_job[burst_job_id]["service"]
    )
    warm_records = [r for r in records if r["reused_stages"]]
    assert len(warm_records) >= 2, "warm reuse not visible in the ledger"
    print(
        f"ledger: {len(records)} service records, "
        f"burst dedup_clients=4, {len(warm_records)} warm"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--store-root", required=True)
    args = parser.parse_args(argv)

    client = ServiceClient(host=args.host, port=args.port)
    client.wait_ready(timeout=120)
    cold_warm(client)
    burst_job_id = dedup_burst(client)
    check_accounting(client, args.store_root, burst_job_id)
    print("service smoke OK (8 mixed requests)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Validate the observability artifacts one pipeline run emits.

Usage::

    python scripts/check_telemetry.py WORKDIR [--trace PATH] [--metrics PATH]

Checks, with plain asserts and no dependencies:

* ``run.json``        — schema tag, config/env/stage-time structure;
* ``trace.json``      — Chrome trace-event shape, a well-formed span tree
  (every parent_id resolves), and a ``stage:*`` span per pipeline stage;
* ``search_telemetry.jsonl`` — one well-formed row per GGA generation
  plus a trailing summary;
* ``model_validation.json``  — per-kernel measured/projected pairs;
* the metrics JSON    — counter/gauge/histogram series structure.

Exit code 0 when everything validates, 1 with a message otherwise.
CI runs this against a Fluam end-to-end run.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

STAGES = ("metadata", "targets", "graphs", "search", "codegen")

GENERATION_FIELDS = (
    "generation", "best_fitness", "best_feasible_fitness", "mean_fitness",
    "std_fitness", "feasible_count", "penalty_activations", "fissions",
    "cache_hits", "cache_lookups", "evaluations", "worker_failures",
    "eval_timeouts", "fallback_evaluations",
)

COUNTER_FIELDS = (
    "kernel", "launches", "global_loads", "global_stores", "shared_loads",
    "shared_stores", "global_load_bytes", "global_store_bytes",
    "syncthreads", "branch_divergence",
)


def fail(message: str) -> None:
    print(f"check_telemetry: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def expect(condition: bool, message: str) -> None:
    if not condition:
        fail(message)


def load_json(path: Path) -> object:
    expect(path.is_file(), f"{path} does not exist")
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        fail(f"{path} is not valid JSON: {exc}")


def check_run_manifest(path: Path) -> None:
    run = load_json(path)
    expect(isinstance(run, dict), "run.json must be an object")
    expect(run.get("schema") == "repro.run/1", "run.json schema tag missing")
    for key in ("config", "env", "stage_wall_time_s", "reports", "exit_code"):
        expect(key in run, f"run.json missing key {key!r}")
    expect(isinstance(run["env"], dict) and "knobs" in run["env"],
           "run.json env.knobs missing")
    times = run["stage_wall_time_s"]
    expect(isinstance(times, dict), "stage_wall_time_s must be an object")
    for stage, value in times.items():
        expect(stage in STAGES, f"unknown stage {stage!r} in stage times")
        expect(isinstance(value, (int, float)) and value >= 0,
               f"stage time for {stage!r} must be a non-negative number")
    if run["exit_code"] == 0:
        expect(set(times) == set(STAGES) or run["config"].get("until"),
               "a complete run must record wall time for all five stages")
    else:
        expect(run.get("error") is not None,
               "a failed run must carry an error diagnostic")
    print(f"  run manifest ok ({len(times)} stage times, "
          f"exit {run['exit_code']})")


def check_trace(path: Path) -> None:
    trace = load_json(path)
    expect(isinstance(trace, dict) and "traceEvents" in trace,
           "trace.json must have traceEvents")
    events = trace["traceEvents"]
    expect(isinstance(events, list) and events, "traceEvents must be non-empty")
    spans = []
    for event in events:
        expect({"name", "ph", "pid", "tid"} <= set(event),
               f"malformed trace event: {event}")
        if event["ph"] != "X":
            continue
        expect("ts" in event and "dur" in event and event["dur"] >= 0,
               f"complete event needs ts/dur: {event}")
        spans.append(event)
    ids = {s["args"]["span_id"] for s in spans}
    for s in spans:
        parent = s["args"]["parent_id"]
        expect(parent is None or parent in ids,
               f"span {s['name']} has dangling parent {parent}")
    names = [s["name"] for s in spans]
    for stage in STAGES:
        expect(f"stage:{stage}" in names, f"no span for stage {stage!r}")
    print(f"  trace ok ({len(spans)} spans, all five stages covered)")


def check_search_telemetry(path: Path) -> None:
    expect(path.is_file(), f"{path} does not exist")
    rows = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError as exc:
            fail(f"{path}:{lineno} is not valid JSON: {exc}")
    generations = [r for r in rows if r.get("type") == "generation"]
    expect(generations, "no generation rows in search telemetry")
    for row in generations:
        missing = [f for f in GENERATION_FIELDS if f not in row]
        expect(not missing, f"generation row missing fields {missing}")
    expect(any(r.get("type") == "search_summary" for r in rows),
           "no search_summary row in search telemetry")
    expect([r["generation"] for r in generations]
           == list(range(len(generations))),
           "generation rows must be consecutive from 0")
    print(f"  search telemetry ok ({len(generations)} generations)")


def check_model_validation(path: Path) -> None:
    report = load_json(path)
    expect(isinstance(report, dict) and "kernels" in report,
           "model_validation.json must have kernels")
    kernels = report["kernels"]
    expect(isinstance(kernels, list) and kernels,
           "model validation compared no kernels")
    for entry in kernels:
        for key in ("kernel", "measured", "measured_global_bytes",
                    "projected_bytes", "bytes_ratio"):
            expect(key in entry, f"kernel validation missing {key!r}")
        missing = [f for f in COUNTER_FIELDS if f not in entry["measured"]]
        expect(not missing, f"measured counters missing fields {missing}")
    expect(report.get("uncompared", 0) == 0,
           f"{report['uncompared']} launches were not compared to the model")
    print(f"  model validation ok ({len(kernels)} kernel launches)")


def check_metrics(path: Path) -> None:
    metrics = load_json(path)
    expect(isinstance(metrics, dict), "metrics must be an object")
    for section in ("counters", "gauges", "histograms"):
        expect(section in metrics, f"metrics missing section {section!r}")
        for series in metrics[section]:
            expect("name" in series and "labels" in series,
                   f"malformed series in {section}: {series}")
    counter_names = {c["name"] for c in metrics["counters"]}
    expect("pipeline_stage_runs_total" in counter_names,
           "expected pipeline_stage_runs_total counter")
    print(f"  metrics ok ({len(metrics['counters'])} counter series)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("workdir", help="pipeline working directory")
    parser.add_argument("--trace", default=None,
                        help="trace file (default WORKDIR/trace.json)")
    parser.add_argument("--metrics", default=None,
                        help="metrics file (default WORKDIR/metrics.json)")
    args = parser.parse_args(argv)

    workdir = Path(args.workdir)
    expect(workdir.is_dir(), f"{workdir} is not a directory")
    print(f"checking telemetry in {workdir}")
    check_run_manifest(workdir / "run.json")
    check_trace(Path(args.trace) if args.trace else workdir / "trace.json")
    check_search_telemetry(workdir / "search_telemetry.jsonl")
    check_model_validation(workdir / "model_validation.json")
    check_metrics(
        Path(args.metrics) if args.metrics else workdir / "metrics.json"
    )
    print("check_telemetry: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

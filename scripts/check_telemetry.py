#!/usr/bin/env python3
"""Validate the observability artifacts one pipeline run emits.

Usage::

    python scripts/check_telemetry.py WORKDIR [--trace PATH] [--metrics PATH]
    python scripts/check_telemetry.py --ledger STORE_ROOT

Checks, with plain asserts and no dependencies:

* ``run.json``        — schema tag, config/env/stage-time structure;
* ``trace.json``      — Chrome trace-event shape, a well-formed span tree
  (every parent_id resolves), and a ``stage:*`` span per pipeline stage;
* ``search_telemetry.jsonl`` — one well-formed row per GGA generation
  plus a trailing summary;
* ``model_validation.json``  — per-kernel measured/projected pairs;
* the metrics JSON    — counter/gauge/histogram series structure;
* ``--ledger``        — every ``run_ledger`` envelope in an artifact
  store: store envelope shape, ``repro.ledger/1`` payload schema,
  run_id/key agreement and kind-specific required fields.

Exit code 0 when everything validates, 1 with a message otherwise.
CI runs this against a Fluam end-to-end run (and, in the warm-start
job, against the shared store's ledger).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

STAGES = ("metadata", "targets", "graphs", "search", "codegen")

GENERATION_FIELDS = (
    "generation", "best_fitness", "best_feasible_fitness", "mean_fitness",
    "std_fitness", "feasible_count", "penalty_activations", "fissions",
    "cache_hits", "cache_lookups", "evaluations", "worker_failures",
    "eval_timeouts", "fallback_evaluations", "island",
    "surrogate_candidates", "surrogate_admitted",
    "surrogate_rank_correlation", "elapsed_s", "migrants_in",
)

MIGRATION_NOTE_FIELDS = ("island", "epoch", "event", "reason")

COUNTER_FIELDS = (
    "kernel", "launches", "global_loads", "global_stores", "shared_loads",
    "shared_stores", "global_load_bytes", "global_store_bytes",
    "syncthreads", "branch_divergence",
)


def fail(message: str) -> None:
    print(f"check_telemetry: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def expect(condition: bool, message: str) -> None:
    if not condition:
        fail(message)


def load_json(path: Path) -> object:
    expect(path.is_file(), f"{path} does not exist")
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        fail(f"{path} is not valid JSON: {exc}")


def check_run_manifest(path: Path) -> None:
    run = load_json(path)
    expect(isinstance(run, dict), "run.json must be an object")
    expect(run.get("schema") == "repro.run/1", "run.json schema tag missing")
    for key in ("config", "env", "stage_wall_time_s", "reports", "exit_code"):
        expect(key in run, f"run.json missing key {key!r}")
    expect(isinstance(run["env"], dict) and "knobs" in run["env"],
           "run.json env.knobs missing")
    times = run["stage_wall_time_s"]
    expect(isinstance(times, dict), "stage_wall_time_s must be an object")
    for stage, value in times.items():
        expect(stage in STAGES, f"unknown stage {stage!r} in stage times")
        expect(isinstance(value, (int, float)) and value >= 0,
               f"stage time for {stage!r} must be a non-negative number")
    if run["exit_code"] == 0:
        expect(set(times) == set(STAGES) or run["config"].get("until"),
               "a complete run must record wall time for all five stages")
    else:
        expect(run.get("error") is not None,
               "a failed run must carry an error diagnostic")
    print(f"  run manifest ok ({len(times)} stage times, "
          f"exit {run['exit_code']})")


def check_trace(path: Path) -> None:
    trace = load_json(path)
    expect(isinstance(trace, dict) and "traceEvents" in trace,
           "trace.json must have traceEvents")
    events = trace["traceEvents"]
    expect(isinstance(events, list) and events, "traceEvents must be non-empty")
    spans = []
    for event in events:
        expect({"name", "ph", "pid", "tid"} <= set(event),
               f"malformed trace event: {event}")
        if event["ph"] != "X":
            continue
        expect("ts" in event and "dur" in event and event["dur"] >= 0,
               f"complete event needs ts/dur: {event}")
        spans.append(event)
    ids = {s["args"]["span_id"] for s in spans}
    for s in spans:
        parent = s["args"]["parent_id"]
        expect(parent is None or parent in ids,
               f"span {s['name']} has dangling parent {parent}")
    names = [s["name"] for s in spans]
    for stage in STAGES:
        expect(f"stage:{stage}" in names, f"no span for stage {stage!r}")
    print(f"  trace ok ({len(spans)} spans, all five stages covered)")


def check_search_telemetry(path: Path) -> None:
    expect(path.is_file(), f"{path} does not exist")
    rows = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError as exc:
            fail(f"{path}:{lineno} is not valid JSON: {exc}")
    generations = [r for r in rows if r.get("type") == "generation"]
    expect(generations, "no generation rows in search telemetry")
    for row in generations:
        missing = [f for f in GENERATION_FIELDS if f not in row]
        expect(not missing, f"generation row missing fields {missing}")
    expect(any(r.get("type") == "search_summary" for r in rows),
           "no search_summary row in search telemetry")
    # island mode emits one generation sequence per island; each must be
    # consecutive from 0 in emission order
    islands = sorted({r.get("island", 0) for r in generations})
    for island in islands:
        sequence = [r["generation"] for r in generations
                    if r.get("island", 0) == island]
        expect(sequence == list(range(len(sequence))),
               f"island {island} generation rows must be consecutive "
               f"from 0, got {sequence[:8]}...")
    for row in rows:
        if row.get("type") != "migration_note":
            continue
        missing = [f for f in MIGRATION_NOTE_FIELDS if f not in row]
        expect(not missing, f"migration note missing fields {missing}")
    print(f"  search telemetry ok ({len(generations)} generations, "
          f"{len(islands)} island(s))")


def check_model_validation(path: Path) -> None:
    report = load_json(path)
    expect(isinstance(report, dict) and "kernels" in report,
           "model_validation.json must have kernels")
    kernels = report["kernels"]
    expect(isinstance(kernels, list) and kernels,
           "model validation compared no kernels")
    for entry in kernels:
        for key in ("kernel", "measured", "measured_global_bytes",
                    "projected_bytes", "bytes_ratio"):
            expect(key in entry, f"kernel validation missing {key!r}")
        missing = [f for f in COUNTER_FIELDS if f not in entry["measured"]]
        expect(not missing, f"measured counters missing fields {missing}")
    expect(report.get("uncompared", 0) == 0,
           f"{report['uncompared']} launches were not compared to the model")
    print(f"  model validation ok ({len(kernels)} kernel launches)")


def check_metrics(path: Path) -> None:
    metrics = load_json(path)
    expect(isinstance(metrics, dict), "metrics must be an object")
    for section in ("counters", "gauges", "histograms"):
        expect(section in metrics, f"metrics missing section {section!r}")
        for series in metrics[section]:
            expect("name" in series and "labels" in series,
                   f"malformed series in {section}: {series}")
    counter_names = {c["name"] for c in metrics["counters"]}
    expect("pipeline_stage_runs_total" in counter_names,
           "expected pipeline_stage_runs_total counter")
    print(f"  metrics ok ({len(metrics['counters'])} counter series)")


LEDGER_COMMON_FIELDS = (
    "schema", "kind", "run_id", "timestamp", "unix_time", "pid",
    "git_sha", "repro_version", "source", "exit_code",
)

TRANSFORM_FIELDS = (
    "app", "config_digest", "seed", "stage_wall_time_s",
    "total_wall_time_s", "speedup", "verified", "demotions",
    "reused_stages", "store", "counters", "trace",
)

FUZZ_FIELDS = (
    "seed_start", "seed_end", "seeds_run", "oracles", "failures",
    "crashes", "unbucketed", "crash_buckets", "oracle_failures",
)


def check_ledger(root: Path) -> None:
    base = root / "v1" / "run_ledger"
    expect(base.is_dir(), f"{base} does not exist (no ledger records)")
    paths = sorted(
        p for p in base.rglob("*.json") if not p.name.startswith(".")
    )
    expect(bool(paths), "ledger namespace holds no records")
    for path in paths:
        envelope = load_json(path)
        expect(isinstance(envelope, dict), f"{path} must be an object")
        expect(envelope.get("schema") == "repro.store/1",
               f"{path.name}: bad store envelope schema")
        expect(envelope.get("namespace") == "run_ledger",
               f"{path.name}: wrong namespace")
        record = envelope.get("payload")
        expect(isinstance(record, dict), f"{path.name}: payload missing")
        expect(record.get("schema") == "repro.ledger/1",
               f"{path.name}: bad ledger schema "
               f"{record.get('schema')!r}")
        for key in LEDGER_COMMON_FIELDS:
            expect(key in record, f"{path.name}: missing field {key!r}")
        expect(record["run_id"] == envelope.get("key") == path.stem,
               f"{path.name}: run_id/key/filename disagree")
        kind = record.get("kind")
        if kind == "transform":
            for key in TRANSFORM_FIELDS:
                expect(key in record,
                       f"{path.name}: transform record missing {key!r}")
            times = record["stage_wall_time_s"]
            expect(isinstance(times, dict), f"{path.name}: bad stage times")
            for stage, value in times.items():
                expect(stage in STAGES,
                       f"{path.name}: unknown stage {stage!r}")
                expect(isinstance(value, (int, float)) and value >= 0,
                       f"{path.name}: bad time for stage {stage!r}")
        elif kind == "fuzz":
            fuzz = record.get("fuzz")
            expect(isinstance(fuzz, dict),
                   f"{path.name}: fuzz record missing its fuzz block")
            for key in FUZZ_FIELDS:
                expect(key in fuzz,
                       f"{path.name}: fuzz block missing {key!r}")
        else:
            fail(f"{path.name}: unknown record kind {kind!r}")
    print(f"  ledger ok ({len(paths)} records)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("workdir", nargs="?", default=None,
                        help="pipeline working directory")
    parser.add_argument("--trace", default=None,
                        help="trace file (default WORKDIR/trace.json)")
    parser.add_argument("--metrics", default=None,
                        help="metrics file (default WORKDIR/metrics.json)")
    parser.add_argument("--ledger", default=None, metavar="STORE_ROOT",
                        help="validate the run ledger of this store root")
    args = parser.parse_args(argv)

    if args.ledger is not None:
        root = Path(args.ledger)
        expect(root.is_dir(), f"{root} is not a directory")
        print(f"checking ledger in {root}")
        check_ledger(root)
        if args.workdir is None:
            print("check_telemetry: OK")
            return 0

    if args.workdir is None:
        parser.error("need a WORKDIR and/or --ledger STORE_ROOT")

    workdir = Path(args.workdir)
    expect(workdir.is_dir(), f"{workdir} is not a directory")
    print(f"checking telemetry in {workdir}")
    check_run_manifest(workdir / "run.json")
    check_trace(Path(args.trace) if args.trace else workdir / "trace.json")
    check_search_telemetry(workdir / "search_telemetry.jsonl")
    check_model_validation(workdir / "model_validation.json")
    check_metrics(
        Path(args.metrics) if args.metrics else workdir / "metrics.json"
    )
    print("check_telemetry: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

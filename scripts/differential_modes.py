#!/usr/bin/env python
"""Differential-test the interpreter's execution modes end to end.

Runs a generated application (default: Fluam) plus a shared-memory tiled
stencil under every block execution strategy — ``loop``, ``batched``,
``compiled`` and ``auto`` — and checks the contract the ``compiled``
mode makes:

* every device array is **bitwise identical** across all modes
  (compared by SHA-256 of the raw buffer);
* the mode-invariant counter totals (loads/stores/bytes/syncthreads,
  see :data:`repro.observability.hwcounters.MODE_INVARIANT_FIELDS`)
  agree across all modes;
* the **full** counter totals — including the execution-shape-dependent
  ``branch_divergence`` — agree between ``compiled`` and ``auto``, the
  interpretation mode whose lattice it shares.

Exits non-zero on any mismatch; prints the compiler's cache counters so
CI logs show how many kernels actually compiled vs fell back.

Usage::

    PYTHONPATH=src python scripts/differential_modes.py [--app Fluam]
"""

from __future__ import annotations

import argparse
import hashlib
import sys

MODES = ("loop", "batched", "compiled", "auto")

#: a tiled stage-in/write-out stencil (batched-friendly shared memory)
#: plus an in-place kernel whose global read/write conflict forces the
#: per-block loop strategy — so the differential also covers the
#: compiled mode's per-kernel fallback path (each thread touches only
#: its own element, so every mode still agrees bitwise)
_STENCIL = """
__global__ void blur(const double* in, double* out, int nx, int ny) {
    __shared__ double t[8][8];
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    int i = blockIdx.x * blockDim.x + tx;
    int j = blockIdx.y * blockDim.y + ty;
    t[tx][ty] = in[i][j];
    __syncthreads();
    if (tx >= 1 && tx < 7 && ty >= 1 && ty < 7) {
        out[i][j] = t[tx - 1][ty] + t[tx + 1][ty] + t[tx][ty - 1]
            + t[tx][ty + 1] - 4.0 * t[tx][ty];
    }
}

__global__ void relax(double* a, int nx, int ny) {
    __shared__ double t[8][8];
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    int i = blockIdx.x * blockDim.x + tx;
    int j = blockIdx.y * blockDim.y + ty;
    t[tx][ty] = a[i][j];
    __syncthreads();
    a[i][j] = t[tx][ty] * 0.5 + 1.0;
}

int main() {
    int nx = 96;
    int ny = 96;
    double* a = cudaMalloc2D(nx, ny);
    double* b = cudaMalloc2D(nx, ny);
    deviceRandom(a, 20150615);
    blur<<<dim3(12, 12, 1), dim3(8, 8, 1)>>>(a, b, nx, ny);
    relax<<<dim3(12, 12, 1), dim3(8, 8, 1)>>>(b, nx, ny);
    return 0;
}
"""


def array_hashes(result) -> dict:
    return {
        name: hashlib.sha256(arr.tobytes()).hexdigest()
        for name, arr in sorted(result.arrays.items())
    }


def run_modes(program) -> dict:
    from repro.gpu.interpreter import run_program
    from repro.observability import counters_signature

    runs = {}
    for mode in MODES:
        result = run_program(program, block_exec=mode, collect_counters=True)
        counters = [rec.counters for rec in result.launches]
        runs[mode] = {
            "hashes": array_hashes(result),
            "invariant": counters_signature(counters),
            "full": counters_signature(counters, include_divergence=True),
        }
    return runs


def diff_runs(label: str, runs: dict) -> list:
    problems = []
    reference = runs["loop"]
    for mode in MODES[1:]:
        if runs[mode]["hashes"] != reference["hashes"]:
            drifted = sorted(
                name
                for name in reference["hashes"]
                if runs[mode]["hashes"].get(name) != reference["hashes"][name]
            )
            problems.append(f"{label}: arrays differ loop vs {mode}: {drifted}")
        if runs[mode]["invariant"] != reference["invariant"]:
            problems.append(
                f"{label}: mode-invariant counters differ loop vs {mode}:\n"
                f"  loop:   {reference['invariant']}\n"
                f"  {mode}: {runs[mode]['invariant']}"
            )
    if runs["compiled"]["full"] != runs["auto"]["full"]:
        problems.append(
            f"{label}: full counters (incl. branch_divergence) differ "
            f"compiled vs auto:\n"
            f"  auto:     {runs['auto']['full']}\n"
            f"  compiled: {runs['compiled']['full']}"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--app", default="Fluam",
                        help="generated application to run (default: Fluam)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="application scale factor (default: 1.0)")
    parser.add_argument("--fuzz-seed", type=int, default=None, metavar="N",
                        help="also differential-test fuzz app N "
                             "(repro.fuzz.appgen.generate_app)")
    args = parser.parse_args(argv)

    from repro.apps import build_app
    from repro.cudalite import parse_program
    from repro.gpu import compiler

    compiler.reset_code_cache()
    problems = []
    programs = {
        "stencil+fallback": parse_program(_STENCIL),
        args.app: build_app(args.app, scale=args.scale).program,
    }
    if args.fuzz_seed is not None:
        from repro.fuzz import generate_app

        fuzz_app = generate_app(args.fuzz_seed)
        programs[fuzz_app.name] = fuzz_app.program
    for label, program in programs.items():
        runs = run_modes(program)
        problems.extend(diff_runs(label, runs))
        kernels = len(runs["loop"]["invariant"])
        print(f"{label}: {kernels} kernels x {len(MODES)} modes compared")

    stats = compiler.stats().as_dict()
    print(f"compiler cache: {stats}")
    if not stats["lowered"]:
        problems.append("no kernel was actually compiled — differential vacuous")

    for problem in problems:
        print(f"differential_modes: {problem}", file=sys.stderr)
    if problems:
        return 1
    print("all modes bitwise-identical (arrays) and counter-consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main())

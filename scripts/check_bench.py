#!/usr/bin/env python
"""Gate a fresh benchmark record against the committed baseline.

The benchmark suites write JSON records at the repo root
(``BENCH_pr6.json`` from the search-throughput bench, ``BENCH_pr9.json``
from the island-scaling bench); CI re-runs a bench and feeds the fresh
record plus the committed copy through this script.  The check tables
are selected by the record's ``bench`` tag.  Three kinds of checks,
from hardest to softest:

* **exact** — machine-independent facts must match bit-for-bit: the
  deterministic interpreter counter totals, the fitness pipeline's
  lookup/evaluation counts, the island bench's generation-at-target
  numbers.  Any drift here is a semantic change, not noise.
* **floors** — committed acceptance bars that must hold on any machine:
  the compiled fitness evaluator >= 10x PR3's recorded uncached
  baseline, the content-addressed cache >= 3x its own uncached
  sequential replay, K=4 islands crossing the K=1 best in >= 2x fewer
  generations.
* **ratios** — timing-derived numbers (evals/sec, wall speedups) may
  not regress below ``--tolerance`` (default 0.35) of the committed
  value.  Shared CI runners are noisy; this catches collapses, not
  jitter.

Usage::

    PYTHONPATH=src python scripts/check_bench.py \
        --baseline BENCH_pr9.json --current /tmp/fresh/BENCH_pr9.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: per-bench dotted paths whose values must match the baseline exactly
EXACT = {
    "search_throughput": (
        "schema",
        "bench",
        "interpreter_counters",
        "fitness_pipeline.lookups",
        "fitness_pipeline.evaluations",
        "compiled_fitness.pr3_baseline_evals_per_sec",
        "search.best_fitness",
        "search.generation_at_target",
        "search.evaluations_at_target",
    ),
    "islands": (
        "schema",
        "bench",
        "app",
        "protocol",
        # the search is seeded and single-threaded per island epoch, so
        # fitness trajectories are machine-independent facts
        "headline.target_fitness",
        "headline.k1_time_to_best_generation",
        "curve.k1.cold.best_fitness",
        "curve.k2.cold.best_fitness",
        "curve.k4.cold.best_fitness",
        "curve.k4.cold.generation_at_target",
        "curve.k4.cold.evaluations_at_target",
    ),
    "service": (
        "schema",
        "bench",
        "protocol",
        # dedup and reuse accounting is deterministic serving semantics,
        # not timing: 8 identical in-flight clients -> 1 execution
        "cold.requests",
        "cold.all_reused",
        "warm.requests",
        "warm.all_reused",
        "warm.speedups_match_cold",
        "dedup.clients",
        "dedup.executions",
        "dedup.dedup_hits",
        "dedup.bodies_identical",
        "dedup.dedup_flags_all_hit",
        "dedup.ledger_dedup_clients",
        "headline.worker_restarts",
        "headline.ledger_service_records",
    ),
}

#: per-bench (dotted path, minimum value) acceptance floors
FLOORS = {
    "search_throughput": (
        ("fitness_pipeline.cache_hit_rate", 0.5),
        ("fitness_pipeline.speedup_vs_uncached", 3.0),
        ("compiled_fitness.speedup_vs_pr3_baseline", 10.0),
        ("batched_interpretation.speedup", 1.0),
        ("batched_interpretation.compiled_speedup", 1.0),
    ),
    "islands": (
        # the ISSUE acceptance bar, stated machine-independently: K=4
        # reaches the K=1 best fitness in >= 2x fewer generations ...
        ("headline.k4_cold_generation_speedup", 2.0),
        # ... and the wall-clock speedup may not collapse below 1x even
        # on a noisy runner (the committed value is gated by RATIOS)
        ("headline.k4_cold_speedup", 1.0),
        ("curve.k4.cold.surrogate_rank_correlation", 0.3),
        ("curve.k4.cold.migrations_received", 1),
        # warm hydration re-reaches the target almost immediately
        ("curve.k4.warm.migrations_received", 1),
    ),
    "service": (
        # warm (store-served) requests must be cheaper to serve than
        # cold ones even with serving overhead on a noisy runner
        ("headline.warm_speedup_vs_cold", 1.0),
        ("protocol.concurrent_clients", 4),
        ("protocol.workers", 4),
    ),
}

#: per-bench dotted paths of timing-derived values gated by --tolerance
RATIOS = {
    "search_throughput": (
        "fitness_pipeline.baseline_evals_per_sec",
        "fitness_pipeline.cached_evals_per_sec",
        "fitness_pipeline.restart_evals_per_sec",
        "compiled_fitness.compiled_evals_per_sec",
        "parallel_evaluation.parallel4_evals_per_sec",
        "batched_interpretation.speedup",
        "batched_interpretation.compiled_speedup",
        "search.target_evals_per_sec",
    ),
    "islands": (
        "headline.k4_cold_speedup",
        "headline.k4_cold_generation_speedup",
        "headline.k4_cold_evaluation_speedup",
    ),
    "service": (
        "cold.requests_per_sec",
        "warm.requests_per_sec",
        "headline.sustained_requests_per_sec",
    ),
}

#: warm island runs must cross the target within this many generations
WARM_GENERATION_CEILING = 10

#: every warm (store-served) service request must finish within this
#: many seconds of wall time — the ISSUE acceptance bar
SERVICE_WARM_LATENCY_CEILING_S = 1.0


def lookup(record: dict, path: str):
    value = record
    for part in path.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value


def check(baseline: dict, current: dict, tolerance: float) -> list:
    problems = []
    bench = baseline.get("bench")
    if bench not in EXACT:
        return [f"unknown bench tag {bench!r} in baseline record"]
    if current.get("bench") != bench:
        return [
            f"bench tag mismatch: baseline {bench!r} vs "
            f"current {current.get('bench')!r}"
        ]
    for path in EXACT[bench]:
        want, got = lookup(baseline, path), lookup(current, path)
        if want is None:
            continue  # field not in the committed record yet
        if want != got:
            problems.append(f"exact mismatch at {path}: {want!r} -> {got!r}")
    for path, floor in FLOORS[bench]:
        got = lookup(current, path)
        if got is None:
            problems.append(f"missing value at {path} (floor {floor})")
        elif got < floor:
            problems.append(f"floor violated at {path}: {got} < {floor}")
    for path in RATIOS[bench]:
        want, got = lookup(baseline, path), lookup(current, path)
        if want is None:
            continue  # field not in the committed record yet
        if got is None:
            problems.append(f"missing value at {path} (baseline {want})")
        elif got < tolerance * want:
            problems.append(
                f"regression at {path}: {got} < {tolerance} * baseline {want}"
            )
    if bench == "islands":
        for key in ("k2", "k4"):
            path = f"curve.{key}.warm.generation_at_target"
            got = lookup(current, path)
            if got is None or got > WARM_GENERATION_CEILING:
                problems.append(
                    f"warm hydration broken at {path}: {got!r} "
                    f"(ceiling {WARM_GENERATION_CEILING})"
                )
    if bench == "service":
        got = lookup(current, "warm.max_latency_s")
        if got is None or got > SERVICE_WARM_LATENCY_CEILING_S:
            problems.append(
                f"warm serving too slow at warm.max_latency_s: {got!r} "
                f"(ceiling {SERVICE_WARM_LATENCY_CEILING_S}s)"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, type=Path,
                        help="committed benchmark record")
    parser.add_argument("--current", required=True, type=Path,
                        help="freshly generated benchmark record")
    parser.add_argument("--tolerance", type=float, default=0.35,
                        help="minimum fraction of a baseline timing value "
                             "(default: 0.35)")
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())
    problems = check(baseline, current, args.tolerance)
    for problem in problems:
        print(f"check_bench: {problem}", file=sys.stderr)
    if problems:
        return 1
    bench = baseline["bench"]
    print(
        f"bench record OK ({bench}): {len(EXACT[bench])} exact, "
        f"{len(FLOORS[bench])} floors, {len(RATIOS[bench])} ratio checks "
        f"against {args.baseline.name}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Gate a fresh benchmark record against the committed baseline.

The search-throughput bench writes ``BENCH_pr6.json`` at the repo root;
CI re-runs it and feeds the fresh record plus the committed copy through
this script.  Three kinds of checks, from hardest to softest:

* **exact** — machine-independent facts must match bit-for-bit: the
  deterministic interpreter counter totals and the fitness pipeline's
  lookup/evaluation counts.  Any drift here is a semantic change, not
  noise.
* **floors** — committed acceptance bars that must hold on any machine:
  the compiled fitness evaluator >= 10x PR3's recorded uncached
  baseline, the content-addressed cache >= 3x its own uncached
  sequential replay, cache hit rate > 0.5.
* **ratios** — timing-derived numbers (evals/sec, speedups) may not
  regress below ``--tolerance`` (default 0.35) of the committed value.
  Shared CI runners are noisy; this catches collapses, not jitter.

Usage::

    PYTHONPATH=src python scripts/check_bench.py \
        --baseline BENCH_pr6.json --current /tmp/fresh/BENCH_pr6.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: dotted paths whose values must match the baseline exactly
EXACT = (
    "schema",
    "bench",
    "interpreter_counters",
    "fitness_pipeline.lookups",
    "fitness_pipeline.evaluations",
    "compiled_fitness.pr3_baseline_evals_per_sec",
)

#: (dotted path, minimum value) acceptance floors, machine-independent
FLOORS = (
    ("fitness_pipeline.cache_hit_rate", 0.5),
    ("fitness_pipeline.speedup_vs_uncached", 3.0),
    ("compiled_fitness.speedup_vs_pr3_baseline", 10.0),
    ("batched_interpretation.speedup", 1.0),
    ("batched_interpretation.compiled_speedup", 1.0),
)

#: dotted paths of timing-derived values gated by --tolerance; entries
#: ending in ``_ms`` are lower-is-better (the ratio check inverts)
RATIOS = (
    "fitness_pipeline.baseline_evals_per_sec",
    "fitness_pipeline.cached_evals_per_sec",
    "fitness_pipeline.restart_evals_per_sec",
    "compiled_fitness.compiled_evals_per_sec",
    "parallel_evaluation.parallel4_evals_per_sec",
    "batched_interpretation.speedup",
    "batched_interpretation.compiled_speedup",
)


def lookup(record: dict, path: str):
    value = record
    for part in path.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value


def check(baseline: dict, current: dict, tolerance: float) -> list:
    problems = []
    for path in EXACT:
        want, got = lookup(baseline, path), lookup(current, path)
        if want != got:
            problems.append(f"exact mismatch at {path}: {want!r} -> {got!r}")
    for path, floor in FLOORS:
        got = lookup(current, path)
        if got is None:
            problems.append(f"missing value at {path} (floor {floor})")
        elif got < floor:
            problems.append(f"floor violated at {path}: {got} < {floor}")
    for path in RATIOS:
        want, got = lookup(baseline, path), lookup(current, path)
        if want is None:
            continue  # field not in the committed record yet
        if got is None:
            problems.append(f"missing value at {path} (baseline {want})")
        elif got < tolerance * want:
            problems.append(
                f"regression at {path}: {got} < {tolerance} * baseline {want}"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, type=Path,
                        help="committed benchmark record")
    parser.add_argument("--current", required=True, type=Path,
                        help="freshly generated benchmark record")
    parser.add_argument("--tolerance", type=float, default=0.35,
                        help="minimum fraction of a baseline timing value "
                             "(default: 0.35)")
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())
    problems = check(baseline, current, args.tolerance)
    for problem in problems:
        print(f"check_bench: {problem}", file=sys.stderr)
    if problems:
        return 1
    print(
        f"bench record OK: {len(EXACT)} exact, {len(FLOORS)} floors, "
        f"{len(RATIOS)} ratio checks against {args.baseline.name}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

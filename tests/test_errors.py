"""The exception hierarchy: subclass relations and structured fields."""

import pytest

from repro.cudalite import parse_program
from repro.errors import (
    AnalysisError,
    CudaLiteError,
    FaultInjectionError,
    GraphError,
    InterpreterError,
    LexError,
    OutOfBoundsError,
    ParseError,
    PipelineError,
    ReproError,
    SemanticError,
    SearchError,
    TransformError,
    VerificationError,
)
from repro.gpu.interpreter import run_program

ALL_ERRORS = (
    CudaLiteError,
    LexError,
    ParseError,
    SemanticError,
    InterpreterError,
    OutOfBoundsError,
    AnalysisError,
    GraphError,
    SearchError,
    TransformError,
    VerificationError,
    FaultInjectionError,
    PipelineError,
)


@pytest.mark.parametrize("exc_type", ALL_ERRORS)
def test_every_error_derives_from_repro_error(exc_type):
    assert issubclass(exc_type, ReproError)
    assert issubclass(exc_type, Exception)


def test_language_errors_derive_from_cudalite_error():
    for exc_type in (LexError, ParseError, SemanticError):
        assert issubclass(exc_type, CudaLiteError)
    # runtime/analysis errors are siblings, not language errors
    for exc_type in (InterpreterError, AnalysisError, SearchError):
        assert not issubclass(exc_type, CudaLiteError)


def test_oob_derives_from_interpreter_error():
    assert issubclass(OutOfBoundsError, InterpreterError)


def test_catching_the_base_class_catches_everything():
    for exc_type in ALL_ERRORS:
        try:
            if exc_type in (LexError, ParseError):
                raise exc_type("boom", 1, 2)
            raise exc_type("boom")
        except ReproError:
            pass


@pytest.mark.parametrize("exc_type", (LexError, ParseError))
def test_located_language_errors_carry_line_and_col(exc_type):
    err = exc_type("unexpected token", line=3, col=7)
    assert err.line == 3
    assert err.col == 7
    assert str(err) == "3:7: unexpected token"
    # without a location the message is unchanged
    assert str(exc_type("bare message")) == "bare message"


def test_interpreter_error_carries_kernel():
    err = InterpreterError("division by zero", kernel="diffuse")
    assert err.kernel == "diffuse"
    assert InterpreterError("host-side failure").kernel is None


def test_out_of_bounds_structured_fields():
    err = OutOfBoundsError(
        "array 'A' axis 0: index 9 out of [0, 8)",
        kernel="k",
        array="A",
        axis=0,
        index=9,
        block=(1, 0, 0),
        thread=(3, 0, 0),
    )
    assert err.kernel == "k"
    assert err.array == "A"
    assert err.axis == 0
    assert err.index == 9
    assert err.block == (1, 0, 0)
    assert err.thread == (3, 0, 0)
    # all location fields are optional
    bare = OutOfBoundsError("somewhere")
    assert bare.array is None and bare.block is None and bare.thread is None


def test_stage_attribute_defaults_to_none_and_is_settable():
    err = TransformError("fusion failed")
    assert err.stage is None
    err.stage = "codegen"
    assert err.stage == "codegen"


def test_interpreter_oob_reports_kernel_array_and_axis():
    source = """
__global__ void walk(double *A, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { A[i] = A[i + 1]; }
}
int main() {
    int n = 8;
    double *A = cudaMalloc1D(n);
    walk<<<dim3(1, 1, 1), dim3(8, 1, 1)>>>(A, n);
    return 0;
}
"""
    with pytest.raises(OutOfBoundsError) as excinfo:
        run_program(parse_program(source))
    err = excinfo.value
    assert err.kernel == "walk"
    assert err.array == "A"
    assert err.axis == 0
    assert err.index is not None and err.index >= 8
    # the message is self-contained: kernel, array and axis all appear
    message = str(err)
    assert "walk" in message
    assert "'A'" in message
    assert "axis 0" in message

"""Fitness memoization and parallel population evaluation."""

import numpy as np
import pytest

from repro.analysis.filtering import identify_targets
from repro.gpu.device import K20X
from repro.gpu.profiler import gather_metadata
from repro.search import (
    build_problem,
    GGA,
    FitnessCache,
    NullCache,
    PopulationEvaluator,
    canonical_encoding,
    content_key,
    evaluate_individual,
    evaluate_population_sequential,
    fast_params,
    get_objective,
    individual_seed,
    random_grouping,
    singleton_grouping,
)
from repro.search.fitness_cache import (
    ENV_CACHE_ENABLED,
    ENV_CACHE_SIZE,
    cache_enabled_from_env,
    cache_size_from_env,
    get_shared_cache,
    reset_shared_cache,
)
from repro.search.grouping import Grouping
from repro.search.parallel import (
    ENV_EXECUTOR,
    ENV_WORKERS,
    executor_kind_from_env,
    workers_from_env,
)
from repro.search.penalty import PenaltyParams


@pytest.fixture(autouse=True)
def fresh_shared_cache():
    reset_shared_cache()
    yield
    reset_shared_cache()


@pytest.fixture
def problem3(three_kernel_program):
    meta = gather_metadata(three_kernel_program, K20X)
    report = identify_targets(meta, K20X)
    return build_problem(three_kernel_program, meta, report, K20X).problem


def _population(problem, count, seed=7):
    import random

    rng = random.Random(seed)
    pop = [singleton_grouping(problem)]
    while len(pop) < count:
        pop.append(random_grouping(problem, rng))
    return pop


# ----------------------------------------------------------- content keys


def test_canonical_encoding_ignores_group_order(problem3):
    names = sorted(problem3.whole_nodes())
    a = Grouping(
        split=frozenset(),
        groups=(frozenset({names[0], names[1]}), frozenset({names[2]})),
    )
    b = Grouping(
        split=frozenset(),
        groups=(frozenset({names[2]}), frozenset({names[1], names[0]})),
    )
    assert canonical_encoding(a) == canonical_encoding(b)
    assert content_key(a, "ns") == content_key(b, "ns")


def test_content_key_separates_namespaces(problem3):
    ind = singleton_grouping(problem3)
    assert content_key(ind, "device-a") != content_key(ind, "device-b")


def test_individual_seed_schedule_independent(problem3):
    ind = singleton_grouping(problem3)
    assert individual_seed(ind, 42) == individual_seed(ind, 42)
    assert individual_seed(ind, 42) != individual_seed(ind, 43)
    assert 0 <= individual_seed(ind, 42) < 2**31


def test_problem_fingerprint_stable(problem3):
    assert problem3.fingerprint() == problem3.fingerprint()
    assert len(problem3.fingerprint()) == 64


# ------------------------------------------------------------------ cache


def test_cache_roundtrip_and_stats():
    cache = FitnessCache(max_entries=128)
    assert cache.get("k1") is None
    cache.put("k1", (1.0, None))
    assert cache.get("k1") == (1.0, None)
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.hit_rate == 0.5


def test_cache_lru_eviction():
    cache = FitnessCache(max_entries=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh 'a'
    cache.put("c", 3)  # evicts 'b', the least recently used
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.stats.evictions == 1


def test_null_cache_never_stores():
    cache = NullCache()
    cache.put("k", 1)
    assert cache.get("k") is None
    assert len(cache) == 0


def test_shared_cache_is_process_wide():
    assert get_shared_cache() is get_shared_cache()
    get_shared_cache().put("x", 1)
    reset_shared_cache()
    assert get_shared_cache().get("x") is None


def test_cache_env_vars(monkeypatch):
    monkeypatch.delenv(ENV_CACHE_ENABLED, raising=False)
    assert cache_enabled_from_env() is True
    for off in ("0", "false", "OFF", "no"):
        monkeypatch.setenv(ENV_CACHE_ENABLED, off)
        assert cache_enabled_from_env() is False
    monkeypatch.setenv(ENV_CACHE_ENABLED, "1")
    assert cache_enabled_from_env() is True
    monkeypatch.setenv(ENV_CACHE_SIZE, "123")
    assert cache_size_from_env() == 123
    monkeypatch.setenv(ENV_CACHE_SIZE, "junk")
    assert cache_size_from_env() == 1_048_576


def test_parallel_env_vars(monkeypatch):
    monkeypatch.setenv(ENV_WORKERS, "4")
    assert workers_from_env() == 4
    monkeypatch.setenv(ENV_WORKERS, "-2")
    assert workers_from_env() == 0
    monkeypatch.setenv(ENV_WORKERS, "junk")
    assert workers_from_env() == 0
    monkeypatch.setenv(ENV_EXECUTOR, "process")
    assert executor_kind_from_env() == "process"
    monkeypatch.setenv(ENV_EXECUTOR, "fibers")
    assert executor_kind_from_env() == "thread"


# -------------------------------------------------------------- evaluator


def _evaluator(problem, cache=None, **kw):
    return PopulationEvaluator(
        problem,
        K20X,
        get_objective("projected_gflops"),
        PenaltyParams(),
        objective_name="projected_gflops",
        cache=cache,
        namespace=problem.fingerprint(),
        **kw,
    )


def test_evaluator_matches_sequential_reference(problem3):
    pop = _population(problem3, 12)
    reference = evaluate_population_sequential(
        problem3, pop, K20X, get_objective("projected_gflops"), PenaltyParams()
    )
    with _evaluator(problem3, cache=FitnessCache()) as ev:
        results = ev.evaluate_many(pop)
    assert results == reference


def test_evaluator_dedups_within_batch(problem3):
    ind = singleton_grouping(problem3)
    with _evaluator(problem3, cache=FitnessCache()) as ev:
        results = ev.evaluate_many([ind] * 10)
        assert ev.evaluations == 1
        assert ev.cache_hits == 9
        assert len(set(map(repr, results))) == 1


def test_evaluator_cache_survives_batches(problem3):
    pop = _population(problem3, 8)
    cache = FitnessCache()
    with _evaluator(problem3, cache=cache) as ev:
        first = ev.evaluate_many(pop)
        executed = ev.evaluations
        second = ev.evaluate_many(pop)
        assert second == first
        assert ev.evaluations == executed  # nothing recomputed


def test_evaluator_parallel_threads_deterministic(problem3):
    pop = _population(problem3, 16)
    with _evaluator(problem3, cache=NullCache(), workers=1) as seq:
        sequential = seq.evaluate_many(pop)
    with _evaluator(problem3, cache=NullCache(), workers=4) as par:
        parallel = par.evaluate_many(pop)
    assert parallel == sequential


def test_evaluate_single_goes_through_cache(problem3):
    ind = singleton_grouping(problem3)
    with _evaluator(problem3, cache=FitnessCache()) as ev:
        a = ev.evaluate(ind)
        b = ev.evaluate(ind)
        assert a == b
        assert ev.evaluations == 1
        assert ev.cache_hits == 1


# ------------------------------------------------------------------- GGA


def test_gga_restart_served_from_shared_cache(problem3):
    params = fast_params(seed=5)
    params.population = 12
    params.generations = 6
    first = GGA(problem3, K20X, params).run()
    assert first.evaluations > 0
    second = GGA(problem3, K20X, params).run()
    assert second.evaluations == 0  # every lookup hits the shared cache
    assert second.cache_hit_rate == 1.0
    assert second.best == first.best
    assert second.best_fitness == first.best_fitness


def test_gga_cache_disabled_still_correct(problem3):
    params = fast_params(seed=5)
    params.population = 12
    params.generations = 6
    params.fitness_cache = False
    cached = GGA(problem3, K20X, fast_params(seed=5)).run()
    uncached = GGA(problem3, K20X, params).run()
    assert isinstance(GGA(problem3, K20X, params).cache, NullCache)
    assert uncached.best_fitness == cached.best_fitness


def test_gga_parallel_workers_same_trajectory(problem3):
    base = fast_params(seed=17)
    base.population = 12
    base.generations = 6
    a = GGA(problem3, K20X, base).run()
    reset_shared_cache()
    par = fast_params(seed=17)
    par.population = 12
    par.generations = 6
    par.workers = 4
    b = GGA(problem3, K20X, par).run()
    assert b.best == a.best
    assert b.best_fitness == a.best_fitness
    assert [s.best_fitness for s in b.history] == [
        s.best_fitness for s in a.history
    ]


def test_gga_env_cache_kill_switch(problem3, monkeypatch):
    monkeypatch.setenv(ENV_CACHE_ENABLED, "0")
    params = fast_params(seed=5)
    params.population = 8
    params.generations = 4
    gga = GGA(problem3, K20X, params)
    assert isinstance(gga.cache, NullCache)
    gga.evaluator.close()


def test_search_result_reports_hit_rate(problem3):
    params = fast_params(seed=5)
    params.population = 12
    params.generations = 6
    result = GGA(problem3, K20X, params).run()
    assert result.fitness_lookups == result.evaluations + result.cache_hits
    assert 0.0 < result.cache_hit_rate <= 1.0


def test_evaluate_individual_direct(problem3):
    fitness, violations = evaluate_individual(
        problem3,
        singleton_grouping(problem3),
        K20X,
        get_objective("projected_gflops"),
        PenaltyParams(),
    )
    assert np.isfinite(fitness)
    assert violations.feasible

"""The compiled execution mode: lowering, caching, fallback, equivalence.

The contract under test (see ``repro.gpu.compiler`` / ``repro.gpu.lowering``):
a kernel lowered to numpy source and executed through the compiled path
must be **bit-identical** to tree-walking interpretation — same array
contents, same counter totals — and any kernel the lowerer cannot handle
must fall back, per kernel, to the interpreter without changing results.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cudalite import parse_program
from repro.errors import LoweringError
from repro.gpu import compiler
from repro.gpu.interpreter import run_program
from repro.gpu.lowering import LOWERING_VERSION, lower_kernel
from repro.observability import counters_signature

MODES = ("loop", "batched", "compiled", "auto")

#: shared-memory tiled stencil — compiled onto the batched lattice
TILED = """
__global__ void blur(const double* in, double* out, int nx, int ny) {
    __shared__ double t[8][8];
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    int i = blockIdx.x * blockDim.x + tx;
    int j = blockIdx.y * blockDim.y + ty;
    t[tx][ty] = in[i][j];
    __syncthreads();
    if (tx >= 1 && tx < 7 && ty >= 1 && ty < 7) {
        out[i][j] = t[tx - 1][ty] + t[tx + 1][ty] + t[tx][ty - 1]
            + t[tx][ty + 1] - 4.0 * t[tx][ty];
    }
}

int main() {
    int nx = 32;
    int ny = 32;
    double* a = cudaMalloc2D(nx, ny);
    double* b = cudaMalloc2D(nx, ny);
    deviceRandom(a, 20150615);
    blur<<<dim3(4, 4, 1), dim3(8, 8, 1)>>>(a, b, nx, ny);
    return 0;
}
"""

#: no shared memory — compiled onto the whole-grid vectorized lattice
VECTOR = """
__global__ void saxpy(double* y, const double* x, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    double acc = 0.0;
    for (int k = 0; k < 3; k++) {
        acc = acc + x[i] * (k + 1);
    }
    y[i] = 2.0 * acc + y[i];
}

int main() {
    int n = 256;
    double* x = cudaMalloc1D(n);
    double* y = cudaMalloc1D(n);
    deviceRandom(x, 3);
    deviceRandom(y, 4);
    saxpy<<<dim3(4, 1, 1), dim3(64, 1, 1)>>>(y, x, n);
    return 0;
}
"""

#: ``w`` is assigned on only one branch path — the lowerer refuses
#: ("maybe"-defined read) and the compiled mode must fall back per kernel.
#: The thread-(0,0) disjunct guarantees every block has at least one
#: assigning thread, so the read is defined in every execution mode.
MAYBE = """
__global__ void gate(double* out, const double* in, int nx, int ny) {
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    int i = blockIdx.x * blockDim.x + tx;
    int j = blockIdx.y * blockDim.y + ty;
    if (in[i][j] > 0.5 || tx + ty == 0) {
        w = in[i][j] * 2.0;
    }
    out[i][j] = w + 1.0;
}

int main() {
    int nx = 16;
    int ny = 16;
    double* a = cudaMalloc2D(nx, ny);
    double* b = cudaMalloc2D(nx, ny);
    deviceRandom(a, 7);
    gate<<<dim3(2, 2, 1), dim3(8, 8, 1)>>>(b, a, nx, ny);
    return 0;
}
"""

#: in-place global read+write with shared staging — not batchable, so the
#: compiled mode has no lattice for it and falls back to the block loop
INPLACE = """
__global__ void relax(double* a, int nx, int ny) {
    __shared__ double t[8][8];
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    int i = blockIdx.x * blockDim.x + tx;
    int j = blockIdx.y * blockDim.y + ty;
    t[tx][ty] = a[i][j];
    __syncthreads();
    a[i][j] = t[tx][ty] * 0.5 + 1.0;
}

int main() {
    int nx = 16;
    int ny = 16;
    double* a = cudaMalloc2D(nx, ny);
    deviceRandom(a, 11);
    relax<<<dim3(2, 2, 1), dim3(8, 8, 1)>>>(a, nx, ny);
    return 0;
}
"""


@pytest.fixture(autouse=True)
def _fresh_code_cache():
    compiler.reset_code_cache()
    yield
    compiler.reset_code_cache()


def _run_all_modes(source):
    program = parse_program(source)
    return {
        mode: run_program(program, block_exec=mode, collect_counters=True)
        for mode in MODES
    }


def _assert_equivalent(runs):
    """Arrays bitwise-equal everywhere; counters per the documented rule."""
    loop = runs["loop"]
    for mode in MODES[1:]:
        for name, arr in loop.arrays.items():
            assert np.array_equal(arr, runs[mode].arrays[name]), (mode, name)
    signatures = {
        mode: counters_signature(rec.counters for rec in runs[mode].launches)
        for mode in MODES
    }
    assert signatures["loop"] == signatures["batched"]
    assert signatures["loop"] == signatures["compiled"]
    assert signatures["loop"] == signatures["auto"]
    full = {
        mode: counters_signature(
            (rec.counters for rec in runs[mode].launches),
            include_divergence=True,
        )
        for mode in ("compiled", "auto")
    }
    assert full["compiled"] == full["auto"]


# ------------------------------------------------------------------ lowering


def test_lowered_source_shape():
    program = parse_program(TILED)
    source = lower_kernel(program.kernels[0])
    assert source.startswith("def _compiled_kernel(ex, _m0):")
    # every array access goes through the executor so validation and
    # counters are shared with the interpreter verbatim
    assert "ex.load_values(" in source
    assert "ex.store_values(" in source
    assert "ex.decl_shared(" in source


def test_lowering_rejects_maybe_defined_read():
    program = parse_program(MAYBE)
    with pytest.raises(LoweringError):
        lower_kernel(program.kernels[0])


def test_compile_kernel_source_executes():
    program = parse_program(VECTOR)
    kernel = program.kernels[0]
    source = lower_kernel(kernel)
    compiled = compiler.compile_kernel_source(source, kernel.name, "fp")
    assert compiled.kernel == "saxpy"
    assert callable(compiled.fn)


# ---------------------------------------------------------------- execution


@pytest.mark.parametrize("source", [TILED, VECTOR, MAYBE, INPLACE],
                         ids=["tiled", "vector", "maybe", "inplace"])
def test_all_modes_bit_identical(source):
    _assert_equivalent(_run_all_modes(source))


def test_vectorized_kernel_compiles():
    program = parse_program(VECTOR)
    run_program(program, block_exec="compiled")
    assert compiler.stats().lowered == 1


def test_memory_cache_serves_repeat_launches():
    program = parse_program(TILED)
    run_program(program, block_exec="compiled")
    run_program(program, block_exec="compiled")
    stats = compiler.stats()
    assert stats.lowered == 1
    assert stats.memory_hits >= 1


def test_lowering_fallback_is_negatively_cached():
    program = parse_program(MAYBE)
    run_program(program, block_exec="compiled")
    stats = compiler.stats()
    assert stats.lowered == 0
    assert stats.fallbacks == 1
    run_program(program, block_exec="compiled")
    assert compiler.stats().fallback_hits >= 1


def test_unbatchable_kernel_never_reaches_the_compiler():
    # shape fallback happens before lowering: no stats movement at all
    program = parse_program(INPLACE)
    run_program(program, block_exec="compiled")
    stats = compiler.stats()
    assert stats.lowered == 0
    assert stats.fallbacks == 0


def test_detect_races_bypasses_compilation():
    program = parse_program(TILED)
    run_program(program, block_exec="compiled", detect_races=True)
    stats = compiler.stats()
    assert stats.lowered == 0
    assert stats.fallbacks == 0


# --------------------------------------------------------- fallback reasons


def test_lowering_fallback_records_reason():
    run_program(parse_program(MAYBE), block_exec="compiled")
    reasons = compiler.stats().fallback_reasons
    assert set(reasons) == {"gate"}
    assert reasons["gate"].startswith("lowering")
    assert "w" in reasons["gate"]  # the offending name is in the detail


def test_unbatchable_shared_fallback_records_reason():
    run_program(parse_program(INPLACE), block_exec="compiled")
    assert compiler.stats().fallback_reasons == {
        "relax": "unbatchable_shared"
    }


def test_detect_races_fallback_records_reason():
    run_program(parse_program(TILED), block_exec="compiled", detect_races=True)
    reasons = compiler.stats().fallback_reasons
    assert set(reasons.values()) == {"detect_races"}


def test_fallback_reasons_in_stats_dict_and_metrics():
    from repro.observability.metrics import get_registry

    def fallback_count(reason):
        counters = get_registry().snapshot().counters
        return counters.get(
            ("compiled_fallbacks_total", (("reason", reason),)), 0
        )

    before = fallback_count("lowering")
    run_program(parse_program(MAYBE), block_exec="compiled")
    as_dict = compiler.stats().as_dict()
    assert "fallback_reasons" in as_dict
    assert set(as_dict["fallback_reasons"]) == {"gate"}
    assert fallback_count("lowering") == before + 1


def test_fallback_reason_first_wins_and_reset_clears():
    compiler.note_fallback("k", "lowering", "first detail")
    compiler.note_fallback("k", "detect_races")  # later reason is ignored
    assert compiler.stats().fallback_reasons["k"] == "lowering: first detail"
    compiler.reset_code_cache()
    assert compiler.stats().fallback_reasons == {}


def test_vectorized_kernels_record_no_fallback_reason():
    run_program(parse_program(VECTOR), block_exec="compiled")
    assert compiler.stats().fallback_reasons == {}


# -------------------------------------------------------------- persistence


def test_persistent_store_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE", str(tmp_path))
    program = parse_program(TILED)
    cold = run_program(program, block_exec="compiled")
    assert compiler.stats().lowered == 1

    compiler.reset_code_cache()
    warm = run_program(program, block_exec="compiled")
    stats = compiler.stats()
    assert stats.store_hits == 1
    assert stats.lowered == 0
    for name, arr in cold.arrays.items():
        assert np.array_equal(arr, warm.arrays[name])


def test_store_load_rejects_other_lowering_version(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE", str(tmp_path))
    from repro.store import compiled_kernel_key, kernel_fingerprint, open_store
    from repro.store.stage_cache import load_compiled_kernel, save_compiled_kernel

    program = parse_program(TILED)
    kernel = program.kernels[0]
    fingerprint = kernel_fingerprint(kernel)
    key = compiled_kernel_key(fingerprint, LOWERING_VERSION)
    store = open_store(str(tmp_path))
    save_compiled_kernel(
        store, key, kernel.name, lower_kernel(kernel), LOWERING_VERSION
    )
    assert load_compiled_kernel(store, key, LOWERING_VERSION) is not None
    assert load_compiled_kernel(store, key, LOWERING_VERSION + 1) is None


# ------------------------------------------------------------ configuration


def test_cli_accepts_block_exec_flag():
    from repro.pipeline.cli import _build_config, build_arg_parser

    args = build_arg_parser().parse_args(["app.cu", "--block-exec", "compiled"])
    assert _build_config(args).block_exec == "compiled"


def test_transform_config_rejects_unknown_block_exec():
    from repro.api import TransformConfig
    from repro.errors import ConfigError

    TransformConfig(block_exec="compiled")  # accepted
    with pytest.raises(ConfigError):
        TransformConfig(block_exec="jit").validate()


# ------------------------------------------------------- property: 3 modes


@st.composite
def random_mixed_program(draw):
    """1-3 launches drawn from the four kernel archetypes above, with
    randomized coefficients, guards and seeds — covering the compiled
    mode's vectorized lattice, batched lattice and both fallback paths
    in one program."""
    rng_seed = draw(st.integers(min_value=1, max_value=10 ** 6))
    coeff = draw(st.floats(min_value=-2.0, max_value=2.0,
                           allow_nan=False, allow_infinity=False))
    lo = draw(st.integers(min_value=0, max_value=2))
    hi = draw(st.integers(min_value=5, max_value=7))
    kinds = draw(st.lists(st.sampled_from(("tile", "vec", "maybe", "inplace")),
                          min_size=1, max_size=3))
    kernels, launches = [], []
    for idx, kind in enumerate(kinds):
        name = f"k{idx}"
        if kind == "tile":
            kernels.append(f"""
__global__ void {name}(const double* in, double* out, int nx, int ny) {{
    __shared__ double t[8][8];
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    int i = blockIdx.x * blockDim.x + tx;
    int j = blockIdx.y * blockDim.y + ty;
    t[tx][ty] = in[i][j];
    __syncthreads();
    if (tx >= {lo + 1} && tx < {hi} && ty >= {lo + 1} && ty < {hi}) {{
        out[i][j] = t[tx - 1][ty] + t[tx + 1][ty] + {coeff} * t[tx][ty];
    }}
}}""")
            launches.append(f"{name}<<<dim3(2, 2, 1), dim3(8, 8, 1)>>>(a, b, nx, ny);")
        elif kind == "vec":
            kernels.append(f"""
__global__ void {name}(double* out, const double* in, int nx, int ny) {{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    double acc = 0.0;
    for (int k = {lo}; k < {hi}; k++) {{
        acc = acc + in[i][j] * k;
    }}
    out[i][j] = acc * {coeff} + max(in[i][j], 0.25);
}}""")
            launches.append(f"{name}<<<dim3(2, 2, 1), dim3(8, 8, 1)>>>(b, a, nx, ny);")
        elif kind == "maybe":
            kernels.append(f"""
__global__ void {name}(double* out, const double* in, int nx, int ny) {{
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    int i = blockIdx.x * blockDim.x + tx;
    int j = blockIdx.y * blockDim.y + ty;
    if (in[i][j] > 0.5 || tx + ty == 0) {{
        w = in[i][j] * {coeff};
    }}
    out[i][j] = w + 1.0;
}}""")
            launches.append(f"{name}<<<dim3(2, 2, 1), dim3(8, 8, 1)>>>(b, a, nx, ny);")
        else:
            kernels.append(f"""
__global__ void {name}(double* a, int nx, int ny) {{
    __shared__ double t[8][8];
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    int i = blockIdx.x * blockDim.x + tx;
    int j = blockIdx.y * blockDim.y + ty;
    t[tx][ty] = a[i][j];
    __syncthreads();
    a[i][j] = t[tx][ty] * 0.5 + {coeff};
}}""")
            launches.append(f"{name}<<<dim3(2, 2, 1), dim3(8, 8, 1)>>>(a, nx, ny);")
    body = "\n    ".join(launches)
    return f"""
{''.join(kernels)}
int main() {{
    int nx = 16;
    int ny = 16;
    double* a = cudaMalloc2D(nx, ny);
    double* b = cudaMalloc2D(nx, ny);
    deviceRandom(a, {rng_seed});
    deviceRandom(b, {rng_seed + 1});
    {body}
    return 0;
}}
"""


@given(random_mixed_program())
@settings(max_examples=25, deadline=None)
def test_three_mode_equivalence_property(source):
    """loop, batched, compiled and auto agree bitwise on arrays, on the
    mode-invariant counter totals, and (compiled vs auto) on the full
    counter set — including programs that force per-kernel fallback."""
    compiler.reset_code_cache()
    _assert_equivalent(_run_all_modes(source))

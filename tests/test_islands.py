"""Island-model GGA and surrogate pre-filter tests.

Covers the PR9 search-scaling layer: K=1 bit-identity with the classic
single-population GGA (regression + property), ring migration between
islands, store-mediated cross-run elite hydration, the
``island_migration`` fault seam (dropped payload -> solo continuation +
telemetry note), the analytic-model surrogate (delta scoring, variant
materialization, inverted-ordering recovery) and the Spearman audit.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.filtering import identify_targets
from repro.api import TransformConfig
from repro.apps import build_app
from repro.cudalite import parse_program
from repro.errors import ConfigError
from repro.gpu.device import K20X
from repro.gpu.profiler import gather_metadata
from repro.observability.search_telemetry import (
    read_jsonl,
    search_telemetry_rows,
    write_jsonl,
)
from repro.reliability import faults
from repro.search import (
    GAParams,
    GGA,
    build_problem,
    evaluate_individual,
    evaluate_violations,
    run_search,
    singleton_grouping,
)
from repro.search.fitness_cache import reset_shared_cache
from repro.search.grouping import Grouping
from repro.search.islands import (
    ISLAND_SEED_STRIDE,
    IslandGGA,
    island_params,
    island_seed,
)
from repro.search.objective import (
    get_objective,
    spearman_rank_correlation,
    surrogate_score,
    surrogate_scorer,
)
from repro.search.operators import random_grouping
from repro.store import open_store
from repro.store.stage_cache import load_island_elites

from conftest import THREE_KERNEL_SRC


#: a -> b -> c elementwise chain; fusing {ka, kc} around kb is non-convex
CHAIN_SRC = """
__global__ void ka(double *Y, const double *X, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { Y[i] = X[i] * 2.0; }
}
__global__ void kb(double *Z, const double *Y, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { Z[i] = Y[i] + 1.0; }
}
__global__ void kc(double *W, const double *Z, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { W[i] = Z[i] * Z[i]; }
}
int main() {
    int n = 128;
    double *X = cudaMalloc1D(n);
    double *Y = cudaMalloc1D(n);
    double *Z = cudaMalloc1D(n);
    double *W = cudaMalloc1D(n);
    deviceRandom(X, 3);
    dim3 grid(2, 1, 1);
    dim3 block(64, 1, 1);
    ka<<<grid, block>>>(Y, X, n);
    kb<<<grid, block>>>(Z, Y, n);
    kc<<<grid, block>>>(W, Z, n);
    return 0;
}
"""


def _problem_from(source: str):
    program = parse_program(source)
    meta = gather_metadata(program, K20X)
    report = identify_targets(meta, K20X)
    return build_problem(program, meta, report, K20X).problem


@pytest.fixture(scope="module")
def fluam_problem():
    generated = build_app("Fluam", scale=0.5)
    meta = gather_metadata(generated.program, K20X)
    report = identify_targets(meta, K20X)
    return build_problem(generated.program, meta, report, K20X).problem


@pytest.fixture
def problem3(three_kernel_program):
    meta = gather_metadata(three_kernel_program, K20X)
    report = identify_targets(meta, K20X)
    return build_problem(three_kernel_program, meta, report, K20X).problem


@pytest.fixture(scope="module")
def chain_problem():
    return _problem_from(CHAIN_SRC)


@pytest.fixture(autouse=True)
def _fresh_cache():
    reset_shared_cache()
    yield
    reset_shared_cache()


def _trajectory(result):
    return [
        (s.generation, s.best_fitness, s.best_feasible_fitness,
         s.mean_fitness, s.std_fitness, s.feasible_count, s.fissions)
        for s in result.history
    ]


# ------------------------------------------------------ K=1 bit-identity


def test_island1_bit_identical_to_gga(fluam_problem):
    params = GAParams(population=12, generations=8, seed=11)
    reset_shared_cache()
    classic = GGA(fluam_problem, K20X, params).run()
    reset_shared_cache()
    solo = IslandGGA(fluam_problem, K20X, params).run()
    assert solo.islands == 1
    assert solo.best == classic.best
    assert solo.best_fitness == classic.best_fitness
    assert _trajectory(solo) == _trajectory(classic)
    # and nothing island-specific leaked into the solo run
    assert solo.migrations_received == 0
    assert solo.migration_notes == []


def test_run_search_defaults_route_to_classic_gga(problem3):
    params = GAParams(population=8, generations=5, seed=2)
    assert params.islands == 1 and params.surrogate_topk == 1.0
    reset_shared_cache()
    via_run = run_search(problem3, K20X, params)
    reset_shared_cache()
    direct = GGA(problem3, K20X, params).run()
    assert via_run.best == direct.best
    assert _trajectory(via_run) == _trajectory(direct)


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_island1_identity_property(seed):
    problem = _problem_from(THREE_KERNEL_SRC)
    params = GAParams(population=8, generations=4, seed=seed)
    reset_shared_cache()
    classic = GGA(problem, K20X, params).run()
    reset_shared_cache()
    solo = IslandGGA(problem, K20X, params).run()
    assert solo.best == classic.best
    assert _trajectory(solo) == _trajectory(classic)


def test_island_seed_derivation():
    assert island_seed(42, 0) == 42
    assert island_seed(42, 3) == 42 + 3 * ISLAND_SEED_STRIDE
    params = GAParams(population=20, islands=4, seed=42)
    sub = island_params(params, 2, 4)
    assert sub.population == 5
    assert sub.seed == island_seed(42, 2)
    assert sub.islands == 1
    # the split never degenerates below a breedable population
    assert island_params(GAParams(population=4, islands=8), 5, 8).population == 2


# ----------------------------------------------------------- migration


def test_k2_ring_migration(fluam_problem):
    params = GAParams(
        population=12, generations=6, seed=3,
        islands=2, migration_interval=1, migration_size=2,
    )
    result = run_search(fluam_problem, K20X, params)
    assert result.islands == 2
    assert result.migrations_received > 0
    assert result.migrations_dropped == 0
    islands_seen = {s.island for s in result.history}
    assert islands_seen == {0, 1}
    # every island emits its own consecutive generation sequence
    for island in islands_seen:
        sequence = [s.generation for s in result.history if s.island == island]
        assert sequence == list(range(len(sequence)))
    # per-row migrant counts reconcile with the bus total
    assert sum(s.migrants_in for s in result.history) == result.migrations_received


def test_store_mediated_hydration(fluam_problem, tmp_path):
    params = GAParams(
        population=12, generations=8, seed=5,
        islands=2, migration_interval=2, migration_size=2,
    )
    store = open_store(tmp_path)
    cold = run_search(fluam_problem, K20X, params, store=store)

    # the cold run wrote elites through to the island_migration namespace
    for island in range(2):
        elites = load_island_elites(store, fluam_problem, K20X, params, island)
        assert elites, f"island {island} left no elites in the store"

    # a second run hydrates its islands from the store ...
    warm_driver = IslandGGA(fluam_problem, K20X, params, store=store)
    assert all(g.seed_population for g in warm_driver.islands)
    warm = warm_driver.run()
    # ... so its very first generation already carries the cold run's
    # progress instead of restarting from random individuals
    cold_gen0 = max(
        s.best_feasible_fitness for s in cold.history if s.generation == 0
    )
    warm_gen0 = max(
        s.best_feasible_fitness for s in warm.history if s.generation == 0
    )
    assert warm_gen0 >= cold_gen0
    assert warm.best_fitness >= cold_gen0


def test_migration_fault_drops_payload_and_continues(fluam_problem):
    assert "island_migration" in faults.KNOWN_SEAMS
    params = GAParams(
        population=12, generations=6, seed=3,
        islands=2, migration_interval=1, migration_size=2,
    )
    faults.install_plan(
        faults.FaultPlan(seams=faults.parse_seam_specs("island_migration"))
    )
    try:
        result = run_search(fluam_problem, K20X, params)
    finally:
        faults.clear_plan()
    # every payload was dropped, yet the search completed solo
    assert result.migrations_received == 0
    assert result.migrations_dropped > 0
    assert math.isfinite(result.best_fitness)
    assert result.migration_notes
    for note in result.migration_notes:
        assert note["type"] == "migration_note"
        assert note["event"] == "payload_dropped"
        assert "island" in note and "epoch" in note and "reason" in note
    # the DemotionRecord-style notes flow into the telemetry rows
    rows = search_telemetry_rows(result)
    assert any(r.get("type") == "migration_note" for r in rows)


# ----------------------------------------------------------- surrogate


def test_surrogate_prefilter_and_rank_correlation_jsonl(
    fluam_problem, tmp_path
):
    params = GAParams(
        population=16, generations=10, seed=7, surrogate_topk=0.5,
    )
    result = run_search(fluam_problem, K20X, params)
    assert result.surrogate_skipped > 0
    path = tmp_path / "search_telemetry.jsonl"
    write_jsonl(str(path), search_telemetry_rows(result))
    rows = read_jsonl(str(path))
    generations = [r for r in rows if r["type"] == "generation"]
    # post-init generations breed a candidate pool and admit a slice
    screened = [r for r in generations if r["surrogate_candidates"] > 0]
    assert screened
    assert all(
        r["surrogate_admitted"] <= r["surrogate_candidates"] for r in screened
    )
    # the per-generation surrogate-vs-exact audit is emitted
    audited = [
        r["surrogate_rank_correlation"]
        for r in generations
        if r["surrogate_rank_correlation"] is not None
    ]
    assert audited, "no generation emitted a surrogate rank correlation"
    summary = next(r for r in rows if r["type"] == "search_summary")
    assert summary["surrogate_skipped"] == result.surrogate_skipped
    assert summary["surrogate_rank_correlation"] is not None


def test_surrogate_inverted_ordering_recovered_by_exact(chain_problem):
    # the surrogate skips convexity: fusing {ka, kc} around kb looks
    # *better* than the honest singletons to the model alone ...
    objective = get_objective("projected_gflops")
    penalties = GAParams().penalties
    non_convex = Grouping(
        split=frozenset(),
        groups=(frozenset({"ka@0", "kc@2"}), frozenset({"kb@1"})),
    )
    assert evaluate_violations(chain_problem, non_convex).non_convex >= 1
    honest = singleton_grouping(chain_problem)
    scorer = surrogate_scorer(chain_problem, K20X, objective, penalties)
    assert scorer.score(non_convex) > scorer.score(honest)
    # ... but once both are admitted, exact evaluation inverts the order
    exact_bad, _ = evaluate_individual(
        chain_problem, non_convex, K20X, objective, penalties
    )
    exact_good, _ = evaluate_individual(
        chain_problem, honest, K20X, objective, penalties
    )
    assert exact_bad < exact_good
    # end to end: a surrogate-filtered search still lands on a feasible
    # best because admitted candidates are ranked by exact fitness
    params = GAParams(population=8, generations=6, seed=1, surrogate_topk=0.5)
    result = run_search(chain_problem, K20X, params)
    assert evaluate_violations(chain_problem, result.best).feasible


def test_surrogate_score_from_components_consistent(fluam_problem):
    params = GAParams()
    scorer = surrogate_scorer(
        fluam_problem, K20X, get_objective(params.objective), params.penalties
    )
    rng = random.Random(13)
    for _ in range(10):
        individual = random_grouping(fluam_problem, rng)
        via_components = scorer.score_from(scorer.components(individual))
        direct = scorer.score(individual)
        assert via_components == pytest.approx(direct, rel=1e-9)
        assert direct == pytest.approx(
            surrogate_score(
                fluam_problem, individual, K20X,
                get_objective(params.objective), params.penalties,
            ),
            rel=1e-9,
        )


def test_surrogate_variants_materialize_consistently(fluam_problem):
    params = GAParams()
    scorer = surrogate_scorer(
        fluam_problem, K20X, get_objective(params.objective), params.penalties
    )
    rng = random.Random(99)
    checked = 0
    for _ in range(5):
        parent = random_grouping(fluam_problem, rng)
        parts = scorer.components(parent)
        for variant in scorer.variants(parent, parts, rng, 4):
            child = variant.materialize()
            # the materialized child is a valid partition of the problem
            members = [m for g in child.groups for m in g]
            assert sorted(members) == sorted(
                m for g in parent.groups for m in g
            )
            # the incremental delta score equals a fresh full rescan
            fresh = scorer.score_from(scorer.components(child))
            assert variant.score == pytest.approx(fresh, rel=1e-9, abs=1e-12)
            checked += 1
    assert checked > 0


# ------------------------------------------------------------- spearman


def test_spearman_basic():
    assert spearman_rank_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)
    assert spearman_rank_correlation([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)


def test_spearman_ties_and_degenerate():
    rho = spearman_rank_correlation([1, 1, 2, 3], [1, 1, 2, 3])
    assert rho == pytest.approx(1.0)
    assert spearman_rank_correlation([1], [2]) is None
    assert spearman_rank_correlation([1, 1, 1], [1, 2, 3]) is None
    from repro.errors import SearchError

    with pytest.raises(SearchError):
        spearman_rank_correlation([1, 2], [1])


# ------------------------------------------------------------ config API


def test_transform_config_island_knobs():
    config = TransformConfig(
        islands=2, migration_interval=3,
        migration_size=1, surrogate_topk=0.5,
    )
    params = config.resolved_ga_params()
    assert params.islands == 2
    assert params.migration_interval == 3
    assert params.migration_size == 1
    assert params.surrogate_topk == 0.5
    # None defers to the GA parameter set defaults
    defaults = TransformConfig().resolved_ga_params()
    assert defaults.islands == GAParams().islands
    assert defaults.surrogate_topk == GAParams().surrogate_topk


def test_transform_config_island_validation():
    with pytest.raises(ConfigError):
        TransformConfig(islands=0)
    with pytest.raises(ConfigError):
        TransformConfig(migration_interval=0)
    with pytest.raises(ConfigError):
        TransformConfig(migration_size=0)
    with pytest.raises(ConfigError):
        TransformConfig(surrogate_topk=0.0)
    with pytest.raises(ConfigError):
        TransformConfig(surrogate_topk=1.5)


def test_env_knobs_resolve_island_fields(monkeypatch):
    monkeypatch.setenv("REPRO_ISLANDS", "2")
    monkeypatch.setenv("REPRO_ISLANDS_MIGRATION_INTERVAL", "4")
    monkeypatch.setenv("REPRO_ISLANDS_MIGRATION_SIZE", "1")
    monkeypatch.setenv("REPRO_ISLANDS_SURROGATE_TOPK", "0.25")
    config = TransformConfig.from_env()
    assert config.islands == 2
    assert config.migration_interval == 4
    assert config.migration_size == 1
    assert config.surrogate_topk == 0.25
    params = config.resolved_ga_params()
    assert (params.islands, params.surrogate_topk) == (2, 0.25)

"""Shared fixtures and program builders for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.cudalite import parse_program
from repro.gpu.device import K20X, K40, TESTING

# Deterministic profile for CI: derandomized (fixed seed), a bounded
# number of examples, and no per-example deadline (shared runners are
# slow and flaky-deadline failures are noise). Select it by exporting
# HYPOTHESIS_PROFILE=ci; the default profile is unchanged for local runs.
settings.register_profile(
    "ci", derandomize=True, max_examples=40, deadline=None
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


DIFFUSE_SRC = """
__global__ void diffuse(double *A, const double *B, int nx, int ny, int nz, double c) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if (i >= 1 && i < nx - 1 && j >= 1 && j < ny - 1) {
        for (int k = 0; k < nz; k++) {
            A[i][j][k] = c * (B[i + 1][j][k] + B[i - 1][j][k] + B[i][j + 1][k] + B[i][j - 1][k] - 4.0 * B[i][j][k]);
        }
    }
}

int main() {
    int nx = 32;
    int ny = 32;
    int nz = 8;
    double *A = cudaMalloc3D(nx, ny, nz);
    double *B = cudaMalloc3D(nx, ny, nz);
    deviceRandom(B, 42);
    dim3 grid(4, 4, 1);
    dim3 block(8, 8, 1);
    diffuse<<<grid, block>>>(A, B, nx, ny, nz, 0.25);
    cudaDeviceSynchronize();
    return 0;
}
"""

CHAIN_SRC = """
__global__ void produce(double *T, const double *B, int nx, int ny, int nz, double c) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < nx && j < ny) {
        for (int k = 0; k < nz; k++) {
            T[i][j][k] = c * B[i][j][k] + 1.0;
        }
    }
}
__global__ void consume(double *A, const double *T, int nx, int ny, int nz) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if (i >= 1 && i < nx - 1 && j >= 1 && j < ny - 1) {
        for (int k = 0; k < nz; k++) {
            A[i][j][k] = T[i + 1][j][k] + T[i - 1][j][k] + T[i][j + 1][k] + T[i][j - 1][k];
        }
    }
}
int main() {
    int nx = 32;
    int ny = 32;
    int nz = 4;
    double *A = cudaMalloc3D(nx, ny, nz);
    double *T = cudaMalloc3D(nx, ny, nz);
    double *B = cudaMalloc3D(nx, ny, nz);
    deviceRandom(B, 7);
    deviceRandom(T, 9);
    dim3 grid(4, 4, 1);
    dim3 block(8, 8, 1);
    produce<<<grid, block>>>(T, B, nx, ny, nz, 0.5);
    consume<<<grid, block>>>(A, T, nx, ny, nz);
    return 0;
}
"""

THREE_KERNEL_SRC = """
__global__ void k1(double *A, const double *B, int nx, int ny, int nz) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if (i >= 1 && i < nx - 1 && j >= 1 && j < ny - 1) {
        for (int k = 0; k < nz; k++) {
            A[i][j][k] = 0.25 * (B[i + 1][j][k] + B[i - 1][j][k] + B[i][j + 1][k] + B[i][j - 1][k]);
        }
    }
}
__global__ void k2(double *C, const double *B, int nx, int ny, int nz) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < nx && j < ny) {
        for (int k = 0; k < nz; k++) {
            C[i][j][k] = B[i][j][k] * 2.0;
        }
    }
}
__global__ void k3(double *D, const double *A, const double *C, int nx, int ny, int nz) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < nx && j < ny) {
        for (int k = 0; k < nz; k++) {
            D[i][j][k] = A[i][j][k] + C[i][j][k];
        }
    }
}
int main() {
    int nx = 32;
    int ny = 32;
    int nz = 8;
    double *A = cudaMalloc3D(nx, ny, nz);
    double *B = cudaMalloc3D(nx, ny, nz);
    double *C = cudaMalloc3D(nx, ny, nz);
    double *D = cudaMalloc3D(nx, ny, nz);
    deviceRandom(B, 7);
    dim3 grid(4, 4, 1);
    dim3 block(8, 8, 1);
    k1<<<grid, block>>>(A, B, nx, ny, nz);
    k2<<<grid, block>>>(C, B, nx, ny, nz);
    k3<<<grid, block>>>(D, A, C, nx, ny, nz);
    return 0;
}
"""

SEPARABLE_SRC = """
__global__ void big(double *R, double *W, const double *S, const double *V, const double *T, const double *U, int n, double c) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= 1 && i < n - 1) {
        double a = c * 2.0;
        R[i] = S[i + 1] + a * S[i - 1];
        W[i] = V[i] * a + T[i];
        R[i] += U[i];
    }
}
int main() {
    int n = 128;
    double *R = cudaMalloc1D(n);
    double *W = cudaMalloc1D(n);
    double *S = cudaMalloc1D(n);
    double *V = cudaMalloc1D(n);
    double *T = cudaMalloc1D(n);
    double *U = cudaMalloc1D(n);
    deviceRandom(S, 1);
    deviceRandom(V, 2);
    deviceRandom(T, 3);
    deviceRandom(U, 4);
    dim3 grid(2, 1, 1);
    dim3 block(64, 1, 1);
    big<<<grid, block>>>(R, W, S, V, T, U, n, 0.5);
    return 0;
}
"""


@pytest.fixture
def diffuse_program():
    return parse_program(DIFFUSE_SRC)


@pytest.fixture
def chain_program():
    return parse_program(CHAIN_SRC)


@pytest.fixture
def three_kernel_program():
    return parse_program(THREE_KERNEL_SRC)


@pytest.fixture
def separable_program():
    return parse_program(SEPARABLE_SRC)


@pytest.fixture
def k20x():
    return K20X


@pytest.fixture
def k40():
    return K40


@pytest.fixture
def testing_device():
    return TESTING

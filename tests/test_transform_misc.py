"""Tests for kernel_model extraction, block tuning, host rewrite, builders."""

import pytest

from repro.cudalite import ast_nodes as ast
from repro.cudalite import builders as b
from repro.cudalite import parse_program, unparse
from repro.cudalite.parser import parse_expr, parse_kernel
from repro.errors import TransformError
from repro.gpu.device import K20X
from repro.transform import (
    NewLaunch,
    assemble_program,
    extract_model,
    rename_expr,
    rename_stmt,
    rewrite_host,
    substitute_expr,
    tune_kernel_block,
)
from repro.transform.blocksize import smem_per_thread


# ------------------------------------------------------------- kernel model


def test_extract_model_canonical(diffuse_program):
    model = extract_model(diffuse_program.kernel("diffuse"))
    assert model is not None
    assert model.index_vars == {"x": "i", "y": "j"}
    assert model.guard is not None
    assert model.k_loop is not None
    assert not model.has_deep_loops


def test_extract_model_deep_loops():
    kernel = parse_kernel(
        "__global__ void k(double *A, const double *B, int nx, int nz) {"
        " int i = blockIdx.x * blockDim.x + threadIdx.x;"
        " if (i < nx) {"
        "   for (int k = 0; k < nz; k++) {"
        "     for (int m = 0; m < 4; m++) { A[i] += B[i] * 1.0; }"
        "   } } }"
    )
    model = extract_model(kernel)
    assert model is not None
    assert model.has_deep_loops


def test_extract_model_unguarded():
    kernel = parse_kernel(
        "__global__ void k(double *A, int n) {"
        " int i = blockIdx.x * blockDim.x + threadIdx.x;"
        " A[i] = 1.0; }"
    )
    model = extract_model(kernel)
    assert model is not None
    assert model.guard is None


def test_extract_model_rejects_while():
    kernel = parse_kernel(
        "__global__ void k(double *A, int n) {"
        " while (n > 0) { A[0] = 1.0; n = n - 1; } }"
    )
    assert extract_model(kernel) is None


def test_extract_model_rejects_preexisting_shared():
    kernel = parse_kernel(
        "__global__ void k(double *A, int n) {"
        " __shared__ double t[8];"
        " int i = threadIdx.x; t[i] = 1.0; A[i] = t[i]; }"
    )
    assert extract_model(kernel) is None


def test_rename_expr():
    expr = parse_expr("A[i + 1] * c + foo(i)")
    renamed = rename_expr(expr, {"i": "ii", "A": "AA", "c": "cc"})
    from repro.cudalite.unparser import unparse_expr

    assert unparse_expr(renamed) == "AA[ii + 1] * cc + foo(ii)"


def test_rename_stmt_renames_declarations():
    kernel = parse_kernel(
        "__global__ void k(double *A, int n) { double t = 1.0; A[0] = t; }"
    )
    renamed = rename_stmt(kernel.body.stmts[0], {"t": "t_k0"})
    assert renamed.name == "t_k0"


def test_substitute_expr():
    expr = parse_expr("i + j * 2")
    out = substitute_expr(expr, {"i": parse_expr("gx - 1")})
    from repro.cudalite.unparser import unparse_expr

    assert unparse_expr(out) == "gx - 1 + j * 2"


# --------------------------------------------------------------- block tuning


def test_tune_kernel_block_improves_small_block():
    decision = tune_kernel_block(K20X, "k", (16, 4, 1), 0, 32)
    assert decision.occupancy_after > decision.occupancy_before
    assert decision.changed


def test_tune_kernel_block_keeps_good_config():
    decision = tune_kernel_block(K20X, "k", (32, 8, 1), 0, 32)
    assert not decision.changed
    assert decision.tuned_block == (32, 8, 1)


def test_smem_per_thread():
    assert smem_per_thread(2560, (32, 8, 1)) == pytest.approx(10.0)


# ----------------------------------------------------------------- host code


def test_rewrite_host_replaces_launches(three_kernel_program):
    new = [
        NewLaunch("K_00", (4, 4, 1), (8, 8, 1), (ast.Ident("A"), ast.Ident("B"))),
    ]
    main = rewrite_host(three_kernel_program.main(), new)
    launches = [s for s in main.body.walk() if isinstance(s, ast.Launch)]
    assert len(launches) == 1
    assert launches[0].kernel == "K_00"
    # allocations survive
    text = unparse(main)
    assert "cudaMalloc3D" in text


def test_rewrite_host_requires_a_launch():
    host = parse_program("int main() { int n = 4; return 0; }").main()
    with pytest.raises(TransformError):
        rewrite_host(host, [NewLaunch("K", (1, 1, 1), (1, 1, 1), ())])


def test_assemble_program_validates_kernels(three_kernel_program):
    with pytest.raises(TransformError, match="undefined"):
        assemble_program(
            three_kernel_program,
            [],
            [NewLaunch("ghost", (1, 1, 1), (8, 1, 1), ())],
        )


def test_assemble_program_launch_order(three_kernel_program):
    k1 = three_kernel_program.kernel("k1")
    launches = [
        NewLaunch("k1", (4, 4, 1), (8, 8, 1),
                  tuple(ast.Ident(a) for a in ("A", "B"))
                  + (ast.IntLit(32), ast.IntLit(32), ast.IntLit(8))),
        NewLaunch("k1", (2, 2, 1), (8, 8, 1),
                  tuple(ast.Ident(a) for a in ("A", "B"))
                  + (ast.IntLit(16), ast.IntLit(16), ast.IntLit(8))),
    ]
    program = assemble_program(three_kernel_program, [k1], launches)
    emitted = [s for s in program.main().body.walk() if isinstance(s, ast.Launch)]
    assert len(emitted) == 2
    assert emitted[0].grid == ast.Call("dim3", (ast.IntLit(4), ast.IntLit(4), ast.IntLit(1)))


# ------------------------------------------------------------------ builders


def test_builders_constant_folding():
    assert b.add(1, 2) == ast.IntLit(3)
    assert b.add("i", 0) == ast.Ident("i")
    assert b.add("i", -2) == ast.Binary("-", ast.Ident("i"), ast.IntLit(2))
    assert b.mul(1, "x") == ast.Ident("x")
    assert b.sub("i", 0) == ast.Ident("i")


def test_builders_logical_and():
    cond = b.logical_and(b.lt("i", "n"), b.ge("j", 1))
    assert cond.op == "&&"
    assert b.logical_and() == ast.BoolLit(True)


def test_builders_global_index_matches_analysis():
    from repro.analysis.accesses import _match_global_index

    assert _match_global_index(b.global_index("x")) == "x"
    assert _match_global_index(b.global_index("z")) == "z"


def test_builders_program_executes():
    from repro.gpu.interpreter import run_program
    import numpy as np

    kernel = b.kernel(
        "fill",
        [b.param("double", "A", pointer=True), b.param("int", "n")],
        [
            b.decl("int", "i", b.global_index("x")),
            b.if_(b.lt("i", "n"), [b.assign(b.idx("A", "i"), 4.5)]),
        ],
    )
    main = b.host_main(
        [
            b.decl("int", "n", 32),
            ast.VarDecl(
                ast.TypeSpec("double", is_pointer=True),
                "A",
                b.call("cudaMalloc1D", "n"),
            ),
            b.launch("fill", (1, 1, 1), (32, 1, 1), ["A", "n"]),
            ast.Return(ast.IntLit(0)),
        ]
    )
    result = run_program(b.program([kernel, main]))
    assert np.all(result.arrays["A"] == 4.5)

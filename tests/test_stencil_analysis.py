"""Stencil-classification and roofline tests."""

import pytest

from repro.analysis.roofline import attainable_gflops, classify, ridge_point
from repro.analysis.stencil import analyze_stencil, classify_offsets
from repro.cudalite.parser import parse_kernel
from repro.gpu.device import K20X


def test_classify_point():
    shape = classify_offsets({(0, 0, 0)})
    assert shape.kind == "point"
    assert shape.radius == 0


def test_classify_star_5pt():
    offsets = {(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)}
    shape = classify_offsets(offsets)
    assert shape.kind == "star"
    assert shape.points == 5
    assert shape.radius == 1
    assert shape.label == "star-5pt-r1"


def test_classify_box_9pt():
    offsets = {(dx, dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1)}
    shape = classify_offsets(offsets)
    assert shape.kind == "box"
    assert shape.points == 9


def test_classify_wide_star():
    offsets = {(0, 0), (2, 0), (-2, 0)}
    shape = classify_offsets(offsets)
    assert shape.radius == 2
    assert shape.kind == "star"


def test_analyze_stencil_kernel():
    kernel = parse_kernel(
        "__global__ void k(double *A, const double *B, int nx, int ny, int nz) {"
        " int i = blockIdx.x * blockDim.x + threadIdx.x;"
        " int j = blockIdx.y * blockDim.y + threadIdx.y;"
        " if (i >= 1 && i < nx - 1 && j >= 1 && j < ny - 1) {"
        "   for (int k = 0; k < nz; k++) {"
        "     A[i][j][k] = B[i + 1][j][k] + B[i - 1][j][k] + B[i][j + 1][k] + B[i][j - 1][k] + B[i][j][k];"
        "   } } }"
    )
    info = analyze_stencil(kernel)
    assert info.is_stencil
    assert info.max_radius == 1
    assert info.loop_depth == 1
    by_name = {s.array: s for s in info.stencils}
    assert by_name["B"].shape.label == "star-5pt-r1"
    assert by_name["A"].shape.kind == "point"


def test_constant_loop_size_detected():
    kernel = parse_kernel(
        "__global__ void k(double *A, int n) {"
        " for (int m = 0; m < 7; m++) { A[m] = 1.0; } }"
    )
    info = analyze_stencil(kernel)
    assert info.loop_sizes["m"] == 7


def test_param_loop_size_is_none():
    kernel = parse_kernel(
        "__global__ void k(double *A, int n) {"
        " for (int m = 0; m < n; m++) { A[m] = 1.0; } }"
    )
    info = analyze_stencil(kernel)
    assert info.loop_sizes["m"] is None


def test_irregular_marks_kernel():
    kernel = parse_kernel(
        "__global__ void k(double *A, const double *B, int n) {"
        " int i = threadIdx.x; A[i] = B[i * 3]; }"
    )
    info = analyze_stencil(kernel)
    assert info.irregular


# --------------------------------------------------------------------- roofline


def test_ridge_point_k20x():
    assert ridge_point(K20X) == pytest.approx(1310.0 / 250.0)


def test_memory_bound_classification():
    point = classify("k", flops=1e6, bytes_moved=1e6, device=K20X)
    assert point.bound == "memory"
    assert not point.is_compute_bound


def test_compute_bound_classification():
    point = classify("k", flops=1e8, bytes_moved=1e6, device=K20X)
    assert point.bound == "compute"


def test_zero_bytes_is_compute_bound():
    point = classify("k", flops=10.0, bytes_moved=0.0, device=K20X)
    assert point.is_compute_bound


def test_attainable_gflops_ceiling():
    assert attainable_gflops(1000.0, K20X) == K20X.peak_gflops_dp
    low = attainable_gflops(1.0, K20X)
    assert low == pytest.approx(K20X.peak_bandwidth_gbs)

"""The ``repro-obs`` CLI: list/show/diff/regress/report (PR 8).

Exercises the acceptance criteria of the observability PR end to end
against a crafted ledger: a clean repeat exits 0, an injected slowdown
exits 3, ``diff`` surfaces per-namespace store traffic and stage deltas,
and bench mode gates committed ``BENCH_*.json`` floors.
"""

import json

import pytest

from repro.observability.cli import (
    EXIT_ERROR,
    EXIT_OK,
    EXIT_REGRESSION,
    main,
)
from repro.observability.ledger import append_record, build_transform_record
from repro.store.artifact_store import ArtifactStore


@pytest.fixture
def root(tmp_path):
    return tmp_path / "store"


def _append(root, *, app="Fluam", when, search=1.0, codegen=0.5,
            speedup=1.4, exit_code=0, hits=4, misses=1, seed=1):
    record = build_transform_record(
        source=f"app:{app}",
        config={"seed": seed, "mode": "automated"},
        seed=seed,
        stage_times={"search": search, "codegen": codegen},
        speedup=speedup,
        verified=True,
        demotions=0,
        exit_code=exit_code,
        reused={},
        store_stats={
            "hits": hits, "misses": misses,
            "hit_rate": hits / max(1, hits + misses),
            "namespaces": {
                "search": {"hits": hits, "misses": misses, "writes": 1,
                           "bytes_read": 512, "bytes_written": 256},
            },
        },
        counters={"pipeline_stage_runs_total": 5.0},
        trace={"span_count": 2,
               "critical_path": [{"name": "stage:search",
                                  "duration_ms": search * 1000.0}],
               "self_time_ms": {"stage:search": search * 1000.0}},
    )
    record["unix_time"] = when
    return append_record(ArtifactStore(root), record)


# -------------------------------------------------------------------- list


def test_list_newest_first(root, capsys):
    a = _append(root, when=1.0)
    b = _append(root, when=2.0)
    assert main(["--store", str(root), "list"]) == EXIT_OK
    out = capsys.readouterr().out
    assert out.index(b[:10]) < out.index(a[:10])


def test_list_empty_ledger(root, capsys):
    assert main(["--store", str(root), "list"]) == EXIT_OK
    assert "no records" in capsys.readouterr().err


# -------------------------------------------------------------------- show


def test_show_latest_prints_record_and_critical_path(root, capsys):
    _append(root, when=1.0)
    assert main(["--store", str(root), "show"]) == EXIT_OK
    out = capsys.readouterr().out
    assert '"kind": "transform"' in out
    assert "critical path:" in out
    assert "stage:search" in out


def test_show_unknown_run_is_an_error(root, capsys):
    _append(root, when=1.0)
    assert main(["--store", str(root), "show", "feedfeed"]) == EXIT_ERROR
    assert "no ledger record matches" in capsys.readouterr().err


def test_show_trace_waterfall(root, tmp_path, capsys):
    trace = {
        "traceEvents": [
            {"name": "stage:search", "ph": "X", "pid": 1, "tid": 1,
             "ts": 0.0, "dur": 1000.0,
             "args": {"span_id": 1, "parent_id": None}},
        ]
    }
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(trace))
    assert main(["show", "--trace", str(path)]) == EXIT_OK
    assert "stage:search" in capsys.readouterr().out


# -------------------------------------------------------------------- diff


def test_diff_shows_stage_deltas_and_store_traffic(root, capsys):
    _append(root, when=1.0, search=1.0, hits=2)
    _append(root, when=2.0, search=1.5, hits=9)
    assert main(["--store", str(root), "diff"]) == EXIT_OK
    out = capsys.readouterr().out
    assert "stage wall time:" in out
    assert "+0.500" in out  # search slowdown a -> b
    assert "store traffic by namespace" in out
    assert "hits     2 -> 9" in out


# ------------------------------------------------------------------ regress


def test_regress_ok_on_clean_repeat(root, capsys):
    _append(root, when=1.0)
    _append(root, when=2.0)
    assert main(["--store", str(root), "regress"]) == EXIT_OK
    assert "no regression detected" in capsys.readouterr().out


def test_regress_fires_on_injected_slowdown(root, capsys):
    _append(root, when=1.0, search=1.0, codegen=0.5)
    _append(root, when=2.0, search=3.0, codegen=1.5)
    assert main(["--store", str(root), "regress"]) == EXIT_REGRESSION
    captured = capsys.readouterr()
    assert "REGRESSED" in captured.out
    assert "REGRESSION" in captured.err


def test_regress_respects_threshold(root):
    _append(root, when=1.0, search=1.0)
    _append(root, when=2.0, search=3.0)
    args = ["--store", str(root), "regress", "--threshold", "4.0"]
    assert main(args) == EXIT_OK


def test_regress_min_seconds_ignores_tiny_deltas(root):
    # 3x ratio but only 3ms absolute: below the 50ms floor
    _append(root, when=1.0, search=0.001, codegen=0.001)
    _append(root, when=2.0, search=0.003, codegen=0.003)
    assert main(["--store", str(root), "regress"]) == EXIT_OK


def test_regress_first_run_has_no_baseline(root, capsys):
    _append(root, when=1.0)
    assert main(["--store", str(root), "regress"]) == EXIT_OK
    assert "no baseline in the ledger yet" in capsys.readouterr().out


def test_regress_skips_failed_baselines(root):
    _append(root, when=1.0, search=1.0)
    _append(root, when=2.0, search=0.1, exit_code=2)  # crashed: not a baseline
    _append(root, when=3.0, search=1.1)
    assert main(["--store", str(root), "regress"]) == EXIT_OK


def test_regress_app_filter(root, capsys):
    _append(root, when=1.0, app="Mini", seed=2, search=1.0)
    _append(root, when=2.0, app="Fluam", search=9.0)
    _append(root, when=3.0, app="Mini", seed=2, search=1.0)
    args = ["--store", str(root), "regress", "--app", "Mini"]
    assert main(args) == EXIT_OK


# --------------------------------------------------------------- bench mode


def _bench(tmp_path, name, total_ms):
    path = tmp_path / name
    path.write_text(json.dumps({
        "suite": {"pipeline": {"total_ms": total_ms, "runs": 3}},
    }))
    return str(path)


def test_regress_bench_mode_gates_floors(root, tmp_path, capsys):
    baseline = _bench(tmp_path, "BENCH_base.json", 100.0)
    slow = _bench(tmp_path, "fresh_slow.json", 200.0)
    args = ["regress", "--bench-baseline", baseline,
            "--bench-current", slow]
    assert main(args) == EXIT_REGRESSION
    assert "total_ms" in capsys.readouterr().out

    fine = _bench(tmp_path, "fresh_ok.json", 110.0)
    args = ["regress", "--bench-baseline", baseline,
            "--bench-current", fine]
    assert main(args) == EXIT_OK


def test_regress_bench_mode_needs_both_files(tmp_path, capsys):
    baseline = _bench(tmp_path, "BENCH_base.json", 100.0)
    args = ["regress", "--bench-baseline", baseline]
    assert main(args) == EXIT_ERROR
    assert "needs both" in capsys.readouterr().err


def test_regress_bench_missing_file_is_an_error(tmp_path, capsys):
    baseline = _bench(tmp_path, "BENCH_base.json", 100.0)
    args = ["regress", "--bench-baseline", baseline,
            "--bench-current", str(tmp_path / "absent.json")]
    assert main(args) == EXIT_ERROR


# ------------------------------------------------------------------- report


def test_report_writes_html_with_history(root, tmp_path, capsys):
    _append(root, when=1.0)
    workdir = tmp_path / "work"
    workdir.mkdir()
    (workdir / "run.json").write_text(json.dumps({
        "schema": "repro.run/1", "source": "app:Fluam",
        "config": {}, "env": {"knobs": {}},
        "stage_wall_time_s": {"search": 1.0}, "reports": {}, "exit_code": 0,
    }))
    out = tmp_path / "report.html"
    args = ["--store", str(root), "report", str(workdir), "-o", str(out)]
    assert main(args) == EXIT_OK
    html = out.read_text()
    assert html.lstrip().startswith("<!DOCTYPE html>" ) or "<html" in html
    assert "Fluam" in html


def test_report_missing_workdir_is_an_error(root, tmp_path, capsys):
    args = ["--store", str(root), "report", str(tmp_path / "absent")]
    assert main(args) == EXIT_ERROR
    assert "is not a directory" in capsys.readouterr().err

"""The delta-debugging reducer, crash triage and the campaign driver.

Contracts under test:

* :func:`repro.fuzz.reduce.reduce_program` shrinks a failing program
  while the predicate holds, never returns a non-failing program, and
  respects its attempt budget;
* :func:`repro.fuzz.triage.bucket_exception` is deterministic and built
  only from stable exception features (stage, type, innermost repro
  frame) — messages and line numbers don't split buckets;
* :func:`repro.fuzz.campaign.run_campaign` survives injected failures,
  records them bucketed, writes reproducers, and its report passes the
  structural consistency rules ``scripts/check_fuzz_report.py`` encodes.
"""

import json

import pytest

from repro.cudalite import parse_program, unparse
from repro.errors import ParseError, TransformError
from repro.fuzz import generate_app
from repro.fuzz.campaign import CampaignConfig, run_campaign
from repro.fuzz.reduce import program_size, reduce_program
from repro.fuzz.triage import (
    REPORT_SCHEMA,
    bucket_exception,
    build_report,
    crash_record,
    load_report,
    write_report,
)

# ------------------------------------------------------------------ reduce


def _has_kernel(program, prefix):
    return any(k.name.startswith(prefix) for k in program.kernels)


def test_reduce_drops_unrelated_kernels():
    app = generate_app(0)
    target = app.program.kernels[0].name
    reduced = reduce_program(
        app.program, lambda p: _has_kernel(p, target)
    )
    names = [k.name for k in reduced.kernels]
    assert names == [target]
    # the dropped kernels' launches are gone from main too
    source = unparse(reduced)
    for kernel in app.program.kernels[1:]:
        assert f"{kernel.name}<<<" not in source


def test_reduce_keeps_program_parseable_and_failing():
    app = generate_app(7)
    target = app.program.kernels[-1].name
    reduced = reduce_program(app.program, lambda p: _has_kernel(p, target))
    assert _has_kernel(reduced, target)
    source = unparse(reduced)
    assert unparse(parse_program(source)) == source


def test_reduce_shrinks_nz_and_loop_bounds():
    app = generate_app(0)
    reduced = reduce_program(app.program, lambda p: True)
    main_source = unparse(reduced)
    assert "int nz = 1;" in main_source


def test_reduce_deletes_statements():
    app = generate_app(0)
    reduced = reduce_program(app.program, lambda p: len(p.kernels) >= 1)
    assert program_size(reduced) < program_size(app.program)


def test_reduce_respects_attempt_budget():
    app = generate_app(0)
    calls = []

    def probe(_program):
        calls.append(1)
        return True

    reduce_program(app.program, probe, max_attempts=5)
    assert len(calls) <= 5


def test_reduce_predicate_exception_is_a_rejection():
    app = generate_app(0)

    def flaky(_program):
        raise RuntimeError("probe blew up")

    reduced = reduce_program(app.program, flaky, max_attempts=10)
    # nothing was accepted, so the input comes back unchanged
    assert unparse(reduced) == unparse(app.program)


# ------------------------------------------------------------------ triage


def _raise_and_bucket(exc_factory):
    try:
        exc_factory()
    except BaseException as exc:  # noqa: BLE001
        return bucket_exception(exc)
    raise AssertionError("factory did not raise")


def test_bucket_is_deterministic():
    first = _raise_and_bucket(lambda: parse_program("int main( {"))
    second = _raise_and_bucket(lambda: parse_program("int main( {"))
    assert first == second
    assert first.key == second.key


def test_bucket_ignores_message_text():
    one = _raise_and_bucket(lambda: parse_program("int main( {"))
    two = _raise_and_bucket(lambda: parse_program("int other( {"))
    assert one.key == two.key  # same defect class, different message


def test_bucket_uses_innermost_repro_frame():
    bucket = _raise_and_bucket(lambda: parse_program("int main( {"))
    assert bucket.exc_type == "ParseError"
    assert bucket.frame.startswith("repro.cudalite.")
    assert bucket.key.count("|") == 2


def test_bucket_records_pipeline_stage():
    error = TransformError("boom")
    error.stage = "codegen"  # the framework sets this when a stage raises
    bucket = bucket_exception(error)
    assert bucket.stage == "codegen"
    # raised without a traceback: no repro frame to point at
    assert bucket.frame == "-"


def test_bucket_without_repro_frames_degrades():
    bucket = _raise_and_bucket(lambda: json.loads("nope"))
    assert bucket.stage == "-"
    assert bucket.frame == "-"
    assert bucket.exc_type == "JSONDecodeError"


def test_crash_record_shape():
    try:
        parse_program("int main( {")
    except ParseError as exc:
        record = crash_record(3, "oracles", exc)
    assert record["seed"] == 3
    assert record["where"] == "oracles"
    assert record["bucket"] == (
        f"{record['stage']}|{record['exc_type']}|{record['frame']}"
    )


def test_report_counts_buckets_and_unbucketed(tmp_path):
    crashes = [
        {"seed": 0, "bucket": "a|X|m:f"},
        {"seed": 1, "bucket": "a|X|m:f"},
        {"seed": 2, "bucket": ""},
    ]
    report = build_report({"seed_start": 0}, [], crashes, apps=3)
    assert report["schema"] == REPORT_SCHEMA
    assert report["summary"]["crashes"] == 3
    assert report["summary"]["unbucketed"] == 1
    assert report["summary"]["buckets"] == {"a|X|m:f": 2}
    path = tmp_path / "nested" / "fuzz_report.json"
    write_report(report, path)
    assert load_report(path)["summary"] == report["summary"]


# ---------------------------------------------------------------- campaign


def test_clean_campaign_report(tmp_path):
    report = run_campaign(
        CampaignConfig(seed_start=0, seed_end=2, out_dir=str(tmp_path))
    )
    summary = report["summary"]
    assert summary["apps"] == 3
    assert summary["failures"] == 0
    assert summary["crashes"] == 0
    assert summary["unbucketed"] == 0
    on_disk = load_report(tmp_path / "fuzz_report.json")
    assert on_disk["summary"] == summary
    assert on_disk["campaign"]["stopped_early"] is False


def test_campaign_buckets_generator_crashes(monkeypatch, tmp_path):
    import repro.fuzz.campaign as campaign_mod

    def broken_generate(seed, _spec=None):
        if seed == 1:
            raise ValueError(f"generator defect on seed {seed}")
        return generate_app(seed)

    monkeypatch.setattr(campaign_mod, "generate_app", broken_generate)
    report = run_campaign(
        CampaignConfig(seed_start=0, seed_end=2, out_dir=str(tmp_path))
    )
    summary = report["summary"]
    assert summary["apps"] == 3  # the campaign kept going
    assert summary["crashes"] == 1
    assert summary["unbucketed"] == 0
    crash = report["crashes"][0]
    assert crash["seed"] == 1 and crash["where"] == "generate"
    assert crash["bucket"] in summary["buckets"]


def test_campaign_records_and_reduces_oracle_failures(monkeypatch, tmp_path):
    import repro.fuzz.campaign as campaign_mod
    from repro.fuzz.oracles import OracleFailure, OracleVerdict

    def failing_oracles(app_or_program, _oracles, _config):
        name = getattr(app_or_program, "name", "<program>")
        # "fails" whenever the program still has at least one kernel, so
        # the reducer can shrink all the way down to a single kernel
        program = getattr(app_or_program, "program", app_or_program)
        failures = ()
        if len(program.kernels) >= 1:
            failures = (
                OracleFailure("modes", "array-mismatch:batched", "synthetic"),
            )
        return OracleVerdict(app=name, passed=(), failures=failures)

    monkeypatch.setattr(campaign_mod, "run_oracles", failing_oracles)
    report = run_campaign(
        CampaignConfig(
            seed_start=4,
            seed_end=4,
            out_dir=str(tmp_path),
            reduce_attempts=40,
        )
    )
    assert report["summary"]["failures"] == 1
    record = report["failures"][0]
    assert record["oracle"] == "modes"
    assert record["kind"] == "array-mismatch:batched"
    repro_files = list(tmp_path.glob("repro-seed*.json"))
    assert len(repro_files) == 1
    entry = json.loads(repro_files[0].read_text())
    assert entry["schema"] == "repro.fuzz.corpus/1"
    assert entry["kind"] == "array-mismatch:batched"
    # the reducer shrank the reproducer and it still parses
    assert entry["reduced_size"] < entry["original_size"]
    parse_program(entry["source"])


def test_campaign_budget_stops_between_seeds(monkeypatch):
    import repro.fuzz.campaign as campaign_mod

    # every monotonic() call advances the fake clock 100s, so with a
    # 150s budget the campaign runs exactly one seed then stops; the
    # monotonically increasing fake is robust to extra clock reads from
    # inside the oracle battery
    clock = [0.0]

    def fake_monotonic():
        clock[0] += 100.0
        return clock[0]

    monkeypatch.setattr(campaign_mod.time, "monotonic", fake_monotonic)
    report = run_campaign(
        CampaignConfig(seed_start=0, seed_end=9, budget=150.0, reduce=False)
    )
    assert report["campaign"]["stopped_early"] is True
    assert 1 <= report["summary"]["apps"] < 10


def test_campaign_rejects_empty_seed_range():
    with pytest.raises(ValueError):
        run_campaign(CampaignConfig(seed_start=5, seed_end=4))

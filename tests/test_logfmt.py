"""Structured JSON logging with trace/span correlation (PR 8)."""

import json
import logging

import pytest

from repro.observability import telemetry
from repro.observability.logfmt import (
    ENV_LOG_FORMAT,
    JsonLogFormatter,
    configure_logging,
    log_format_from_env,
)
from repro.observability.tracing import get_tracer, reset_tracer, span


@pytest.fixture(autouse=True)
def _fresh_tracer():
    reset_tracer()
    yield
    reset_tracer()


@pytest.fixture(autouse=True)
def _preserve_root_logging():
    root = logging.getLogger()
    handlers, level = list(root.handlers), root.level
    yield
    root.handlers[:] = handlers
    root.setLevel(level)


def _format(record_args=None, **extra):
    record = logging.LogRecord(
        name="repro.pipeline.framework",
        level=logging.INFO,
        pathname=__file__,
        lineno=1,
        msg="stage %s complete",
        args=record_args or ("search",),
        exc_info=None,
    )
    for key, value in extra.items():
        setattr(record, key, value)
    return json.loads(JsonLogFormatter().format(record))


def test_formatter_emits_core_fields():
    tracer = get_tracer()  # materialize the process tracer first
    data = _format()
    assert data["level"] == "info"
    assert data["logger"] == "repro.pipeline.framework"
    assert data["message"] == "stage search complete"
    assert "ts" in data
    # correlation fields are always present, null outside any span
    assert data["trace_id"] == tracer.trace_id
    assert data["span_id"] is None


def test_formatter_forwards_extra_attributes():
    data = _format(stage="search", attempt=2)
    assert data["stage"] == "search"
    assert data["attempt"] == 2


def test_formatter_stringifies_unserializable_extras():
    data = _format(payload={1, 2})
    assert isinstance(data["payload"], str)
    assert "1" in data["payload"]


def test_formatter_renders_exceptions():
    try:
        raise ValueError("boom")
    except ValueError:
        record = logging.LogRecord(
            "t", logging.ERROR, __file__, 1, "failed", None,
            exc_info=__import__("sys").exc_info(),
        )
    data = json.loads(JsonLogFormatter().format(record))
    assert "boom" in data["exc"]
    assert "ValueError" in data["exc"]


def test_span_id_correlates_with_open_span():
    with telemetry(True):
        with span("stage:search"):
            data = _format()
            open_ids = {s for s in [data["span_id"]] if s is not None}
    assert open_ids  # inside a span the id is populated...
    spans = {s.span_id for s in get_tracer().spans()}
    assert open_ids <= spans  # ...and joins to the recorded trace


def test_log_format_from_env(monkeypatch):
    monkeypatch.delenv(ENV_LOG_FORMAT, raising=False)
    assert log_format_from_env() == "text"
    monkeypatch.setenv(ENV_LOG_FORMAT, "json")
    assert log_format_from_env() == "json"
    monkeypatch.setenv(ENV_LOG_FORMAT, "JSON ")
    assert log_format_from_env() == "json"
    monkeypatch.setenv(ENV_LOG_FORMAT, "yaml")
    assert log_format_from_env() == "text"


def test_configure_logging_swaps_formatter_idempotently(monkeypatch):
    monkeypatch.delenv(ENV_LOG_FORMAT, raising=False)
    configure_logging("info", "json")
    root = logging.getLogger()
    assert len(root.handlers) == 1
    assert isinstance(root.handlers[0].formatter, JsonLogFormatter)
    assert root.level == logging.INFO
    # re-invocation replaces, never stacks, handlers
    configure_logging("warning", "text")
    assert len(root.handlers) == 1
    assert not isinstance(root.handlers[0].formatter, JsonLogFormatter)
    assert root.level == logging.WARNING


def test_configure_logging_reads_env(monkeypatch):
    monkeypatch.setenv(ENV_LOG_FORMAT, "json")
    configure_logging("warning")
    assert isinstance(
        logging.getLogger().handlers[0].formatter, JsonLogFormatter
    )


def test_stage_records_carry_stage_and_trace_ids(capsys):
    """A framework-style record through a configured root logger."""
    configure_logging("info", "json")
    with telemetry(True):
        with span("stage:codegen"):
            logging.getLogger("repro.pipeline.framework").info(
                "running stage %s", "codegen", extra={"stage": "codegen"}
            )
    line = capsys.readouterr().err.strip().splitlines()[-1]
    data = json.loads(line)
    assert data["stage"] == "codegen"
    assert data["trace_id"] == get_tracer().trace_id
    assert data["span_id"] is not None

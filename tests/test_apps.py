"""Application-generator tests: structure matches Table 1, programs are
valid and deterministic."""

import pytest

from repro.apps import APP_NAMES, SPECS, build_app
from repro.apps.base import scaled_spec
from repro.cudalite import check_program, unparse, parse_program
from repro.gpu.interpreter import run_program, trace_launches


@pytest.mark.parametrize("name", APP_NAMES)
def test_apps_generate_valid_programs(name):
    app = build_app(name, scale=0.3)
    check_program(app.program)
    # round-trippable source
    assert parse_program(unparse(app.program)) == app.program


@pytest.mark.parametrize("name", APP_NAMES)
def test_apps_deterministic(name):
    a = build_app(name, scale=0.3)
    b = build_app(name, scale=0.3)
    assert unparse(a.program) == unparse(b.program)


@pytest.mark.parametrize("name", APP_NAMES)
def test_apps_execute(name):
    app = build_app(name, scale=0.25)
    result = run_program(app.program)
    assert len(result.launches) == len(app.program.kernels)


def test_full_scale_kernel_counts_match_table1():
    """Structural counts at full scale track Table 1 of the paper."""
    for name in APP_NAMES:
        app = build_app(name)
        spec = SPECS[name]
        kernels = len(app.program.kernels)
        trace = trace_launches(app.program)
        arrays = len(trace.arrays)
        assert abs(kernels - spec.paper_kernels) <= max(3, spec.paper_kernels // 8), (
            name, kernels, spec.paper_kernels,
        )
        assert abs(arrays - spec.paper_arrays) <= max(3, spec.paper_arrays // 6), (
            name, arrays, spec.paper_arrays,
        )


def test_scale_les_has_deep_loop_kernels():
    app = build_app("SCALE-LES", scale=0.5)
    assert len(app.deep_loop_kernels) >= 1


def test_fluam_has_latency_kernels():
    app = build_app("Fluam", scale=0.5)
    assert len(app.latency_kernels) >= 2
    names = {k.name for k in app.program.kernels}
    assert set(app.latency_kernels) <= names


def test_awp_kernels_are_fissionable():
    from repro.analysis.deps import is_fissionable

    app = build_app("AWP-ODC-GPU")
    stress = app.program.kernel("stress_update_a")
    assert is_fissionable(stress)


def test_bcalm_pole_chain_structure():
    """Pole kernels write intermediates the field updates consume."""
    from repro.analysis.accesses import collect_accesses

    app = build_app("B-CALM")
    poles = collect_accesses(app.program.kernel("pole_update_e"))
    e_update = collect_accesses(app.program.kernel("e_update"))
    assert poles.arrays_written & e_update.arrays_read


def test_scaled_spec_shrinks_domain():
    spec = SPECS["SCALE-LES"]
    small = scaled_spec(spec, 0.25)
    assert small.domain[0] < spec.domain[0]
    assert small.domain[0] % spec.block[0] == 0
    assert small.domain[2] == spec.domain[2]
    assert scaled_spec(spec, 1.0) == spec


def test_app_seeds_change_structure():
    a = build_app("SCALE-LES", scale=0.3)
    b = build_app("SCALE-LES", scale=0.3, seed=777)
    assert unparse(a.program) != unparse(b.program)

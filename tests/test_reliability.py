"""Fault injection, the degradation ladder and the verification gate.

Covers the reliability subsystem end to end: seam-spec parsing, fault-plan
determinism, precedence waves, direct ``verify_group`` verdicts, and — per
injectable seam — a full pipeline run asserting the affected group degrades
gracefully, the demotion lands in the stage report, and the final program
still verifies.
"""

import dataclasses
from types import SimpleNamespace

import pytest

from repro.cudalite import parse_program
from repro.errors import (
    AnalysisError,
    FaultInjectionError,
    OutOfBoundsError,
    ParseError,
    TransformError,
)
from repro.gpu.device import K20X
from repro.pipeline import Framework, PipelineConfig
from repro.pipeline.cli import main as cli_main
from repro.pipeline.stages import STAGE_FUNCTIONS
from repro.reliability import faults
from repro.reliability.degrade import LEVELS, DemotionRecord, fusion_waves
from repro.reliability.verify import (
    GroupVerdict,
    VerifyConfig,
    synthesize_inputs,
    verify_group,
)
from repro.search import fast_params
from repro.search.grouping import Grouping

from conftest import THREE_KERNEL_SRC


@pytest.fixture(autouse=True)
def clean_fault_state():
    faults.clear_plan()
    yield
    faults.clear_plan()


def small_params(seed=1):
    params = fast_params(seed=seed)
    params.population = 16
    params.generations = 15
    params.stall_generations = 6
    return params


def run_three_kernel(force_full_fusion=True, **config_kwargs):
    """Run the full pipeline on the three-kernel program.

    With ``force_full_fusion`` the search result is overridden with the
    one complex group ``{k1, k2, k3}`` so codegen deterministically walks
    the full ladder (complex → waves → singletons) under injection.
    """
    config = PipelineConfig(
        device=K20X, ga_params=small_params(), verify=True, **config_kwargs
    )
    framework = Framework(parse_program(THREE_KERNEL_SRC), config)
    if force_full_fusion:
        full = Grouping(
            split=frozenset(),
            groups=(frozenset({"k1@0", "k2@1", "k3@2"}),),
        )

        def force(state):
            state.search = dataclasses.replace(state.search, best=full)

        framework.intervene("search", force)
    state = framework.run()
    return framework, state


# --------------------------------------------------------- seam-spec parsing


def test_parse_seam_specs_defaults():
    specs = faults.parse_seam_specs("codegen")
    assert set(specs) == {"codegen"}
    assert specs["codegen"].probability == 1.0
    assert specs["codegen"].max_fires is None
    assert specs["codegen"].only_visit is None


def test_parse_seam_specs_modifiers():
    specs = faults.parse_seam_specs("parse:0.5, codegen:x2, analysis:@3")
    assert specs["parse"].probability == 0.5
    assert specs["codegen"].max_fires == 2
    assert specs["analysis"].only_visit == 3


def test_parse_seam_specs_combined_modifiers():
    specs = faults.parse_seam_specs("codegen:0.25:x2")
    assert specs["codegen"].probability == 0.25
    assert specs["codegen"].max_fires == 2


def test_parse_seam_specs_rejects_unknown_seam():
    with pytest.raises(FaultInjectionError, match="unknown fault seam"):
        faults.parse_seam_specs("warp_divergence")


@pytest.mark.parametrize("spec", ("parse:abc", "codegen:x", "parse:1.5"))
def test_parse_seam_specs_rejects_malformed_modifiers(spec):
    with pytest.raises(FaultInjectionError, match="malformed|unknown"):
        faults.parse_seam_specs(spec)


# ------------------------------------------------- canonical seam registry


def test_known_seams_is_the_canonical_registry():
    import repro.reliability as reliability

    assert reliability.KNOWN_SEAMS is faults.KNOWN_SEAMS
    assert faults.SEAMS is faults.KNOWN_SEAMS  # compat alias
    assert len(faults.KNOWN_SEAMS) == len(set(faults.KNOWN_SEAMS))
    for seam in ("parse", "analysis", "codegen", "interpreter", "store"):
        assert seam in faults.KNOWN_SEAMS


def test_programmatic_plan_rejects_typo_seam():
    # a typo'd seam must fail loudly at install time, not silently never fire
    with pytest.raises(FaultInjectionError, match="unknown fault seam"):
        faults.FaultPlan(
            seams={"codegne": faults.parse_seam_specs("codegen")["codegen"]}
        )


def test_check_rejects_typo_seam_even_without_a_plan():
    with pytest.raises(FaultInjectionError, match="unknown fault seam"):
        faults.check("codegne")


def test_poison_cache_value_rejects_typo_seam():
    with pytest.raises(FaultInjectionError, match="unknown fault seam"):
        faults.poison_cache_value("fitness_cahce")


# ------------------------------------------------------ fault-plan mechanics


def test_plan_fires_at_most_max_fires():
    plan = faults.FaultPlan(seams=faults.parse_seam_specs("codegen:x1"))
    fired = [plan.should_fire("codegen") for _ in range(6)]
    assert fired == [True, False, False, False, False, False]
    assert plan.counts()["codegen"] == (6, 1)


def test_plan_fires_on_designated_visit_only():
    plan = faults.FaultPlan(seams=faults.parse_seam_specs("parse:@3"))
    fired = [plan.should_fire("parse") for _ in range(5)]
    assert fired == [False, False, True, False, False]


def test_plan_probability_is_deterministic():
    draws = []
    for _ in range(2):
        plan = faults.FaultPlan(
            seams=faults.parse_seam_specs("analysis:0.5"), seed=7
        )
        draws.append([plan.should_fire("analysis") for _ in range(32)])
    assert draws[0] == draws[1]
    # a fair-ish coin: both outcomes occur in 32 draws
    assert any(draws[0]) and not all(draws[0])


def test_unconfigured_seam_never_fires():
    plan = faults.FaultPlan(seams=faults.parse_seam_specs("codegen"))
    assert not plan.should_fire("parse")
    assert "parse" not in plan.counts()


def test_plan_from_env():
    assert faults.plan_from_env({}) is None
    plan = faults.plan_from_env(
        {
            faults.ENV_FAULT_SEAMS: "codegen:x1",
            faults.ENV_FAULT_SEED: "42",
            faults.ENV_FAULT_HANG: "0.25",
        }
    )
    assert plan is not None
    assert plan.seed == 42
    assert plan.hang_seconds == 0.25
    assert "codegen" in plan.seams


def test_active_plan_lazily_reads_environment(monkeypatch):
    monkeypatch.setenv(faults.ENV_FAULT_SEAMS, "interpreter")
    faults.clear_plan()  # forget the cached env lookup
    plan = faults.active_plan()
    assert plan is not None and "interpreter" in plan.seams


def test_install_plan_overrides_environment(monkeypatch):
    monkeypatch.setenv(faults.ENV_FAULT_SEAMS, "interpreter")
    plan = faults.FaultPlan(seams=faults.parse_seam_specs("codegen"))
    faults.install_plan(plan)
    assert faults.active_plan() is plan


def test_check_is_a_noop_without_a_plan():
    faults.check("codegen", "no plan installed")


@pytest.mark.parametrize(
    "seam,exc_type",
    [
        ("parse", ParseError),
        ("analysis", AnalysisError),
        ("codegen", TransformError),
        ("interpreter", OutOfBoundsError),
    ],
)
def test_check_raises_canonical_error(seam, exc_type):
    faults.install_plan(faults.FaultPlan(seams=faults.parse_seam_specs(seam)))
    with pytest.raises(exc_type, match="injected"):
        faults.check(seam, "unit test")


def test_check_rejects_hook_only_seams():
    faults.install_plan(
        faults.FaultPlan(seams=faults.parse_seam_specs("fitness_cache"))
    )
    with pytest.raises(FaultInjectionError, match="dedicated hook"):
        faults.check("fitness_cache")


# --------------------------------------------------------- degradation ladder


def test_levels_ordered_strongest_first():
    assert LEVELS == ("complex", "simple", "none")


def test_demotion_record_describe():
    record = DemotionRecord(
        members=("k1@0", "k2@1"),
        from_level="complex",
        to_level="simple",
        cause="injected codegen fault",
    )
    assert record.describe() == (
        "[k1@0,k2@1] complex->simple: injected codegen fault"
    )


def test_fusion_waves_diamond():
    # 0 and 1 feed 2, 2 feeds 3: waves are {0,1}, {2}, {3}
    assert fusion_waves(4, [(0, 2), (1, 2), (2, 3)]) == [[0, 1], [2], [3]]


def test_fusion_waves_no_edges_single_wave():
    assert fusion_waves(3, []) == [[0, 1, 2]]


def test_fusion_waves_chain_is_all_singletons():
    assert fusion_waves(3, [(0, 1), (1, 2)]) == [[0], [1], [2]]


def test_fusion_waves_never_places_an_edge_inside_a_wave():
    edges = [(0, 3), (1, 3), (3, 4), (2, 4)]
    for wave in fusion_waves(5, edges):
        for producer, consumer in edges:
            assert not (producer in wave and consumer in wave)


# ------------------------------------------------------ verification gate


DOUBLE_SRC = """
__global__ void kd(double *C, const double *B, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { C[i] = B[i] * 2.0; }
}
__global__ void kt(double *C, const double *B, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { C[i] = B[i] * 3.0; }
}
__global__ void oob(double *C, const double *B, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { C[i] = B[i + 1]; }
}
"""

SHAPES = {"B": (16,), "C": (16,)}
GRID = (1, 1, 1)
BLOCK = (16, 1, 1)


def _binding(kernel):
    return SimpleNamespace(
        kernel=kernel,
        array_args=("C", "B"),
        scalar_values=(16.0,),
        grid=GRID,
        block=BLOCK,
    )


def _fused(kernel, members=("kd@0",)):
    return SimpleNamespace(
        kernel=kernel,
        pointer_args=("C", "B"),
        scalar_values=(16.0,),
        grid=GRID,
        block=BLOCK,
        constituents=members,
    )


@pytest.fixture
def gate_kernels():
    program = parse_program(DOUBLE_SRC + "int main() { return 0; }")
    return {k.name: k for k in program.kernels}


def test_verify_group_pass(gate_kernels):
    verdict = verify_group(
        _fused(gate_kernels["kd"]), [_binding(gate_kernels["kd"])], SHAPES
    )
    assert isinstance(verdict, GroupVerdict)
    assert verdict.passed and not verdict.failed
    assert verdict.members == ("kd@0",)


def test_verify_group_catches_wrong_codegen(gate_kernels):
    # the "fused" kernel triples where the constituent doubles
    verdict = verify_group(
        _fused(gate_kernels["kt"]), [_binding(gate_kernels["kd"])], SHAPES
    )
    assert verdict.failed
    assert "output mismatch on array 'C'" in verdict.cause
    assert "cells differ" in verdict.cause


def test_verify_group_missing_shape_is_inconclusive(gate_kernels):
    verdict = verify_group(
        _fused(gate_kernels["kd"]),
        [_binding(gate_kernels["kd"])],
        {"C": (16,)},  # no shape for B
    )
    assert verdict.status == "inconclusive"
    assert "no shape known" in verdict.cause and "B" in verdict.cause


def test_verify_group_broken_baseline_is_inconclusive(gate_kernels):
    # the constituents themselves cannot run: no evidence against fusion
    verdict = verify_group(
        _fused(gate_kernels["oob"]), [_binding(gate_kernels["oob"])], SHAPES
    )
    assert verdict.status == "inconclusive"
    assert "baseline execution failed" in verdict.cause


def test_verify_group_disabled_gate_passes(gate_kernels):
    verdict = verify_group(
        _fused(gate_kernels["kt"]),
        [_binding(gate_kernels["kd"])],
        SHAPES,
        config=VerifyConfig(enabled=False),
    )
    assert verdict.passed
    assert verdict.cause == "gate disabled"


def test_verify_group_is_deterministic(gate_kernels):
    first = verify_group(
        _fused(gate_kernels["kt"]), [_binding(gate_kernels["kd"])], SHAPES
    )
    second = verify_group(
        _fused(gate_kernels["kt"]), [_binding(gate_kernels["kd"])], SHAPES
    )
    assert first == second


def test_verify_group_interpreter_fault_fails_candidate(gate_kernels):
    faults.install_plan(
        faults.FaultPlan(seams=faults.parse_seam_specs("interpreter"))
    )
    verdict = verify_group(
        _fused(gate_kernels["kd"]), [_binding(gate_kernels["kd"])], SHAPES
    )
    # the fault fires in the fused launch only — the baseline stays clean,
    # so the verdict is a definite fail, not inconclusive
    assert verdict.failed
    assert "injected interpreter OOB fault" in verdict.cause


def test_synthesize_inputs_independent_of_order():
    import numpy as np

    forward = synthesize_inputs(["B", "C"], SHAPES, {}, seed=0)
    backward = synthesize_inputs(["C", "B"], SHAPES, {}, seed=0)
    for name in ("B", "C"):
        assert np.array_equal(forward[name], backward[name])
    differently_seeded = synthesize_inputs(["B"], SHAPES, {}, seed=1)
    assert not np.array_equal(forward["B"], differently_seeded["B"])


# ----------------------------------------- pipeline-level fault injection


def install(spec, **kwargs):
    faults.install_plan(
        faults.FaultPlan(seams=faults.parse_seam_specs(spec), **kwargs)
    )


def test_no_faults_no_demotions():
    _, state = run_three_kernel()
    assert state.verified is True
    assert state.transform.demotions == []
    assert state.transform.degraded_groups == []
    assert all(v.passed for v in state.transform.group_verdicts)
    assert state.speedup > 1.0


def test_codegen_fault_walks_the_whole_ladder():
    install("codegen")  # every fusion attempt fails
    framework, state = run_three_kernel()
    assert state.verified is True  # degraded program still correct
    transitions = [(d.from_level, d.to_level) for d in state.transform.demotions]
    assert ("complex", "simple") in transitions
    assert ("simple", "none") in transitions
    assert all(
        "injected codegen fault" in d.cause for d in state.transform.demotions
    )
    assert state.transform.degraded_groups  # nothing could be fused
    # every demotion is listed in the codegen stage report
    report = state.reports["codegen"]
    assert "demotions:" in report
    for demotion in state.transform.demotions:
        assert demotion.describe() in report
    assert "degraded groups" in framework.report()


def test_codegen_fault_on_first_attempt_degrades_to_waves():
    install("codegen:@1")  # only the complex attempt fails
    _, state = run_three_kernel()
    assert state.verified is True
    assert [
        (d.from_level, d.to_level) for d in state.transform.demotions
    ] == [("complex", "simple")]
    # the precedence waves were simple-fused successfully
    assert state.transform.new_kernel_count >= 1
    assert any(len(l.members) > 1 for l in state.transform.launches)
    assert not state.transform.degraded_groups


def test_parse_fault_demotes_and_recovers():
    install("parse:@1")  # first constituent re-parse fails
    _, state = run_three_kernel()
    assert state.verified is True
    assert state.transform.demotions
    assert any(
        "injected parse fault" in d.cause for d in state.transform.demotions
    )


def test_interpreter_fault_fails_gate_and_demotes():
    install("interpreter")  # every fused candidate run dies in the gate
    _, state = run_three_kernel()
    assert state.verified is True
    transitions = [(d.from_level, d.to_level) for d in state.transform.demotions]
    assert ("complex", "simple") in transitions
    assert ("simple", "none") in transitions
    assert any(
        "injected interpreter OOB fault" in d.cause
        for d in state.transform.demotions
    )
    # nothing that failed the gate reached the generated program
    assert all(len(l.members) == 1 for l in state.transform.launches)


def test_analysis_fault_falls_back_to_conservative_node():
    install("analysis:@1")
    _, state = run_three_kernel(force_full_fusion=False)
    assert state.verified is True
    assert len(state.built.analysis_failures) == 1
    node, cause = next(iter(state.built.analysis_failures.items()))
    assert "injected analysis fault" in cause
    assert "analyzed conservatively" in state.reports["search"]
    assert node in state.reports["search"]
    # the conservative node is fusion-ineligible, never part of a group
    for launch in state.transform.launches:
        if len(launch.members) > 1:
            assert node not in launch.members


def test_demotions_deterministic_across_runs():
    install("codegen")
    _, first = run_three_kernel()
    faults.clear_plan()
    install("codegen")
    _, second = run_three_kernel()
    assert first.transform.demotions == second.transform.demotions


# ------------------------------------------------------------ CLI behaviour


def test_cli_reports_parse_error_in_one_line(tmp_path, capsys):
    bad = tmp_path / "bad.cu"
    bad.write_text("__global__ void k(double *A { }")
    rc = cli_main([str(bad)])
    assert rc == 2
    err = capsys.readouterr().err
    assert err.startswith("repro-transform: ")
    assert "Error" in err
    assert "Traceback" not in err


def test_cli_names_the_failing_stage(tmp_path, capsys, monkeypatch):
    def explode(state):
        raise AnalysisError("synthetic stage failure")

    monkeypatch.setitem(STAGE_FUNCTIONS, "graphs", explode)
    src = tmp_path / "prog.cu"
    src.write_text(THREE_KERNEL_SRC)
    rc = cli_main([str(src)])
    assert rc == 2
    err = capsys.readouterr().err
    assert "repro-transform: AnalysisError [stage: graphs]:" in err
    assert "synthetic stage failure" in err


def test_cli_degrades_under_env_configured_faults(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv(faults.ENV_FAULT_SEAMS, "codegen")
    faults.clear_plan()  # let the CLI run pick the plan up from the env
    src = tmp_path / "prog.cu"
    src.write_text(THREE_KERNEL_SRC)
    out = tmp_path / "out.cu"
    rc = cli_main([str(src), "-o", str(out), "--seed", "1"])
    assert rc == 0  # graceful degradation, not an error
    captured = capsys.readouterr().out
    assert "demotions:" in captured
    assert "injected codegen fault" in captured
    assert out.exists()


def test_framework_tags_stage_on_escaping_errors(monkeypatch):
    def explode(state):
        raise AnalysisError("boom")

    monkeypatch.setitem(STAGE_FUNCTIONS, "metadata", explode)
    framework = Framework(
        parse_program(THREE_KERNEL_SRC),
        PipelineConfig(device=K20X, ga_params=small_params()),
    )
    with pytest.raises(AnalysisError) as excinfo:
        framework.run()
    assert excinfo.value.stage == "metadata"

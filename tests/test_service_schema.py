"""Property and validation tests for the ``repro.service/1`` wire schema."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ServiceError
from repro.service import (
    REJECTED_CONFIG_FIELDS,
    SERVICE_SCHEMA,
    TransformRequest,
    TransformResponse,
)

# ------------------------------------------------------------- strategies

_json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
)

_config_dicts = st.dictionaries(
    st.text(min_size=1, max_size=20).filter(
        lambda k: k not in REJECTED_CONFIG_FIELDS
    ),
    _json_scalars,
    max_size=6,
)

_requests = st.one_of(
    st.builds(
        TransformRequest,
        source=st.text(min_size=1, max_size=200),
        config=st.one_of(st.none(), _config_dicts),
        request_id=st.one_of(st.none(), st.text(max_size=40)),
    ),
    st.builds(
        TransformRequest,
        app=st.text(min_size=1, max_size=40),
        config=st.one_of(st.none(), _config_dicts),
        request_id=st.one_of(st.none(), st.text(max_size=40)),
    ),
)

_errors = st.fixed_dictionaries(
    {
        "type": st.text(min_size=1, max_size=30),
        "stage": st.one_of(st.none(), st.text(max_size=20)),
        "message": st.text(max_size=100),
    }
)

_responses = st.one_of(
    st.builds(
        TransformResponse,
        status=st.just("ok"),
        job_id=st.one_of(st.none(), st.text(max_size=40)),
        key=st.one_of(st.none(), st.text(max_size=64)),
        source=st.one_of(st.none(), st.text(max_size=200)),
        speedup=st.one_of(
            st.none(), st.floats(allow_nan=False, allow_infinity=False)
        ),
        verified=st.one_of(st.none(), st.booleans()),
        demotions=st.integers(min_value=0, max_value=100),
        reused=st.dictionaries(
            st.text(min_size=1, max_size=20), st.text(max_size=20), max_size=4
        ),
        wall_time_s=st.one_of(
            st.none(), st.floats(min_value=0, allow_nan=False, allow_infinity=False)
        ),
        worker_retries=st.integers(min_value=0, max_value=5),
    ),
    st.builds(
        TransformResponse,
        status=st.just("error"),
        job_id=st.one_of(st.none(), st.text(max_size=40)),
        key=st.one_of(st.none(), st.text(max_size=64)),
        error=_errors,
    ),
)


# ------------------------------------------------------------ round trips


@given(_requests)
def test_request_round_trips_losslessly(request):
    assert TransformRequest.from_json(request.to_json()) == request


@given(_responses)
def test_response_round_trips_losslessly(response):
    assert TransformResponse.from_json(response.to_json()) == response


@given(_responses)
def test_equal_responses_encode_to_equal_bytes(response):
    clone = TransformResponse.from_json(response.to_json())
    assert clone.to_json().encode() == response.to_json().encode()


@given(_requests)
def test_request_json_is_canonical(request):
    encoded = request.to_json()
    assert json.loads(encoded) == request.to_dict()
    assert encoded == json.dumps(
        request.to_dict(), sort_keys=True, separators=(",", ":")
    )


# -------------------------------------------------------------- rejection


def test_unknown_request_field_rejected():
    with pytest.raises(ServiceError, match="unknown request field"):
        TransformRequest.from_json('{"source": "x", "surprise": 1}')


def test_unknown_response_field_rejected():
    with pytest.raises(ServiceError, match="unknown response field"):
        TransformResponse.from_json('{"status": "ok", "bonus": true}')


def test_wrong_schema_tag_rejected():
    with pytest.raises(ServiceError, match="unsupported request schema"):
        TransformRequest.from_json(
            '{"source": "x", "schema": "repro.service/99"}'
        )


def test_malformed_json_rejected():
    with pytest.raises(ServiceError, match="not valid JSON"):
        TransformRequest.from_json("{nope")
    with pytest.raises(ServiceError, match="JSON object"):
        TransformRequest.from_json("[1, 2]")


def test_source_app_exclusivity():
    with pytest.raises(ServiceError, match="exactly one"):
        TransformRequest(source="x", app="Fluam")
    with pytest.raises(ServiceError, match="exactly one"):
        TransformRequest()


@pytest.mark.parametrize("name", REJECTED_CONFIG_FIELDS)
def test_policy_config_fields_rejected(name):
    with pytest.raises(ServiceError, match="not accepted over the wire"):
        TransformRequest(source="x", config={name: "/tmp/elsewhere"})


def test_error_response_requires_error_payload():
    with pytest.raises(ServiceError, match="must carry 'error'"):
        TransformResponse(status="error")
    with pytest.raises(ServiceError, match="'ok' or 'error'"):
        TransformResponse(status="maybe")


def test_schema_tag_default():
    request = TransformRequest(source="x")
    assert request.schema == SERVICE_SCHEMA
    assert json.loads(request.to_json())["schema"] == SERVICE_SCHEMA

"""Lexer unit tests."""

import pytest

from repro.cudalite.lexer import tokenize
from repro.cudalite.tokens import TokKind
from repro.errors import LexError


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


def test_empty_source_yields_only_eof():
    toks = tokenize("")
    assert len(toks) == 1
    assert toks[0].kind is TokKind.EOF


def test_identifier():
    toks = tokenize("alpha_1")
    assert toks[0].kind is TokKind.IDENT
    assert toks[0].text == "alpha_1"


def test_keyword_recognition():
    assert tokenize("__global__")[0].kind is TokKind.KEYWORD
    assert tokenize("double")[0].kind is TokKind.KEYWORD
    assert tokenize("doubled")[0].kind is TokKind.IDENT


def test_integer_literal():
    tok = tokenize("1234")[0]
    assert tok.kind is TokKind.INT
    assert tok.text == "1234"


def test_float_literals():
    assert tokenize("1.5")[0].kind is TokKind.FLOAT
    assert tokenize("0.25")[0].kind is TokKind.FLOAT
    assert tokenize("2.")[0].kind is TokKind.FLOAT
    assert tokenize("1e10")[0].kind is TokKind.FLOAT
    assert tokenize("1.5e-3")[0].kind is TokKind.FLOAT
    assert tokenize("3.0f")[0].kind is TokKind.FLOAT


def test_float_suffix_included_in_text():
    assert tokenize("3.0f")[0].text == "3.0f"


def test_integer_followed_by_dot_member_is_not_float():
    # "1.5" is float but "a.x" is member access
    toks = tokenize("a.x")
    assert [t.text for t in toks[:-1]] == ["a", ".", "x"]


def test_triple_angle_brackets():
    toks = texts("k<<<grid, block>>>()")
    assert "<<<" in toks and ">>>" in toks


def test_comparison_not_confused_with_launch():
    assert texts("a < b") == ["a", "<", "b"]
    assert texts("a <= b") == ["a", "<=", "b"]


def test_compound_operators():
    assert texts("a += 1; b -= 2; c *= 3; d /= 4;") == [
        "a", "+=", "1", ";", "b", "-=", "2", ";",
        "c", "*=", "3", ";", "d", "/=", "4", ";",
    ]


def test_increment_decrement():
    assert texts("i++; j--;") == ["i", "++", ";", "j", "--", ";"]


def test_logical_operators():
    assert texts("a && b || !c") == ["a", "&&", "b", "||", "!", "c"]


def test_line_comment_skipped():
    assert texts("a // comment here\nb") == ["a", "b"]


def test_block_comment_skipped():
    assert texts("a /* multi\nline */ b") == ["a", "b"]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("a /* never closed")


def test_line_and_column_tracking():
    toks = tokenize("a\n  b")
    assert (toks[0].line, toks[0].col) == (1, 1)
    assert (toks[1].line, toks[1].col) == (2, 3)


def test_unexpected_character_raises():
    with pytest.raises(LexError):
        tokenize("a $ b")


def test_lex_error_carries_position():
    try:
        tokenize("ok\n  $")
    except LexError as e:
        assert e.line == 2
        assert e.col == 3
    else:  # pragma: no cover
        pytest.fail("expected LexError")


def test_shared_keyword():
    toks = tokenize("__shared__ double tile[10][10];")
    assert toks[0].is_kw("__shared__")


def test_token_helpers():
    tok = tokenize("if")[0]
    assert tok.is_kw("if")
    assert not tok.is_kw("for")
    punct = tokenize(";")[0]
    assert punct.is_punct(";")
    assert not punct.is_punct(",")


def test_full_kernel_tokenizes():
    source = """
    __global__ void k(double *A, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) { A[i] = 1.0; }
    }
    """
    toks = tokenize(source)
    assert toks[-1].kind is TokKind.EOF
    assert len(toks) > 30

"""Interpreter tests: vectorized and per-block execution semantics."""

import numpy as np
import pytest

from repro.cudalite import parse_program
from repro.errors import InterpreterError, OutOfBoundsError
from repro.gpu.interpreter import (
    Dim3,
    outputs_allclose,
    run_program,
    trace_launches,
)


def run(source, **kw):
    return run_program(parse_program(source), **kw)


def wrap(kernel_src, body):
    return f"{kernel_src}\nint main() {{ {body} return 0; }}"


def test_diffuse_numerics(diffuse_program):
    result = run_program(diffuse_program)
    A, B = result.arrays["A"], result.arrays["B"]
    i, j, k = 5, 9, 3
    expected = 0.25 * (
        B[i + 1, j, k] + B[i - 1, j, k] + B[i, j + 1, k] + B[i, j - 1, k]
        - 4.0 * B[i, j, k]
    )
    assert np.isclose(A[i, j, k], expected)


def test_guard_keeps_boundary_untouched(diffuse_program):
    result = run_program(diffuse_program)
    A = result.arrays["A"]
    assert np.all(A[0, :, :] == 0.0)
    assert np.all(A[-1, :, :] == 0.0)
    assert np.all(A[:, 0, :] == 0.0)


def test_deviceRandom_is_seeded_deterministic(diffuse_program):
    r1 = run_program(diffuse_program)
    r2 = run_program(diffuse_program)
    assert np.array_equal(r1.arrays["B"], r2.arrays["B"])


def test_deviceFill():
    result = run(
        "int main() { int n = 16; double *A = cudaMalloc1D(n);"
        " deviceFill(A, 3.5); return 0; }"
    )
    assert np.all(result.arrays["A"] == 3.5)


def test_launch_record(diffuse_program):
    result = run_program(diffuse_program)
    assert len(result.launches) == 1
    record = result.launches[0]
    assert record.kernel == "diffuse"
    assert record.grid == Dim3(4, 4, 1)
    assert record.block == Dim3(8, 8, 1)
    assert record.array_args == ("A", "B")
    assert record.scalar_args == (32, 32, 8, 0.25)


def test_trace_launches_skips_execution(diffuse_program):
    result = trace_launches(diffuse_program)
    assert len(result.launches) == 1
    assert np.all(result.arrays["A"] == 0.0)  # kernel body never ran


def test_compound_assignment_on_array():
    result = run(wrap(
        "__global__ void k(double *A, int n) {"
        " int i = blockIdx.x * blockDim.x + threadIdx.x;"
        " if (i < n) { A[i] = 2.0; A[i] += 3.0; A[i] *= 2.0; } }",
        "int n = 64; double *A = cudaMalloc1D(n);"
        " k<<<dim3(1, 1, 1), dim3(64, 1, 1)>>>(A, n);",
    ))
    assert np.all(result.arrays["A"] == 10.0)


def test_c_integer_division_truncates():
    result = run(wrap(
        "__global__ void k(double *A, int n) {"
        " int i = blockIdx.x * blockDim.x + threadIdx.x;"
        " int h = i / 2; if (i < n) { A[i] = h * 1.0; } }",
        "int n = 8; double *A = cudaMalloc1D(n);"
        " k<<<dim3(1, 1, 1), dim3(8, 1, 1)>>>(A, n);",
    ))
    assert list(result.arrays["A"]) == [0, 0, 1, 1, 2, 2, 3, 3]


def test_modulo():
    result = run(wrap(
        "__global__ void k(double *A, int n) {"
        " int i = blockIdx.x * blockDim.x + threadIdx.x;"
        " if (i < n) { A[i] = i % 3; } }",
        "int n = 6; double *A = cudaMalloc1D(n);"
        " k<<<dim3(1, 1, 1), dim3(8, 1, 1)>>>(A, n);",
    ))
    assert list(result.arrays["A"]) == [0, 1, 2, 0, 1, 2]


def test_ternary_expression():
    result = run(wrap(
        "__global__ void k(double *A, int n) {"
        " int i = blockIdx.x * blockDim.x + threadIdx.x;"
        " if (i < n) { A[i] = i < 3 ? 1.0 : 2.0; } }",
        "int n = 6; double *A = cudaMalloc1D(n);"
        " k<<<dim3(1, 1, 1), dim3(8, 1, 1)>>>(A, n);",
    ))
    assert list(result.arrays["A"]) == [1, 1, 1, 2, 2, 2]


def test_math_intrinsics():
    result = run(wrap(
        "__global__ void k(double *A, int n) {"
        " int i = blockIdx.x * blockDim.x + threadIdx.x;"
        " if (i < n) { A[i] = sqrt(4.0) + max(1.0, 2.0) + fabs(-3.0); } }",
        "int n = 4; double *A = cudaMalloc1D(n);"
        " k<<<dim3(1, 1, 1), dim3(4, 1, 1)>>>(A, n);",
    ))
    assert np.allclose(result.arrays["A"], 7.0)


def test_else_branch_masked():
    result = run(wrap(
        "__global__ void k(double *A, int n) {"
        " int i = blockIdx.x * blockDim.x + threadIdx.x;"
        " if (i < 2) { A[i] = 1.0; } else { A[i] = 9.0; } }",
        "int n = 4; double *A = cudaMalloc1D(n);"
        " k<<<dim3(1, 1, 1), dim3(4, 1, 1)>>>(A, n);",
    ))
    assert list(result.arrays["A"]) == [1, 1, 9, 9]


def test_out_of_bounds_active_read_raises():
    with pytest.raises(OutOfBoundsError):
        run(wrap(
            "__global__ void k(double *A, int n) {"
            " int i = blockIdx.x * blockDim.x + threadIdx.x;"
            " if (i < n) { A[i] = A[i + 1]; } }",  # i == n-1 reads A[n]
            "int n = 8; double *A = cudaMalloc1D(n);"
            " k<<<dim3(1, 1, 1), dim3(8, 1, 1)>>>(A, n);",
        ))


def test_out_of_bounds_masked_read_is_safe():
    result = run(wrap(
        "__global__ void k(double *A, int n) {"
        " int i = blockIdx.x * blockDim.x + threadIdx.x;"
        " if (i < n - 1) { A[i] = A[i + 1] + 1.0; } }",
        "int n = 8; double *A = cudaMalloc1D(n);"
        " k<<<dim3(1, 1, 1), dim3(8, 1, 1)>>>(A, n);",
    ))
    assert result.arrays["A"][7] == 0.0


def test_sequential_loop_over_k(diffuse_program):
    result = run_program(diffuse_program)
    # every interior k plane was written
    A = result.arrays["A"]
    assert not np.all(A[1:-1, 1:-1, :] == 0.0)


def test_thread_dependent_loop_bound_rejected():
    with pytest.raises(InterpreterError, match="thread-invariant"):
        run(wrap(
            "__global__ void k(double *A, int n) {"
            " int i = blockIdx.x * blockDim.x + threadIdx.x;"
            " for (int m = 0; m < i; m++) { A[m] = 1.0; } }",
            "int n = 8; double *A = cudaMalloc1D(n);"
            " k<<<dim3(1, 1, 1), dim3(8, 1, 1)>>>(A, n);",
        ))


def test_shared_memory_tile_roundtrip():
    result = run(wrap(
        "__global__ void k(double *A, const double *B, int n) {"
        " __shared__ double t[8];"
        " int tx = threadIdx.x;"
        " int i = blockIdx.x * blockDim.x + tx;"
        " t[tx] = B[i];"
        " __syncthreads();"
        " A[i] = t[tx] * 2.0; }",
        "int n = 32; double *A = cudaMalloc1D(n); double *B = cudaMalloc1D(n);"
        " deviceRandom(B, 5);"
        " k<<<dim3(4, 1, 1), dim3(8, 1, 1)>>>(A, B, n);",
    ))
    assert np.allclose(result.arrays["A"], result.arrays["B"] * 2.0)


def test_shared_memory_is_block_scoped():
    """A tile holds only its own block's data: neighbour reads that fall
    outside the tile (no halo loaded) produce zeros, not other blocks'
    values."""
    result = run(wrap(
        "__global__ void k(double *A, const double *B, int n) {"
        " __shared__ double t[9];"
        " int tx = threadIdx.x;"
        " int i = blockIdx.x * blockDim.x + tx;"
        " t[tx] = B[i];"
        " __syncthreads();"
        " A[i] = t[tx + 1]; }",  # last thread of each block reads unset cell
        "int n = 16; double *A = cudaMalloc1D(n); double *B = cudaMalloc1D(n);"
        " deviceFill(B, 5.0);"
        " k<<<dim3(2, 1, 1), dim3(8, 1, 1)>>>(A, B, n);",
    ))
    A = result.arrays["A"]
    assert A[6] == 5.0
    assert A[7] == 0.0  # t[8] never loaded in block 0
    assert A[15] == 0.0


def test_block_order_reverse_same_result_for_race_free(diffuse_program):
    forward = run_program(diffuse_program)
    reverse = run_program(diffuse_program, block_order="reverse")
    assert outputs_allclose(forward, reverse)


def test_block_order_exposes_interblock_race():
    """A kernel whose blocks read neighbours that other blocks overwrite
    gives different answers under different block schedules."""
    source = wrap(
        "__global__ void k(double *A, int n) {"
        " int i = blockIdx.x * blockDim.x + threadIdx.x;"
        " if (i >= 1 && i < n - 1) { A[i] = A[i - 1] + 1.0; } }",
        "int n = 32; double *A = cudaMalloc1D(n); deviceFill(A, 1.0);"
        " k<<<dim3(4, 1, 1), dim3(8, 1, 1)>>>(A, n);",
    )
    program = parse_program(source)
    # force per-block mode by adding __shared__? not needed: vectorized mode
    # is deterministic; this test documents the per-block path instead
    shared_source = source.replace(
        "int i = blockIdx.x",
        "__shared__ double t[8]; int i = blockIdx.x",
    )
    fwd = run_program(parse_program(shared_source))
    rev = run_program(parse_program(shared_source), block_order="reverse")
    assert not outputs_allclose(fwd, rev)


def test_write_write_race_detection():
    with pytest.raises(InterpreterError, match="race"):
        run(wrap(
            "__global__ void k(double *A, int n) {"
            " int i = blockIdx.x * blockDim.x + threadIdx.x;"
            " if (i < n) { A[0] = i * 1.0; } }",
            "int n = 8; double *A = cudaMalloc1D(n);"
            " k<<<dim3(1, 1, 1), dim3(8, 1, 1)>>>(A, n);",
        ), detect_races=True)


def test_benign_same_value_writes_allowed():
    result = run(wrap(
        "__global__ void k(double *A, int n) {"
        " int i = blockIdx.x * blockDim.x + threadIdx.x;"
        " if (i < n) { A[0] = 7.0; } }",
        "int n = 8; double *A = cudaMalloc1D(n);"
        " k<<<dim3(1, 1, 1), dim3(8, 1, 1)>>>(A, n);",
    ), detect_races=True)
    assert result.arrays["A"][0] == 7.0


def test_host_for_loop():
    result = run(
        "__global__ void k(double *A, int n) {"
        " int i = blockIdx.x * blockDim.x + threadIdx.x;"
        " if (i < n) { A[i] += 1.0; } }\n"
        "int main() { int n = 8; double *A = cudaMalloc1D(n);"
        " for (int t = 0; t < 3; t++) {"
        " k<<<dim3(1, 1, 1), dim3(8, 1, 1)>>>(A, n); }"
        " return 0; }"
    )
    assert np.all(result.arrays["A"] == 3.0)
    assert len(result.launches) == 3


def test_2d_array_allocation():
    result = run(
        "__global__ void k(double *A, int nx, int ny) {"
        " int i = blockIdx.x * blockDim.x + threadIdx.x;"
        " int j = blockIdx.y * blockDim.y + threadIdx.y;"
        " if (i < nx && j < ny) { A[i][j] = i * 100.0 + j; } }\n"
        "int main() { int nx = 8; int ny = 4;"
        " double *A = cudaMalloc2D(nx, ny);"
        " k<<<dim3(1, 1, 1), dim3(8, 4, 1)>>>(A, nx, ny); return 0; }"
    )
    assert result.arrays["A"][3, 2] == 302.0


def test_outputs_allclose_mismatched_sets():
    a = run("int main() { double *A = cudaMalloc1D(4); return 0; }")
    b = run("int main() { double *B = cudaMalloc1D(4); return 0; }")
    assert not outputs_allclose(a, b)


def test_return_stops_host():
    result = run(
        "__global__ void k(double *A, int n) { }\n"
        "int main() { int n = 4; double *A = cudaMalloc1D(n); return 0;"
        " k<<<dim3(1, 1, 1), dim3(4, 1, 1)>>>(A, n); }"
    )
    assert len(result.launches) == 0

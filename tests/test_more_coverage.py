"""Additional coverage: 1-D / flat fusion, OEG amendments, errors, misc."""

import numpy as np
import pytest

from repro.cudalite import ast_nodes as ast
from repro.cudalite import parse_program, unparse
from repro.cudalite.parser import parse_expr
from repro.errors import ReproError, SearchError, TransformError
from repro.gpu.device import K20X
from repro.gpu.interpreter import outputs_allclose, run_program
from repro.pipeline import Framework, PipelineConfig
from repro.search import fast_params
from repro.transform import (
    NewLaunch,
    assemble_program,
    fuse_kernels,
    make_constituent,
)


def small_params(seed=5):
    params = fast_params(seed=seed)
    params.population = 14
    params.generations = 12
    return params


# ------------------------------------------------------------- 1-D fusion


ONE_D = """
__global__ void ka(double *A, const double *B, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= 2 && i < n - 2) {
        A[i] = 0.5 * (B[i + 2] + B[i - 2]);
    }
}
__global__ void kb(double *C, const double *B, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        C[i] = B[i] * 3.0;
    }
}
int main() {
    int n = 256;
    double *A = cudaMalloc1D(n);
    double *B = cudaMalloc1D(n);
    double *C = cudaMalloc1D(n);
    deviceRandom(B, 9);
    dim3 grid(4, 1, 1);
    dim3 block(64, 1, 1);
    ka<<<grid, block>>>(A, B, n);
    kb<<<grid, block>>>(C, B, n);
    return 0;
}
"""


def test_one_dimensional_fusion_with_tile():
    program = parse_program(ONE_D)
    def mk(name, arrays):
        return make_constituent(
            program.kernel(name), arrays, (ast.IntLit(256),), [256],
            (4, 1, 1), (64, 1, 1),
        )
    fused = fuse_kernels(
        "K", [mk("ka", ["A", "B"]), mk("kb", ["C", "B"])],
        (64, 1, 1), {"A": (256,), "B": (256,), "C": (256,)},
    )
    text = unparse(fused.kernel)
    assert "__shared__ double s_B[68];" in text  # 64 + 2*2 halo
    launches = [NewLaunch("K", fused.grid, fused.block,
                          tuple(parse_expr(a) for a in fused.pointer_args)
                          + fused.scalar_args)]
    new_program = assemble_program(program, [fused.kernel], launches)
    assert outputs_allclose(run_program(program), run_program(new_program))
    assert outputs_allclose(
        run_program(program), run_program(new_program, block_order="reverse")
    )


FLAT_2D = """
__global__ void ka(double *A, const double *B, int nx, int ny) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if (i >= 1 && i < nx - 1 && j >= 1 && j < ny - 1) {
        A[i][j] = B[i + 1][j] + B[i - 1][j] + B[i][j + 1] + B[i][j - 1];
    }
}
__global__ void kb(double *C, const double *B, int nx, int ny) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < nx && j < ny) {
        C[i][j] = B[i][j] + 1.0;
    }
}
int main() {
    int nx = 32;
    int ny = 32;
    double *A = cudaMalloc2D(nx, ny);
    double *B = cudaMalloc2D(nx, ny);
    double *C = cudaMalloc2D(nx, ny);
    deviceRandom(B, 4);
    dim3 grid(4, 4, 1);
    dim3 block(8, 8, 1);
    ka<<<grid, block>>>(A, B, nx, ny);
    kb<<<grid, block>>>(C, B, nx, ny);
    return 0;
}
"""


def test_flat_2d_fusion_without_k_loop():
    """2-D kernels (no sequential loop) fuse with a pre-staged 2-D tile."""
    program = parse_program(FLAT_2D)

    def mk(name, arrays):
        return make_constituent(
            program.kernel(name), arrays,
            (ast.IntLit(32), ast.IntLit(32)), [32, 32],
            (4, 4, 1), (8, 8, 1),
        )

    fused = fuse_kernels(
        "K", [mk("ka", ["A", "B"]), mk("kb", ["C", "B"])],
        (8, 8, 1), {"A": (32, 32), "B": (32, 32), "C": (32, 32)},
    )
    assert "B" in fused.traits.staged
    launches = [NewLaunch("K", fused.grid, fused.block,
                          tuple(parse_expr(a) for a in fused.pointer_args)
                          + fused.scalar_args)]
    new_program = assemble_program(program, [fused.kernel], launches)
    assert outputs_allclose(run_program(program), run_program(new_program))


# ------------------------------------------------------ OEG USER amendment


def test_user_oeg_edge_constrains_search(three_kernel_program):
    """An amended OEG (dep=USER edge) becomes a search constraint: an edge
    contradicting launch order marks the pair mutually unfusable (the
    generator keeps launch order inside a fused kernel)."""

    def forbid_k1_k2_fusion(state):
        state.oeg.add_edge("k2@1", "k1@0", dep="USER", array="")

    config = PipelineConfig(
        device=K20X, ga_params=small_params(), verify=False
    )
    framework = Framework(three_kernel_program, config)
    framework.intervene("graphs", forbid_k1_k2_fusion)
    state = framework.run()
    for launch in state.transform.launches:
        members = set(launch.members)
        assert not {"k1@0", "k2@1"} <= members, "USER edge was ignored"


# ------------------------------------------------------------------ errors


def test_error_hierarchy():
    from repro import errors

    for cls in (
        errors.LexError,
        errors.ParseError,
        errors.SemanticError,
        errors.InterpreterError,
        errors.AnalysisError,
        errors.GraphError,
        errors.SearchError,
        errors.TransformError,
        errors.PipelineError,
    ):
        assert issubclass(cls, ReproError)
    assert issubclass(errors.OutOfBoundsError, errors.InterpreterError)


def test_unknown_fusion_override_rejected(three_kernel_program):
    from repro.errors import PipelineError

    config = PipelineConfig(fusion_overrides={"bogus_option": True})
    with pytest.raises(PipelineError, match="unknown fusion option"):
        config.fusion_options()


def test_unknown_objective_rejected():
    from repro.search.objective import get_objective

    with pytest.raises(SearchError):
        get_objective("no-such-objective")


# ------------------------------------------------------------- misc / model


def test_fused_rereads_charged_without_staging(three_kernel_program):
    """Kepler global loads bypass L1: fusing without tiles re-fetches the
    shared array once per constituent."""
    def mk(name, arrays):
        return make_constituent(
            three_kernel_program.kernel(name), arrays,
            tuple(ast.IntLit(v) for v in (32, 32, 8)), [32, 32, 8],
            (4, 4, 1), (8, 8, 1),
        )

    from repro.transform import FusionOptions

    unstaged = fuse_kernels(
        "K", [mk("k1", ["A", "B"]), mk("k2", ["C", "B"])],
        (8, 8, 1), {n: (32, 32, 8) for n in "ABCD"},
        options=FusionOptions(stage_shared=False),
    )
    staged = fuse_kernels(
        "K", [mk("k1", ["A", "B"]), mk("k2", ["C", "B"])],
        (8, 8, 1), {n: (32, 32, 8) for n in "ABCD"},
    )
    assert unstaged.traits.rereads.get("B", 1) == 2
    assert staged.traits.rereads.get("B", 1) == 1


def test_top_level_api_exports():
    import repro

    program = repro.parse_program(
        "__global__ void k(double *A) { }\n"
        "int main() { double *A = cudaMalloc1D(8);"
        " k<<<dim3(1, 1, 1), dim3(8, 1, 1)>>>(A); return 0; }"
    )
    assert "k" in repro.unparse(program)
    assert repro.query_device("K40").name == "K40"


def test_version():
    import repro

    assert repro.__version__ == "1.6.0"

"""Tests for the observability layer: metrics, tracing, counters.

Covers the PR's acceptance points directly:

* registry semantics, including merge across real process-pool workers
  (the wire format ``search/parallel.py`` uses),
* span nesting/ordering and Chrome trace-event schema validity,
* interpreter hardware-ish counters on hand-countable micro-kernels,
  in every block-execution mode,
* model validation round-robin matching of launches to projections,
* the profiler's loud fallback for non-constant shared dims,
* a no-op-overhead guard: disabled telemetry must cost well under 5%
  of a small end-to-end pipeline run.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from time import perf_counter

import pytest

from repro.cudalite import ast_nodes as ast
from repro.cudalite import parse_program
from repro.gpu.interpreter import run_program
from repro.gpu.profiler import declared_shared_bytes
from repro.observability import (
    KernelCounters,
    MetricsRegistry,
    aggregate_counters,
    get_registry,
    get_tracer,
    reset_registry,
    reset_tracer,
    set_telemetry_enabled,
    span,
    telemetry,
    telemetry_enabled,
    validate_model,
)
from repro.pipeline import Framework, PipelineConfig
from repro.search import fast_params
from repro.search.fitness_cache import reset_shared_cache

from conftest import CHAIN_SRC


@pytest.fixture(autouse=True)
def _fresh_telemetry_state():
    """Isolate every test from the process-wide registry/tracer."""
    reset_registry()
    reset_tracer()
    yield
    reset_registry()
    reset_tracer()


# --------------------------------------------------------------- registry


def test_registry_counters_gauges_histograms():
    with telemetry(True):
        reg = MetricsRegistry()
        reg.inc("events_total", kind="a")
        reg.inc("events_total", 2.5, kind="a")
        reg.inc("events_total", kind="b")
        reg.set_gauge("depth", 3, stage="search")
        reg.set_gauge("depth", 7, stage="search")
        reg.observe("latency_seconds", 0.002)
        reg.observe("latency_seconds", 9.0)

        assert reg.counter_value("events_total", kind="a") == 3.5
        assert reg.counter_value("events_total", kind="b") == 1.0
        assert reg.counter_total("events_total") == 4.5
        assert reg.gauge_value("depth", stage="search") == 7.0
        hist = reg.histogram_data("latency_seconds")
        assert hist.count == 2
        assert hist.total == pytest.approx(9.002)


def test_registry_label_order_does_not_split_series():
    with telemetry(True):
        reg = MetricsRegistry()
        reg.inc("x_total", a=1, b=2)
        reg.inc("x_total", b=2, a=1)
        assert reg.counter_value("x_total", a=1, b=2) == 2.0


def test_registry_disabled_mutators_are_noops():
    with telemetry(False):
        reg = MetricsRegistry()
        reg.inc("events_total")
        reg.set_gauge("depth", 1)
        reg.observe("latency_seconds", 0.5)
    with telemetry(True):
        assert reg.counter_total("events_total") == 0.0
        assert reg.gauge_value("depth") is None
        assert reg.histogram_data("latency_seconds") is None


def test_registry_merge_semantics():
    with telemetry(True):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.inc("events_total", 2, kind="x")
        b.inc("events_total", 3, kind="x")
        a.set_gauge("best", 1.0)
        b.set_gauge("best", 4.0)
        a.observe("latency_seconds", 0.001)
        b.observe("latency_seconds", 0.001)
        b.observe("latency_seconds", 2.0)

        a.merge(b.snapshot())
        assert a.counter_value("events_total", kind="x") == 5.0
        assert a.gauge_value("best") == 4.0  # last write wins
        hist = a.histogram_data("latency_seconds")
        assert hist.count == 3
        assert hist.total == pytest.approx(2.002)
        # bucket counts added bucket-wise: two observations of 1ms share one
        bucket_of_1ms = hist.buckets.index(0.001)
        assert hist.counts[bucket_of_1ms] == 2


def _pool_worker(i: int):
    """Module-level so the process pool can pickle it by reference.

    Mirrors ``search/parallel.py``'s snapshot-and-clear wire protocol:
    the worker records into its own process-wide registry and ships a
    picklable snapshot back.
    """
    set_telemetry_enabled(True)
    reset_registry()
    reg = get_registry()
    reg.inc("worker_events_total", worker=i % 2)
    reg.inc("worker_events_total", 2.0, worker=i % 2)
    reg.observe("worker_latency_seconds", 0.01 * (i + 1))
    reg.set_gauge("worker_last_item", i)
    snap = reg.snapshot()
    reg.clear()
    return snap


def test_registry_merge_across_process_pool_workers():
    with telemetry(True):
        with ProcessPoolExecutor(max_workers=2) as pool:
            snapshots = list(pool.map(_pool_worker, range(6)))
        reg = MetricsRegistry()
        for snap in snapshots:
            reg.merge(snap)
        # each of the 6 items contributed 1 + 2 events
        assert reg.counter_total("worker_events_total") == 18.0
        assert reg.counter_value("worker_events_total", worker=0) == 9.0
        assert reg.counter_value("worker_events_total", worker=1) == 9.0
        hist = reg.histogram_data("worker_latency_seconds")
        assert hist.count == 6
        assert hist.total == pytest.approx(0.21)


def test_exporters_produce_valid_output():
    with telemetry(True):
        reg = MetricsRegistry()
        reg.inc("events_total", kind='quo"ted')
        reg.set_gauge("best_fitness", 0.5)
        reg.observe("latency_seconds", 0.3)

        dump = reg.to_json()
        json.dumps(dump)  # must be serializable
        assert {s["name"] for s in dump["counters"]} == {"events_total"}
        assert dump["histograms"][0]["count"] == 1

        text = reg.to_prometheus_text()
        assert "# TYPE events_total counter" in text
        assert 'kind="quo\\"ted"' in text
        assert "# TYPE latency_seconds histogram" in text
        assert 'latency_seconds_bucket{le="+Inf"} 1' in text
        assert "latency_seconds_count 1" in text


# ---------------------------------------------------------------- tracing


def test_span_nesting_and_ordering():
    with telemetry(True):
        with span("outer", stage="search"):
            with span("inner:a"):
                pass
            with span("inner:b") as b:
                b.set(batch=7)
        tracer = get_tracer()
        spans = tracer.spans()
        # spans complete innermost-first
        assert [s.name for s in spans] == ["inner:a", "inner:b", "outer"]
        (outer_rec,) = tracer.find("outer")
        assert outer_rec.parent_id is None
        assert outer_rec.args == {"stage": "search"}
        children = tracer.children_of(outer_rec)
        assert {c.name for c in children} == {"inner:a", "inner:b"}
        (b_rec,) = tracer.find("inner:b")
        assert b_rec.args["batch"] == 7
        # parent fully contains its children in time
        for child in children:
            assert child.start_us >= outer_rec.start_us
            assert (child.start_us + child.duration_us
                    <= outer_rec.start_us + outer_rec.duration_us)


def test_span_records_error_on_exception():
    with telemetry(True):
        with pytest.raises(ValueError):
            with span("doomed"):
                raise ValueError("boom")
        (rec,) = get_tracer().find("doomed")
        assert rec.args["error"] == "ValueError"


def test_disabled_span_records_nothing():
    with telemetry(False):
        cm = span("invisible", x=1)
        with cm:
            cm.set(y=2)
        # same shared no-op object every time — no allocation per call
        assert span("another") is cm
    with telemetry(True):
        assert get_tracer().spans() == []


def test_chrome_trace_schema():
    with telemetry(True):
        with span("stage:search"):
            with span("gga:gen:0"):
                pass
        trace = get_tracer().to_chrome_trace()
        json.dumps(trace)  # Perfetto needs real JSON
        events = trace["traceEvents"]
        assert events[0]["ph"] == "M"  # process_name metadata
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 2
        by_name = {e["name"]: e for e in complete}
        for event in complete:
            assert {"name", "ph", "ts", "dur", "pid", "tid", "cat", "args"} \
                <= set(event)
            assert event["dur"] >= 0
        ids = {e["args"]["span_id"] for e in complete}
        parent = by_name["gga:gen:0"]["args"]["parent_id"]
        assert parent in ids
        assert by_name["stage:search"]["args"]["parent_id"] is None
        assert by_name["gga:gen:0"]["cat"] == "gga"


# --------------------------------------------------- interpreter counters

_ADD_SRC = """
__global__ void add(const double* a, double* b, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        b[i] = a[i] + 1.0;
    }
}

int main() {
    int n = %(n)d;
    double* a = cudaMalloc1D(16);
    double* b = cudaMalloc1D(16);
    deviceRandom(a, 7);
    dim3 grid(2, 1, 1);
    dim3 block(8, 1, 1);
    add<<<grid, block>>>(a, b, n);
    return 0;
}
"""

_TILE_SRC = """
__global__ void copy_tile(const double* in, double* out, int n) {
    __shared__ double t[8];
    int tx = threadIdx.x;
    int i = blockIdx.x * blockDim.x + tx;
    t[tx] = in[i];
    __syncthreads();
    out[i] = t[tx];
    __syncthreads();
}

int main() {
    int n = 16;
    double* a = cudaMalloc1D(16);
    double* b = cudaMalloc1D(16);
    deviceRandom(a, 11);
    dim3 grid(2, 1, 1);
    dim3 block(8, 1, 1);
    copy_tile<<<grid, block>>>(a, b, n);
    return 0;
}
"""

_GUARDED_SRC = """
__global__ void interior(const double* a, double* b, int n) {
    __shared__ double t[8];
    int tx = threadIdx.x;
    int i = blockIdx.x * blockDim.x + tx;
    t[tx] = a[i];
    __syncthreads();
    if (i >= 1 && i < n - 1) {
        b[i] = t[tx];
    }
}

int main() {
    int n = 16;
    double* a = cudaMalloc1D(16);
    double* b = cudaMalloc1D(16);
    deviceRandom(a, 3);
    dim3 grid(2, 1, 1);
    dim3 block(8, 1, 1);
    interior<<<grid, block>>>(a, b, n);
    return 0;
}
"""


def _counted(src: str, **kwargs):
    result = run_program(parse_program(src), collect_counters=True, **kwargs)
    (launch,) = result.launches
    assert launch.counters is not None
    return launch.counters


def test_counters_hand_counted_full_activity():
    # 2 blocks x 8 threads, n=16: every thread loads a[i] and stores b[i]
    c = _counted(_ADD_SRC % {"n": 16})
    assert c.kernel == "add"
    assert c.launches == 1
    assert c.global_loads == 16
    assert c.global_stores == 16
    assert c.global_load_bytes == 16 * 8  # doubles
    assert c.global_store_bytes == 16 * 8
    assert c.global_bytes == 256
    assert c.shared_loads == 0 and c.shared_stores == 0
    assert c.syncthreads == 0
    assert c.branch_divergence == 0  # all 16 threads agree on i < 16


def test_counters_hand_counted_partial_guard():
    # n=12: threads 12..15 fail the guard -> 12 loads/stores, one
    # divergent branch execution
    c = _counted(_ADD_SRC % {"n": 12})
    assert c.global_loads == 12
    assert c.global_stores == 12
    assert c.global_load_bytes == 12 * 8
    assert c.branch_divergence == 1


def test_counters_shared_tile_consistent_across_modes():
    expected = {
        "global_loads": 16,
        "global_stores": 16,
        "global_load_bytes": 128,
        "global_store_bytes": 128,
        "shared_loads": 16,
        "shared_stores": 16,
        # 2 __syncthreads() sites, each covering both blocks
        "syncthreads": 4,
        "branch_divergence": 0,
    }
    for mode in ("loop", "batched"):
        c = _counted(_TILE_SRC, block_exec=mode)
        got = {k: getattr(c, k) for k in expected}
        assert got == expected, f"mode={mode}"


def test_branch_divergence_is_per_execution_site():
    # the two-sided guard deactivates thread 0 (block 0) and thread 15
    # (block 1).  Loads/stores are mode-consistent; divergence counts one
    # event per *If execution with disagreeing threads*, so the per-block
    # loop sees two executions where the whole-grid batched pass sees one.
    per_block = _counted(_GUARDED_SRC, block_exec="loop")
    whole_grid = _counted(_GUARDED_SRC, block_exec="batched")
    for c in (per_block, whole_grid):
        assert c.global_loads == 16   # a[i] is staged unconditionally
        assert c.shared_stores == 16
        assert c.syncthreads == 2
        assert c.shared_loads == 14   # only the 14 guarded threads read t
        assert c.global_stores == 14
    assert per_block.branch_divergence == 2
    assert whole_grid.branch_divergence == 1


def test_counters_off_by_default():
    result = run_program(parse_program(_ADD_SRC % {"n": 16}))
    assert all(launch.counters is None for launch in result.launches)


def test_aggregate_counters_totals_and_by_kernel():
    a = KernelCounters(kernel="k1", global_loads=10, global_load_bytes=80)
    b = KernelCounters(kernel="k2", global_stores=4, global_store_bytes=32)
    c = KernelCounters(kernel="k1", global_loads=5, global_load_bytes=40)

    total = aggregate_counters([a, b, c])
    assert set(total) == {"<total>"}
    assert total["<total>"].launches == 3
    assert total["<total>"].global_loads == 15
    assert total["<total>"].global_bytes == 152

    per_kernel = aggregate_counters([a, b, c], by_kernel=True)
    assert set(per_kernel) == {"k1", "k2"}
    assert per_kernel["k1"].launches == 2
    assert per_kernel["k1"].global_load_bytes == 120


# --------------------------------------------------------- model validation


@dataclass
class _FakeProjection:
    kernel_name: str
    bytes_total: float
    flops: float = 0.0
    time_s: float = 1e-6
    occupancy: float = 1.0
    limiter: str = "bandwidth"


@dataclass
class _FakeLaunch:
    kernel: str
    counters: object


def test_validate_model_matches_by_name_round_robin():
    # two sites for kernel "a" executed twice each (a host time loop),
    # one site for "b", plus an uncounted launch
    projections = [
        _FakeProjection("a", bytes_total=100.0),
        _FakeProjection("a", bytes_total=200.0),
        _FakeProjection("b", bytes_total=300.0),
    ]
    counters = KernelCounters(kernel="a", global_load_bytes=100)
    launches = [
        _FakeLaunch("a", KernelCounters(kernel="a", global_load_bytes=100)),
        _FakeLaunch("a", KernelCounters(kernel="a", global_load_bytes=100)),
        _FakeLaunch("b", KernelCounters(kernel="b", global_load_bytes=150)),
        _FakeLaunch("a", counters),
        _FakeLaunch("a", KernelCounters(kernel="a", global_load_bytes=100)),
        _FakeLaunch("c", None),  # never counted
    ]
    report = validate_model(launches, projections)
    assert len(report.kernels) == 5
    assert report.uncompared == 1
    projected = [k.projected_bytes for k in report.kernels
                 if k.kernel == "a"]
    # round-robin over the two "a" sites: 100, 200, 100, 200
    assert projected == [100.0, 200.0, 100.0, 200.0]
    b_entry = next(k for k in report.kernels if k.kernel == "b")
    assert b_entry.bytes_ratio == pytest.approx(2.0)
    assert report.total_measured_bytes == 550
    json.dumps(report.as_dict())


def test_validate_model_unknown_kernel_is_uncompared():
    launches = [_FakeLaunch("mystery", KernelCounters(kernel="mystery"))]
    report = validate_model(launches, [_FakeProjection("a", 1.0)])
    assert report.kernels == []
    assert report.uncompared == 1


# ------------------------------------------------------- profiler warning


def test_profiler_warns_on_nonconstant_shared_dim(caplog):
    # semantic checking rejects this, so build the AST directly: a shared
    # array with a runtime-sized dim must warn + count, not silently
    # undercount the footprint
    kernel = ast.KernelDef(
        name="sneaky",
        params=(),
        body=ast.Block(
            stmts=(
                ast.VarDecl(
                    type=ast.TypeSpec(base="double"),
                    name="tile",
                    array_dims=(ast.Ident(name="n"), ast.IntLit(value=4)),
                    is_shared=True,
                ),
            )
        ),
    )
    with telemetry(True):
        with caplog.at_level("WARNING", logger="repro.gpu.profiler"):
            total = declared_shared_bytes(kernel)
        # the non-constant dim falls back to one element, loudly
        assert total == 4 * 8
        assert any("non-constant dim" in r.message for r in caplog.records)
        assert (
            get_registry().counter_value(
                "metadata_warnings_total",
                kind="nonconstant_shared_dim",
                kernel="sneaky",
            )
            == 1.0
        )


# --------------------------------------------------------- overhead guard


def _run_small_pipeline():
    params = fast_params(seed=5)
    params.population = 12
    params.generations = 8
    params.stall_generations = 4
    params.workers = 1
    reset_shared_cache()
    config = PipelineConfig(ga_params=params, verify=False)
    return Framework(parse_program(CHAIN_SRC), config).run()


def test_noop_overhead_guard_under_5_percent():
    # measure how much instrumentation a real (small) pipeline run emits...
    with telemetry(True):
        _run_small_pipeline()  # warm-up: imports, caches
        reset_registry()
        reset_tracer()
        _run_small_pipeline()
        n_spans = len(get_tracer().spans()) + get_tracer().dropped
        snap = get_registry().snapshot()
        n_counter_ops = sum(snap.counters.values())
        n_hist_ops = sum(h.count for h in snap.histograms.values())

    with telemetry(False):
        start = perf_counter()
        _run_small_pipeline()
        disabled_time = perf_counter() - start

        # ...then price the disabled fast path per call site
        reg = get_registry()
        iters = 50_000
        start = perf_counter()
        for _ in range(iters):
            with span("x", probe=1):
                pass
        span_cost = (perf_counter() - start) / iters
        start = perf_counter()
        for _ in range(iters):
            reg.inc("probe_total", kind="x")
        inc_cost = (perf_counter() - start) / iters

    assert telemetry_enabled()  # the context manager restored the switch
    estimated_overhead = (
        n_spans * span_cost + (n_counter_ops + n_hist_ops) * inc_cost
    )
    assert n_spans > 0  # the enabled run really was instrumented
    assert estimated_overhead < 0.05 * disabled_time, (
        f"disabled-telemetry overhead estimate {estimated_overhead:.6f}s "
        f"({n_spans} spans, {n_counter_ops + n_hist_ops:.0f} counter ops) "
        f"is not <5% of the {disabled_time:.3f}s run"
    )

"""Fusion code-generation tests: simple/complex fusion, tiles, guards,
feasibility rejections, and semantic preservation (incl. hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cudalite import ast_nodes as ast
from repro.cudalite import parse_program, unparse
from repro.cudalite.parser import parse_expr
from repro.errors import TransformError
from repro.gpu.interpreter import outputs_allclose, run_program
from repro.transform import (
    FusionOptions,
    NewLaunch,
    assemble_program,
    copy_kernel,
    extract_model,
    fuse_kernels,
    make_constituent,
)

from conftest import CHAIN_SRC, THREE_KERNEL_SRC


def consts(program, specs):
    """Build constituents from (kernel, arrays, scalars, grid, block)."""
    result = []
    for name, arrays, scalars, grid, block in specs:
        exprs = tuple(
            ast.IntLit(int(v)) if isinstance(v, int) else ast.FloatLit(float(v))
            for v in scalars
        )
        result.append(
            make_constituent(
                program.kernel(name), arrays, exprs, list(scalars), grid, block
            )
        )
    return result


SHAPES3 = {name: (32, 32, 8) for name in "ABCD"}


@pytest.fixture
def simple_fused(three_kernel_program):
    c1, c2 = consts(
        three_kernel_program,
        [
            ("k1", ["A", "B"], (32, 32, 8), (4, 4, 1), (8, 8, 1)),
            ("k2", ["C", "B"], (32, 32, 8), (4, 4, 1), (8, 8, 1)),
        ],
    )
    return three_kernel_program, fuse_kernels(
        "K_00", [c1, c2], (8, 8, 1), SHAPES3
    )


def run_fused(program, fused_list, order=None):
    launches = []
    for fused in fused_list:
        args = tuple(parse_expr(a) for a in fused.pointer_args) + fused.scalar_args
        launches.append(NewLaunch(fused.kernel.name, fused.grid, fused.block, args))
    new_program = assemble_program(program, [f.kernel for f in fused_list], launches)
    return new_program


def test_simple_fusion_semantics(simple_fused):
    program, fused = simple_fused
    new_program = run_fused(program, [fused])
    # k3 disappeared from the transformed program, so compare A and C only
    before = run_program(program)
    after = run_program(new_program)
    assert np.allclose(before.arrays["A"], after.arrays["A"])
    assert np.allclose(before.arrays["C"], after.arrays["C"])


def test_simple_fusion_stages_shared_array(simple_fused):
    _, fused = simple_fused
    assert "B" in fused.traits.staged
    assert any(t.array == "B" for t in fused.tiles)
    text = unparse(fused.kernel)
    assert "__shared__ double s_B" in text
    assert "__syncthreads();" in text


def test_simple_fusion_not_complex(simple_fused):
    _, fused = simple_fused
    assert not fused.is_complex


def test_fused_kernel_parses_and_checks(simple_fused):
    from repro.cudalite import check_program, parse_program as reparse

    _, fused = simple_fused
    text = unparse(ast.Program((fused.kernel,)))
    reparsed = reparse(text)
    assert reparsed.kernels[0].name == "K_00"


def test_fusion_without_staging(three_kernel_program):
    c1, c2 = consts(
        three_kernel_program,
        [
            ("k1", ["A", "B"], (32, 32, 8), (4, 4, 1), (8, 8, 1)),
            ("k2", ["C", "B"], (32, 32, 8), (4, 4, 1), (8, 8, 1)),
        ],
    )
    fused = fuse_kernels(
        "K_00", [c1, c2], (8, 8, 1), SHAPES3,
        options=FusionOptions(stage_shared=False),
    )
    assert "__shared__" not in unparse(fused.kernel)
    new_program = run_fused(three_kernel_program, [fused])
    before = run_program(three_kernel_program)
    after = run_program(new_program)
    assert np.allclose(before.arrays["A"], after.arrays["A"])


def test_complex_fusion_temporal_blocking(chain_program):
    c1, c2 = consts(
        chain_program,
        [
            ("produce", ["T", "B"], (32, 32, 4, 0.5), (4, 4, 1), (8, 8, 1)),
            ("consume", ["A", "T"], (32, 32, 4), (4, 4, 1), (8, 8, 1)),
        ],
    )
    fused = fuse_kernels(
        "K_00", [c1, c2], (8, 8, 1), {n: (32, 32, 4) for n in "ABT"},
        precedence=[(0, 1, "T")],
    )
    assert fused.is_complex
    assert fused.traits.halo_compute_factor > 1.0
    new_program = run_fused(chain_program, [fused])
    assert outputs_allclose(run_program(chain_program), run_program(new_program))
    # the race check: reversed block schedule must give identical results
    assert outputs_allclose(
        run_program(chain_program), run_program(new_program, block_order="reverse")
    )


def test_complex_fusion_writeback(chain_program):
    c1, c2 = consts(
        chain_program,
        [
            ("produce", ["T", "B"], (32, 32, 4, 0.5), (4, 4, 1), (8, 8, 1)),
            ("consume", ["A", "T"], (32, 32, 4), (4, 4, 1), (8, 8, 1)),
        ],
    )
    fused = fuse_kernels(
        "K_00", [c1, c2], (8, 8, 1), {n: (32, 32, 4) for n in "ABT"},
        precedence=[(0, 1, "T")],
    )
    # T must still be written to global memory (it stays live)
    new_program = run_fused(chain_program, [fused])
    after = run_program(new_program)
    before = run_program(chain_program)
    assert np.allclose(before.arrays["T"], after.arrays["T"])


def test_war_with_halo_rejected(chain_program):
    """consume reads T with a halo; fusing a later writer of T is an
    inter-block hazard and must be refused."""
    c2, c1 = consts(
        chain_program,
        [
            ("consume", ["A", "T"], (32, 32, 4), (4, 4, 1), (8, 8, 1)),
            ("produce", ["T", "B"], (32, 32, 4, 0.5), (4, 4, 1), (8, 8, 1)),
        ],
    )
    with pytest.raises(TransformError, match="WAR"):
        fuse_kernels(
            "K_00", [c2, c1], (8, 8, 1), {n: (32, 32, 4) for n in "ABT"},
        )


def test_wave_depth_limit():
    source = """
__global__ void s1(double *P, const double *B, int nx, int ny) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < nx && j < ny) { P[i][j] = B[i][j] + 1.0; }
}
__global__ void s2(double *Q, const double *P, int nx, int ny) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if (i >= 1 && i < nx - 1 && j >= 1 && j < ny - 1) {
        Q[i][j] = P[i + 1][j] + P[i - 1][j];
    }
}
__global__ void s3(double *R, const double *Q, int nx, int ny) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if (i >= 1 && i < nx - 1 && j >= 1 && j < ny - 1) {
        R[i][j] = Q[i + 1][j] + Q[i][j - 1];
    }
}
int main() {
    int nx = 16; int ny = 16;
    double *P = cudaMalloc2D(nx, ny);
    double *Q = cudaMalloc2D(nx, ny);
    double *R = cudaMalloc2D(nx, ny);
    double *B = cudaMalloc2D(nx, ny);
    deviceRandom(B, 2);
    dim3 grid(2, 2, 1); dim3 block(8, 8, 1);
    s1<<<grid, block>>>(P, B, nx, ny);
    s2<<<grid, block>>>(Q, P, nx, ny);
    s3<<<grid, block>>>(R, Q, nx, ny);
    return 0;
}
"""
    program = parse_program(source)
    cs = consts(
        program,
        [
            ("s1", ["P", "B"], (16, 16), (2, 2, 1), (8, 8, 1)),
            ("s2", ["Q", "P"], (16, 16), (2, 2, 1), (8, 8, 1)),
            ("s3", ["R", "Q"], (16, 16), (2, 2, 1), (8, 8, 1)),
        ],
    )
    shapes = {n: (16, 16) for n in "PQRB"}
    # a 3-deep chain is unrealizable: either the wave depth exceeds the one
    # supported barrier level, or the mid producer's extended compute would
    # read an array another member writes
    with pytest.raises(TransformError, match="depth|writes"):
        fuse_kernels(
            "K", cs, (8, 8, 1), shapes,
            precedence=[(0, 1, "P"), (1, 2, "Q")],
        )
    # two-kernel chain is fine (depth 2)
    fused = fuse_kernels(
        "K", cs[:2], (8, 8, 1), shapes, precedence=[(0, 1, "P")],
    )
    new_program = run_fused(program, [fused])
    before = run_program(program)
    after = run_program(new_program)
    assert np.allclose(before.arrays["P"], after.arrays["P"])
    assert np.allclose(before.arrays["Q"], after.arrays["Q"])


def test_differing_loop_bounds_aligned(three_kernel_program):
    """k-loops of different lengths merge with guard conditionals (§5.5.2)."""
    src = THREE_KERNEL_SRC.replace(
        "__global__ void k2(double *C, const double *B, int nx, int ny, int nz) {\n"
        "    int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
        "    int j = blockIdx.y * blockDim.y + threadIdx.y;\n"
        "    if (i < nx && j < ny) {\n"
        "        for (int k = 0; k < nz; k++) {",
        "__global__ void k2(double *C, const double *B, int nx, int ny, int nz) {\n"
        "    int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
        "    int j = blockIdx.y * blockDim.y + threadIdx.y;\n"
        "    if (i < nx && j < ny) {\n"
        "        for (int k = 0; k < nz - 3; k++) {",
    )
    program = parse_program(src)
    c1, c2 = consts(
        program,
        [
            ("k1", ["A", "B"], (32, 32, 8), (4, 4, 1), (8, 8, 1)),
            ("k2", ["C", "B"], (32, 32, 8), (4, 4, 1), (8, 8, 1)),
        ],
    )
    fused = fuse_kernels("K_00", [c1, c2], (8, 8, 1), SHAPES3)
    text = unparse(fused.kernel)
    assert "k < 5" in text  # k2's shorter loop guarded
    new_program = run_fused(program, [fused])
    before = run_program(program)
    after = run_program(new_program)
    assert np.allclose(before.arrays["A"], after.arrays["A"])
    assert np.allclose(before.arrays["C"], after.arrays["C"])


def test_smaller_extent_gets_extent_guard(three_kernel_program):
    c1, c2 = consts(
        three_kernel_program,
        [
            ("k1", ["A", "B"], (32, 32, 8), (4, 4, 1), (8, 8, 1)),
            ("k2", ["C", "B"], (32, 32, 8), (2, 4, 1), (8, 8, 1)),  # half x
        ],
    )
    fused = fuse_kernels("K_00", [c1, c2], (8, 8, 1), SHAPES3)
    assert fused.grid[0] == 4  # max extent wins
    text = unparse(fused.kernel)
    assert "i < 16" in text  # k2 clamped to its own extent


def test_smem_limit_enforced(three_kernel_program):
    c1, c2 = consts(
        three_kernel_program,
        [
            ("k1", ["A", "B"], (32, 32, 8), (4, 4, 1), (8, 8, 1)),
            ("k2", ["C", "B"], (32, 32, 8), (4, 4, 1), (8, 8, 1)),
        ],
    )
    with pytest.raises(TransformError, match="shared memory"):
        fuse_kernels(
            "K_00", [c1, c2], (8, 8, 1), SHAPES3,
            options=FusionOptions(smem_limit=100),
        )


def test_divergence_traits_depend_on_strategy(three_kernel_program):
    c1, c2 = consts(
        three_kernel_program,
        [
            ("k1", ["A", "B"], (32, 32, 8), (4, 4, 1), (8, 8, 1)),
            ("k2", ["C", "B"], (32, 32, 8), (4, 4, 1), (8, 8, 1)),
        ],
    )
    auto = fuse_kernels("K", [c1, c2], (8, 8, 1), SHAPES3,
                        options=FusionOptions(one_sided_guards=False))
    manual = fuse_kernels("K", [c1, c2], (8, 8, 1), SHAPES3,
                          options=FusionOptions(one_sided_guards=True))
    assert auto.traits.divergence_factor > manual.traits.divergence_factor


def test_scalar_args_deduplicated(three_kernel_program):
    c1, c2 = consts(
        three_kernel_program,
        [
            ("k1", ["A", "B"], (32, 32, 8), (4, 4, 1), (8, 8, 1)),
            ("k2", ["C", "B"], (32, 32, 8), (4, 4, 1), (8, 8, 1)),
        ],
    )
    fused = fuse_kernels("K", [c1, c2], (8, 8, 1), SHAPES3)
    scalar_names = [p.name for p in fused.kernel.scalar_params()]
    # nx, ny, nz shared between constituents -> one parameter each
    assert scalar_names == ["nx", "ny", "nz"]


def test_copy_kernel_is_no_fusion_case(three_kernel_program):
    original = three_kernel_program.kernel("k1")
    copy = copy_kernel(original, "K_99")
    assert copy.body == original.body
    assert copy.name == "K_99"


def test_non_canonical_kernel_rejected():
    program = parse_program(
        "__global__ void odd(double *A, int n) {"
        " while (n > 0) { A[0] = 1.0; n = n - 1; } }\n"
        "int main() { int n = 4; double *A = cudaMalloc1D(8);"
        " odd<<<dim3(1, 1, 1), dim3(8, 1, 1)>>>(A, n); return 0; }"
    )
    assert extract_model(program.kernel("odd")) is None
    with pytest.raises(TransformError, match="not canonical"):
        make_constituent(
            program.kernel("odd"), ["A"], (ast.IntLit(4),), [4], (1, 1, 1), (8, 1, 1)
        )


@given(
    coeff=st.floats(min_value=-2.0, max_value=2.0).map(lambda v: round(v, 3)),
    radius=st.integers(min_value=0, max_value=2),
    block_x=st.sampled_from([8, 16]),
)
@settings(max_examples=25, deadline=None)
def test_fusion_semantics_property(coeff, radius, block_x):
    """Fusing two kernels sharing a stencil input preserves semantics for
    any coefficient, radius and block shape."""
    terms = " + ".join(
        f"B[i + {d}][j][k] + B[i - {d}][j][k]" for d in range(1, radius + 1)
    ) or "B[i][j][k]"
    source = f"""
__global__ void ka(double *A, const double *B, int nx, int ny, int nz) {{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if (i >= {radius} && i < nx - {radius} && j < ny) {{
        for (int k = 0; k < nz; k++) {{
            A[i][j][k] = {coeff} * ({terms});
        }}
    }}
}}
__global__ void kb(double *C, const double *B, int nx, int ny, int nz) {{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < nx && j < ny) {{
        for (int k = 0; k < nz; k++) {{
            C[i][j][k] = B[i][j][k] + {coeff};
        }}
    }}
}}
int main() {{
    int nx = 32; int ny = 16; int nz = 4;
    double *A = cudaMalloc3D(nx, ny, nz);
    double *B = cudaMalloc3D(nx, ny, nz);
    double *C = cudaMalloc3D(nx, ny, nz);
    deviceRandom(B, 11);
    dim3 grid({32 // block_x}, 2, 1);
    dim3 block({block_x}, 8, 1);
    ka<<<grid, block>>>(A, B, nx, ny, nz);
    kb<<<grid, block>>>(C, B, nx, ny, nz);
    return 0;
}}
"""
    program = parse_program(source)
    grid = (32 // block_x, 2, 1)
    block = (block_x, 8, 1)
    cs = consts(
        program,
        [
            ("ka", ["A", "B"], (32, 16, 4), grid, block),
            ("kb", ["C", "B"], (32, 16, 4), grid, block),
        ],
    )
    fused = fuse_kernels(
        "K", cs, block, {n: (32, 16, 4) for n in "ABC"}
    )
    new_program = run_fused(program, [fused])
    before = run_program(program)
    after = run_program(new_program)
    assert np.allclose(before.arrays["A"], after.arrays["A"])
    assert np.allclose(before.arrays["C"], after.arrays["C"])

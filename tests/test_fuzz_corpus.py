"""Replay the committed fuzz regression corpus (``tests/corpus/``).

Each corpus entry freezes one generated application as source text
(schema ``repro.fuzz.corpus/1``); replaying it runs the entry's oracle
battery on the parsed program.  The corpus is the fuzzing campaign's
long-term memory: a program that once exposed a defect (or exercises a
rare archetype) keeps being checked on every PR, independent of how the
generator evolves.  Regenerate with ``scripts/gen_fuzz_corpus.py``.
"""

import json
from pathlib import Path

import pytest

from repro.cudalite import parse_program, unparse
from repro.fuzz import run_oracles
from repro.fuzz.campaign import CORPUS_SCHEMA
from repro.fuzz.oracles import ORACLE_NAMES, fuzz_config
from repro.gpu import compiler
from repro.gpu.interpreter import run_program
from repro.reliability import faults

CORPUS_DIR = Path(__file__).resolve().parent / "corpus"
ENTRY_PATHS = sorted(CORPUS_DIR.glob("*.json"))

REQUIRED_FIELDS = (
    "schema", "name", "seed", "kernels", "shared_kernels",
    "fallback_kernels", "oracles", "note", "source",
)


def _load(path):
    return json.loads(path.read_text())


@pytest.fixture(autouse=True)
def _no_fault_plan():
    faults.clear_plan()
    yield
    faults.clear_plan()


def test_corpus_is_populated_and_diverse():
    assert len(ENTRY_PATHS) >= 10
    entries = [_load(p) for p in ENTRY_PATHS]
    assert any(e["shared_kernels"] for e in entries), (
        "corpus needs at least one shared-memory app"
    )
    assert any(e["fallback_kernels"] for e in entries), (
        "corpus needs at least one forced-fallback app"
    )
    names = [e["name"] for e in entries]
    assert len(set(names)) == len(names)


@pytest.mark.parametrize(
    "path", ENTRY_PATHS, ids=[p.stem for p in ENTRY_PATHS]
)
def test_corpus_entry_replays_green(path):
    entry = _load(path)
    missing = [f for f in REQUIRED_FIELDS if f not in entry]
    assert not missing, f"{path.name} missing fields {missing}"
    assert entry["schema"] == CORPUS_SCHEMA
    assert set(entry["oracles"]) <= set(ORACLE_NAMES)

    program = parse_program(entry["source"])
    assert unparse(program) == entry["source"]
    assert [k.name for k in program.kernels] == entry["kernels"]

    verdict = run_oracles(
        program, tuple(entry["oracles"]), fuzz_config(seed=entry["seed"])
    )
    assert verdict.ok, (path.name, verdict.signatures())


@pytest.mark.parametrize(
    "path",
    [p for p in ENTRY_PATHS if _load(p)["fallback_kernels"]],
    ids=[p.stem for p in ENTRY_PATHS if _load(p)["fallback_kernels"]],
)
def test_fallback_entries_record_fallback_reasons(path):
    entry = _load(path)
    program = parse_program(entry["source"])
    compiler.reset_code_cache()
    try:
        run_program(program, block_exec="compiled")
        reasons = compiler.stats().fallback_reasons
        assert set(entry["fallback_kernels"]) <= set(reasons), (
            path.name, entry["fallback_kernels"], reasons
        )
    finally:
        compiler.reset_code_cache()

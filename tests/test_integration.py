"""Integration tests: full pipeline on the generated applications with
output verification — the paper's own correctness methodology."""

import pytest

from repro.apps import APP_NAMES, build_app
from repro.gpu.device import K20X, K40
from repro.pipeline import Framework, PipelineConfig
from repro.search import fast_params


def small_params(seed=1):
    params = fast_params(seed=seed)
    params.population = 20
    params.generations = 20
    params.stall_generations = 8
    return params


@pytest.mark.parametrize("name", APP_NAMES)
def test_apps_transform_and_verify(name):
    """Every generated application survives the end-to-end transformation
    with bit-faithful output (both block schedules)."""
    app = build_app(name, scale=0.22)
    config = PipelineConfig(device=K20X, ga_params=small_params(), verify=True)
    state = Framework(app.program, config).run()
    assert state.verified is True
    assert state.speedup >= 0.99  # never meaningfully slower


def test_awp_fission_beats_fusion_only():
    app = build_app("AWP-ODC-GPU", scale=0.5)
    base_cfg = dict(device=K20X, ga_params=small_params(), verify=False)
    no_fission = Framework(
        app.program, PipelineConfig(enable_fission=False, **base_cfg)
    ).run()
    with_fission = Framework(
        app.program, PipelineConfig(enable_fission=True, **base_cfg)
    ).run()
    assert with_fission.speedup > no_fission.speedup + 0.1


def test_manual_mode_at_least_as_fast_as_automated():
    app = build_app("SCALE-LES", scale=0.3)
    base = dict(device=K20X, ga_params=small_params(), verify=False)
    auto = Framework(app.program, PipelineConfig(mode="automated", **base)).run()
    manual = Framework(app.program, PipelineConfig(mode="manual", **base)).run()
    assert manual.speedup >= auto.speedup - 1e-9


def test_k40_projection_differs_from_k20x():
    app = build_app("HOMME", scale=0.4)
    p = small_params()
    a = Framework(
        app.program, PipelineConfig(device=K20X, ga_params=p, verify=False)
    ).run()
    b = Framework(
        app.program, PipelineConfig(device=K40, ga_params=p, verify=False)
    ).run()
    assert (
        a.baseline_projection.time_s != b.baseline_projection.time_s
    )


def test_degraded_groups_still_verify():
    """Even if the generator degrades a group, the output stays correct."""
    app = build_app("MITgcm", scale=0.3)
    config = PipelineConfig(device=K20X, ga_params=small_params(3), verify=True)
    state = Framework(app.program, config).run()
    assert state.verified is True


def test_disable_filtering_slows_convergence():
    """Fig. 8's companion claim: without target filtering the search sees
    more nodes (and in the paper converges ~2.5x slower)."""
    app = build_app("Fluam", scale=0.4)
    params = small_params()
    filtered = Framework(
        app.program,
        PipelineConfig(device=K20X, ga_params=params, verify=False),
    ).run()
    unfiltered = Framework(
        app.program,
        PipelineConfig(
            device=K20X, ga_params=params, verify=False, disable_filtering=True
        ),
    ).run()
    n_filtered = len(filtered.targets.targets)
    n_unfiltered = len(unfiltered.targets.targets)
    assert n_unfiltered > n_filtered

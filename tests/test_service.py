"""Integration tests for the transformation service (server + pool).

Each harness runs a real :class:`TransformService` — asyncio HTTP
server, persistent worker subprocesses, shared artifact store — inside
a background thread on an ephemeral port, and drives it with the
synchronous :class:`ServiceClient` exactly as external tenants would.
"""

import asyncio
import threading
import time

import pytest

from repro.observability.ledger import RunLedger
from repro.observability.metrics import get_registry
from repro.service import ServiceClient, TransformService
from repro.service.pool import worker_environment

from conftest import THREE_KERNEL_SRC

#: a deliberately small search so one served transform is sub-second
TINY_CONFIG = {
    "ga_params": {
        "population": 10,
        "generations": 6,
        "stall_generations": 3,
        "workers": 1,
        "executor": "thread",
        "seed": 7,
    }
}

#: a slower search for the dedup test: the first request must still be
#: in flight when the second identical one arrives
SLOW_CONFIG = {
    "ga_params": {
        "population": 24,
        "generations": 18,
        "stall_generations": 18,
        "workers": 1,
        "executor": "thread",
        "seed": 11,
    }
}


class ServiceHarness:
    """A live service in a daemon thread, stopped (with drain) on exit."""

    def __init__(self, store_root, *, pool_size=1, max_retries=2,
                 worker_env=None):
        self.store_root = str(store_root)
        self.port = None
        self.service = None
        self.loop = None
        self._started = threading.Event()
        self._shutdown = None
        self._thread = threading.Thread(
            target=self._run,
            args=(pool_size, max_retries, worker_env),
            daemon=True,
        )

    def _run(self, pool_size, max_retries, worker_env):
        async def main():
            self.loop = asyncio.get_running_loop()
            self._shutdown = asyncio.Event()
            self.service = TransformService(
                store_root=self.store_root,
                pool_size=pool_size,
                max_retries=max_retries,
                worker_env=worker_env,
            )
            _host, self.port = await self.service.start("127.0.0.1", 0)
            self._started.set()
            await self._shutdown.wait()
            await self.service.stop(drain=True)

        asyncio.run(main())

    def __enter__(self):
        self._thread.start()
        assert self._started.wait(timeout=120), "service did not start"
        client = ServiceClient(port=self.port)
        client.wait_ready(timeout=120)
        return self, client

    def __exit__(self, *exc):
        self.stop()

    def stop(self, timeout=60):
        if self.loop is not None and self._thread.is_alive():
            self.loop.call_soon_threadsafe(self._shutdown.set)
        self._thread.join(timeout=timeout)
        assert not self._thread.is_alive(), "service shutdown hung"


def _counter(name):
    return get_registry().counter_total(name)


# ------------------------------------------------------------- basic serving


def test_served_transform_and_warm_reuse(tmp_path):
    with ServiceHarness(tmp_path / "store") as (harness, client):
        cold = client.transform(
            source=THREE_KERNEL_SRC, config=TINY_CONFIG, request_id="cold"
        )
        assert cold.status == 200
        assert cold.request_id == "cold"
        assert not cold.dedup
        response = cold.response()
        assert response.status == "ok"
        assert response.speedup is not None and response.speedup > 1.0
        assert response.verified is True
        assert response.reused == {}

        start = time.perf_counter()
        warm = client.transform(source=THREE_KERNEL_SRC, config=TINY_CONFIG)
        warm_wall = time.perf_counter() - start
        assert warm.status == 200
        warm_response = warm.response()
        # same request, new execution -> warm via the shared store
        assert warm_response.reused
        assert warm_response.speedup == response.speedup
        assert warm_wall < 1.0, f"warm request took {warm_wall:.2f}s"
        assert warm.key == cold.key
        assert warm.job_id != cold.job_id


def test_error_paths(tmp_path):
    with ServiceHarness(tmp_path / "store") as (harness, client):
        bad_schema = client._request(
            "POST", "/v1/transform", b'{"source": "x", "surprise": 1}'
        )
        assert bad_schema.status == 400

        bad_config = client.transform(
            source=THREE_KERNEL_SRC, config={"mode": "telepathic"}
        )
        assert bad_config.status == 400

        bad_program = client.transform(source="int main( {")
        assert bad_program.status == 422

        assert client.job("no-such-job").status == 404
        assert client._request("GET", "/v1/nowhere").status == 404

        health = client.healthz()
        assert health.status == 200
        assert health.json()["status"] == "ok"


# ---------------------------------------------------------------- dedup


def test_concurrent_identical_requests_deduplicate(tmp_path):
    with ServiceHarness(tmp_path / "store", pool_size=2) as (harness, client):
        executions_before = _counter("service_executions_total")
        dedup_before = _counter("service_dedup_hits_total")

        # admit the first request asynchronously; its 202 means the
        # execution is registered in the in-flight map
        submitted = client.submit(
            source=THREE_KERNEL_SRC, config=SLOW_CONFIG, request_id="a"
        )
        assert submitted.status == 202
        job_id = submitted.json()["job_id"]
        assert not submitted.dedup

        # an identical request while the first is in flight joins it
        joined = client.transform(
            source=THREE_KERNEL_SRC, config=SLOW_CONFIG, request_id="b"
        )
        assert joined.status == 200
        assert joined.dedup, "second identical request did not dedup"
        assert joined.job_id == job_id
        assert joined.request_id == "b"

        finished = client.wait(job_id, timeout=300)
        assert finished.status == 200
        # one execution served both clients, byte for byte
        assert finished.body == joined.body
        assert _counter("service_executions_total") - executions_before == 1
        assert _counter("service_dedup_hits_total") - dedup_before == 1

        records = RunLedger(harness.store_root).list(kind="service")
        assert len(records) == 1
        assert records[0]["service"]["dedup_clients"] == 2


# ----------------------------------------------------------- fault injection


def test_killed_worker_respawns_and_retries(tmp_path):
    # visit 2 only: the first job sails through, the second one's worker
    # is hard-killed on accept; the respawned worker (fresh visit
    # counter) serves the retry cleanly
    with ServiceHarness(
        tmp_path / "store",
        pool_size=1,
        worker_env={"REPRO_FAULT_SEAMS": "service_worker:@2"},
    ) as (harness, client):
        restarts_before = _counter("service_worker_restarts_total")

        first = client.transform(source=THREE_KERNEL_SRC, config=TINY_CONFIG)
        assert first.status == 200
        assert first.response().worker_retries == 0

        crashed = client.transform(
            source=THREE_KERNEL_SRC,
            config={**TINY_CONFIG, "seed": 4242},
        )
        assert crashed.status == 200, crashed.body
        response = crashed.response()
        assert response.status == "ok"
        assert response.worker_retries == 1
        assert (
            _counter("service_worker_restarts_total") - restarts_before == 1
        )
        assert harness.service.pool.restarts >= 1


def test_retry_budget_exhaustion_is_a_500(tmp_path):
    # every visit fires: the job crashes its worker on every attempt
    with ServiceHarness(
        tmp_path / "store",
        pool_size=1,
        max_retries=1,
        worker_env={"REPRO_FAULT_SEAMS": "service_worker"},
    ) as (harness, client):
        served = client.transform(source=THREE_KERNEL_SRC, config=TINY_CONFIG)
        assert served.status == 500
        response = served.response()
        assert response.status == "error"
        assert response.error["type"] == "ServiceError"
        assert "retry budget" in response.error["message"]


# ------------------------------------------------------------ jobs + events


def test_async_job_lifecycle_and_events(tmp_path):
    with ServiceHarness(tmp_path / "store") as (harness, client):
        submitted = client.submit(
            source=THREE_KERNEL_SRC, config=TINY_CONFIG
        )
        assert submitted.status == 202
        job_id = submitted.json()["job_id"]

        events = list(client.events(job_id))
        assert events, "event stream was empty"
        kinds = [kind for kind, _data in events]
        assert kinds[-1] == "done"
        stages = [data["stage"] for kind, data in events if kind == "stage"]
        assert "search" in stages
        assert events[-1][1]["status"] == "done"

        finished = client.wait(job_id, timeout=300)
        assert finished.status == 200
        assert client.job(job_id).json()["status"] == "done"


# ------------------------------------------------------------------ shutdown


def test_graceful_shutdown_drains_inflight_jobs(tmp_path):
    store_root = tmp_path / "store"
    harness, client = ServiceHarness(store_root).__enter__()
    try:
        submitted = client.submit(
            source=THREE_KERNEL_SRC, config=SLOW_CONFIG
        )
        assert submitted.status == 202
        job_id = submitted.json()["job_id"]
    finally:
        # stop while the job is in flight; drain must finish it
        harness.stop(timeout=300)
    records = RunLedger(str(store_root)).list(kind="service")
    assert [r["service"]["job_id"] for r in records] == [job_id]
    assert records[0]["service"]["status"] == "ok"


# ------------------------------------------------------------------ pool env


def test_worker_environment_scrubs_ambient_repro_knobs(monkeypatch):
    monkeypatch.setenv("REPRO_ISLANDS", "4")
    monkeypatch.setenv("REPRO_SEARCH_WORKERS", "9")
    monkeypatch.setenv("HOME", "/home/x")
    env = worker_environment({"REPRO_FAULT_SEAMS": "service_worker"})
    assert "REPRO_ISLANDS" not in env
    assert "REPRO_SEARCH_WORKERS" not in env
    assert env["HOME"] == "/home/x"
    # explicit overrides survive the scrub
    assert env["REPRO_FAULT_SEAMS"] == "service_worker"
    # the worker can import this very repro checkout
    import repro
    from pathlib import Path

    parent = str(Path(repro.__file__).resolve().parent.parent)
    assert parent in env["PYTHONPATH"].split(":")

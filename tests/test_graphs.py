"""DDG / OEG construction, optimization and DOT round-trip tests."""

import networkx as nx
import pytest

from repro.cudalite import parse_program
from repro.errors import GraphError
from repro.gpu.device import K20X
from repro.gpu.profiler import gather_metadata
from repro.graphs import (
    arrays_of_invocation,
    build_naive_ddg,
    build_oeg,
    build_versioned_ddg,
    dot_to_graph,
    graph_to_dot,
    group_schedule,
    internal_precedence,
    invocation_table,
    is_convex,
    kernel_nodes,
    optimize_ddg,
    reachability,
    topological_order,
    validate_ddg,
    validate_oeg,
)

CYCLE_SRC = """
__global__ void ka(double *Y, const double *X, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { Y[i] = X[i] * 2.0; }
}
__global__ void kb(double *X, const double *Y, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { X[i] = Y[i] + 1.0; }
}
__global__ void kc(double *Z, const double *X, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { Z[i] = X[i] * X[i]; }
}
int main() {
    int n = 128;
    double *X = cudaMalloc1D(n);
    double *Y = cudaMalloc1D(n);
    double *Z = cudaMalloc1D(n);
    deviceRandom(X, 3);
    dim3 grid(2, 1, 1);
    dim3 block(64, 1, 1);
    ka<<<grid, block>>>(Y, X, n);
    kb<<<grid, block>>>(X, Y, n);
    kc<<<grid, block>>>(Z, X, n);
    return 0;
}
"""


@pytest.fixture
def cycle_case():
    program = parse_program(CYCLE_SRC)
    meta = gather_metadata(program, K20X)
    return invocation_table(program, meta)


def test_invocation_table_resolves_host_arrays(cycle_case):
    assert cycle_case[0].reads == ("X",)
    assert cycle_case[0].writes == ("Y",)
    assert cycle_case[1].reads == ("Y",)
    assert cycle_case[1].writes == ("X",)


def test_naive_ddg_has_cycle(cycle_case):
    """The paper's motivating case: kernel A reads X / writes Y while B
    writes X / reads Y — Algorithm 1's naive graph is cyclic."""
    naive = build_naive_ddg(cycle_case)
    assert not nx.is_directed_acyclic_graph(naive)


def test_versioned_ddg_is_acyclic(cycle_case):
    versioned = build_versioned_ddg(cycle_case)
    assert nx.is_directed_acyclic_graph(versioned)
    validate_ddg(versioned)


def test_optimize_ddg_reports_instances(cycle_case):
    ddg, report = optimize_ddg(cycle_case)
    assert report.had_cycles
    assert report.instances_added["X"] == 2  # X#0 and X#1
    assert "redundant array instances" in report.summary()


def test_ddg_bipartite(cycle_case):
    ddg, _ = optimize_ddg(cycle_case)
    validate_ddg(ddg)  # raises if kernel->kernel or array->array edges exist


def test_arrays_of_invocation(cycle_case):
    ddg, _ = optimize_ddg(cycle_case)
    reads, writes = arrays_of_invocation(ddg, "ka@0")
    assert reads == {"X"}
    assert writes == {"Y"}


def test_kernel_nodes_in_launch_order(cycle_case):
    ddg, _ = optimize_ddg(cycle_case)
    assert kernel_nodes(ddg) == ["ka@0", "kb@1", "kc@2"]


def test_oeg_edges(cycle_case):
    ddg, _ = optimize_ddg(cycle_case)
    oeg = build_oeg(ddg)
    validate_oeg(oeg)
    deps = {(u, v): d for u, v, d in oeg.edges(data="dep")}
    assert deps[("ka@0", "kb@1")] == "RAW"
    assert deps[("kb@1", "kc@2")] == "RAW"


def test_topological_order(cycle_case):
    ddg, _ = optimize_ddg(cycle_case)
    oeg = build_oeg(ddg)
    assert topological_order(oeg) == ["ka@0", "kb@1", "kc@2"]


def test_convexity(cycle_case):
    ddg, _ = optimize_ddg(cycle_case)
    oeg = build_oeg(ddg)
    reach = reachability(oeg)
    assert is_convex({"ka@0", "kb@1"}, oeg, reach)
    assert is_convex({"kb@1", "kc@2"}, oeg, reach)
    assert not is_convex({"ka@0", "kc@2"}, oeg, reach)


def test_group_schedule(cycle_case):
    ddg, _ = optimize_ddg(cycle_case)
    oeg = build_oeg(ddg)
    schedule = group_schedule(
        [frozenset({"kc@2"}), frozenset({"ka@0", "kb@1"})], oeg
    )
    assert schedule == [frozenset({"ka@0", "kb@1"}), frozenset({"kc@2"})]


def test_group_schedule_rejects_non_convex(cycle_case):
    ddg, _ = optimize_ddg(cycle_case)
    oeg = build_oeg(ddg)
    with pytest.raises(GraphError):
        group_schedule([frozenset({"ka@0", "kc@2"}), frozenset({"kb@1"})], oeg)


def test_internal_precedence(cycle_case):
    ddg, _ = optimize_ddg(cycle_case)
    oeg = build_oeg(ddg)
    edges = internal_precedence({"ka@0", "kb@1"}, oeg)
    assert ("ka@0", "kb@1", "Y") in edges


# ------------------------------------------------------------------------- DOT


def test_dot_round_trip_ddg(cycle_case):
    ddg, _ = optimize_ddg(cycle_case)
    text = graph_to_dot(ddg, "DDG")
    parsed = dot_to_graph(text)
    assert set(parsed.nodes) == set(ddg.nodes)
    assert set(parsed.edges) == set(ddg.edges)
    assert parsed.nodes["ka@0"]["kernel"] == "ka"
    assert parsed.nodes["X#0"]["base"] == "X"


def test_dot_round_trip_oeg(cycle_case):
    ddg, _ = optimize_ddg(cycle_case)
    oeg = build_oeg(ddg)
    parsed = dot_to_graph(graph_to_dot(oeg, "OEG"))
    assert set(parsed.edges) == set(oeg.edges)
    assert parsed.edges["ka@0", "kb@1"]["dep"] == "RAW"


def test_programmer_can_amend_dot(cycle_case):
    """The intervention surface: add a precedence edge by editing the DOT."""
    ddg, _ = optimize_ddg(cycle_case)
    oeg = build_oeg(ddg)
    text = graph_to_dot(oeg, "OEG")
    text = text.replace("}", '    "ka@0" -> "kc@2" [dep="USER"];\n}')
    parsed = dot_to_graph(text)
    assert ("ka@0", "kc@2") in parsed.edges
    assert parsed.edges["ka@0", "kc@2"]["dep"] == "USER"


def test_dot_file_io(tmp_path, cycle_case):
    from repro.graphs import read_dot, write_dot

    ddg, _ = optimize_ddg(cycle_case)
    path = tmp_path / "ddg.dot"
    write_dot(ddg, path)
    loaded = read_dot(path)
    assert set(loaded.nodes) == set(ddg.nodes)

"""Array-access analysis tests."""

from repro.analysis.accesses import (
    IRREGULAR,
    collect_accesses,
    find_global_index_vars,
    find_loops,
    linear_index_term,
    max_loop_depth,
    shared_arrays_between,
)
from repro.cudalite.parser import parse_expr, parse_kernel


DIFFUSE = """
__global__ void diffuse(double *A, const double *B, int nx, int ny, int nz, double c) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if (i >= 1 && i < nx - 1 && j >= 1 && j < ny - 1) {
        for (int k = 0; k < nz; k++) {
            A[i][j][k] = c * (B[i + 1][j][k] + B[i - 1][j][k] + B[i][j + 2][k]);
        }
    }
}
"""


def test_find_global_index_vars():
    kernel = parse_kernel(DIFFUSE)
    assert find_global_index_vars(kernel) == {"i": "x", "j": "y"}


def test_index_var_commuted_forms():
    kernel = parse_kernel(
        "__global__ void k(double *A) {"
        " int i = threadIdx.x + blockIdx.x * blockDim.x;"
        " int j = blockDim.y * blockIdx.y + threadIdx.y;"
        " A[i][j] = 1.0; }"
    )
    assert find_global_index_vars(kernel) == {"i": "x", "j": "y"}


def test_index_var_aliasing():
    kernel = parse_kernel(
        "__global__ void k(double *A) {"
        " int tx = blockIdx.x * blockDim.x + threadIdx.x;"
        " int i = tx;"
        " A[i] = 1.0; }"
    )
    vars_ = find_global_index_vars(kernel)
    assert vars_["tx"] == "x"
    assert vars_["i"] == "x"


def test_bare_threadidx_recognized():
    kernel = parse_kernel(
        "__global__ void k(double *A) { int t = threadIdx.x; A[t] = 1.0; }"
    )
    assert find_global_index_vars(kernel) == {"t": "x"}


def test_linear_index_term():
    assert linear_index_term(parse_expr("i")) == ("i", 0)
    assert linear_index_term(parse_expr("i + 3")) == ("i", 3)
    assert linear_index_term(parse_expr("i - 2")) == ("i", -2)
    assert linear_index_term(parse_expr("2 + i")) == ("i", 2)
    assert linear_index_term(parse_expr("5")) == (None, 5)
    assert linear_index_term(parse_expr("i * 2"))[0] == IRREGULAR


def test_read_write_sets():
    acc = collect_accesses(parse_kernel(DIFFUSE))
    assert acc.arrays_read == {"B"}
    assert acc.arrays_written == {"A"}


def test_read_offsets_and_radius():
    acc = collect_accesses(parse_kernel(DIFFUSE))
    info = acc.arrays["B"]
    offsets = info.read_offsets(("i", "j", "k"))
    assert (1, 0, 0) in offsets
    assert (-1, 0, 0) in offsets
    assert (0, 2, 0) in offsets
    assert info.halo_radius(("i", "j")) == 2


def test_statement_records():
    acc = collect_accesses(parse_kernel(DIFFUSE))
    # two index declarations + one assignment
    assert len(acc.statements) == 3
    assert all(s.flops == 0 for s in acc.statements[:2])
    stmt = acc.statements[-1]
    assert stmt.arrays_read == frozenset({"B"})
    assert stmt.arrays_written == frozenset({"A"})
    assert stmt.loop_context == ("k",)
    assert stmt.guard_depth == 1
    assert stmt.flops > 0


def test_compound_assignment_reads_target():
    kernel = parse_kernel(
        "__global__ void k(double *A, const double *B, int n) {"
        " int i = threadIdx.x;"
        " A[i] += B[i]; }"
    )
    acc = collect_accesses(kernel)
    assert "A" in acc.arrays_read
    assert "A" in acc.arrays_written


def test_scalar_dataflow_tracked():
    kernel = parse_kernel(
        "__global__ void k(double *A, const double *B, int n) {"
        " int i = threadIdx.x;"
        " double t = B[i] * 2.0;"
        " A[i] = t; }"
    )
    acc = collect_accesses(kernel)
    stmt = acc.statements[-1]
    assert "t" in stmt.scalars_read


def test_irregular_access_flagged():
    kernel = parse_kernel(
        "__global__ void k(double *A, const double *B, int n) {"
        " int i = threadIdx.x;"
        " A[i] = B[i * 2]; }"
    )
    acc = collect_accesses(kernel)
    assert acc.has_irregular
    assert acc.arrays["B"].irregular


def test_uses_shared_flag():
    kernel = parse_kernel(
        "__global__ void k(double *A) { __shared__ double t[8]; int i = threadIdx.x;"
        " t[i] = 1.0; A[i] = t[i]; }"
    )
    acc = collect_accesses(kernel)
    assert acc.uses_shared
    # shared tiles are not part of the global footprint
    assert "t" not in acc.arrays


def test_find_loops_depth():
    kernel = parse_kernel(
        "__global__ void k(double *A, int n) {"
        " for (int a = 0; a < n; a++) {"
        "   for (int b = 0; b < 4; b++) { A[a] += b * 1.0; }"
        " } }"
    )
    loops = find_loops(kernel)
    assert [(l.var, l.depth) for l in loops] == [("a", 0), ("b", 1)]
    assert max_loop_depth(kernel) == 2


def test_per_array_flops():
    acc = collect_accesses(parse_kernel(DIFFUSE))
    flops = acc.per_array_flops()
    assert flops["A"] == flops["B"] == acc.total_flops_per_point


def test_shared_arrays_between():
    k1 = parse_kernel(
        "__global__ void a(double *X, const double *S, int n) {"
        " int i = threadIdx.x; X[i] = S[i]; }"
    )
    k2 = parse_kernel(
        "__global__ void b(double *Y, const double *S, int n) {"
        " int i = threadIdx.x; Y[i] = S[i]; }"
    )
    assert shared_arrays_between(collect_accesses(k1), collect_accesses(k2)) == {"S"}

"""Device catalog and occupancy calculator tests (incl. hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.device import (
    K20X,
    K40,
    TESTING,
    DeviceSpec,
    available_devices,
    query_device,
    register_device,
)
from repro.gpu.occupancy import (
    BlockShape,
    calculate_occupancy,
    candidate_shapes,
    enumerate_block_sizes,
    tune_block_size,
)


# ----------------------------------------------------------------------- device


def test_catalog_contains_paper_devices():
    assert "K20X" in available_devices()
    assert "K40" in available_devices()


def test_query_device():
    assert query_device("K20X") is K20X
    with pytest.raises(KeyError):
        query_device("H100")


def test_register_custom_device():
    custom = DeviceSpec(
        name="CUSTOM-TEST",
        compute_capability="3.5",
        sm_count=1,
        peak_bandwidth_gbs=1.0,
        peak_gflops_dp=1.0,
        peak_gflops_sp=1.0,
        shared_mem_per_sm=1024,
        shared_mem_per_block=1024,
        regs_per_sm=1024,
        max_regs_per_thread=63,
        max_threads_per_sm=512,
        max_threads_per_block=256,
        max_blocks_per_sm=4,
    )
    register_device(custom)
    assert query_device("CUSTOM-TEST") is custom


def test_k20x_published_parameters():
    assert K20X.sm_count == 14
    assert K20X.peak_bandwidth_gbs == 250.0
    assert K20X.shared_mem_per_block == 48 * 1024
    assert K20X.max_warps_per_sm == 64


def test_k40_faster_than_k20x():
    assert K40.peak_bandwidth_gbs > K20X.peak_bandwidth_gbs
    assert K40.peak_gflops_dp > K20X.peak_gflops_dp


def test_effective_bandwidth_saturates():
    assert K20X.effective_bandwidth(1.0) == K20X.peak_bandwidth_gbs
    assert K20X.effective_bandwidth(K20X.saturation_occupancy) == pytest.approx(
        K20X.peak_bandwidth_gbs
    )
    low = K20X.effective_bandwidth(K20X.saturation_occupancy / 2)
    assert low == pytest.approx(K20X.peak_bandwidth_gbs / 2)


# -------------------------------------------------------------------- occupancy


def test_full_occupancy_small_kernel():
    # 256 threads, no smem, 32 regs: 8 blocks of 8 warps = 64 warps
    result = calculate_occupancy(K20X, 256, 0, 32)
    assert result.occupancy == 1.0


def test_warp_limited_small_blocks():
    # 64-thread blocks: 2 warps x 16 blocks max = 32 of 64 warps
    result = calculate_occupancy(K20X, 64, 0, 16)
    assert result.occupancy == 0.5
    assert result.limiter == "blocks"


def test_shared_memory_limits_blocks():
    # 24 KB per block: only 2 blocks fit in 48 KB
    result = calculate_occupancy(K20X, 256, 24 * 1024, 16)
    assert result.active_blocks_per_sm == 2
    assert result.limiter == "smem"
    assert result.occupancy == pytest.approx(16 / 64)


def test_register_limited():
    # 128 regs/thread at 256 threads: 128*32=4096 regs/warp, x8 warps = 32768
    # per block -> 2 blocks
    result = calculate_occupancy(K20X, 256, 0, 128)
    assert result.limiter == "regs"
    assert result.active_blocks_per_sm == 2


def test_block_too_large_rejected():
    with pytest.raises(ValueError):
        calculate_occupancy(K20X, 2048, 0, 32)


def test_smem_over_limit_rejected():
    with pytest.raises(ValueError):
        calculate_occupancy(K20X, 256, 64 * 1024, 32)


def test_regs_over_limit_rejected():
    with pytest.raises(ValueError):
        calculate_occupancy(K20X, 256, 0, 400)


def test_enumerate_block_sizes_multiples_of_warp():
    sizes = enumerate_block_sizes(K20X)
    assert all(s % 32 == 0 for s in sizes)
    assert max(sizes) == K20X.max_threads_per_block


def test_candidate_shapes_respect_limits():
    for shape in candidate_shapes(K20X, dims=2):
        assert shape.size <= K20X.max_threads_per_block
        assert shape.size >= K20X.warp_size


def test_tuner_improves_warp_limited_config():
    # a 64-thread block is warp-limited at 0.5; the tuner must find better
    shape, result = tune_block_size(K20X, smem_per_thread=0.0, regs_per_thread=32)
    assert result.occupancy > 0.5


def test_tuner_respects_smem_per_thread():
    # 96 B/thread: a 512-thread block would need 48 KB (exactly the limit)
    shape, result = tune_block_size(K20X, smem_per_thread=96.0, regs_per_thread=32)
    assert shape.size * 96 <= K20X.shared_mem_per_block


def test_tuner_never_worse_than_current():
    from repro.transform.blocksize import tune_kernel_block

    decision = tune_kernel_block(K20X, "k", (32, 8, 1), 8192, 48)
    assert decision.occupancy_after >= decision.occupancy_before - 1e-12


@given(
    threads=st.integers(min_value=1, max_value=1024),
    smem=st.integers(min_value=0, max_value=48 * 1024),
    regs=st.integers(min_value=16, max_value=255),
)
@settings(max_examples=200, deadline=None)
def test_occupancy_bounds_property(threads, smem, regs):
    try:
        result = calculate_occupancy(K20X, threads, smem, regs)
    except ValueError:
        # unlaunchable configuration (e.g. 255 regs x 1024 threads)
        return
    assert 0.0 < result.occupancy <= 1.0
    assert result.active_blocks_per_sm >= 1
    assert (
        result.active_warps_per_sm
        == result.active_blocks_per_sm * result.warps_per_block
    )


@given(smem=st.integers(min_value=0, max_value=16 * 1024))
@settings(max_examples=60, deadline=None)
def test_occupancy_monotone_in_smem(smem):
    """More shared memory per block never increases occupancy."""
    lo = calculate_occupancy(K20X, 256, smem, 32).occupancy
    hi = calculate_occupancy(K20X, 256, smem + 4096, 32).occupancy
    assert hi <= lo + 1e-12

"""Unit tests for the persistent artifact store (repro.store)."""

import json

import pytest

from repro.reliability import faults
from repro.store import keys
from repro.store.artifact_store import (
    ArtifactStore,
    default_store_root,
    open_store,
    store_enabled_from_env,
)


@pytest.fixture(autouse=True)
def _no_fault_plan():
    faults.clear_plan()
    yield
    faults.clear_plan()


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


# ----------------------------------------------------------------- basics


def test_roundtrip(store):
    payload = {"answer": 42, "nested": {"pi": 3.5}, "list": [1, 2, 3]}
    assert store.put("metadata", "k" * 64, payload)
    got = store.get("metadata", "k" * 64)
    assert got == payload
    assert store.stats.hits == 1 and store.stats.writes == 1


def test_miss_on_absent_entry(store):
    assert store.get("metadata", "0" * 64) is None
    assert store.stats.misses == 1 and store.stats.hits == 0


def test_entries_are_sharded_files(store):
    key = keys.digest("sharding-test")
    store.put("graphs", key, {"x": 1})
    path = store.path_for("graphs", key)
    assert path.is_file()
    assert path.parent.name == key[:2]
    envelope = json.loads(path.read_text())
    assert envelope["schema"] == "repro.store/1"
    assert envelope["namespace"] == "graphs"
    assert envelope["key"] == key


def test_wipe_and_entry_count(store):
    for i in range(5):
        store.put("tuning", keys.digest("t", i), {"i": i})
    assert store.entry_count() == 5
    removed = store.wipe()
    assert removed == 5
    assert store.entry_count() == 0


# ----------------------------------------------------- corruption recovery


def _poison(store, namespace, key, text):
    path = store.path_for(namespace, key)
    path.write_text(text)


@pytest.mark.parametrize(
    "garbage",
    [
        "{ not json at all",
        "[1, 2, 3]",  # not an object
        json.dumps({"schema": "other/9", "namespace": "n", "key": "k"}),
        json.dumps(
            {
                "schema": "repro.store/1",
                "namespace": "metadata",
                "key": "WRONG",
                "payload": {},
                "checksum": "x",
            }
        ),
    ],
)
def test_corrupt_entry_is_a_miss_and_quarantined(store, garbage):
    key = keys.digest("corruption")
    store.put("metadata", key, {"fine": True})
    _poison(store, "metadata", key, garbage)
    assert store.get("metadata", key) is None
    assert store.stats.invalid == 1
    # the bad file was removed so the next write starts clean
    assert not store.path_for("metadata", key).exists()


def test_checksum_mismatch_detected(store):
    key = keys.digest("checksum")
    store.put("search", key, {"value": 1})
    path = store.path_for("search", key)
    envelope = json.loads(path.read_text())
    envelope["payload"]["value"] = 2  # tamper without updating the checksum
    path.write_text(json.dumps(envelope))
    assert store.get("search", key) is None
    assert store.stats.invalid == 1


def test_store_fault_seam_poisons_reads(store):
    key = keys.digest("seam")
    store.put("metadata", key, {"ok": 1})
    faults.install_plan(
        faults.FaultPlan(seams=faults.parse_seam_specs("store"))
    )
    assert store.get("metadata", key) is None
    assert store.stats.invalid >= 1
    faults.clear_plan()
    # entry was quarantined: a later read (seam off) is a clean miss
    assert store.get("metadata", key) is None


def test_unwritable_root_degrades_to_noop(tmp_path):
    blocker = tmp_path / "blocker"
    blocker.write_text("I am a file, not a directory")
    store = open_store(blocker)
    assert store is None  # open_store never raises


# ------------------------------------------------------------------- keys


def test_digest_is_stable_and_distinct():
    assert keys.digest("a", 1) == keys.digest("a", 1)
    assert keys.digest("a", 1) != keys.digest("a", 2)
    assert keys.digest("a", 1) != keys.digest("b", 1)


def test_stage_keys_chain_invalidation():
    t1 = keys.targets_key("prog", "dev", 0.3, (), False)
    t2 = keys.targets_key("prog2", "dev", 0.3, (), False)
    assert t1 != t2
    assert keys.graphs_key(t1) != keys.graphs_key(t2)
    # config changes invalidate too
    assert t1 != keys.targets_key("prog", "dev", 0.4, (), False)
    assert t1 != keys.targets_key("prog", "dev", 0.3, ("k",), False)


def test_env_enablement(tmp_path):
    assert not store_enabled_from_env({})
    assert not store_enabled_from_env({"REPRO_STORE": "0"})
    assert not store_enabled_from_env({"REPRO_STORE": "off"})
    assert store_enabled_from_env({"REPRO_STORE": str(tmp_path)})
    assert default_store_root({"REPRO_STORE": str(tmp_path)}) == str(tmp_path)
    assert default_store_root({}) == "~/.cache/repro"


# -------------------------------------------------- instrumentation (PR 8)


def test_stats_track_bytes_and_namespaces(store):
    key = "k" * 64
    store.put("metadata", key, {"answer": 42})
    store.get("metadata", key)
    store.get("graphs", "0" * 64)  # miss in another namespace
    stats = store.stats
    assert stats.bytes_written > 0
    assert stats.bytes_read == stats.bytes_written  # same envelope back
    meta = stats.namespaces["metadata"]
    assert meta["writes"] == 1 and meta["hits"] == 1 and meta["misses"] == 0
    assert meta["bytes_written"] == stats.bytes_written
    assert meta["bytes_read"] == stats.bytes_read
    graphs = stats.namespaces["graphs"]
    assert graphs["misses"] == 1 and graphs["hits"] == 0
    as_dict = stats.as_dict()
    assert as_dict["bytes_read"] == stats.bytes_read
    assert as_dict["namespaces"]["metadata"]["hits"] == 1
    # the pre-existing summary keys survive for older consumers
    assert as_dict["hits"] == 1 and as_dict["misses"] == 1


def test_store_metrics_counters_and_latency(store):
    from repro.observability import telemetry
    from repro.observability.metrics import get_registry, reset_registry

    reset_registry()
    try:
        with telemetry(True):
            key = "m" * 64
            store.put("metadata", key, {"answer": 42})
            store.get("metadata", key)
            store.get("metadata", "0" * 64)
        registry = get_registry()
        totals = registry.counter_totals()
        assert totals["store_write_bytes_total"] > 0
        assert totals["store_read_bytes_total"] > 0
        snapshot = registry.snapshot()
        # one series per (name, labels) key; hit + miss both observed
        reads = sum(
            hist.count for (name, _), hist in snapshot.histograms.items()
            if name == "store_read_seconds"
        )
        assert reads == 2
        writes = sum(
            hist.count for (name, _), hist in snapshot.histograms.items()
            if name == "store_write_seconds"
        )
        assert writes == 1
    finally:
        reset_registry()

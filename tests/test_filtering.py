"""Target-identification (filtering) tests."""

from repro.analysis.filtering import identify_targets, tag_eligibility
from repro.cudalite import parse_program
from repro.gpu.device import K20X
from repro.gpu.profiler import gather_metadata
from repro.graphs import build_oeg, invocation_table, optimize_ddg


MIXED = """
__global__ void sweep(double *A, const double *B, int nx, int ny, int nz) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < nx && j < ny) {
        for (int k = 0; k < nz; k++) { A[i][j][k] = B[i][j][k] * 2.0; }
    }
}
__global__ void heavy(double *C, const double *B, int nx, int ny, int nz) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < nx && j < ny) {
        for (int k = 0; k < nz; k++) {
            double acc = B[i][j][k];
            acc = acc + sin(acc) * 0.9;
            acc = acc + sin(acc) * 0.9;
            acc = acc + sin(acc) * 0.9;
            acc = acc + sin(acc) * 0.9;
            acc = acc + sin(acc) * 0.9;
            acc = acc + sin(acc) * 0.9;
            acc = acc + sin(acc) * 0.9;
            acc = acc + sin(acc) * 0.9;
            acc = acc + sin(acc) * 0.9;
            acc = acc + sin(acc) * 0.9;
            acc = acc + sin(acc) * 0.9;
            acc = acc + sin(acc) * 0.9;
            acc = acc + sin(acc) * 0.9;
            acc = acc + sin(acc) * 0.9;
            C[i][j][k] = acc;
        }
    }
}
__global__ void bc(double *A, const double *B, int nx, int ny, int nz) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < 1 && j < ny) {
        for (int k = 0; k < nz; k++) { A[i][j][k] = B[i][j][k]; }
    }
}
int main() {
    int nx = 32; int ny = 32; int nz = 8;
    double *A = cudaMalloc3D(nx, ny, nz);
    double *B = cudaMalloc3D(nx, ny, nz);
    double *C = cudaMalloc3D(nx, ny, nz);
    deviceRandom(B, 3);
    dim3 grid(4, 4, 1);
    dim3 block(8, 8, 1);
    sweep<<<grid, block>>>(A, B, nx, ny, nz);
    heavy<<<grid, block>>>(C, B, nx, ny, nz);
    bc<<<grid, block>>>(A, B, nx, ny, nz);
    return 0;
}
"""


def make_report(**kw):
    program = parse_program(MIXED)
    meta = gather_metadata(program, K20X)
    return program, meta, identify_targets(meta, K20X, **kw)


def test_memory_bound_kernel_is_target():
    _, _, report = make_report()
    assert "sweep" in report.targets


def test_compute_bound_kernel_excluded():
    _, _, report = make_report()
    assert "heavy" in report.excluded
    assert "compute-bound" in report.reason("heavy")


def test_boundary_kernel_excluded():
    _, _, report = make_report()
    assert "bc" in report.excluded
    assert "boundary" in report.reason("bc")


def test_manual_exclusion():
    _, _, report = make_report(manual_exclusions=("sweep",))
    assert "sweep" in report.excluded
    assert "manually" in report.reason("sweep")


def test_disable_filtering_keeps_everything():
    _, _, report = make_report(disable_filtering=True)
    assert report.excluded == []
    assert len(report.targets) == 3


def test_boundary_threshold_configurable():
    _, _, report = make_report(boundary_fraction=0.0)
    assert "bc" in report.targets  # nothing is "boundary" at threshold 0


def test_summary_mentions_every_kernel():
    _, _, report = make_report()
    text = report.summary()
    for name in ("sweep", "heavy", "bc"):
        assert name in text


def test_tag_eligibility_marks_graphs():
    program, meta, report = make_report()
    invocations = invocation_table(program, meta)
    ddg, _ = optimize_ddg(invocations)
    oeg = build_oeg(ddg)
    tag_eligibility(ddg, oeg, report)
    flags = {
        data["kernel"]: data["eligible"]
        for _, data in oeg.nodes(data=True)
    }
    assert flags["sweep"] is True
    assert flags["heavy"] is False
    assert flags["bc"] is False


def test_irregular_kernel_excluded():
    program = parse_program(
        "__global__ void irr(double *A, const double *B, int n) {"
        " int i = blockIdx.x * blockDim.x + threadIdx.x;"
        " if (i < n) { A[i] = B[i * 2]; } }\n"
        "int main() { int n = 64; double *A = cudaMalloc1D(n);"
        " double *B = cudaMalloc1D(n); deviceRandom(B, 1);"
        " irr<<<dim3(1, 1, 1), dim3(64, 1, 1)>>>(A, B, n); return 0; }"
    )
    meta = gather_metadata(program, K20X)
    report = identify_targets(meta, K20X)
    assert "irr" in report.excluded
    assert "irregular" in report.reason("irr")

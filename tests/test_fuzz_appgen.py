"""The fuzz application generator: determinism, validity, coverage.

The contracts under test (see ``repro.fuzz.appgen``):

* ``generate_app(seed, spec)`` is a pure function of its inputs — the
  same pair yields a byte-identical program in-process *and* across
  Python processes (string-hash salting must not leak in);
* every generated program goes through the production front door: it
  unparsses to source that re-parses to the identical program;
* every archetype the spec weights can actually be drawn, and forced
  weights force it;
* the compiled-mode edge archetypes are labelled on the
  :class:`~repro.apps.base.GeneratedApp` metadata so oracles and tests
  can target them.
"""

import hashlib
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cudalite import parse_program, unparse
from repro.fuzz import ARCHETYPES, FuzzSpec, generate_app
from repro.gpu import compiler
from repro.gpu.interpreter import run_program

SEED_WINDOW = range(0, 24)


def _source(seed, spec=None):
    return unparse(generate_app(seed, spec).program)


# ------------------------------------------------------------- determinism


def test_same_seed_same_program():
    for seed in SEED_WINDOW:
        assert _source(seed) == _source(seed)


def test_different_seeds_differ():
    sources = {_source(seed) for seed in SEED_WINDOW}
    assert len(sources) == len(SEED_WINDOW)


def test_spec_changes_program():
    spec = FuzzSpec(weights=(("pointwise", 1.0),))
    assert _source(5) != _source(5, spec)


def test_deterministic_across_processes():
    """Generation must not depend on per-process string-hash salting."""
    script = (
        "from repro.fuzz import generate_app\n"
        "from repro.cudalite import unparse\n"
        "import hashlib\n"
        "digest = hashlib.sha256()\n"
        "for seed in range(8):\n"
        "    digest.update(unparse(generate_app(seed).program).encode())\n"
        "print(digest.hexdigest())\n"
    )
    src = Path(__file__).resolve().parent.parent / "src"
    runs = {
        subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        ).stdout.strip()
        for _ in range(2)
    }
    assert len(runs) == 1


# ----------------------------------------------------------------- validity


def test_unparse_parse_round_trip():
    for seed in SEED_WINDOW:
        source = _source(seed)
        assert unparse(parse_program(source)) == source


def test_generated_apps_execute_mode_agnostically():
    for seed in (0, 7, 13):
        program = generate_app(seed).program
        compiler.reset_code_cache()
        loop = run_program(program, block_exec="loop")
        for mode in ("batched", "compiled", "auto"):
            other = run_program(program, block_exec=mode)
            for name, arr in loop.arrays.items():
                assert np.array_equal(arr, other.arrays[name]), (seed, mode, name)


def test_kernel_count_respects_bounds():
    spec = FuzzSpec(min_kernels=3, max_kernels=4)
    for seed in SEED_WINDOW:
        count = len(generate_app(seed, spec).program.kernels)
        assert 3 <= count <= 4


def test_geometries_are_exact_fit():
    for seed in SEED_WINDOW:
        app = generate_app(seed)
        (nx, ny, _), (bx, by, _) = app.spec.domain, app.spec.block
        assert nx % bx == 0 and ny % by == 0


# ----------------------------------------------------------------- coverage


def test_default_mix_covers_every_archetype():
    seen = set()
    for seed in range(60):
        for kernel in generate_app(seed).program.kernels:
            seen.add(kernel.name.rsplit("_", 1)[0])
    assert seen == set(ARCHETYPES)


@pytest.mark.parametrize("archetype", ARCHETYPES)
def test_forced_weight_forces_archetype(archetype):
    spec = FuzzSpec(weights=((archetype, 1.0),))
    app = generate_app(2, spec)
    assert all(
        k.name.rsplit("_", 1)[0] == archetype for k in app.program.kernels
    )


def test_shared_and_fallback_metadata_recorded():
    spec = FuzzSpec(
        weights=(("shared", 1.0), ("race", 1.0), ("unlowerable", 1.0)),
        min_kernels=6,
        max_kernels=6,
    )
    app = generate_app(9, spec)
    assert app.shared_kernels
    assert app.fallback_kernels
    # race kernels are both shared and fallback; unlowerable only fallback
    assert set(app.fallback_kernels) <= {k.name for k in app.program.kernels}


def test_fallback_kernels_actually_fall_back():
    spec = FuzzSpec(
        weights=(("race", 1.0), ("unlowerable", 1.0)),
        min_kernels=4,
        max_kernels=4,
    )
    app = generate_app(4, spec)
    compiler.reset_code_cache()
    run_program(app.program, block_exec="compiled")
    reasons = compiler.stats().fallback_reasons
    assert set(app.fallback_kernels) <= set(reasons)
    compiler.reset_code_cache()


# --------------------------------------------------------------- validation


def test_spec_rejects_bad_bounds():
    with pytest.raises(ValueError):
        FuzzSpec(min_kernels=5, max_kernels=2)


def test_spec_rejects_unknown_archetype():
    with pytest.raises(ValueError, match="unknown archetype"):
        FuzzSpec(weights=(("warp_shuffle", 1.0),))


def test_spec_rejects_all_zero_weights():
    with pytest.raises(ValueError, match="positive"):
        FuzzSpec(weights=(("stencil", 0.0),))


def test_spec_rejects_non_exact_fit_geometry():
    with pytest.raises(ValueError, match="exact-fit"):
        FuzzSpec(geometries=(((17, 16, 2), (8, 8, 1)),))


def test_app_names_embed_seed():
    assert generate_app(42).name == "fuzz000042"
    digest = hashlib.sha256(_source(42).encode()).hexdigest()
    assert digest == hashlib.sha256(_source(42).encode()).hexdigest()

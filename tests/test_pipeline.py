"""End-to-end pipeline / framework / CLI tests."""

import pytest

from repro.cudalite import parse_program, unparse
from repro.errors import PipelineError
from repro.gpu.device import K20X
from repro.pipeline import Framework, PipelineConfig, transform_program
from repro.pipeline.cli import main as cli_main
from repro.search import fast_params

from conftest import THREE_KERNEL_SRC


def small_params(seed=1):
    params = fast_params(seed=seed)
    params.population = 16
    params.generations = 15
    params.stall_generations = 6
    return params


@pytest.fixture
def framework(three_kernel_program):
    config = PipelineConfig(device=K20X, ga_params=small_params(), verify=True)
    return Framework(three_kernel_program, config)


def test_full_run_verified(framework):
    state = framework.run()
    assert state.verified is True
    assert state.speedup > 1.0
    assert state.transform is not None
    assert state.transform.new_kernel_count >= 1


def test_stage_reports_populated(framework):
    framework.run()
    for stage in ("metadata", "targets", "graphs", "search", "codegen"):
        assert stage in framework.state.reports
    text = framework.report()
    assert "== codegen ==" in text
    assert "projected speedup" in text


def test_run_until(three_kernel_program):
    fw = Framework(
        three_kernel_program,
        PipelineConfig(device=K20X, ga_params=small_params()),
    )
    state = fw.run(until="graphs")
    assert state.ddg is not None
    assert state.oeg is not None
    assert state.search is None


def test_run_from_requires_prerequisites(three_kernel_program):
    fw = Framework(
        three_kernel_program,
        PipelineConfig(device=K20X, ga_params=small_params()),
    )
    with pytest.raises(PipelineError):
        fw.run(from_stage="search")


def test_run_resumes_from_stage(three_kernel_program):
    fw = Framework(
        three_kernel_program,
        PipelineConfig(device=K20X, ga_params=small_params(), verify=False),
    )
    fw.run(until="graphs")
    state = fw.run(from_stage="search")
    assert state.transform is not None


def test_unknown_stage_rejected(framework):
    with pytest.raises(PipelineError):
        framework.run_stage("nonsense")


def test_intervention_called(three_kernel_program):
    seen = []

    def record(state):
        seen.append(sorted(state.targets.targets))

    fw = Framework(
        three_kernel_program,
        PipelineConfig(device=K20X, ga_params=small_params(), verify=False),
    )
    fw.intervene("targets", record)
    fw.run(until="targets")
    assert seen == [["k1", "k2", "k3"]]


def test_intervention_can_amend_targets(three_kernel_program):
    """Programmer-guided transformation: manually exclude a kernel."""

    def exclude_k2(state):
        state.targets.decisions["k2"].eligible = False
        state.targets.decisions["k2"].reason = "excluded by hand"

    fw = Framework(
        three_kernel_program,
        PipelineConfig(device=K20X, ga_params=small_params(), verify=True),
    )
    fw.intervene("targets", exclude_k2)
    state = fw.run()
    for launch in state.transform.launches:
        if len(launch.members) > 1:
            assert not any(m.startswith("k2@") for m in launch.members)


def test_workdir_artifacts(three_kernel_program, tmp_path):
    config = PipelineConfig(
        device=K20X,
        ga_params=small_params(),
        verify=False,
        workdir=str(tmp_path),
    )
    Framework(three_kernel_program, config).run()
    assert (tmp_path / "metadata" / "performance.meta").exists()
    assert (tmp_path / "ddg.dot").exists()
    assert (tmp_path / "oeg.dot").exists()
    assert (tmp_path / "transformed.cu").exists()
    generated = (tmp_path / "transformed.cu").read_text()
    parse_program(generated)  # the output must be valid CudaLite


def test_transform_program_accepts_source_text():
    state = transform_program(
        THREE_KERNEL_SRC,
        PipelineConfig(device=K20X, ga_params=small_params(), verify=False),
    )
    assert state.transform is not None


def test_mode_affects_fusion_options():
    auto = PipelineConfig(mode="automated").fusion_options()
    manual = PipelineConfig(mode="manual").fusion_options()
    assert not auto.merge_deep_loops and not auto.one_sided_guards
    assert manual.merge_deep_loops and manual.one_sided_guards


def test_speedup_requires_codegen(three_kernel_program):
    fw = Framework(
        three_kernel_program,
        PipelineConfig(device=K20X, ga_params=small_params()),
    )
    with pytest.raises(PipelineError):
        _ = fw.state.speedup


# ------------------------------------------------------------------------ CLI


def test_cli_end_to_end(tmp_path, capsys):
    source_path = tmp_path / "app.cu"
    source_path.write_text(THREE_KERNEL_SRC)
    out_path = tmp_path / "out.cu"
    rc = cli_main(
        [
            str(source_path),
            "-o", str(out_path),
            "--device", "K20X",
            "--seed", "3",
            "--no-verify",
        ]
    )
    assert rc == 0
    generated = out_path.read_text()
    parse_program(generated)
    captured = capsys.readouterr()
    assert "projected speedup" in captured.out


def test_cli_until_stage(tmp_path, capsys):
    source_path = tmp_path / "app.cu"
    source_path.write_text(THREE_KERNEL_SRC)
    rc = cli_main([str(source_path), "--until", "targets", "--no-verify"])
    assert rc == 0
    captured = capsys.readouterr()
    assert "targets:" in captured.out


def test_cli_exclude(tmp_path, capsys):
    source_path = tmp_path / "app.cu"
    source_path.write_text(THREE_KERNEL_SRC)
    rc = cli_main(
        [str(source_path), "--until", "targets", "--exclude", "k1", "--no-verify"]
    )
    assert rc == 0
    assert "excluded manually" in capsys.readouterr().out

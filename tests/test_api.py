"""Tests for the repro.api facade (TransformConfig + transform)."""

import json
import os
import warnings

import pytest

from repro.api import (
    EnvKnobDeprecationWarning,
    TransformConfig,
    TransformResult,
    transform,
)
from repro.errors import ConfigError, ReproError
from repro.pipeline.cli import main as cli_main
from repro.search import fast_params

from conftest import THREE_KERNEL_SRC


def small_params(seed=1):
    params = fast_params(seed=seed)
    params.population = 16
    params.generations = 15
    params.stall_generations = 6
    return params


# -------------------------------------------------------------- precedence


def test_default_when_nothing_set():
    resolved = TransformConfig().resolved(environ={})
    assert resolved.search_workers == 0
    assert resolved.fitness_cache is True
    assert resolved.verify_groups is True
    assert resolved.verify_rtol == 0.0
    assert resolved.block_exec == "auto"
    assert resolved.telemetry is True
    assert resolved.store is False


def test_env_beats_default():
    resolved = TransformConfig().resolved(
        environ={"REPRO_SEARCH_WORKERS": "5", "REPRO_VERIFY_RTOL": "1e-6"}
    )
    assert resolved.search_workers == 5
    assert resolved.verify_rtol == 1e-6


def test_explicit_beats_env():
    config = TransformConfig(search_workers=2, verify_groups=False)
    resolved = config.resolved(
        environ={"REPRO_SEARCH_WORKERS": "5", "REPRO_VERIFY_GROUPS": "1"}
    )
    assert resolved.search_workers == 2
    assert resolved.verify_groups is False


def test_legacy_env_knob_warns():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        TransformConfig().resolved(environ={"REPRO_EVAL_RETRIES": "3"})
    messages = [str(w.message) for w in caught
                if issubclass(w.category, EnvKnobDeprecationWarning)]
    assert any("REPRO_EVAL_RETRIES" in m and "eval_retries" in m
               for m in messages)


def test_store_env_does_not_warn(tmp_path):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        resolved = TransformConfig().resolved(
            environ={"REPRO_STORE": str(tmp_path)}
        )
    assert resolved.store is True
    assert resolved.store_root == str(tmp_path)
    assert not [w for w in caught
                if issubclass(w.category, EnvKnobDeprecationWarning)]


def test_malformed_env_value_falls_back_to_default():
    resolved = TransformConfig().resolved(
        environ={"REPRO_SEARCH_WORKERS": "many", "REPRO_VERIFY_RTOL": "tiny"}
    )
    assert resolved.search_workers == 0
    assert resolved.verify_rtol == 0.0


# ------------------------------------------------------------- round-trips


def test_from_env_to_env_roundtrip(tmp_path):
    env = {
        "REPRO_FITNESS_CACHE": "0",
        "REPRO_SEARCH_WORKERS": "4",
        "REPRO_SEARCH_EXECUTOR": "process",
        "REPRO_EVAL_RETRIES": "2",
        "REPRO_VERIFY_SEED": "99",
        "REPRO_STORE": str(tmp_path),
    }
    config = TransformConfig.from_env(env)
    assert config.fitness_cache is False
    assert config.search_workers == 4
    assert config.search_executor == "process"
    assert config.eval_retries == 2
    assert config.verify_seed == 99
    assert config.store is True and config.store_root == str(tmp_path)
    back = config.to_env()
    for name, value in env.items():
        assert back[name] == value
    # a second from_env over the exported dict is a fixpoint
    assert TransformConfig.from_env(back) == config


def test_to_env_omits_unset_fields():
    assert TransformConfig().to_env() == {}
    assert TransformConfig(verify_seed=7).to_env() == {"REPRO_VERIFY_SEED": "7"}


def test_config_file_roundtrip(tmp_path):
    config = TransformConfig(
        device="K40",
        mode="manual",
        seed=7,
        exclude=("boundary_k",),
        verify_rtol=1e-7,
        store=True,
        store_root=str(tmp_path / "cache"),
    )
    path = tmp_path / "config.json"
    config.to_json(path)
    loaded = TransformConfig.from_file(path)
    assert loaded == config


def test_config_file_with_ga_params(tmp_path):
    path = tmp_path / "config.json"
    path.write_text(json.dumps({
        "seed": 3,
        "ga_params": {"population": 10, "generations": 5,
                      "penalties": {}},
    }))
    loaded = TransformConfig.from_file(path)
    assert loaded.ga_params.population == 10
    assert loaded.ga_params.generations == 5


# -------------------------------------------------------------- validation


def test_unknown_field_rejected():
    with pytest.raises(ConfigError, match="unknown config field"):
        TransformConfig.from_dict({"not_a_field": 1})


def test_invalid_values_rejected():
    with pytest.raises(ConfigError):
        TransformConfig(mode="turbo")
    with pytest.raises(ConfigError):
        TransformConfig(until="assembly")
    with pytest.raises(ConfigError):
        TransformConfig(device="RTX9090")
    with pytest.raises(ConfigError):
        TransformConfig(search_executor="fork")
    with pytest.raises(ConfigError):
        TransformConfig(block_exec="warp")


def test_config_file_invalid_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{ nope")
    with pytest.raises(ConfigError, match="not valid JSON"):
        TransformConfig.from_file(path)


def test_transform_unknown_override_rejected():
    with pytest.raises(ConfigError, match="unknown config field"):
        transform(THREE_KERNEL_SRC, banana=True)


def test_transform_rejects_unsupported_input():
    with pytest.raises(ConfigError, match="cannot transform"):
        transform(12345)


# -------------------------------------------------------------- applied_env


def test_applied_env_exports_and_restores(monkeypatch):
    monkeypatch.setenv("REPRO_SEARCH_WORKERS", "9")
    monkeypatch.delenv("REPRO_VERIFY_SEED", raising=False)
    config = TransformConfig(search_workers=1, verify_seed=5)
    with config.applied_env():
        assert os.environ["REPRO_SEARCH_WORKERS"] == "1"
        assert os.environ["REPRO_VERIFY_SEED"] == "5"
    assert os.environ["REPRO_SEARCH_WORKERS"] == "9"
    assert "REPRO_VERIFY_SEED" not in os.environ


# ------------------------------------------------------------------ facade


def test_transform_source_text_end_to_end():
    result = transform(
        THREE_KERNEL_SRC, TransformConfig(ga_params=small_params())
    )
    assert isinstance(result, TransformResult)
    assert result.verified is True
    assert result.speedup is not None and result.speedup > 1.0
    assert result.source is not None and "__global__" in result.source
    assert result.reused == {}  # no store configured
    assert set(result.stage_times) == {
        "metadata", "targets", "graphs", "search", "codegen"
    }
    assert result.config.verify_groups is True  # resolved, not None


def test_transform_until_stops_early():
    result = transform(
        THREE_KERNEL_SRC,
        TransformConfig(ga_params=small_params(), until="graphs"),
    )
    assert result.program is None and result.source is None
    assert result.speedup is None
    assert "graphs" in result.reports and "search" not in result.reports


def test_transform_overrides_apply():
    result = transform(
        THREE_KERNEL_SRC,
        TransformConfig(ga_params=small_params()),
        until="targets",
    )
    assert result.config.until == "targets"
    assert list(result.reports) == ["metadata", "targets"]


def test_transform_app_name():
    result = transform("Fluam", until="metadata")
    assert "metadata" in result.reports


def test_transform_parse_error_raises():
    with pytest.raises(ReproError):
        transform("this is not CUDA", TransformConfig())


def test_facade_matches_cli_output(tmp_path, capsys):
    """The facade and the CLI must produce the identical program."""
    source = tmp_path / "prog.cu"
    source.write_text(THREE_KERNEL_SRC)
    out = tmp_path / "out.cu"
    rc = cli_main(
        [str(source), "-o", str(out), "--seed", "1", "--no-telemetry"]
    )
    capsys.readouterr()
    assert rc == 0
    params = fast_params(seed=1)
    result = transform(
        source, TransformConfig(ga_params=params, telemetry=False)
    )
    assert result.source == out.read_text()


def test_cli_config_file(tmp_path, capsys):
    source = tmp_path / "prog.cu"
    source.write_text(THREE_KERNEL_SRC)
    config_path = tmp_path / "config.json"
    TransformConfig(until="targets", workdir=str(tmp_path / "wd")).to_json(
        config_path
    )
    rc = cli_main([str(source), "--config", str(config_path)])
    capsys.readouterr()
    assert rc == 0
    run = json.loads((tmp_path / "wd" / "run.json").read_text())
    assert run["config"]["until"] == "targets"
    # resolved env-backed fields are dumped concretely, not as null
    assert run["config"]["verify_groups"] is True
    assert run["config"]["block_exec"] == "auto"


def test_cli_flag_overrides_config_file(tmp_path, capsys):
    source = tmp_path / "prog.cu"
    source.write_text(THREE_KERNEL_SRC)
    config_path = tmp_path / "config.json"
    TransformConfig(until="metadata").to_json(config_path)
    rc = cli_main(
        [str(source), "--config", str(config_path), "--until", "targets",
         "--workdir", str(tmp_path / "wd")]
    )
    capsys.readouterr()
    assert rc == 0
    run = json.loads((tmp_path / "wd" / "run.json").read_text())
    assert run["config"]["until"] == "targets"


def test_cli_bad_config_file(tmp_path, capsys):
    source = tmp_path / "prog.cu"
    source.write_text(THREE_KERNEL_SRC)
    bad = tmp_path / "bad.json"
    bad.write_text('{"mode": "turbo"}')
    rc = cli_main([str(source), "--config", str(bad)])
    captured = capsys.readouterr()
    assert rc == 2
    assert "ConfigError" in captured.err


def test_public_surface_exports():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name
    assert repro.transform is transform
    assert repro.TransformConfig is TransformConfig

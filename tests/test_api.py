"""Tests for the repro.api facade (TransformConfig + transform)."""

import json
import os
import warnings

import pytest

from repro.api import (
    EnvKnobDeprecationWarning,
    TransformConfig,
    TransformResult,
    transform,
)
from repro.errors import ConfigError, ReproError
from repro.pipeline.cli import main as cli_main
from repro.search import fast_params

from conftest import THREE_KERNEL_SRC


def small_params(seed=1):
    params = fast_params(seed=seed)
    params.population = 16
    params.generations = 15
    params.stall_generations = 6
    return params


# -------------------------------------------------------------- precedence


def test_default_when_nothing_set():
    resolved = TransformConfig().resolved(environ={})
    assert resolved.search_workers == 0
    assert resolved.fitness_cache is True
    assert resolved.verify_groups is True
    assert resolved.verify_rtol == 0.0
    assert resolved.block_exec == "auto"
    assert resolved.telemetry is True
    assert resolved.store is False


def test_env_beats_default():
    resolved = TransformConfig().resolved(
        environ={"REPRO_SEARCH_WORKERS": "5", "REPRO_VERIFY_RTOL": "1e-6"}
    )
    assert resolved.search_workers == 5
    assert resolved.verify_rtol == 1e-6


def test_explicit_beats_env():
    config = TransformConfig(search_workers=2, verify_groups=False)
    resolved = config.resolved(
        environ={"REPRO_SEARCH_WORKERS": "5", "REPRO_VERIFY_GROUPS": "1"}
    )
    assert resolved.search_workers == 2
    assert resolved.verify_groups is False


def test_legacy_env_knob_warns():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        TransformConfig().resolved(environ={"REPRO_EVAL_RETRIES": "3"})
    messages = [str(w.message) for w in caught
                if issubclass(w.category, EnvKnobDeprecationWarning)]
    assert any("REPRO_EVAL_RETRIES" in m and "eval_retries" in m
               for m in messages)


def test_store_env_does_not_warn(tmp_path):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        resolved = TransformConfig().resolved(
            environ={"REPRO_STORE": str(tmp_path)}
        )
    assert resolved.store is True
    assert resolved.store_root == str(tmp_path)
    assert not [w for w in caught
                if issubclass(w.category, EnvKnobDeprecationWarning)]


def test_malformed_env_value_falls_back_to_default():
    resolved = TransformConfig().resolved(
        environ={"REPRO_SEARCH_WORKERS": "many", "REPRO_VERIFY_RTOL": "tiny"}
    )
    assert resolved.search_workers == 0
    assert resolved.verify_rtol == 0.0


# ------------------------------------------------------------- round-trips


def test_from_env_to_env_roundtrip(tmp_path):
    env = {
        "REPRO_FITNESS_CACHE": "0",
        "REPRO_SEARCH_WORKERS": "4",
        "REPRO_SEARCH_EXECUTOR": "process",
        "REPRO_EVAL_RETRIES": "2",
        "REPRO_VERIFY_SEED": "99",
        "REPRO_STORE": str(tmp_path),
    }
    config = TransformConfig.from_env(env)
    assert config.fitness_cache is False
    assert config.search_workers == 4
    assert config.search_executor == "process"
    assert config.eval_retries == 2
    assert config.verify_seed == 99
    assert config.store is True and config.store_root == str(tmp_path)
    back = config.to_env()
    for name, value in env.items():
        assert back[name] == value
    # a second from_env over the exported dict is a fixpoint
    assert TransformConfig.from_env(back) == config


def test_to_env_omits_unset_fields():
    assert TransformConfig().to_env() == {}
    assert TransformConfig(verify_seed=7).to_env() == {"REPRO_VERIFY_SEED": "7"}


def test_config_file_roundtrip(tmp_path):
    config = TransformConfig(
        device="K40",
        mode="manual",
        seed=7,
        exclude=("boundary_k",),
        verify_rtol=1e-7,
        store=True,
        store_root=str(tmp_path / "cache"),
    )
    path = tmp_path / "config.json"
    config.to_json(path)
    loaded = TransformConfig.from_file(path)
    assert loaded == config


def test_config_file_with_ga_params(tmp_path):
    path = tmp_path / "config.json"
    path.write_text(json.dumps({
        "seed": 3,
        "ga_params": {"population": 10, "generations": 5,
                      "penalties": {}},
    }))
    loaded = TransformConfig.from_file(path)
    assert loaded.ga_params.population == 10
    assert loaded.ga_params.generations == 5


# -------------------------------------------------------------- validation


def test_unknown_field_rejected():
    with pytest.raises(ConfigError, match="unknown config field"):
        TransformConfig.from_dict({"not_a_field": 1})


def test_invalid_values_rejected():
    with pytest.raises(ConfigError):
        TransformConfig(mode="turbo")
    with pytest.raises(ConfigError):
        TransformConfig(until="assembly")
    with pytest.raises(ConfigError):
        TransformConfig(device="RTX9090")
    with pytest.raises(ConfigError):
        TransformConfig(search_executor="fork")
    with pytest.raises(ConfigError):
        TransformConfig(block_exec="warp")


def test_config_file_invalid_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{ nope")
    with pytest.raises(ConfigError, match="not valid JSON"):
        TransformConfig.from_file(path)


def test_transform_unknown_override_rejected():
    with pytest.raises(ConfigError, match="unknown config field"):
        transform(THREE_KERNEL_SRC, banana=True)


def test_transform_rejects_unsupported_input():
    with pytest.raises(ConfigError, match="cannot transform"):
        transform(12345)


# -------------------------------------------------------------- applied_env


def test_applied_env_exports_and_restores(monkeypatch):
    monkeypatch.setenv("REPRO_SEARCH_WORKERS", "9")
    monkeypatch.delenv("REPRO_VERIFY_SEED", raising=False)
    config = TransformConfig(search_workers=1, verify_seed=5)
    with config.applied_env():
        assert os.environ["REPRO_SEARCH_WORKERS"] == "1"
        assert os.environ["REPRO_VERIFY_SEED"] == "5"
    assert os.environ["REPRO_SEARCH_WORKERS"] == "9"
    assert "REPRO_VERIFY_SEED" not in os.environ


# ------------------------------------------------------------------ facade


def test_transform_source_text_end_to_end():
    result = transform(
        THREE_KERNEL_SRC, TransformConfig(ga_params=small_params())
    )
    assert isinstance(result, TransformResult)
    assert result.verified is True
    assert result.speedup is not None and result.speedup > 1.0
    assert result.source is not None and "__global__" in result.source
    assert result.reused == {}  # no store configured
    assert set(result.stage_times) == {
        "metadata", "targets", "graphs", "search", "codegen"
    }
    assert result.config.verify_groups is True  # resolved, not None


def test_transform_until_stops_early():
    result = transform(
        THREE_KERNEL_SRC,
        TransformConfig(ga_params=small_params(), until="graphs"),
    )
    assert result.program is None and result.source is None
    assert result.speedup is None
    assert "graphs" in result.reports and "search" not in result.reports


def test_transform_overrides_apply():
    result = transform(
        THREE_KERNEL_SRC,
        TransformConfig(ga_params=small_params()),
        until="targets",
    )
    assert result.config.until == "targets"
    assert list(result.reports) == ["metadata", "targets"]


def test_transform_app_name():
    result = transform("Fluam", until="metadata")
    assert "metadata" in result.reports


def test_transform_parse_error_raises():
    with pytest.raises(ReproError):
        transform("this is not CUDA", TransformConfig())


def test_facade_matches_cli_output(tmp_path, capsys):
    """The facade and the CLI must produce the identical program."""
    source = tmp_path / "prog.cu"
    source.write_text(THREE_KERNEL_SRC)
    out = tmp_path / "out.cu"
    rc = cli_main(
        [str(source), "-o", str(out), "--seed", "1", "--no-telemetry"]
    )
    capsys.readouterr()
    assert rc == 0
    params = fast_params(seed=1)
    result = transform(
        source, TransformConfig(ga_params=params, telemetry=False)
    )
    assert result.source == out.read_text()


def test_cli_config_file(tmp_path, capsys):
    source = tmp_path / "prog.cu"
    source.write_text(THREE_KERNEL_SRC)
    config_path = tmp_path / "config.json"
    TransformConfig(until="targets", workdir=str(tmp_path / "wd")).to_json(
        config_path
    )
    rc = cli_main([str(source), "--config", str(config_path)])
    capsys.readouterr()
    assert rc == 0
    run = json.loads((tmp_path / "wd" / "run.json").read_text())
    assert run["config"]["until"] == "targets"
    # resolved env-backed fields are dumped concretely, not as null
    assert run["config"]["verify_groups"] is True
    assert run["config"]["block_exec"] == "auto"


def test_cli_flag_overrides_config_file(tmp_path, capsys):
    source = tmp_path / "prog.cu"
    source.write_text(THREE_KERNEL_SRC)
    config_path = tmp_path / "config.json"
    TransformConfig(until="metadata").to_json(config_path)
    rc = cli_main(
        [str(source), "--config", str(config_path), "--until", "targets",
         "--workdir", str(tmp_path / "wd")]
    )
    capsys.readouterr()
    assert rc == 0
    run = json.loads((tmp_path / "wd" / "run.json").read_text())
    assert run["config"]["until"] == "targets"


def test_cli_bad_config_file(tmp_path, capsys):
    source = tmp_path / "prog.cu"
    source.write_text(THREE_KERNEL_SRC)
    bad = tmp_path / "bad.json"
    bad.write_text('{"mode": "turbo"}')
    rc = cli_main([str(source), "--config", str(bad)])
    captured = capsys.readouterr()
    assert rc == 2
    assert "ConfigError" in captured.err


def test_public_surface_exports():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name
    assert repro.transform is transform
    assert repro.TransformConfig is TransformConfig


# ---------------------------------------------------------------- job core


def test_submit_returns_a_completed_job(tmp_path):
    from repro.api import result, status, submit

    job = submit(
        THREE_KERNEL_SRC,
        TransformConfig(ga_params=small_params(), workdir=str(tmp_path)),
    )
    assert job.job_id.startswith(job.key[:16])
    outcome = job.result(timeout=300)
    assert isinstance(outcome, TransformResult)
    assert outcome.speedup is not None
    assert job.status() == "done"
    assert job.done()
    assert job.exception() is None
    # lookups by id route through the registry
    assert status(job.job_id) == "done"
    assert result(job.job_id) is outcome


def test_identical_submissions_share_a_key_not_a_job_id():
    from repro.api import submit

    config = TransformConfig(ga_params=small_params(), until="metadata")
    first = submit(THREE_KERNEL_SRC, config, inline=True)
    second = submit(THREE_KERNEL_SRC, config, inline=True)
    assert first.key == second.key
    assert first.job_id != second.job_id


def test_semantic_config_changes_the_request_key():
    from repro.api import submit

    base = TransformConfig(ga_params=small_params(), until="metadata")
    cold = submit(THREE_KERNEL_SRC, base, inline=True)
    reseeded = submit(
        THREE_KERNEL_SRC, base, inline=True, seed=999
    )
    assert cold.key != reseeded.key


def test_output_paths_do_not_change_the_request_key(tmp_path):
    from repro.api import submit

    config = TransformConfig(ga_params=small_params(), until="metadata")
    plain = submit(THREE_KERNEL_SRC, config, inline=True)
    routed = submit(
        THREE_KERNEL_SRC, config, inline=True, workdir=str(tmp_path)
    )
    assert plain.key == routed.key


def test_unknown_job_id_raises():
    from repro.api import status
    from repro.errors import JobNotFound

    with pytest.raises(JobNotFound):
        status("no-such-job")


def test_bad_input_fails_at_submit_time():
    from repro.api import submit

    with pytest.raises(ReproError):
        submit("int main( {", TransformConfig())


def test_failed_job_reports_and_reraises(monkeypatch):
    import repro.api as api_module
    from repro.api import submit
    from repro.errors import PipelineError

    class ExplodingFramework:
        def __init__(self, *args, **kwargs):
            pass

        def run(self, until=None):
            raise PipelineError("stage blew up")

    monkeypatch.setattr(api_module, "Framework", ExplodingFramework)
    job = submit(THREE_KERNEL_SRC, TransformConfig(), inline=True)
    assert job.status() == "failed"
    assert isinstance(job.exception(), ReproError)
    with pytest.raises(ReproError):
        job.result()


def test_transform_is_the_submit_facade():
    outcome = transform(
        THREE_KERNEL_SRC,
        TransformConfig(ga_params=small_params(), until="metadata"),
    )
    assert isinstance(outcome, TransformResult)


# ------------------------------------------------- island knob round-trip


ISLAND_KNOBS = {
    "islands": ("REPRO_ISLANDS", 4),
    "migration_interval": ("REPRO_ISLANDS_MIGRATION_INTERVAL", 2),
    "migration_size": ("REPRO_ISLANDS_MIGRATION_SIZE", 3),
    "surrogate_topk": ("REPRO_ISLANDS_SURROGATE_TOPK", 0.25),
}


def test_island_knobs_round_trip_through_the_environment():
    config = TransformConfig(
        **{field: value for field, (_env, value) in ISLAND_KNOBS.items()}
    )
    env = config.to_env()
    for field, (env_name, value) in ISLAND_KNOBS.items():
        assert env[env_name] == str(value), field
    rebuilt = TransformConfig.from_env(environ=env)
    for field, (_env, value) in ISLAND_KNOBS.items():
        assert getattr(rebuilt, field) == value, field
    resolved = TransformConfig().resolved(environ=env)
    for field, (_env, value) in ISLAND_KNOBS.items():
        assert getattr(resolved, field) == value, field


def test_island_knobs_reach_the_resolved_ga_params():
    config = TransformConfig(
        ga_params=small_params(),
        **{field: value for field, (_env, value) in ISLAND_KNOBS.items()},
    )
    params = config.resolved().resolved_ga_params()
    assert params.islands == 4
    assert params.migration_interval == 2
    assert params.migration_size == 3
    assert params.surrogate_topk == 0.25


def test_island_knobs_survive_applied_env_into_a_subprocess():
    """applied_env() must carry all four island knobs into spawned
    workers: a child that re-resolves from its inherited environment
    sees exactly the parent's values, none dropped."""
    import subprocess
    import sys

    config = TransformConfig(
        **{field: value for field, (_env, value) in ISLAND_KNOBS.items()}
    )
    probe = (
        "import json, os\n"
        "from repro.api import TransformConfig\n"
        "r = TransformConfig().resolved(environ=os.environ)\n"
        "print(json.dumps({f: getattr(r, f) for f in "
        f"{sorted(ISLAND_KNOBS)!r}}}))\n"
    )
    with config.applied_env():
        out = subprocess.run(
            [sys.executable, "-c", probe],
            capture_output=True,
            text=True,
            check=True,
            env={
                **os.environ,
                "PYTHONPATH": os.pathsep.join(
                    p for p in sys.path if p
                ),
            },
        ).stdout
    seen = json.loads(out)
    for field, (_env, value) in ISLAND_KNOBS.items():
        assert seen[field] == value, f"{field} dropped in the subprocess"

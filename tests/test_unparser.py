"""Unparser tests: formatting and the parse/unparse round-trip property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cudalite import ast_nodes as ast
from repro.cudalite import builders as b
from repro.cudalite.parser import parse_expr, parse_program
from repro.cudalite.unparser import unparse, unparse_expr

from conftest import CHAIN_SRC, DIFFUSE_SRC, SEPARABLE_SRC, THREE_KERNEL_SRC


@pytest.mark.parametrize(
    "source", [DIFFUSE_SRC, CHAIN_SRC, THREE_KERNEL_SRC, SEPARABLE_SRC]
)
def test_round_trip_fixture_programs(source):
    program = parse_program(source)
    assert parse_program(unparse(program)) == program


@pytest.mark.parametrize(
    "text",
    [
        "a + b * c",
        "(a + b) * c",
        "a - (b - c)",
        "-a * b",
        "a && b || c",
        "a && (b || c)",
        "x < y ? p + 1 : q",
        "A[i + 1][j - 2][k]",
        "sqrt(fabs(x))",
        "blockIdx.x * blockDim.x + threadIdx.x",
        "a / b / c",
        "a / (b / c)",
        "!(a < b)",
        "a % 2 == 0",
    ],
)
def test_expression_round_trip(text):
    expr = parse_expr(text)
    assert parse_expr(unparse_expr(expr)) == expr


def test_minimal_parentheses():
    assert unparse_expr(parse_expr("a + b * c")) == "a + b * c"
    assert unparse_expr(parse_expr("(a + b) * c")) == "(a + b) * c"
    assert unparse_expr(parse_expr("a * b + c")) == "a * b + c"


def test_indentation_style(diffuse_program):
    text = unparse(diffuse_program)
    assert "    int i = blockIdx.x * blockDim.x + threadIdx.x;" in text
    assert "\t" not in text


def test_float_literal_text_preserved():
    program = parse_program(
        "__global__ void k(double *A) { A[0] = 0.25; A[1] = 1e-3; }\n"
    )
    text = unparse(program)
    assert "0.25" in text
    assert "1e-3" in text


def test_for_loop_formats_increment():
    program = parse_program(
        "__global__ void k(double *A, int n) {"
        " for (int m = 0; m < n; m++) { A[m] = 1.0; }"
        " for (int q = 0; q < n; q += 2) { A[q] = 2.0; }"
        "}"
    )
    text = unparse(program)
    assert "m++" in text
    assert "q += 2" in text


def test_shared_decl_format():
    program = parse_program(
        "__global__ void k(double *A) { __shared__ double t[18][10]; }"
    )
    assert "__shared__ double t[18][10];" in unparse(program)


def test_launch_format(diffuse_program):
    text = unparse(diffuse_program)
    assert "diffuse<<<grid, block>>>(A, B, nx, ny, nz, 0.25);" in text


# ---------------------------------------------------------------- hypothesis


_names = st.sampled_from(["a", "b", "c", "x", "y", "n"])


def _exprs(depth):
    if depth <= 0:
        return st.one_of(
            st.integers(min_value=0, max_value=99).map(ast.IntLit),
            _names.map(ast.Ident),
        )
    sub = _exprs(depth - 1)
    return st.one_of(
        st.integers(min_value=0, max_value=99).map(ast.IntLit),
        _names.map(ast.Ident),
        st.tuples(
            st.sampled_from(["+", "-", "*", "/", "<", "<=", ">", ">=", "==", "!=", "&&", "||"]),
            sub,
            sub,
        ).map(lambda t: ast.Binary(t[0], t[1], t[2])),
        st.tuples(st.sampled_from(["-", "!"]), sub).map(
            lambda t: ast.Unary(t[0], t[1])
        ),
        st.tuples(sub, sub, sub).map(lambda t: ast.Ternary(t[0], t[1], t[2])),
        st.tuples(_names, st.lists(sub, min_size=1, max_size=3)).map(
            lambda t: ast.Index(ast.Ident(t[0]), tuple(t[1]))
        ),
    )


@given(_exprs(3))
@settings(max_examples=200, deadline=None)
def test_expression_round_trip_property(expr):
    """After one normalization round, unparse/parse is a fix-point.

    (The parser folds ``-<literal>`` into a negative literal, so raw ASTs
    may normalize once; the emitted text must then be stable.)
    """
    text = unparse_expr(expr)
    normalized = parse_expr(text)
    text2 = unparse_expr(normalized)
    assert parse_expr(text2) == normalized


@given(
    st.lists(
        st.tuples(_names, _exprs(2)),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=100, deadline=None)
def test_statement_round_trip_property(assignments):
    stmts = [b.assign(b.idx("A", name), value) for name, value in assignments]
    kernel = b.kernel(
        "k",
        [b.param("double", "A", pointer=True)]
        + [b.param("int", v) for v in sorted({n for n, _ in assignments})]
        + [b.param("int", q) for q in ("a", "b", "c", "x", "y", "n")
           if q not in {n for n, _ in assignments}],
        stmts,
    )
    program = b.program([kernel])
    # fix-point after one normalization round (negative-literal folding)
    normalized = parse_program(unparse(program))
    assert parse_program(unparse(normalized)) == normalized

"""Semantic checker tests."""

import pytest

from repro.cudalite import check_program, parse_program
from repro.errors import SemanticError


def check(source):
    return check_program(parse_program(source))


def test_valid_program_passes(diffuse_program):
    syms = check_program(diffuse_program)
    assert "diffuse" in syms
    assert syms["diffuse"].pointer_params == ("A", "B")


def test_undefined_name_rejected():
    with pytest.raises(SemanticError, match="undefined name"):
        check("__global__ void k(double *A) { A[0] = ghost; }")


def test_duplicate_kernel_names_rejected():
    with pytest.raises(SemanticError, match="duplicate"):
        check(
            "__global__ void k(double *A) { }\n"
            "__global__ void k(double *B) { }\n"
        )


def test_bare_pointer_use_rejected():
    """Pointer aliasing is excluded by construction (paper Limitations)."""
    with pytest.raises(SemanticError, match="without subscripts"):
        check("__global__ void k(double *A, double *B) { B[0] = A + 1.0; }")


def test_subscript_of_scalar_rejected():
    with pytest.raises(SemanticError, match="non-array"):
        check("__global__ void k(double *A, int n) { A[0] = n[0]; }")


def test_geometry_requires_member_access():
    with pytest.raises(SemanticError):
        check("__global__ void k(double *A) { A[0] = threadIdx; }")


def test_unknown_function_rejected():
    with pytest.raises(SemanticError, match="unknown function"):
        check("__global__ void k(double *A) { A[0] = frobnicate(1.0); }")


def test_math_intrinsics_allowed():
    syms = check(
        "__global__ void k(double *A) {"
        " A[0] = sqrt(2.0) + min(1.0, exp(0.5)) + fabs(-1.0);"
        "}"
    )
    assert "k" in syms


def test_shared_needs_constant_dims():
    with pytest.raises(SemanticError, match="positive integer constants"):
        check(
            "__global__ void k(double *A, int n) { __shared__ double t[n]; }"
        )


def test_shared_needs_dims():
    with pytest.raises(SemanticError, match="needs array dimensions"):
        check("__global__ void k(double *A) { __shared__ double t; }")


def test_shared_constant_arithmetic_dims_ok():
    syms = check(
        "__global__ void k(double *A) { __shared__ double t[8 + 2][4 * 2]; }"
    )
    assert syms["k"].shared_arrays["t"] == (10, 8)


def test_kernel_cannot_return_value():
    with pytest.raises(SemanticError, match="cannot return"):
        check("__global__ void k(double *A) { return 1; }")


def test_launch_of_undefined_kernel_rejected():
    with pytest.raises(SemanticError, match="undefined kernel"):
        check(
            "int main() { dim3 g(1, 1, 1); dim3 b(8, 1, 1);"
            " nothere<<<g, b>>>(); return 0; }"
        )


def test_launch_arity_checked():
    with pytest.raises(SemanticError, match="expects"):
        check(
            "__global__ void k(double *A, int n) { }\n"
            "int main() { double *A = cudaMalloc1D(8);"
            " dim3 g(1, 1, 1); dim3 b(8, 1, 1);"
            " k<<<g, b>>>(A); return 0; }"
        )


def test_loop_variable_in_scope():
    syms = check(
        "__global__ void k(double *A, int n) {"
        " for (int m = 0; m < n; m++) { A[m] = 1.0; }"
        "}"
    )
    assert "m" in syms["k"].locals

"""Volume estimation, metadata gathering and file round-trip tests."""

import pytest

from repro.analysis.metadata import ProgramMetadata
from repro.analysis.volume import (
    bind_scalars,
    estimate_volume,
    eval_scalar_expr,
    extract_guard_bounds,
)
from repro.cudalite.parser import parse_expr, parse_kernel
from repro.gpu.device import K20X
from repro.gpu.profiler import declared_shared_bytes, gather_metadata


GUARDED = """
__global__ void k(double *A, const double *B, int nx, int ny, int nz) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if (i >= 1 && i < nx - 1 && j >= 2 && j < ny) {
        for (int k = 0; k < nz; k++) {
            A[i][j][k] = B[i][j][k] * 2.0;
        }
    }
}
"""


def test_eval_scalar_expr():
    env = {"nx": 32, "c": 0.5}
    assert eval_scalar_expr(parse_expr("nx - 1"), env) == 31
    assert eval_scalar_expr(parse_expr("nx * 2 + 1"), env) == 65
    assert eval_scalar_expr(parse_expr("c"), env) == 0.5
    assert eval_scalar_expr(parse_expr("missing"), env) is None


def test_guard_bounds_extraction():
    kernel = parse_kernel(GUARDED)
    bounds = extract_guard_bounds(
        kernel, {"i": "x", "j": "y"}, {"nx": 32, "ny": 16, "nz": 4},
        {"i": 32, "j": 16},
    )
    assert (bounds["i"].lo, bounds["i"].hi) == (1, 31)
    assert (bounds["j"].lo, bounds["j"].hi) == (2, 16)


def test_equality_guard_pins_axis():
    kernel = parse_kernel(
        "__global__ void k(double *A, int nx) {"
        " int i = blockIdx.x * blockDim.x + threadIdx.x;"
        " if (i == 0) { A[i] = 1.0; } }"
    )
    bounds = extract_guard_bounds(kernel, {"i": "x"}, {"nx": 32}, {"i": 32})
    assert bounds["i"].extent == 1


def test_estimate_volume_active_domain():
    kernel = parse_kernel(GUARDED)
    volume = estimate_volume(
        kernel, (4, 2, 1), (8, 8, 1), {"nx": 32, "ny": 16, "nz": 4}
    )
    assert volume.launched_threads == 32 * 16
    assert volume.active_threads == 30 * 14
    assert volume.points_per_array["A"] == 30 * 14 * 4  # x loop trips
    assert volume.arrays_read == {"B"}
    assert volume.arrays_written == {"A"}
    assert volume.flops > 0


def test_bind_scalars():
    kernel = parse_kernel(GUARDED)
    env = bind_scalars(kernel, (32, 16, 4))
    assert env == {"nx": 32, "ny": 16, "nz": 4}


def test_bind_scalars_arity_error():
    from repro.errors import AnalysisError

    kernel = parse_kernel(GUARDED)
    with pytest.raises(AnalysisError):
        bind_scalars(kernel, (32, 16))


def test_declared_shared_bytes():
    kernel = parse_kernel(
        "__global__ void k(double *A) { __shared__ double t[10][12]; }"
    )
    assert declared_shared_bytes(kernel) == 10 * 12 * 8


# ----------------------------------------------------------------- metadata


def test_gather_metadata_basic(three_kernel_program):
    meta = gather_metadata(three_kernel_program, K20X)
    assert set(meta.kernels()) == {"k1", "k2", "k3"}
    assert len(meta.launch_order) == 3
    assert meta.array_shapes["A"] == (32, 32, 8)
    perf = meta.performance["k1"]
    assert perf.runtime_s > 0
    assert perf.occupancy > 0
    ops = meta.operations["k1"]
    assert ops.arrays_read == ["B"]
    assert ops.arrays_written == ["A"]


def test_metadata_shared_arrays_cross_kernel(three_kernel_program):
    meta = gather_metadata(three_kernel_program, K20X)
    # B is read by k1 and k2; A by k1 (write) and k3 (read)
    assert "B" in meta.operations["k1"].shared_arrays
    assert "A" in meta.operations["k3"].shared_arrays


def test_metadata_launch_order_has_scalars(three_kernel_program):
    meta = gather_metadata(three_kernel_program, K20X)
    kernel, args, grid, block, scalars = meta.launch_order[0]
    assert kernel == "k1"
    assert args == ("A", "B")
    assert scalars == (32.0, 32.0, 8.0)


def test_metadata_file_roundtrip(three_kernel_program, tmp_path):
    meta = gather_metadata(three_kernel_program, K20X)
    meta.write(tmp_path)
    assert (tmp_path / "performance.meta").exists()
    assert (tmp_path / "operations.meta").exists()
    assert (tmp_path / "device.meta").exists()
    loaded = ProgramMetadata.read(tmp_path)
    assert loaded.device.name == "K20X"
    assert set(loaded.performance) == set(meta.performance)
    assert loaded.operations["k1"].arrays_read == meta.operations["k1"].arrays_read
    assert loaded.launch_order == meta.launch_order
    assert loaded.array_shapes == meta.array_shapes
    assert loaded.performance["k2"].runtime_s == pytest.approx(
        meta.performance["k2"].runtime_s
    )


def test_metadata_files_are_hand_editable(three_kernel_program, tmp_path):
    """The programmer-intervention surface: edit a value, read it back."""
    meta = gather_metadata(three_kernel_program, K20X)
    meta.write(tmp_path)
    perf = (tmp_path / "performance.meta").read_text()
    perf = perf.replace("invocations = 1", "invocations = 7", 1)
    (tmp_path / "performance.meta").write_text(perf)
    loaded = ProgramMetadata.read(tmp_path)
    assert 7 in {p.invocations for p in loaded.performance.values()}


def test_total_runtime(three_kernel_program):
    meta = gather_metadata(three_kernel_program, K20X)
    total = meta.total_runtime_s()
    assert total == pytest.approx(
        sum(p.runtime_s * p.invocations for p in meta.performance.values())
    )

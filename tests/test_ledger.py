"""The run ledger: append, query, lineage, concurrency, fuzz (PR 8).

The ledger rides the artifact store's envelope contract, so most tests
craft records directly (no pipeline run needed) and the concurrency test
reuses the multi-process harness of ``test_store_concurrency.py``: two
writer processes appending records while a reader queries — every append
must survive and no query may crash.
"""

import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.fuzz.campaign import CampaignConfig, run_campaign
from repro.observability import telemetry
from repro.observability.ledger import (
    LEDGER_SCHEMA,
    RUN_LEDGER_NAMESPACE,
    RunLedger,
    append_record,
    build_fuzz_record,
    build_transform_record,
    config_digest,
)
from repro.store.artifact_store import ArtifactStore


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def _record(app="Fluam", seed=1, exit_code=0, total=1.0, when=None,
            config=None):
    record = build_transform_record(
        source=f"app:{app}",
        config=config if config is not None else {"seed": seed, "mode": "automated"},
        seed=seed,
        stage_times={"search": total / 2, "codegen": total / 2},
        speedup=1.2,
        verified=True,
        demotions=0,
        exit_code=exit_code,
        reused={},
        store_stats={"hits": 0, "misses": 1, "hit_rate": 0.0},
        counters={"pipeline_stage_runs_total": 5.0},
        trace={"span_count": 0, "critical_path": [], "self_time_ms": {}},
    )
    if when is not None:
        record["unix_time"] = when
    return record


# ------------------------------------------------------------------ digest


def test_config_digest_ignores_output_paths():
    base = {"seed": 1, "device": "K20X", "workdir": "/tmp/a",
            "metrics_out": "a.json", "trace_out": "t.json",
            "store": True, "store_root": "/x", "telemetry": True}
    other = dict(base, workdir="/tmp/b", metrics_out=None, trace_out=None,
                 store=False, store_root="/y", telemetry=False)
    assert config_digest(base) == config_digest(other)
    assert config_digest(base) != config_digest(dict(base, seed=2))


# ----------------------------------------------------------- append/query


def test_append_assigns_unique_ids_and_roundtrips(store):
    ids = {append_record(store, _record(when=i)) for i in range(5)}
    assert len(ids) == 5 and None not in ids
    ledger = RunLedger(store)
    assert len(ledger.records()) == 5
    got = ledger.get(sorted(ids)[0])
    assert got["schema"] == LEDGER_SCHEMA
    assert got["kind"] == "transform"
    assert got["app"] == "Fluam"


def test_records_sorted_oldest_first_and_filters(store):
    append_record(store, _record(app="Fluam", when=100.0))
    append_record(store, _record(app="Mini", when=200.0))
    append_record(store, _record(app="Fluam", when=300.0, exit_code=2))
    ledger = RunLedger(store)
    times = [r["unix_time"] for r in ledger.records()]
    assert times == sorted(times)
    assert [r["app"] for r in ledger.by_app("Mini")] == ["Mini"]
    assert len(ledger.list(app="Fluam")) == 2
    assert ledger.latest()["unix_time"] == 300.0
    assert len(ledger.list(limit=2)) == 2
    assert ledger.list(limit=2)[-1]["unix_time"] == 300.0


def test_ledger_accepts_root_path(tmp_path, store):
    append_record(store, _record())
    assert len(RunLedger(store.root).records()) == 1
    assert RunLedger(tmp_path / "empty").records() == []


def test_previous_matches_lineage_and_skips_failures(store):
    cfg = {"seed": 7, "mode": "automated"}
    append_record(store, _record(when=1.0, config=cfg))
    append_record(store, _record(when=2.0, config=cfg, exit_code=2))
    append_record(store, _record(when=3.0, config={"seed": 8}))
    rid = append_record(store, _record(when=4.0, config=cfg))
    ledger = RunLedger(store)
    current = ledger.get(rid)
    baseline = ledger.previous(current)
    # same config lineage, successful, most recent earlier run
    assert baseline["unix_time"] == 1.0
    # a lone record has no baseline
    first = ledger.records()[0]
    assert ledger.previous(first) is None


def test_resolve_latest_prev_and_prefix(store):
    a = append_record(store, _record(when=1.0))
    b = append_record(store, _record(when=2.0))
    ledger = RunLedger(store)
    assert ledger.resolve("latest")["run_id"] == b
    assert ledger.resolve("prev")["run_id"] == a
    assert ledger.resolve(a[:12])["run_id"] == a
    assert ledger.resolve("nope") is None


def test_corrupt_record_is_skipped_not_fatal(store):
    keep = append_record(store, _record(when=1.0))
    bad = append_record(store, _record(when=2.0))
    ledger = RunLedger(store)
    path = store.path_for(RUN_LEDGER_NAMESPACE, bad)
    path.write_text("{ not json")
    records = ledger.records()
    assert [r["run_id"] for r in records] == [keep]
    # the corrupt entry was quarantined by the store's validation
    assert not path.exists()


def test_wrong_schema_payload_is_skipped(store):
    append_record(store, _record())
    store.put(RUN_LEDGER_NAMESPACE, "f" * 64, {"schema": "other/1"})
    assert len(RunLedger(store).records()) == 1


# ------------------------------------------------------------ fuzz records


def test_build_fuzz_record_aggregates_report():
    report = {
        "campaign": {
            "seed_start": 0, "seed_end": 9, "seeds_run": 10,
            "oracles": ["transform"], "duration_seconds": 1.5,
            "stopped_early": False,
        },
        "summary": {
            "apps": 10, "failures": 2, "crashes": 1, "unbucketed": 0,
            "buckets": {"codegen:KeyError": 1},
        },
        "failures": [
            {"oracle": "transform"}, {"oracle": "transform"},
        ],
    }
    record = build_fuzz_record(report)
    assert record["kind"] == "fuzz"
    assert record["exit_code"] == 1
    fuzz = record["fuzz"]
    assert fuzz["seeds_run"] == 10
    assert fuzz["oracle_failures"] == {"transform": 2}
    assert fuzz["crash_buckets"] == {"codegen:KeyError": 1}
    clean = dict(report, summary=dict(report["summary"], failures=0,
                                      crashes=0))
    assert build_fuzz_record(clean)["exit_code"] == 0


def test_campaign_appends_ledger_record(tmp_path):
    root = tmp_path / "store"
    with telemetry(True):
        report = run_campaign(
            CampaignConfig(
                seed_start=0, seed_end=0, oracles=("transform",),
                reduce=False, store=True, store_root=str(root),
            )
        )
    records = RunLedger(root).list(kind="fuzz")
    assert len(records) == 1
    assert records[0]["fuzz"]["seeds_run"] == report["summary"]["apps"]


def test_campaign_skips_ledger_without_telemetry(tmp_path):
    root = tmp_path / "store"
    with telemetry(False):
        run_campaign(
            CampaignConfig(
                seed_start=0, seed_end=0, oracles=("transform",),
                reduce=False, store=True, store_root=str(root),
            )
        )
    assert RunLedger(root).records() == []


# ------------------------------------------------------------- concurrency


APPENDER = """
import sys
sys.path.insert(0, {src!r})
from repro.observability.ledger import append_record, build_transform_record
from repro.store.artifact_store import ArtifactStore

store = ArtifactStore({root!r})
ok = 0
for n in range({rounds}):
    record = build_transform_record(
        source="app:Fluam",
        config={{"seed": {writer}, "mode": "automated"}},
        seed={writer},
        stage_times={{"search": 0.1}},
        exit_code=0,
    )
    if append_record(store, record) is not None:
        ok += 1
print(ok)
"""

ROUNDS = 40


def _spawn_appender(root, writer_id):
    src = Path(__file__).resolve().parent.parent / "src"
    code = APPENDER.format(
        src=str(src), root=str(root), rounds=ROUNDS, writer=writer_id
    )
    return subprocess.Popen(
        [sys.executable, "-c", code],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env={"PATH": "/usr/bin:/bin"},
    )


def test_concurrent_appenders_never_lose_or_corrupt(tmp_path):
    root = tmp_path / "store"
    writers = [_spawn_appender(root, 0), _spawn_appender(root, 1)]
    ledger = RunLedger(root)

    # queries during the race must never raise
    deadline = time.monotonic() + 120
    while any(proc.poll() is None for proc in writers):
        ledger.records()
        ledger.latest()
        assert time.monotonic() < deadline, "appenders hung"

    for writer_id, proc in enumerate(writers):
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, (writer_id, err)
        assert int(out.strip()) == ROUNDS, (writer_id, out, err)

    records = ledger.records()
    assert len(records) == 2 * ROUNDS  # unique ids: nothing overwritten
    assert len({r["run_id"] for r in records}) == 2 * ROUNDS
    by_seed = {0: 0, 1: 0}
    for r in records:
        by_seed[r["seed"]] += 1
    assert by_seed == {0: ROUNDS, 1: ROUNDS}


# -------------------------------------------------- schema checker (CI)


def test_check_telemetry_validates_ledger(tmp_path, store):
    append_record(store, _record())
    script = Path(__file__).resolve().parent.parent / "scripts"
    result = subprocess.run(
        [sys.executable, str(script / "check_telemetry.py"),
         "--ledger", str(store.root)],
        capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stderr
    assert "ledger ok (1 records)" in result.stdout

    # a record missing required fields must fail the check
    bad = dict(_record())
    bad.pop("config_digest")
    rid = "a" * 64
    bad["run_id"] = rid
    store.put(RUN_LEDGER_NAMESPACE, rid, bad)
    result = subprocess.run(
        [sys.executable, str(script / "check_telemetry.py"),
         "--ledger", str(store.root)],
        capture_output=True, text=True,
    )
    assert result.returncode == 1
    assert "config_digest" in result.stderr

"""Performance-model tests: redundancy factors and projection properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.volume import LaunchVolume
from repro.gpu.device import K20X, K40
from repro.gpu.perfmodel import (
    CodegenTraits,
    ProgramProjection,
    cache_redundancy,
    estimate_registers,
    project_kernel,
    tile_halo_factor,
)


def make_volume(points=65536, reads=("B",), writes=("A",), flops=None):
    return LaunchVolume(
        kernel_name="k",
        active_threads=points,
        launched_threads=points,
        points_per_array={a: points for a in list(reads) + list(writes)},
        arrays_read=set(reads),
        arrays_written=set(writes),
        flops=flops if flops is not None else points * 6.0,
    )


def test_cache_redundancy_grows_with_radius():
    assert cache_redundancy(0) == 1.0
    assert cache_redundancy(1) > cache_redundancy(0)
    assert cache_redundancy(2) > cache_redundancy(1)


def test_tile_halo_factor():
    assert tile_halo_factor((32, 8, 1), 0) == 1.0
    assert tile_halo_factor((32, 8, 1), 1) == pytest.approx((34 * 10) / 256)
    # smaller blocks pay proportionally more halo
    assert tile_halo_factor((16, 4, 1), 1) > tile_halo_factor((32, 8, 1), 1)


def test_staged_read_cheaper_than_repeated_cached_reads():
    """The fusion premise: one tiled load beats two cached stencil reads."""
    assert tile_halo_factor((32, 8, 1), 1) < 2 * cache_redundancy(1)


def test_register_estimate_monotone():
    assert estimate_registers(4, 10) < estimate_registers(12, 10)
    assert estimate_registers(4, 10) <= estimate_registers(4, 100)
    assert estimate_registers(100, 10000) <= 255


def test_projection_memory_bound_stencil():
    proj = project_kernel(K20X, make_volume(), (32, 8, 1))
    assert proj.limiter == "memory"
    assert proj.time_s > K20X.launch_overhead_s


def test_projection_compute_bound():
    proj = project_kernel(
        K20X, make_volume(flops=65536 * 500.0), (32, 8, 1)
    )
    assert proj.limiter == "compute"


def test_on_chip_array_costs_nothing_to_read():
    base = project_kernel(K20X, make_volume(reads=("B", "T")), (32, 8, 1))
    traits = CodegenTraits(on_chip={"T"})
    cheap = project_kernel(K20X, make_volume(reads=("B", "T")), (32, 8, 1), traits)
    assert cheap.bytes_read < base.bytes_read


def test_rereads_charge_extra_traffic():
    traits = CodegenTraits(rereads={"B": 2})
    twice = project_kernel(K20X, make_volume(), (32, 8, 1), traits)
    once = project_kernel(K20X, make_volume(), (32, 8, 1))
    assert twice.bytes_read == pytest.approx(2 * once.bytes_read)


def test_divergence_factor_scales_time():
    slow = project_kernel(
        K20X, make_volume(), (32, 8, 1), CodegenTraits(divergence_factor=1.2)
    )
    fast = project_kernel(K20X, make_volume(), (32, 8, 1))
    busy_fast = fast.time_s - K20X.launch_overhead_s
    busy_slow = slow.time_s - K20X.launch_overhead_s
    assert busy_slow == pytest.approx(1.2 * busy_fast)


def test_k40_faster_than_k20x_on_same_kernel():
    on_k20 = project_kernel(K20X, make_volume(), (32, 8, 1))
    on_k40 = project_kernel(K40, make_volume(), (32, 8, 1))
    assert on_k40.time_s < on_k20.time_s


def test_low_occupancy_slows_memory_bound_kernel():
    starved = project_kernel(
        K20X,
        make_volume(),
        (32, 8, 1),
        CodegenTraits(smem_per_block=24 * 1024, regs_per_thread=32),
    )
    free = project_kernel(K20X, make_volume(), (32, 8, 1))
    assert starved.occupancy < free.occupancy
    assert starved.time_s > free.time_s


def test_fusing_two_sharing_kernels_never_slower():
    """Core invariant: fusing two memory-bound kernels that read the same
    array is projected no slower than running them separately."""
    single = project_kernel(K20X, make_volume(reads=("B",), writes=("A",)), (32, 8, 1))
    other = project_kernel(K20X, make_volume(reads=("B",), writes=("C",)), (32, 8, 1))
    fused_volume = LaunchVolume(
        kernel_name="f",
        active_threads=65536,
        launched_threads=65536,
        points_per_array={a: 65536 for a in ("A", "B", "C")},
        arrays_read={"B"},
        arrays_written={"A", "C"},
        flops=single.flops + other.flops,
    )
    traits = CodegenTraits(staged={"B"}, smem_per_block=2048, regs_per_thread=40)
    fused = project_kernel(K20X, fused_volume, (32, 8, 1), traits)
    assert fused.time_s < single.time_s + other.time_s


def test_program_projection_aggregates():
    a = project_kernel(K20X, make_volume(), (32, 8, 1))
    b = project_kernel(K20X, make_volume(writes=("C",)), (32, 8, 1))
    prog = ProgramProjection((a, b))
    assert prog.time_s == pytest.approx(a.time_s + b.time_s)
    assert prog.flops == pytest.approx(a.flops + b.flops)
    assert prog.speedup_over(prog) == pytest.approx(1.0)


@given(
    points=st.integers(min_value=256, max_value=2 ** 20),
    radius=st.integers(min_value=0, max_value=4),
    flops_per_point=st.floats(min_value=0.0, max_value=200.0),
)
@settings(max_examples=100, deadline=None)
def test_projection_positive_and_bounded(points, radius, flops_per_point):
    volume = make_volume(points=points, flops=points * flops_per_point)
    traits = CodegenTraits(radius={"B": radius})
    proj = project_kernel(K20X, volume, (32, 8, 1), traits)
    assert proj.time_s >= K20X.launch_overhead_s
    assert proj.bytes_total >= 0
    # effective bandwidth can never exceed the device peak
    assert proj.effective_bandwidth_gbs <= K20X.peak_bandwidth_gbs * 1.001

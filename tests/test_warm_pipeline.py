"""Warm-vs-cold pipeline behavior of the persistent store (repro.store)."""

import json

import pytest

from repro.api import TransformConfig, transform
from repro.pipeline.cli import main as cli_main
from repro.reliability import faults
from repro.search import fast_params
from repro.search.fitness_cache import reset_shared_cache

from conftest import THREE_KERNEL_SRC


def small_params(seed=1):
    params = fast_params(seed=seed)
    params.population = 16
    params.generations = 15
    params.stall_generations = 6
    return params


@pytest.fixture(autouse=True)
def _isolated(monkeypatch):
    """Keep these tests hermetic: no ambient store, fresh fitness cache."""
    monkeypatch.delenv("REPRO_STORE", raising=False)
    faults.clear_plan()
    reset_shared_cache()
    yield
    faults.clear_plan()
    reset_shared_cache()


def _run(tmp_path, seed=1, **overrides):
    config = TransformConfig(
        ga_params=small_params(seed=seed),
        store=True,
        store_root=str(tmp_path / "store"),
        telemetry=False,
        **overrides,
    )
    return transform(THREE_KERNEL_SRC, config)


# ---------------------------------------------------------------- warm/cold


def test_warm_run_is_bit_identical_and_reuses_every_stage(tmp_path):
    cold = _run(tmp_path)
    assert cold.reused == {}
    assert cold.verified is True

    reset_shared_cache()
    warm = _run(tmp_path)
    assert warm.source == cold.source  # bit-identical output
    assert warm.verified is True
    assert warm.reused.get("metadata") == "profile"
    assert warm.reused.get("targets") == "filter"
    assert warm.reused.get("graphs") == "ddg+oeg"
    assert warm.reused.get("search") == "result"
    assert "verify_program" in warm.reused


def test_warm_start_with_different_seed(tmp_path):
    """A changed GA seed misses the exact key but warm-starts the search."""
    _run(tmp_path, seed=1)
    reset_shared_cache()
    warm = _run(tmp_path, seed=2)
    assert warm.verified is True
    reuse = warm.reused.get("search", "")
    assert reuse.startswith("warm-start:"), warm.reused


def test_config_change_invalidates_only_downstream_stages(tmp_path):
    _run(tmp_path)
    reset_shared_cache()
    # different exclusions -> targets/graphs/search recompute, but the
    # (program, device) metadata profile still hits
    warm = _run(tmp_path, exclude=("k2",))
    assert warm.reused.get("metadata") == "profile"
    assert "targets" not in warm.reused
    assert "graphs" not in warm.reused


def test_store_disabled_records_nothing(tmp_path):
    result = transform(
        THREE_KERNEL_SRC,
        TransformConfig(
            ga_params=small_params(), store=False, telemetry=False
        ),
    )
    assert result.reused == {}
    assert not (tmp_path / "store").exists()


# ------------------------------------------------------------- degradation


def test_poisoned_store_degrades_to_cold_run(tmp_path):
    cold = _run(tmp_path)
    store_dir = tmp_path / "store"
    poisoned = 0
    for path in store_dir.rglob("*.json"):
        path.write_text("{ corrupted beyond repair")
        poisoned += 1
    assert poisoned > 0

    reset_shared_cache()
    warm = _run(tmp_path)
    # all reuse degraded away, output identical, no exception escaped
    assert warm.reused == {}
    assert warm.source == cold.source
    assert warm.verified is True


def test_store_fault_seam_degrades_to_cold_run(tmp_path):
    cold = _run(tmp_path)
    reset_shared_cache()
    faults.install_plan(
        faults.FaultPlan(seams=faults.parse_seam_specs("store"))
    )
    try:
        warm = _run(tmp_path)
    finally:
        faults.clear_plan()
    assert warm.reused == {}
    assert warm.source == cold.source
    assert warm.verified is True


# -------------------------------------------------------------------- CLI


def test_cli_store_flags(tmp_path, capsys):
    source = tmp_path / "prog.cu"
    source.write_text(THREE_KERNEL_SRC)
    store_root = tmp_path / "store"
    out1, out2 = tmp_path / "a.cu", tmp_path / "b.cu"
    wd1, wd2 = tmp_path / "wd1", tmp_path / "wd2"

    rc = cli_main(
        [str(source), "-o", str(out1), "--seed", "1",
         "--store", str(store_root), "--workdir", str(wd1)]
    )
    capsys.readouterr()
    assert rc == 0
    cold_manifest = json.loads((wd1 / "run.json").read_text())
    assert cold_manifest["store"]["enabled"] is True
    assert cold_manifest["store"]["reused_stages"] == {}

    reset_shared_cache()
    rc = cli_main(
        [str(source), "-o", str(out2), "--seed", "1",
         "--store", str(store_root), "--workdir", str(wd2)]
    )
    capsys.readouterr()
    assert rc == 0
    assert out1.read_text() == out2.read_text()
    warm_manifest = json.loads((wd2 / "run.json").read_text())
    reused = warm_manifest["store"]["reused_stages"]
    assert reused.get("search") == "result"
    assert warm_manifest["store"]["stats"]["hits"] > 0


def test_cli_no_store_wins(tmp_path, capsys, monkeypatch):
    source = tmp_path / "prog.cu"
    source.write_text(THREE_KERNEL_SRC)
    monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
    rc = cli_main(
        [str(source), "--seed", "1", "--no-store", "--until", "targets",
         "--workdir", str(tmp_path / "wd")]
    )
    capsys.readouterr()
    assert rc == 0
    manifest = json.loads((tmp_path / "wd" / "run.json").read_text())
    assert manifest["store"]["enabled"] is False
    assert not (tmp_path / "env-store").exists()


def test_poisoned_store_cli_exit_zero(tmp_path, capsys):
    """Acceptance: corrupted store -> exit 0, identical output."""
    source = tmp_path / "prog.cu"
    source.write_text(THREE_KERNEL_SRC)
    store_root = tmp_path / "store"
    out1, out2 = tmp_path / "a.cu", tmp_path / "b.cu"
    rc = cli_main(
        [str(source), "-o", str(out1), "--seed", "1", "--store",
         str(store_root), "--no-telemetry"]
    )
    capsys.readouterr()
    assert rc == 0
    for path in store_root.rglob("*.json"):
        path.write_text("garbage")
    reset_shared_cache()
    rc = cli_main(
        [str(source), "-o", str(out2), "--seed", "1", "--store",
         str(store_root), "--no-telemetry"]
    )
    capsys.readouterr()
    assert rc == 0
    assert out1.read_text() == out2.read_text()

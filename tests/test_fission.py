"""Kernel-fission tests: Algorithm 2 invariants + semantic preservation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.accesses import collect_accesses
from repro.analysis.deps import (
    array_dependency_graph,
    dependency_exists,
    intra_kernel_flow,
    is_fissionable,
    separable_components,
)
from repro.cudalite import parse_program
from repro.cudalite.parser import parse_kernel
from repro.gpu.interpreter import outputs_allclose, run_program
from repro.transform.fission import (
    fission_kernel,
    fission_program,
    iterative_fission,
)

from conftest import SEPARABLE_SRC


SEPARABLE_KERNEL = """
__global__ void big(double *R, double *W, const double *S, const double *V, int n, double c) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        R[i] = S[i] * c;
        W[i] = V[i] + 1.0;
    }
}
"""

COUPLED_KERNEL = """
__global__ void coupled(double *R, double *W, const double *S, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        double t = S[i] * 2.0;
        R[i] = t;
        W[i] = t + 1.0;
    }
}
"""


def test_dependency_graph_separable():
    kernel = parse_kernel(SEPARABLE_KERNEL)
    graph = array_dependency_graph(kernel)
    assert not dependency_exists(kernel, "R", "W")
    assert dependency_exists(kernel, "R", "S")
    assert dependency_exists(kernel, "W", "V")


def test_dependency_graph_scalar_coupling():
    """Arrays communicating through a local scalar are inseparable."""
    kernel = parse_kernel(COUPLED_KERNEL)
    assert dependency_exists(kernel, "R", "W")
    assert not is_fissionable(kernel)


def test_separable_components():
    kernel = parse_kernel(SEPARABLE_KERNEL)
    components = separable_components(kernel)
    as_sets = {frozenset(c) for c in components}
    assert frozenset({"R", "S"}) in as_sets
    assert frozenset({"W", "V"}) in as_sets


def test_components_partition_arrays():
    kernel = parse_kernel(SEPARABLE_KERNEL)
    components = separable_components(kernel)
    all_arrays = set().union(*components)
    assert all_arrays == {"R", "W", "S", "V"}
    # pairwise disjoint
    total = sum(len(c) for c in components)
    assert total == len(all_arrays)


def test_seed_changes_discovery_order_not_content():
    kernel = parse_kernel(SEPARABLE_KERNEL)
    a = {frozenset(c) for c in separable_components(kernel, seed=0)}
    b = {frozenset(c) for c in separable_components(kernel, seed=3)}
    assert a == b


def test_is_fissionable():
    assert is_fissionable(parse_kernel(SEPARABLE_KERNEL))
    assert not is_fissionable(parse_kernel(COUPLED_KERNEL))


def test_fission_fragments_structure():
    kernel = parse_kernel(SEPARABLE_KERNEL)
    fragments = fission_kernel(kernel)
    assert len(fragments) == 2
    names = {f.kernel.name for f in fragments}
    assert names == {"big_f0", "big_f1"}
    # every fragment keeps the guard and index decl
    for fragment in fragments:
        text_params = [p.name for p in fragment.kernel.params]
        assert "n" in text_params


def test_fission_statement_completeness():
    """Every array-writing statement lands in exactly one fragment."""
    kernel = parse_kernel(SEPARABLE_KERNEL)
    fragments = fission_kernel(kernel)
    original = collect_accesses(kernel)
    original_writes = sum(1 for s in original.statements if s.arrays_written)
    fragment_writes = sum(
        sum(1 for s in collect_accesses(f.kernel).statements if s.arrays_written)
        for f in fragments
    )
    assert fragment_writes == original_writes


def test_fission_param_slicing():
    kernel = parse_kernel(SEPARABLE_KERNEL)
    fragments = fission_kernel(kernel)
    for fragment in fragments:
        for local_idx, orig_idx in enumerate(fragment.param_indices):
            assert fragment.kernel.params[local_idx] == kernel.params[orig_idx]


def test_unfissionable_kernel_returns_identity():
    kernel = parse_kernel(COUPLED_KERNEL)
    fragments = fission_kernel(kernel)
    assert len(fragments) == 1
    assert fragments[0].kernel is kernel


def test_fission_program_semantics(separable_program):
    new_program, fragments = fission_program(separable_program, "big")
    assert len(fragments) == 2
    before = run_program(separable_program)
    after = run_program(new_program)
    assert outputs_allclose(before, after)


def test_fission_program_rewrites_launches(separable_program):
    new_program, fragments = fission_program(separable_program, "big")
    from repro.cudalite import ast_nodes as ast

    launches = [
        s for s in new_program.main().body.walk() if isinstance(s, ast.Launch)
    ]
    assert [l.kernel for l in launches] == ["big_f0", "big_f1"]


def test_iterative_fission_reaches_fixpoint():
    kernel = parse_kernel(SEPARABLE_KERNEL)
    fragments = iterative_fission(kernel)
    assert len(fragments) == 2
    for fragment in fragments:
        assert not is_fissionable(fragment.kernel)


def test_intra_kernel_flow():
    kernel = parse_kernel(
        "__global__ void k(double *T, double *A, const double *B, int n) {"
        " int i = threadIdx.x;"
        " T[i] = B[i] * 2.0;"
        " A[i] = T[i] + 1.0; }"
    )
    chains = intra_kernel_flow(kernel)
    assert any(c.array == "T" for c in chains)


# ---------------------------------------------------------------- hypothesis


@st.composite
def random_separable_program(draw):
    """Random kernels with N independent output groups over shared guard."""
    n_groups = draw(st.integers(min_value=1, max_value=4))
    coeffs = draw(
        st.lists(
            st.floats(min_value=-2.0, max_value=2.0).map(lambda v: round(v, 3)),
            min_size=n_groups,
            max_size=n_groups,
        )
    )
    lines = []
    params = []
    args = []
    for g in range(n_groups):
        params.append(f"double *O{g}")
        params.append(f"const double *I{g}")
        args.append(f"O{g}")
        args.append(f"I{g}")
        lines.append(f"O{g}[i] = I{g}[i] * {coeffs[g]} + {float(g)};")
    body = "\n        ".join(lines)
    allocs = "\n    ".join(
        f"double *{n} = cudaMalloc1D(n); deviceRandom({n}, {idx + 1});"
        for idx, n in enumerate(a for a in args)
    )
    source = f"""
__global__ void big({', '.join(params)}, int n) {{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {{
        {body}
    }}
}}
int main() {{
    int n = 64;
    {allocs}
    big<<<dim3(2, 1, 1), dim3(32, 1, 1)>>>({', '.join(args)}, n);
    return 0;
}}
"""
    return parse_program(source), n_groups


@given(random_separable_program())
@settings(max_examples=40, deadline=None)
def test_fission_semantic_equivalence_property(case):
    """Fissioning any separable kernel preserves program semantics, and the
    number of fragments equals the number of independent groups."""
    program, n_groups = case
    new_program, fragments = fission_program(program, "big")
    assert len(fragments) == n_groups
    assert outputs_allclose(run_program(program), run_program(new_program))

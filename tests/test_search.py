"""GGA search tests: grouping invariants, operators, penalty, full runs."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.filtering import identify_targets
from repro.cudalite import parse_program
from repro.gpu.device import K20X
from repro.gpu.profiler import gather_metadata
from repro.search import (
    GAParams,
    PenaltyParams,
    build_problem,
    evaluate_violations,
    fast_params,
    penalized_fitness,
    projected_gflops,
    projected_time_s,
    register_objective,
    run_search,
    singleton_grouping,
)
from repro.search.grouping import Grouping, Violations
from repro.search.operators import (
    crossover,
    lazy_fission_repair,
    mutate_fission_toggle,
    mutate_merge,
    mutate_move,
    mutate_split,
    random_grouping,
)

from conftest import SEPARABLE_SRC, THREE_KERNEL_SRC


@pytest.fixture
def problem3(three_kernel_program):
    meta = gather_metadata(three_kernel_program, K20X)
    report = identify_targets(meta, K20X)
    return build_problem(three_kernel_program, meta, report, K20X).problem


@pytest.fixture
def fission_problem(separable_program):
    meta = gather_metadata(separable_program, K20X)
    report = identify_targets(meta, K20X)
    return build_problem(separable_program, meta, report, K20X).problem


def test_singleton_grouping_covers(problem3):
    individual = singleton_grouping(problem3)
    assert individual.covers(problem3)
    assert evaluate_violations(problem3, individual).feasible


def test_node_infos(problem3):
    info = problem3.info("k1@0")
    assert info.arrays_read == frozenset({"B"})
    assert info.arrays_written == frozenset({"A"})
    assert info.eligible and info.fusable
    assert info.flops > 0


def test_group_smem_estimate_positive(problem3):
    smem = problem3.group_smem_bytes({"k1@0", "k2@1"})
    assert smem > 0  # B is a locality array


def test_convexity_violation_detected():
    # a -> b -> c chain: {a, c} without b is non-convex
    source = """
__global__ void ka(double *Y, const double *X, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { Y[i] = X[i] * 2.0; }
}
__global__ void kb(double *Z, const double *Y, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { Z[i] = Y[i] + 1.0; }
}
__global__ void kc(double *W, const double *Z, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { W[i] = Z[i] * Z[i]; }
}
int main() {
    int n = 128;
    double *X = cudaMalloc1D(n);
    double *Y = cudaMalloc1D(n);
    double *Z = cudaMalloc1D(n);
    double *W = cudaMalloc1D(n);
    deviceRandom(X, 3);
    dim3 grid(2, 1, 1);
    dim3 block(64, 1, 1);
    ka<<<grid, block>>>(Y, X, n);
    kb<<<grid, block>>>(Z, Y, n);
    kc<<<grid, block>>>(W, Z, n);
    return 0;
}
"""
    program = parse_program(source)
    meta = gather_metadata(program, K20X)
    report = identify_targets(meta, K20X)
    problem = build_problem(program, meta, report, K20X).problem
    bad = Grouping(
        split=frozenset(),
        groups=(
            frozenset({"ka@0", "kc@2"}),
            frozenset({"kb@1"}),
        ),
    )
    violations = evaluate_violations(problem, bad)
    assert violations.non_convex >= 1
    assert not violations.feasible


def test_full_fusion_feasible(problem3):
    good = Grouping(
        split=frozenset(),
        groups=(frozenset({"k1@0", "k2@1", "k3@2"}),),
    )
    assert evaluate_violations(problem3, good).feasible


def test_objective_prefers_fusion(problem3):
    fused = Grouping(
        split=frozenset(),
        groups=(frozenset({"k1@0", "k2@1", "k3@2"}),),
    )
    single = singleton_grouping(problem3)
    assert projected_gflops(problem3, fused, K20X) > projected_gflops(
        problem3, single, K20X
    )
    assert projected_time_s(problem3, fused, K20X) < projected_time_s(
        problem3, single, K20X
    )


def test_penalty_function():
    params = PenaltyParams()
    clean = penalized_fitness(10.0, Violations(), params)
    assert clean == 10.0
    dirty = penalized_fitness(10.0, Violations(non_convex=1), params)
    assert dirty < clean
    relaxed = penalized_fitness(
        10.0, Violations(smem_over=1, relaxable=1), params
    )
    hard = penalized_fitness(10.0, Violations(smem_over=1), params)
    assert relaxed > hard  # lazy-fission relaxation (Eq. 1's C_SM term)


def test_fission_preste_builds_fragments(fission_problem):
    assert "big@0" in fission_problem.fragments_of
    fragments = fission_problem.fragments_of["big@0"]
    assert len(fragments) == 2
    for fragment in fragments:
        info = fission_problem.info(fragment)
        assert info.parent == "big@0"


# ------------------------------------------------------------------- operators


def _rng():
    return random.Random(7)


def assert_valid(problem, individual):
    assert individual.covers(problem)
    seen = set()
    for group in individual.groups:
        assert group, "empty group"
        assert not (group & seen)
        seen |= group


def test_random_grouping_valid(problem3):
    for seed in range(10):
        individual = random_grouping(problem3, random.Random(seed))
        assert_valid(problem3, individual)


@pytest.mark.parametrize(
    "operator", [mutate_merge, mutate_split, mutate_move]
)
def test_mutations_preserve_partition(problem3, operator):
    rng = _rng()
    individual = singleton_grouping(problem3)
    for _ in range(20):
        candidate = operator(problem3, individual, rng)
        if candidate is not None:
            individual = candidate
        assert_valid(problem3, individual)


def test_fission_toggle_roundtrip(fission_problem):
    rng = _rng()
    individual = singleton_grouping(fission_problem)
    split_once = mutate_fission_toggle(fission_problem, individual, rng)
    assert split_once is not None
    assert_valid(fission_problem, split_once)
    assert len(split_once.split) == 1
    back = mutate_fission_toggle(fission_problem, split_once, rng)
    assert_valid(fission_problem, back)
    assert len(back.split) == 0


def test_crossover_preserves_partition(problem3):
    rng = _rng()
    for _ in range(20):
        a = random_grouping(problem3, rng)
        b = random_grouping(problem3, rng)
        child = crossover(problem3, a, b, rng)
        assert_valid(problem3, child)


def test_crossover_with_fragments(fission_problem):
    rng = _rng()
    for _ in range(20):
        a = random_grouping(fission_problem, rng)
        b = random_grouping(fission_problem, rng)
        child = crossover(fission_problem, a, b, rng)
        assert_valid(fission_problem, child)


def test_lazy_fission_repair_counts(fission_problem):
    # shrink the capacity so the whole-kernel group violates it
    fission_problem.capacity = 1
    rng = _rng()
    individual = singleton_grouping(fission_problem)
    repaired, fissions = lazy_fission_repair(fission_problem, individual, rng)
    # singleton groups never violate (len <= 1) so no fission is needed
    assert fissions == 0
    assert_valid(fission_problem, repaired)


# --------------------------------------------------------------------- GA runs


def test_search_finds_beneficial_fusion(problem3):
    params = fast_params()
    params.population = 16
    params.generations = 20
    result = run_search(problem3, K20X, params)
    assert evaluate_violations(problem3, result.best).feasible
    baseline = projected_time_s(problem3, singleton_grouping(problem3), K20X)
    assert baseline / result.projected_time_s > 1.0
    assert result.generations_run <= 20
    # the process-wide fitness cache may serve every lookup when an earlier
    # test already explored this problem; work done = misses + hits
    assert result.evaluations + result.cache_hits > 0


def test_search_deterministic_for_seed(problem3):
    params = fast_params(seed=99)
    params.population = 12
    params.generations = 10
    a = run_search(problem3, K20X, params)
    b = run_search(problem3, K20X, params)
    assert a.best == b.best
    assert a.best_fitness == b.best_fitness


def test_search_history_monotone(problem3):
    params = fast_params()
    params.population = 12
    params.generations = 15
    result = run_search(problem3, K20X, params)
    best = [s.best_fitness for s in result.history]
    assert all(b2 >= b1 for b1, b2 in zip(best, best[1:]))


def test_custom_objective_pluggable(problem3):
    calls = []

    def constant_objective(problem, individual, device):
        calls.append(1)
        return 1.0

    register_objective("constant-test", constant_objective)
    params = fast_params()
    params.population = 8
    params.generations = 3
    params.objective = "constant-test"
    run_search(problem3, K20X, params)
    assert calls


def test_params_file_roundtrip(tmp_path):
    params = GAParams(population=42, generations=77, seed=5)
    params.penalties = PenaltyParams(c_shared_mem=33.0)
    path = tmp_path / "ga.params"
    params.write(path)
    loaded = GAParams.read(path)
    assert loaded.population == 42
    assert loaded.generations == 77
    assert loaded.seed == 5
    assert loaded.penalties.c_shared_mem == 33.0


def test_params_file_rejects_unknown_key(tmp_path):
    from repro.errors import SearchError

    path = tmp_path / "bad.params"
    path.write_text("not_a_parameter = 3\n")
    with pytest.raises(SearchError):
        GAParams.read(path)


def test_default_params_match_paper():
    params = GAParams()
    assert params.population == 100
    assert params.generations == 500

"""The fuzz oracle battery and its failure signatures.

Contracts under test (see ``repro.fuzz.oracles``):

* the full battery passes on generated apps (the pipeline keeps its
  promises on arbitrary valid inputs);
* a violated contract surfaces as an :class:`OracleFailure` with a
  stable ``kind`` signature instead of an exception;
* the ``transform`` oracle catches escapes and ``differential``
  inherits the failure as a skip rather than crashing on a missing
  result;
* oracle selection is validated loudly.
"""

import pytest

from repro.fuzz import generate_app
from repro.fuzz.oracles import (
    CHEAP_ORACLES,
    ORACLE_NAMES,
    OracleFailure,
    OracleVerdict,
    fuzz_config,
    run_oracles,
)
from repro.reliability import faults


@pytest.fixture(autouse=True)
def _no_fault_plan():
    faults.clear_plan()
    yield
    faults.clear_plan()


def test_cheap_battery_passes_on_generated_apps():
    for seed in (0, 5):
        app = generate_app(seed)
        verdict = run_oracles(app, CHEAP_ORACLES, fuzz_config(seed=seed))
        assert verdict.ok, verdict.signatures()
        assert set(verdict.passed) == set(CHEAP_ORACLES)
        assert verdict.app == app.name


def test_full_battery_passes_on_one_app():
    app = generate_app(3)
    verdict = run_oracles(app, ORACLE_NAMES, fuzz_config(seed=3))
    assert verdict.ok, [
        (f.signature(), f.detail) for f in verdict.failures
    ]
    assert set(verdict.passed) == set(ORACLE_NAMES)


def test_accepts_plain_programs():
    program = generate_app(1).program
    verdict = run_oracles(program, ("modes",))
    assert verdict.ok
    assert verdict.app == "<program>"


def test_unknown_oracle_rejected():
    with pytest.raises(ValueError, match="unknown oracle"):
        run_oracles(generate_app(0), ("transform", "bogus"))


def test_transform_escape_is_a_stable_failure(monkeypatch):
    import repro.fuzz.oracles as oracles_mod

    def boom(*_args, **_kwargs):
        raise RuntimeError("synthetic pipeline escape")

    monkeypatch.setattr(oracles_mod, "transform", boom)
    verdict = run_oracles(
        generate_app(0), ("transform", "differential"), fuzz_config()
    )
    assert not verdict.ok
    kinds = {f.oracle: f.kind for f in verdict.failures}
    assert kinds["transform"] == "uncaught:RuntimeError"
    # differential cannot compare without a transform result, and says so
    assert kinds["differential"] == "transform-failed"
    escape = next(f for f in verdict.failures if f.oracle == "transform")
    assert isinstance(escape.exc, RuntimeError)
    assert escape.signature() == "transform:uncaught:RuntimeError"


def test_verdict_signatures_are_ordered_and_stable():
    failures = (
        OracleFailure("modes", "array-mismatch:batched", "x"),
        OracleFailure("transform", "uncaught:KeyError", "y"),
    )
    verdict = OracleVerdict(app="a", failures=failures)
    assert verdict.signatures() == (
        "modes:array-mismatch:batched",
        "transform:uncaught:KeyError",
    )
    assert not verdict.ok


def test_fuzz_config_is_small_and_quiet():
    config = fuzz_config(seed=7)
    params = config.ga_params
    assert params.population <= 16 and params.generations <= 10
    assert params.workers == 1 and params.executor == "thread"
    assert config.telemetry is False
    assert config.store is False
    # bitwise verification stays the default for differential soundness
    assert config.verify_rtol == 0.0
    override = fuzz_config(seed=7, telemetry=True)
    assert override.telemetry is True


def test_fault_seam_oracle_restores_plan_state():
    app = generate_app(2)
    verdict = run_oracles(app, ("fault_seams",), fuzz_config(seed=2))
    assert verdict.ok, verdict.signatures()
    assert faults.active_plan() is None

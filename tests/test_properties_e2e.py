"""End-to-end property tests: randomized programs through the full pipeline.

These are the heaviest correctness guarantees in the suite: hypothesis
generates random canonical stencil programs (random coefficients, radii,
sharing patterns, chain structure) and the whole transformation must
preserve program semantics on the simulator under both block schedules.
"""

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cudalite import parse_program
from repro.gpu.device import K20X
from repro.gpu.interpreter import outputs_allclose, run_program
from repro.pipeline import Framework, PipelineConfig
from repro.search import fast_params
from repro.search.gga import GGA
from repro.search.grouping import evaluate_violations
from repro.search.operators import random_grouping
from repro.analysis.filtering import identify_targets
from repro.gpu.profiler import gather_metadata
from repro.search import build_problem


@st.composite
def random_stencil_program(draw):
    """A random 2-5 kernel program over a shared array pool."""
    n_kernels = draw(st.integers(min_value=2, max_value=5))
    n_arrays = draw(st.integers(min_value=3, max_value=6))
    rng = random.Random(draw(st.integers(min_value=0, max_value=10 ** 6)))
    arrays = [f"d{i}" for i in range(n_arrays)]
    kernels = []
    launches = []
    written_before = set()
    for ki in range(n_kernels):
        out = rng.choice(arrays)
        candidates = [a for a in arrays if a != out]
        ins = rng.sample(candidates, k=min(len(candidates), rng.randint(1, 2)))
        radius = rng.choice((0, 0, 1))
        coeff = round(rng.uniform(-1.5, 1.5), 3)
        terms = []
        for a in ins:
            if radius and rng.random() < 0.7:
                terms.append(f"{a}[i + {radius}][j][k] + {a}[i - {radius}][j][k]")
            else:
                terms.append(f"{a}[i][j][k]")
        body = " + ".join(terms)
        guard = (
            f"i >= {radius} && i < nx - {radius} && j < ny"
            if radius
            else "i < nx && j < ny"
        )
        kernels.append(f"""
__global__ void k{ki}(double *{out}_p, {', '.join(f'const double *{a}_p' for a in ins)}, int nx, int ny, int nz) {{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if ({guard}) {{
        for (int k = 0; k < nz; k++) {{
            {out}_p[i][j][k] = {coeff} * ({body.replace('[i', '_p[i').replace('d', 'd') if False else body});
        }}
    }}
}}""".replace("d0[", "d0_p[").replace("d1[", "d1_p[").replace("d2[", "d2_p[")
            .replace("d3[", "d3_p[").replace("d4[", "d4_p[").replace("d5[", "d5_p["))
        launches.append((f"k{ki}", [out] + ins))
        written_before.add(out)
    allocs = "\n    ".join(
        f"double *{a} = cudaMalloc3D(nx, ny, nz); deviceRandom({a}, {i + 3});"
        for i, a in enumerate(arrays)
    )
    launch_lines = "\n    ".join(
        f"{name}<<<grid, block>>>({', '.join(args)}, nx, ny, nz);"
        for name, args in launches
    )
    source = f"""
{''.join(kernels)}
int main() {{
    int nx = 32;
    int ny = 16;
    int nz = 4;
    {allocs}
    dim3 grid(4, 2, 1);
    dim3 block(8, 8, 1);
    {launch_lines}
    return 0;
}}
"""
    return source


@given(random_stencil_program())
@settings(max_examples=15, deadline=None)
def test_pipeline_preserves_semantics_property(source):
    """Any random canonical stencil program survives the full pipeline with
    bit-faithful output under forward AND reversed block schedules."""
    program = parse_program(source)
    params = fast_params(seed=13)
    params.population = 12
    params.generations = 8
    params.stall_generations = 4
    config = PipelineConfig(device=K20X, ga_params=params, verify=False)
    state = Framework(program, config).run()
    before = run_program(program)
    after = run_program(state.transform.program)
    after_reversed = run_program(state.transform.program, block_order="reverse")
    assert outputs_allclose(before, after)
    assert outputs_allclose(before, after_reversed)
    # and the projection never predicts a slowdown
    assert state.speedup >= 0.99


@given(random_stencil_program(), st.integers(min_value=0, max_value=2 ** 16))
@settings(max_examples=15, deadline=None)
def test_repair_always_feasible_property(source, seed):
    """GGA's repair turns *any* random individual into a feasible one."""
    program = parse_program(source)
    meta = gather_metadata(program, K20X)
    report = identify_targets(meta, K20X)
    built = build_problem(program, meta, report, K20X)
    params = fast_params(seed=1)
    engine = GGA(built.problem, K20X, params)
    rng = random.Random(seed)
    individual = random_grouping(built.problem, rng)
    # scramble it further with random merges that may be infeasible
    from repro.search.operators import make_grouping

    groups = list(individual.groups)
    rng.shuffle(groups)
    while len(groups) > 2 and rng.random() < 0.6:
        a = groups.pop()
        groups[-1] = groups[-1] | a
    scrambled = make_grouping(set(individual.split), groups)
    repaired = engine._repair_to_feasible(scrambled)
    violations = evaluate_violations(built.problem, repaired)
    assert violations.feasible
    assert repaired.covers(built.problem)

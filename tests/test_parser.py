"""Parser unit tests."""

import pytest

from repro.cudalite import ast_nodes as ast
from repro.cudalite.parser import parse_expr, parse_kernel, parse_program
from repro.errors import ParseError


# ------------------------------------------------------------------ expressions


def test_precedence_mul_over_add():
    expr = parse_expr("a + b * c")
    assert isinstance(expr, ast.Binary) and expr.op == "+"
    assert isinstance(expr.rhs, ast.Binary) and expr.rhs.op == "*"


def test_precedence_comparison_over_logical():
    expr = parse_expr("a < b && c >= d")
    assert expr.op == "&&"
    assert expr.lhs.op == "<"
    assert expr.rhs.op == ">="


def test_left_associativity():
    expr = parse_expr("a - b - c")
    assert expr.op == "-"
    assert isinstance(expr.lhs, ast.Binary) and expr.lhs.op == "-"
    assert expr.rhs == ast.Ident("c")


def test_parentheses_override():
    expr = parse_expr("(a + b) * c")
    assert expr.op == "*"
    assert expr.lhs.op == "+"


def test_unary_minus_on_identifier():
    expr = parse_expr("-a")
    assert isinstance(expr, ast.Unary) and expr.op == "-"


def test_negative_literal_folding():
    assert parse_expr("-5") == ast.IntLit(-5)
    folded = parse_expr("-2.5")
    assert isinstance(folded, ast.FloatLit) and folded.value == -2.5


def test_ternary():
    expr = parse_expr("a < b ? x : y")
    assert isinstance(expr, ast.Ternary)
    assert expr.cond.op == "<"


def test_member_access():
    expr = parse_expr("threadIdx.x")
    assert isinstance(expr, ast.Member)
    assert expr.field_name == "x"


def test_index_chain_collapses():
    expr = parse_expr("A[i][j][k]")
    assert isinstance(expr, ast.Index)
    assert len(expr.indices) == 3
    assert expr.array_name == "A"


def test_call_with_args():
    expr = parse_expr("max(a, b + 1)")
    assert isinstance(expr, ast.Call)
    assert expr.func == "max"
    assert len(expr.args) == 2


def test_global_index_expression():
    expr = parse_expr("blockIdx.x * blockDim.x + threadIdx.x")
    assert expr.op == "+"
    assert expr.lhs.op == "*"


def test_trailing_tokens_rejected():
    with pytest.raises(ParseError):
        parse_expr("a + b extra")


# ------------------------------------------------------------------- statements


def test_parse_kernel_basic():
    kernel = parse_kernel(
        "__global__ void k(double *A, int n) { int i = threadIdx.x; A[i] = 0.0; }"
    )
    assert kernel.name == "k"
    assert len(kernel.params) == 2
    assert kernel.params[0].type.is_pointer
    assert not kernel.params[1].type.is_pointer


def test_const_pointer_param():
    kernel = parse_kernel("__global__ void k(const double *B, int n) { }")
    assert kernel.params[0].type.is_const
    assert kernel.params[0].type.is_pointer


def test_if_else():
    kernel = parse_kernel(
        "__global__ void k(double *A, int n) {"
        " int i = threadIdx.x;"
        " if (i < n) { A[i] = 1.0; } else { A[i] = 2.0; }"
        "}"
    )
    stmt = kernel.body.stmts[1]
    assert isinstance(stmt, ast.If)
    assert stmt.els is not None


def test_single_statement_branches_wrapped_in_block():
    kernel = parse_kernel(
        "__global__ void k(double *A, int n) {"
        " int i = threadIdx.x;"
        " if (i < n) A[i] = 1.0;"
        "}"
    )
    stmt = kernel.body.stmts[1]
    assert isinstance(stmt.then, ast.Block)
    assert len(stmt.then.stmts) == 1


def test_canonical_for_loop():
    kernel = parse_kernel(
        "__global__ void k(double *A, int n) {"
        " int i = threadIdx.x;"
        " for (int m = 0; m < n; m++) { A[i] = 1.0; }"
        "}"
    )
    loop = kernel.body.stmts[1]
    assert isinstance(loop, ast.For)
    assert loop.var == "m"
    assert loop.cmp == "<"
    assert loop.step == ast.IntLit(1)


def test_for_loop_le_and_step():
    kernel = parse_kernel(
        "__global__ void k(double *A, int n) {"
        " for (int m = 2; m <= n; m += 2) { A[m] = 1.0; }"
        "}"
    )
    loop = kernel.body.stmts[0]
    assert loop.cmp == "<="
    assert loop.step == ast.IntLit(2)


def test_for_loop_prefix_increment():
    kernel = parse_kernel(
        "__global__ void k(double *A, int n) {"
        " for (int m = 0; m < n; ++m) { A[m] = 1.0; }"
        "}"
    )
    assert isinstance(kernel.body.stmts[0], ast.For)


def test_non_canonical_loop_rejected():
    with pytest.raises(ParseError):
        parse_kernel(
            "__global__ void k(double *A, int n) {"
            " for (int m = 0; m > n; m++) { A[m] = 1.0; }"
            "}"
        )


def test_loop_condition_must_match_variable():
    with pytest.raises(ParseError):
        parse_kernel(
            "__global__ void k(double *A, int n) {"
            " for (int m = 0; q < n; m++) { A[m] = 1.0; }"
            "}"
        )


def test_compound_assignment():
    kernel = parse_kernel(
        "__global__ void k(double *A, int n) { A[0] += 2.0; A[1] *= 3.0; }"
    )
    assert kernel.body.stmts[0].op == "+="
    assert kernel.body.stmts[1].op == "*="


def test_increment_statement_desugars():
    kernel = parse_kernel(
        "__global__ void k(double *A, int n) { int i = 0; i++; }"
    )
    stmt = kernel.body.stmts[1]
    assert isinstance(stmt, ast.Assign)
    assert stmt.op == "+="
    assert stmt.value == ast.IntLit(1)


def test_syncthreads_statement():
    kernel = parse_kernel(
        "__global__ void k(double *A, int n) { __syncthreads(); }"
    )
    assert isinstance(kernel.body.stmts[0], ast.SyncThreads)


def test_shared_declaration():
    kernel = parse_kernel(
        "__global__ void k(double *A, int n) { __shared__ double t[10][12]; }"
    )
    decl = kernel.body.stmts[0]
    assert decl.is_shared
    assert decl.array_dims == (ast.IntLit(10), ast.IntLit(12))


def test_assignment_to_expression_rejected():
    with pytest.raises(ParseError):
        parse_kernel("__global__ void k(double *A, int n) { a + b = 3.0; }")


# --------------------------------------------------------------------- programs


def test_program_with_host(diffuse_program):
    assert len(diffuse_program.kernels) == 1
    assert diffuse_program.main().name == "main"


def test_launch_statement(diffuse_program):
    launches = [
        s for s in diffuse_program.main().body.walk() if isinstance(s, ast.Launch)
    ]
    assert len(launches) == 1
    assert launches[0].kernel == "diffuse"
    assert len(launches[0].args) == 6


def test_dim3_constructor_style():
    program = parse_program(
        "int main() { dim3 grid(4, 4, 1); dim3 block(8, 8); return 0; }"
    )
    decls = [s for s in program.main().body.stmts if isinstance(s, ast.VarDecl)]
    assert decls[0].type.base == "dim3"
    assert isinstance(decls[0].init, ast.Call)


def test_inline_dim3_in_launch():
    program = parse_program(
        "__global__ void k(double *A) { }\n"
        "int main() { double *A = cudaMalloc1D(8);"
        " k<<<dim3(1, 1, 1), dim3(8, 1, 1)>>>(A); return 0; }"
    )
    launch = [s for s in program.main().body.walk() if isinstance(s, ast.Launch)][0]
    assert isinstance(launch.grid, ast.Call)


def test_program_kernel_lookup(three_kernel_program):
    assert three_kernel_program.kernel("k2").name == "k2"
    with pytest.raises(KeyError):
        three_kernel_program.kernel("nope")


def test_unsigned_int_folds_to_int():
    kernel = parse_kernel("__global__ void k(double *A, unsigned int n) { }")
    assert kernel.params[1].type.base == "int"


def test_parse_error_reports_position():
    try:
        parse_program("__global__ void k(double *A) { A[0] = ; }")
    except ParseError as e:
        assert e.line >= 1
    else:  # pragma: no cover
        pytest.fail("expected ParseError")


def test_replace_kernels(three_kernel_program):
    k1 = three_kernel_program.kernel("k1")
    new = ast.KernelDef("fresh", k1.params, k1.body)
    rebuilt = three_kernel_program.replace_kernels((new,))
    assert [k.name for k in rebuilt.kernels] == ["fresh"]
    assert rebuilt.main() is not None

"""Equivalence of the two per-block execution strategies.

The batched mode evaluates every statement across all blocks of the launch
grid as one extra numpy axis; the loop mode visits blocks one at a time.
For kernels where both apply they must agree *bit-exactly* — including on
deliberately broken kernels (insufficient halo), which must produce the
same wrong answer under both strategies.
"""

import numpy as np
import pytest

from repro.cudalite import parse_program
from repro.errors import InterpreterError, OutOfBoundsError
from repro.gpu.interpreter import (
    ENV_BLOCK_EXEC,
    block_exec_from_env,
    run_program,
)
from repro.pipeline.framework import transform_program


def run(source, **kw):
    return run_program(parse_program(source), **kw)


def wrap(kernel_src, body):
    return f"{kernel_src}\nint main() {{ {body} return 0; }}"


def assert_bit_equal(a, b):
    assert set(a.arrays) == set(b.arrays)
    for name in a.arrays:
        assert np.array_equal(a.arrays[name], b.arrays[name]), name


TILE_1D = wrap(
    "__global__ void k(const double *B, double *A, int n) {"
    " __shared__ double t[10];"
    " int tx = threadIdx.x;"
    " int i = blockIdx.x * blockDim.x + tx;"
    " t[tx + 1] = B[i];"
    " if (tx == 0 && i > 0) { t[0] = B[i - 1]; }"
    " if (tx == blockDim.x - 1 && i < n - 1) { t[9] = B[i + 1]; }"
    " __syncthreads();"
    " if (i > 0 && i < n - 1) {"
    "   A[i] = 0.25 * t[tx] + 0.5 * t[tx + 1] + 0.25 * t[tx + 2]; } }",
    "int n = 64; double *A = cudaMalloc1D(n); double *B = cudaMalloc1D(n);"
    " deviceRandom(B, 7);"
    " k<<<dim3(8, 1, 1), dim3(8, 1, 1)>>>(B, A, n);",
)

TILE_2D = wrap(
    "__global__ void k(const double *B, double *A, int nx, int ny) {"
    " __shared__ double t[8][8];"
    " int tx = threadIdx.x; int ty = threadIdx.y;"
    " int i = blockIdx.x * blockDim.x + tx;"
    " int j = blockIdx.y * blockDim.y + ty;"
    " t[tx][ty] = B[i][j];"
    " __syncthreads();"
    " if (tx >= 1 && tx < 7 && ty >= 1 && ty < 7) {"
    "   A[i][j] = t[tx - 1][ty] + t[tx + 1][ty] + t[tx][ty - 1]"
    "     + t[tx][ty + 1] - 4.0 * t[tx][ty]; } }",
    "int nx = 32; int ny = 32;"
    " double *A = cudaMalloc2D(nx, ny); double *B = cudaMalloc2D(nx, ny);"
    " deviceRandom(B, 11);"
    " k<<<dim3(4, 4, 1), dim3(8, 8, 1)>>>(B, A, nx, ny);",
)

# stages the tile without any halo cells, then reads one cell to the right:
# the last thread of every block reads a cell its block never wrote (kept at
# the 0.0 the tile was initialised with) — the classic insufficient-halo bug
BROKEN_HALO = wrap(
    "__global__ void k(const double *B, double *A, int n) {"
    " __shared__ double t[9];"
    " int tx = threadIdx.x;"
    " int i = blockIdx.x * blockDim.x + tx;"
    " t[tx] = B[i];"
    " __syncthreads();"
    " if (i < n - 1) { A[i] = t[tx] + t[tx + 1]; } }",
    "int n = 64; double *A = cudaMalloc1D(n); double *B = cudaMalloc1D(n);"
    " deviceRandom(B, 3);"
    " k<<<dim3(8, 1, 1), dim3(8, 1, 1)>>>(B, A, n);",
)


@pytest.mark.parametrize("source", [TILE_1D, TILE_2D], ids=["1d", "2d"])
@pytest.mark.parametrize("order", ["forward", "reverse"])
def test_tiled_stencils_bit_exact(source, order):
    loop = run(source, block_order=order, block_exec="loop")
    batched = run(source, block_order=order, block_exec="batched")
    assert_bit_equal(loop, batched)


def test_auto_picks_batched_result_for_clean_tile():
    auto = run(TILE_1D, block_exec="auto")
    loop = run(TILE_1D, block_exec="loop")
    assert_bit_equal(auto, loop)


def test_insufficient_halo_fails_identically():
    """A broken kernel must be *equally* wrong in both modes."""
    loop = run(BROKEN_HALO, block_exec="loop")
    batched = run(BROKEN_HALO, block_exec="batched")
    assert_bit_equal(loop, batched)
    # and it IS wrong: the seam cells see the unstaged 0.0 neighbour
    B, A = loop.arrays["B"], loop.arrays["A"]
    assert A[7] == B[7]  # t[8] was never staged: the B[8] term is missing
    assert A[6] == B[6] + B[7]  # interior cells are fine


def test_shared_scalar_store_per_block_semantics():
    """A thread-invariant store into a tile takes the value of the block's
    first *active* thread — per block, under both strategies."""
    source = wrap(
        "__global__ void k(const double *B, double *A, int n) {"
        " __shared__ double t[1];"
        " int tx = threadIdx.x;"
        " int i = blockIdx.x * blockDim.x + tx;"
        " if (tx >= 3) { t[0] = B[i]; }"
        " __syncthreads();"
        " A[i] = t[0]; }",
        "int n = 32; double *A = cudaMalloc1D(n); double *B = cudaMalloc1D(n);"
        " deviceRandom(B, 5);"
        " k<<<dim3(4, 1, 1), dim3(8, 1, 1)>>>(B, A, n);",
    )
    loop = run(source, block_exec="loop")
    batched = run(source, block_exec="batched")
    assert_bit_equal(loop, batched)
    # block b's tile holds B[8 b + 3] (first active thread is tx == 3)
    B, A = loop.arrays["B"], loop.arrays["A"]
    assert np.array_equal(A, np.repeat(B[3::8], 8))


@pytest.mark.parametrize("order", ["forward", "reverse"])
def test_global_scalar_store_last_block_wins(order):
    """A thread-invariant store to a *global* cell keeps the last visited
    active block's value, whichever strategy executes the launch."""
    source = wrap(
        "__global__ void k(double *A, int n) {"
        " __shared__ double t[1];"
        " double v = blockIdx.x * 10.0 + threadIdx.x;"
        " if (blockIdx.x != 2) { A[0] = v; } }",
        "int n = 8; double *A = cudaMalloc1D(n);"
        " k<<<dim3(4, 1, 1), dim3(4, 1, 1)>>>(A, n);",
    )
    loop = run(source, block_order=order, block_exec="loop")
    batched = run(source, block_order=order, block_exec="batched")
    assert_bit_equal(loop, batched)
    expected = 30.0 if order == "forward" else 0.0  # block 2 is masked out
    assert loop.arrays["A"][0] == expected


def test_uniform_loop_inside_tile_kernel():
    source = wrap(
        "__global__ void k(const double *B, double *A, int n, int reps) {"
        " __shared__ double t[8];"
        " int tx = threadIdx.x;"
        " int i = blockIdx.x * blockDim.x + tx;"
        " t[tx] = B[i];"
        " __syncthreads();"
        " double acc = 0.0;"
        " for (int r = 0; r < reps; r = r + 1) { acc = acc + t[tx] * (r + 1.0); }"
        " A[i] = acc; }",
        "int n = 32; int reps = 5;"
        " double *A = cudaMalloc1D(n); double *B = cudaMalloc1D(n);"
        " deviceRandom(B, 9);"
        " k<<<dim3(4, 1, 1), dim3(8, 1, 1)>>>(B, A, n, reps);",
    )
    assert_bit_equal(
        run(source, block_exec="loop"), run(source, block_exec="batched")
    )


# ------------------------------------------------------- auto-mode fallbacks


CROSS_BLOCK_CHAIN = wrap(
    "__global__ void k(double *A, int n) {"
    " __shared__ double t[8];"
    " int i = blockIdx.x * blockDim.x + threadIdx.x;"
    " if (i >= 1 && i < n - 1) { A[i] = A[i - 1] + 1.0; } }",
    "int n = 32; double *A = cudaMalloc1D(n); deviceFill(A, 1.0);"
    " k<<<dim3(4, 1, 1), dim3(8, 1, 1)>>>(A, n);",
)


def test_auto_falls_back_on_global_rw_conflict():
    """Kernels that read an array they also write depend on the block
    schedule; ``auto`` must keep them on the sequential loop so that
    ``block_order`` comparisons still expose the race."""
    for order in ("forward", "reverse"):
        auto = run(CROSS_BLOCK_CHAIN, block_order=order, block_exec="auto")
        loop = run(CROSS_BLOCK_CHAIN, block_order=order, block_exec="loop")
        assert_bit_equal(auto, loop)
    fwd = run(CROSS_BLOCK_CHAIN, block_order="forward")
    rev = run(CROSS_BLOCK_CHAIN, block_order="reverse")
    assert not np.array_equal(fwd.arrays["A"], rev.arrays["A"])


def test_auto_falls_back_on_block_dependent_loop_bound():
    source = wrap(
        "__global__ void k(double *A, int n) {"
        " __shared__ double t[1];"
        " int i = blockIdx.x * blockDim.x + threadIdx.x;"
        " double s = 0.0;"
        " for (int r = 0; r < blockIdx.x + 1; r = r + 1) { s = s + 1.0; }"
        " if (i < n) { A[i] = s; } }",
        "int n = 32; double *A = cudaMalloc1D(n);"
        " k<<<dim3(4, 1, 1), dim3(8, 1, 1)>>>(A, n);",
    )
    result = run(source, block_exec="auto")
    assert np.array_equal(
        result.arrays["A"], np.repeat([1.0, 2.0, 3.0, 4.0], 8)
    )
    # forcing the batched mode on this kernel is a user error and says so
    with pytest.raises(InterpreterError, match="thread-invariant"):
        run(source, block_exec="batched")


def test_detect_races_uses_loop_mode():
    # per-block race checks still fire with batched requested
    source = wrap(
        "__global__ void k(double *A, int n) {"
        " __shared__ double t[1];"
        " int i = blockIdx.x * blockDim.x + threadIdx.x;"
        " A[0] = i * 1.0; }",
        "int n = 8; double *A = cudaMalloc1D(n);"
        " k<<<dim3(1, 1, 1), dim3(8, 1, 1)>>>(A, n);",
    )
    with pytest.raises(InterpreterError, match="race"):
        run(source, detect_races=True, block_exec="batched")


def test_out_of_bounds_raises_in_both_modes():
    source = wrap(
        "__global__ void k(const double *B, double *A, int n) {"
        " __shared__ double t[8];"
        " int tx = threadIdx.x;"
        " int i = blockIdx.x * blockDim.x + tx;"
        " t[tx] = B[i];"
        " __syncthreads();"
        " A[i] = t[tx - 1]; }",  # tx == 0 underflows the tile
        "int n = 16; double *A = cudaMalloc1D(n); double *B = cudaMalloc1D(n);"
        " k<<<dim3(2, 1, 1), dim3(8, 1, 1)>>>(B, A, n);",
    )
    for mode in ("loop", "batched"):
        with pytest.raises(OutOfBoundsError, match="axis 0"):
            run(source, block_exec=mode)


def test_unknown_mode_rejected():
    with pytest.raises(InterpreterError, match="block_exec"):
        run(TILE_1D, block_exec="warp")


# ------------------------------------------------------ end-to-end / config


def test_pipeline_fused_program_bit_exact_across_modes(chain_program):
    """The pipeline's generated (temporal-blocked) kernels must agree
    between the strategies even when forced onto the batched path."""
    state = transform_program(chain_program)
    fused = state.transform.program
    for order in ("forward", "reverse"):
        loop = run_program(fused, block_order=order, block_exec="loop")
        batched = run_program(fused, block_order=order, block_exec="batched")
        assert_bit_equal(loop, batched)


def test_block_exec_env_override(monkeypatch):
    monkeypatch.setenv(ENV_BLOCK_EXEC, "loop")
    assert block_exec_from_env() == "loop"
    monkeypatch.setenv(ENV_BLOCK_EXEC, "BATCHED")
    assert block_exec_from_env() == "batched"
    monkeypatch.setenv(ENV_BLOCK_EXEC, "nonsense")
    assert block_exec_from_env() == "auto"
    monkeypatch.delenv(ENV_BLOCK_EXEC)
    assert block_exec_from_env() == "auto"

"""Fault tolerance of the parallel fitness evaluator and the fitness cache.

Worker crashes and hangs, a broken process pool, poisoned and corrupted
cache entries: in every case the evaluator must return the same results as
plain sequential evaluation — fault recovery never changes the search
trajectory — and must never crash the GGA.
"""

from types import SimpleNamespace

import pytest

from repro.analysis.filtering import identify_targets
from repro.gpu.device import K20X
from repro.gpu.profiler import gather_metadata
from repro.reliability import faults
from repro.search import PenaltyParams, build_problem, singleton_grouping
from repro.search.fitness_cache import (
    FitnessCache,
    NullCache,
    content_key,
    validate_fitness_result,
)
from repro.search.grouping import Grouping
from repro.search.objective import get_objective
from repro.search.parallel import (
    ENV_EVAL_RETRIES,
    ENV_EVAL_TIMEOUT,
    PopulationEvaluator,
    eval_retries_from_env,
    eval_timeout_from_env,
    evaluate_population_sequential,
)

OBJECTIVE_NAME = "projected_gflops"


@pytest.fixture(autouse=True)
def clean_fault_state():
    faults.clear_plan()
    yield
    faults.clear_plan()


@pytest.fixture(scope="module")
def problem(three_kernel_program):
    meta = gather_metadata(three_kernel_program, K20X)
    report = identify_targets(meta, K20X)
    return build_problem(three_kernel_program, meta, report, K20X).problem


@pytest.fixture(scope="module")
def three_kernel_program():
    from repro.cudalite import parse_program

    from conftest import THREE_KERNEL_SRC

    return parse_program(THREE_KERNEL_SRC)


@pytest.fixture(scope="module")
def population(problem):
    """Four distinct partitions of the three-kernel problem."""
    return [
        singleton_grouping(problem),
        Grouping(
            split=frozenset(),
            groups=(frozenset({"k1@0", "k2@1", "k3@2"}),),
        ),
        Grouping(
            split=frozenset(),
            groups=(frozenset({"k1@0", "k2@1"}), frozenset({"k3@2"})),
        ),
        Grouping(
            split=frozenset(),
            groups=(frozenset({"k2@1", "k3@2"}), frozenset({"k1@0"})),
        ),
    ]


@pytest.fixture(scope="module")
def reference(problem, population):
    return evaluate_population_sequential(
        problem,
        population,
        K20X,
        get_objective(OBJECTIVE_NAME),
        PenaltyParams(),
    )


def make_evaluator(problem, **kwargs):
    kwargs.setdefault("objective_name", OBJECTIVE_NAME)
    kwargs.setdefault("cache", FitnessCache(max_entries=256))
    kwargs.setdefault("namespace", "hardening-test")
    return PopulationEvaluator(
        problem,
        K20X,
        get_objective(OBJECTIVE_NAME),
        PenaltyParams(),
        **kwargs,
    )


def install(spec, **kwargs):
    faults.install_plan(
        faults.FaultPlan(seams=faults.parse_seam_specs(spec), **kwargs)
    )


# ------------------------------------------------------------- determinism


def test_sequential_matches_reference(problem, population, reference):
    with make_evaluator(problem, workers=0) as evaluator:
        assert evaluator.evaluate_many(population) == reference


@pytest.mark.parametrize("workers", (2, 3))
def test_thread_pool_matches_reference(problem, population, reference, workers):
    with make_evaluator(
        problem, workers=workers, executor="thread"
    ) as evaluator:
        assert evaluator.evaluate_many(population) == reference


def test_duplicates_computed_once(problem, population, reference):
    batch = population + population  # every individual appears twice
    with make_evaluator(problem, workers=2, executor="thread") as evaluator:
        results = evaluator.evaluate_many(batch)
    assert results == reference + reference
    assert evaluator.evaluations == len(population)
    assert evaluator.cache_hits == len(population)


# --------------------------------------------------------- worker failures


def test_thread_worker_crash_is_retried(problem, population, reference):
    install("worker_crash:x1")
    with make_evaluator(
        problem, workers=2, executor="thread", retries=1
    ) as evaluator:
        results = evaluator.evaluate_many(population)
    assert results == reference
    assert evaluator.worker_failures >= 1
    assert not evaluator._pool_broken  # a thread crash is not a broken pool


def test_worker_hang_trips_timeout_then_falls_back(
    problem, population, reference
):
    install("worker_hang:x1", hang_seconds=0.6)
    with make_evaluator(
        problem, workers=2, executor="thread", timeout=0.15, retries=0
    ) as evaluator:
        results = evaluator.evaluate_many(population)
        assert results == reference
        assert evaluator.worker_failures >= 1
        assert evaluator.fallback_evaluations >= 1


def test_crashes_beyond_retry_budget_fall_back_in_process(
    problem, population, reference
):
    install("worker_crash")  # every worker evaluation crashes, forever
    with make_evaluator(
        problem, workers=2, executor="thread", retries=1
    ) as evaluator:
        results = evaluator.evaluate_many(population)
    assert results == reference
    # two submission rounds failed, then everything was computed in-process
    assert evaluator.fallback_evaluations == len(population)


def test_broken_process_pool_falls_back_sequential(
    problem, population, reference, monkeypatch
):
    # env-configured so pool children pick the plan up on first use
    monkeypatch.setenv(faults.ENV_FAULT_SEAMS, "worker_crash")
    faults.clear_plan()
    with make_evaluator(
        problem, workers=2, executor="process", retries=1
    ) as evaluator:
        results = evaluator.evaluate_many(population)
        assert results == reference
        assert evaluator._pool_broken
        assert evaluator.fallback_evaluations >= 1
        # once broken, later batches run sequentially without incident
        monkeypatch.delenv(faults.ENV_FAULT_SEAMS)
        faults.clear_plan()
        assert evaluator.evaluate_many(population) == reference


# ----------------------------------------------------------- cache hardening


def test_poisoned_cache_entry_is_a_miss_not_a_crash(
    problem, population, reference
):
    install("fitness_cache")  # poison every cache read
    cache = FitnessCache(max_entries=256)
    with make_evaluator(problem, workers=0, cache=cache) as evaluator:
        first = evaluator.evaluate(population[0])
        second = evaluator.evaluate(population[0])
    assert first == second == reference[0]
    assert cache.stats.invalid >= 2  # both reads saw (and dropped) poison
    assert evaluator.cache_hits == 0
    assert evaluator.evaluations == 2  # each poisoned read forced a recompute


def test_garbage_cache_entries_are_misses(problem, population, reference):
    cache = FitnessCache(max_entries=256)
    evaluator = make_evaluator(problem, workers=0, cache=cache)
    individual = population[0]
    key = content_key(individual, evaluator.namespace)
    garbage = [
        "not a tuple",
        ("fitness", None, "extra"),
        (float("nan"), SimpleNamespace(total=0)),
        (True, SimpleNamespace(total=0)),
        (1.0, None),
        (1.0, SimpleNamespace(total=lambda: 0)),  # unpicklable
    ]
    for value in garbage:
        cache.put(key, value)
        assert evaluator.evaluate(individual) == reference[0]
    assert cache.stats.invalid == len(garbage)
    # the recomputed (valid) entry is served on a clean read
    assert cache.get(key, validator=validate_fitness_result) == reference[0]


def test_validate_fitness_result():
    violations = SimpleNamespace(total=0)
    assert validate_fitness_result((1.5, violations))
    assert validate_fitness_result((float("inf"), violations))
    assert not validate_fitness_result("garbage")
    assert not validate_fitness_result((1.0,))
    assert not validate_fitness_result((True, violations))
    assert not validate_fitness_result((float("nan"), violations))
    assert not validate_fitness_result((1.0, None))
    assert not validate_fitness_result((1.0, object()))  # no .total
    assert not validate_fitness_result((1.0, SimpleNamespace(total=lambda: 0)))


def test_invalid_entry_is_dropped_from_the_cache():
    cache = FitnessCache(max_entries=8)
    cache.put("k", "garbage")
    assert cache.get("k", validator=validate_fitness_result) is None
    assert len(cache) == 0
    assert cache.stats.invalid == 1
    # without a validator the raw value is still readable
    cache.put("k", "garbage")
    assert cache.get("k") == "garbage"


def test_discard_removes_entries():
    cache = FitnessCache(max_entries=8)
    cache.put("k", (1.0, SimpleNamespace(total=0)))
    cache.discard("k")
    assert len(cache) == 0
    cache.discard("never-there")  # no-op, no error


def test_null_cache_accepts_validator():
    cache = NullCache()
    assert cache.get("k", validator=validate_fitness_result) is None
    cache.put("k", (1.0, None))
    cache.discard("k")
    assert len(cache) == 0


# --------------------------------------------------------- env configuration


def test_eval_timeout_from_env(monkeypatch):
    monkeypatch.delenv(ENV_EVAL_TIMEOUT, raising=False)
    assert eval_timeout_from_env() is None
    monkeypatch.setenv(ENV_EVAL_TIMEOUT, "2.5")
    assert eval_timeout_from_env() == 2.5
    monkeypatch.setenv(ENV_EVAL_TIMEOUT, "0")
    assert eval_timeout_from_env() is None  # 0 disables the timeout
    monkeypatch.setenv(ENV_EVAL_TIMEOUT, "-3")
    assert eval_timeout_from_env() is None
    monkeypatch.setenv(ENV_EVAL_TIMEOUT, "soon")
    assert eval_timeout_from_env() is None


def test_eval_retries_from_env(monkeypatch):
    monkeypatch.delenv(ENV_EVAL_RETRIES, raising=False)
    assert eval_retries_from_env() == 1
    monkeypatch.setenv(ENV_EVAL_RETRIES, "3")
    assert eval_retries_from_env() == 3
    monkeypatch.setenv(ENV_EVAL_RETRIES, "-2")
    assert eval_retries_from_env() == 0
    monkeypatch.setenv(ENV_EVAL_RETRIES, "many")
    assert eval_retries_from_env() == 1


def test_evaluator_reads_timeout_and_retries_from_env(problem, monkeypatch):
    monkeypatch.setenv(ENV_EVAL_TIMEOUT, "1.5")
    monkeypatch.setenv(ENV_EVAL_RETRIES, "4")
    evaluator = make_evaluator(problem)
    assert evaluator.timeout == 1.5
    assert evaluator.retries == 4

"""Trace analytics: critical path, self time, rollups, waterfall (PR 8).

All tests drive the pure functions against a hand-built span tree whose
shape and durations are fully controlled, so every expected value is
computed by hand:

    root (100ms)
    ├── search (60ms)
    │   ├── gen0 (20ms)
    │   └── gen1 (30ms)
    └── codegen (25ms)
    side (5ms, separate root)
"""

import pytest

from repro.observability import telemetry
from repro.observability.tracing import (
    SpanRecord,
    get_tracer,
    reset_tracer,
    span,
)
from repro.observability.trace_analytics import (
    critical_path,
    render_waterfall,
    rollup,
    self_times,
    spans_from_chrome_trace,
    summarize_spans,
)


def _span(span_id, parent_id, name, start_ms, dur_ms):
    return SpanRecord(
        span_id=span_id,
        parent_id=parent_id,
        name=name,
        start_us=start_ms * 1000.0,
        duration_us=dur_ms * 1000.0,
        thread=1,
    )


@pytest.fixture
def tree():
    return [
        _span(1, None, "root", 0, 100),
        _span(2, 1, "search", 0, 60),
        _span(3, 2, "gen0", 0, 20),
        _span(4, 2, "gen1", 20, 30),
        _span(5, 1, "codegen", 60, 25),
        _span(6, None, "side", 100, 5),
    ]


# ----------------------------------------------------------- critical path


def test_critical_path_descends_heaviest_chain(tree):
    path = [s.name for s in critical_path(tree)]
    assert path == ["root", "search", "gen1"]


def test_critical_path_empty():
    assert critical_path([]) == []


def test_critical_path_picks_heaviest_root(tree):
    # make the side root the heaviest — the path must start there
    tree[-1] = _span(6, None, "side", 100, 500)
    assert [s.name for s in critical_path(tree)] == ["side"]


def test_critical_path_tolerates_dangling_parent():
    # a span whose parent was dropped by the tracer cap acts as a root
    spans = [_span(7, 999, "orphan", 0, 10), _span(8, 7, "child", 0, 4)]
    assert [s.name for s in critical_path(spans)] == ["orphan", "child"]


def test_critical_path_terminates_on_id_cycle():
    # malformed input (parent cycles) must not loop forever; with no
    # resolvable root the path degrades to empty rather than hanging
    assert critical_path([_span(1, 1, "loop", 0, 10)]) == []
    two_cycle = [_span(1, 2, "a", 0, 10), _span(2, 1, "b", 0, 10)]
    assert critical_path(two_cycle) == []


# --------------------------------------------------------------- self time


def test_self_times_subtract_direct_children(tree):
    selfs = self_times(tree)
    assert selfs[1] == pytest.approx(15_000.0)  # 100 - (60 + 25)
    assert selfs[2] == pytest.approx(10_000.0)  # 60 - (20 + 30)
    assert selfs[3] == pytest.approx(20_000.0)  # leaf keeps everything
    assert selfs[6] == pytest.approx(5_000.0)


def test_self_times_clamped_at_zero():
    # overlapping children longer than the parent (thread pools) clamp to 0
    spans = [_span(1, None, "p", 0, 10), _span(2, 1, "a", 0, 8),
             _span(3, 1, "b", 0, 8)]
    assert self_times(spans)[1] == 0.0


# ------------------------------------------------------------------ rollup


def test_rollup_aggregates_by_name(tree):
    tree.append(_span(7, 1, "codegen", 85, 10))
    stats = rollup(tree)
    assert stats["codegen"].count == 2
    assert stats["codegen"].total_us == pytest.approx(35_000.0)
    assert stats["codegen"].max_us == pytest.approx(25_000.0)
    d = stats["codegen"].as_dict()
    assert d["total_ms"] == 35.0 and d["count"] == 2


def test_summarize_spans_shape_and_truncation(tree):
    summary = summarize_spans(tree, path_limit=2, top=3)
    assert summary["span_count"] == 6
    assert [hop["name"] for hop in summary["critical_path"]] == [
        "root", "search",
    ]
    assert len(summary["self_time_ms"]) == 3
    # gen1 (30ms self) must be among the top-3 self times
    assert summary["self_time_ms"]["gen1"] == 30.0


def test_summarize_spans_empty():
    assert summarize_spans([]) == {
        "span_count": 0, "critical_path": [], "self_time_ms": {},
    }


# --------------------------------------------------------------- waterfall


def test_waterfall_renders_all_roots_and_durations(tree):
    text = render_waterfall(tree)
    assert "root" in text and "side" in text
    assert "100.00 ms" in text
    assert "#" in text


def test_waterfall_folds_below_threshold(tree):
    tree.append(_span(7, 1, "tiny", 99, 0.1))
    text = render_waterfall(tree, min_fraction=0.05)
    assert "tiny" not in text
    assert "below threshold" in text


def test_waterfall_empty():
    assert render_waterfall([]) == "(no spans recorded)"


# ----------------------------------------------- chrome trace round-trip


def test_spans_round_trip_through_chrome_trace():
    reset_tracer()
    try:
        with telemetry(True):
            with span("outer"):
                with span("inner"):
                    pass
        tracer = get_tracer()
        restored = spans_from_chrome_trace(tracer.to_chrome_trace())
    finally:
        reset_tracer()
    assert {s.name for s in restored} == {"outer", "inner"}
    assert [s.name for s in critical_path(restored)] == ["outer", "inner"]
    # metadata events (ph == 'M') are ignored
    by_name = {s.name: s for s in restored}
    assert by_name["inner"].parent_id == by_name["outer"].span_id

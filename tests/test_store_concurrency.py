"""The artifact store under concurrent multi-process writers (S3).

The store's durability story rests on ``put()`` being an atomic
mkstemp + ``os.replace`` and on ``get()`` treating *every* failure as a
cache miss with quarantine of invalid entries.  These tests drive two
separate Python processes racing ``put()`` on the same key while a
reader polls, and assert the contract:

* a reader never crashes and never observes a torn/mixed payload — every
  ``get()`` is either ``None`` or exactly one writer's payload;
* after the race the surviving envelope is valid (correct schema, key
  and checksum) and is *not* quarantined by the next read.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.reliability import faults
from repro.store.artifact_store import ArtifactStore

KEY = "c" * 64
NAMESPACE = "metadata"
ROUNDS = 150

WRITER = """
import sys
sys.path.insert(0, {src!r})
from repro.store.artifact_store import ArtifactStore

store = ArtifactStore({root!r})
wrote = 0
for n in range({rounds}):
    if store.put({namespace!r}, {key!r}, {{"writer": {writer}, "n": n}}):
        wrote += 1
print(wrote)
"""


@pytest.fixture(autouse=True)
def _no_fault_plan():
    faults.clear_plan()
    yield
    faults.clear_plan()


def _spawn_writer(root, writer_id):
    src = Path(__file__).resolve().parent.parent / "src"
    code = WRITER.format(
        src=str(src),
        root=str(root),
        rounds=ROUNDS,
        namespace=NAMESPACE,
        key=KEY,
        writer=writer_id,
    )
    return subprocess.Popen(
        [sys.executable, "-c", code],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env={"PATH": "/usr/bin:/bin"},
    )


def test_two_writers_racing_one_key_never_corrupt(tmp_path):
    root = tmp_path / "store"
    writers = [_spawn_writer(root, 0), _spawn_writer(root, 1)]
    reader = ArtifactStore(root)

    observed = []
    while any(proc.poll() is None for proc in writers):
        value = reader.get(NAMESPACE, KEY)  # must never raise
        if value is not None:
            observed.append(value)

    for writer_id, proc in enumerate(writers):
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, (writer_id, err)
        assert int(out.strip()) == ROUNDS, (
            f"writer {writer_id} had failed puts: {out!r} {err!r}"
        )

    # every observation was one writer's intact payload — no tearing
    for value in observed:
        assert set(value) == {"writer", "n"}
        assert value["writer"] in (0, 1)
        assert 0 <= value["n"] < ROUNDS

    # the survivor is a valid envelope and the next read is a hit,
    # not a quarantine
    final = reader.get(NAMESPACE, KEY)
    assert final is not None and final["n"] == ROUNDS - 1
    path = reader.path_for(NAMESPACE, KEY)
    assert path.is_file()
    envelope = json.loads(path.read_text())
    assert envelope["schema"] == "repro.store/1"
    assert envelope["namespace"] == NAMESPACE and envelope["key"] == KEY
    again = reader.get(NAMESPACE, KEY)
    assert again == final
    assert path.is_file(), "valid entry was spuriously quarantined"


def test_concurrent_writers_distinct_keys_all_land(tmp_path):
    root = tmp_path / "store"
    src = Path(__file__).resolve().parent.parent / "src"
    procs = []
    for writer_id in range(2):
        key = str(writer_id) * 64
        code = WRITER.format(
            src=str(src),
            root=str(root),
            rounds=25,
            namespace=NAMESPACE,
            key=key,
            writer=writer_id,
        )
        procs.append(
            subprocess.Popen(
                [sys.executable, "-c", code],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env={"PATH": "/usr/bin:/bin"},
            )
        )
    for proc in procs:
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, err
        assert int(out.strip()) == 25
    store = ArtifactStore(root)
    for writer_id in range(2):
        value = store.get(NAMESPACE, str(writer_id) * 64)
        assert value == {"writer": writer_id, "n": 24}

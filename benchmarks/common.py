"""Shared harness for the per-table / per-figure benchmarks.

Every benchmark regenerates one table or figure of the paper's evaluation
(§6) by running the end-to-end pipeline over the six generated applications
and printing the same rows/series the paper reports.  Results are cached
per configuration so the figure benches that share runs do not recompute
them.

Absolute numbers come from the analytic device model, not a real K20X/K40 —
per DESIGN.md the reproduction targets the *shape* of the results (who
wins, by roughly which factor), which EXPERIMENTS.md records side by side
with the paper's numbers.
"""

from __future__ import annotations

import atexit
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.apps import APP_NAMES, SPECS, build_app
from repro.gpu.device import DeviceSpec, K20X, K40
from repro.observability.metrics import get_registry
from repro.observability.runtime import telemetry_enabled
from repro.pipeline import Framework, PipelineConfig, PipelineState
from repro.search import GAParams, fast_params

#: GA budget for benchmark runs (reduced from the paper's 500x100 C++ GGA;
#: early stopping keeps runs tractable in pure Python).
BENCH_POPULATION = 36
BENCH_GENERATIONS = 60
BENCH_STALL = 20
BENCH_SEED = 20150615  # HPDC'15


@dataclass(frozen=True)
class RunKey:
    app: str
    device: str
    mode: str
    fission: bool
    tuning: bool
    filtering: str  # 'auto' | 'manual' | 'off'


@dataclass
class RunOutcome:
    state: PipelineState
    wall_time_s: float

    @property
    def speedup(self) -> float:
        return self.state.speedup


_CACHE: Dict[RunKey, RunOutcome] = {}


def bench_params(seed: int = BENCH_SEED) -> GAParams:
    params = fast_params(seed=seed)
    params.population = BENCH_POPULATION
    params.generations = BENCH_GENERATIONS
    params.stall_generations = BENCH_STALL
    return params


def guided_overrides(app: str) -> Optional[Dict[str, object]]:
    """The targeted interventions §6.2.2 reports per application."""
    if app == "SCALE-LES":
        # the identified inefficiency was deep-nested-loop fusion
        return {"merge_deep_loops": True}
    if app == "HOMME":
        # the identified inefficiency was two-sided divergence guards;
        # fission already helps HOMME, keep it on
        return {"one_sided_guards": True}
    return None


def run_pipeline(
    app: str,
    device: DeviceSpec = K20X,
    mode: str = "automated",
    fission: bool = True,
    tuning: bool = True,
    filtering: str = "auto",
    overrides: Optional[Dict[str, object]] = None,
) -> RunOutcome:
    """Run (or fetch from cache) one full transformation."""
    key = RunKey(app, device.name, mode, fission, tuning, filtering)
    if overrides is None and key in _CACHE:
        return _CACHE[key]

    generated = build_app(app)
    manual_exclusions: Tuple[str, ...] = ()
    if filtering == "manual":
        manual_exclusions = generated.latency_kernels
    config = PipelineConfig(
        device=device,
        mode=mode,
        ga_params=bench_params(),
        manual_exclusions=manual_exclusions,
        disable_filtering=(filtering == "off"),
        enable_fission=fission,
        tune_blocks=tuning,
        verify=False,  # correctness is covered by the test suite
        fusion_overrides=overrides,
    )
    start = time.perf_counter()
    state = Framework(generated.program, config).run()
    outcome = RunOutcome(state=state, wall_time_s=time.perf_counter() - start)
    if overrides is None:
        _CACHE[key] = outcome
    return outcome


def guided_run(app: str, device: DeviceSpec = K20X) -> RunOutcome:
    """Programmer-guided transformation for the figure benches."""
    if app == "Fluam":
        # Fluam's guided fix is manual target filtering (§6.2.2)
        return run_pipeline(app, device, filtering="manual")
    overrides = guided_overrides(app)
    return run_pipeline(app, device, overrides=overrides)


#: where the end-of-run metrics dump lands (next to the bench results)
METRICS_OUT = Path(__file__).parent / "bench_metrics.json"

_metrics_hook_registered = False


def register_metrics_emission(path: Optional[Path] = None) -> None:
    """Emit the process's metrics registry as JSON when the bench exits.

    Registered once at import, so every ``bench_*.py`` run leaves its
    metrics (pipeline stage times, search counters, cache rates) next to
    its printed results without per-bench code.  A no-op when telemetry
    is disabled or nothing was recorded.
    """
    global _metrics_hook_registered
    if _metrics_hook_registered:
        return
    _metrics_hook_registered = True
    target = path or METRICS_OUT

    def _emit() -> None:
        if not telemetry_enabled():
            return
        registry = get_registry()
        dump = registry.to_json()
        if not any(dump.values()):
            return
        registry.write_json(str(target))

    atexit.register(_emit)


register_metrics_emission()


def print_header(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def fmt_row(cells, widths) -> str:
    return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))

"""Figure 7 — Per-kernel runtimes of HOMME's new kernels: automated vs
manual transformation (K20X).

Unlike SCALE-LES's concentrated gap, HOMME's automated-vs-manual runtime
difference is *evenly distributed* across the fused kernels: it stems from
the two-sided divergence guards every fused kernel gets when constituents
with different loop extents are aligned (§6.2.2).
"""

import pytest

from repro.gpu.device import K20X
from repro.pipeline import project_transformed

from common import fmt_row, print_header, run_pipeline

_DATA = {}


def _kernel_times(state):
    projection = project_transformed(state.transform, state.built.problem, K20X)
    times = {}
    for launch, proj in zip(state.transform.launches, projection.kernels):
        if launch.fused is not None:
            times[launch.kernel_name] = times.get(launch.kernel_name, 0.0) + proj.time_s
    return times


def test_fig7_runs(benchmark):
    def run_both():
        auto = run_pipeline("HOMME", K20X)
        manual = run_pipeline("HOMME", K20X, mode="manual")
        return auto.state, manual.state

    _DATA["states"] = benchmark.pedantic(run_both, rounds=1, iterations=1)


def test_fig7_print(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if "states" not in _DATA:
        pytest.skip("run bench first")
    auto_state, manual_state = _DATA["states"]
    auto_times = _kernel_times(auto_state)
    manual_times = _kernel_times(manual_state)
    kernels = sorted(set(auto_times) & set(manual_times))

    print_header("Figure 7: HOMME per-kernel runtime, automated vs manual (K20X)")
    widths = (8, 12, 12, 12)
    print(fmt_row(("Kernel", "Auto(us)", "Manual(us)", "Gap(%)"), widths))
    gaps = []
    for name in kernels:
        ta, tm = auto_times[name], manual_times[name]
        rel = (ta - tm) / tm * 100 if tm > 0 else 0.0
        gaps.append(rel)
        print(fmt_row((name, f"{ta * 1e6:.1f}", f"{tm * 1e6:.1f}", f"{rel:+.1f}"), widths))

    # even distribution: every fused kernel carries a small positive gap
    positive = [g for g in gaps if g > 0.01]
    if positive:
        assert max(positive) <= 4 * (sum(positive) / len(positive)), (
            "HOMME's divergence gap should be spread across kernels"
        )
    assert sum(manual_times.values()) <= sum(auto_times.values()) + 1e-12

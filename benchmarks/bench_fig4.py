"""Figure 4 — Speedups of the transformed applications on K20X.

Series: fusion-only, fission+fusion, fission+fusion+block-tuning, and the
manual-fusion reference (available only for SCALE-LES and HOMME, as in the
paper).  The paper's headline: overall speedups between 1.12x and 1.76x;
fusion alone achieves nothing for AWP-ODC-GPU and B-CALM while
fission+fusion yields their largest gains.
"""

import pytest

from repro.apps import APP_NAMES, SPECS
from repro.gpu.device import K20X

from common import fmt_row, print_header, run_pipeline

_WIDTHS = (14, 12, 14, 14, 10)
_ROWS = {}

MANUAL_REFERENCE_APPS = ("SCALE-LES", "HOMME")


@pytest.mark.parametrize("app", APP_NAMES)
def test_fig4_series(benchmark, app):
    def run_all():
        fusion_only = run_pipeline(
            app, K20X, fission=False, tuning=False
        ).speedup
        fission_fusion = run_pipeline(app, K20X, tuning=False).speedup
        tuned = run_pipeline(app, K20X).speedup
        manual = (
            run_pipeline(app, K20X, mode="manual").speedup
            if app in MANUAL_REFERENCE_APPS
            else None
        )
        return fusion_only, fission_fusion, tuned, manual

    _ROWS[app] = benchmark.pedantic(run_all, rounds=1, iterations=1)


def test_fig4_print(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_header("Figure 4: Speedup over original CUDA codebase (K20X)")
    print(fmt_row(("Application", "Fusion", "Fiss+Fusion", "+BlockTune", "Manual"), _WIDTHS))
    for app in APP_NAMES:
        if app not in _ROWS:
            continue
        fusion, ff, tuned, manual = _ROWS[app]
        cells = (
            app,
            f"{fusion:.3f}x",
            f"{ff:.3f}x",
            f"{tuned:.3f}x",
            f"{manual:.3f}x" if manual else "-",
        )
        print(fmt_row(cells, _WIDTHS))
        lo, hi = SPECS[app].paper_speedup
        print(f"  (paper band: {lo:.2f}x .. {hi:.2f}x)")

    if len(_ROWS) == len(APP_NAMES):
        # paper-shape assertions
        fusion = {a: _ROWS[a][0] for a in APP_NAMES}
        best = {a: max(v for v in _ROWS[a][:3]) for a in APP_NAMES}
        # fusion alone gives (almost) nothing for the almost-fused apps
        assert fusion["AWP-ODC-GPU"] < 1.06
        assert fusion["B-CALM"] < 1.08
        # fission+fusion unlocks them
        assert _ROWS["AWP-ODC-GPU"][1] > fusion["AWP-ODC-GPU"] + 0.15
        assert _ROWS["B-CALM"][1] > fusion["B-CALM"] + 0.08
        # every application improves overall
        assert all(s > 1.05 for s in best.values())
        # manual reference is at least as fast as automated (SCALE/HOMME)
        for app in MANUAL_REFERENCE_APPS:
            assert _ROWS[app][3] >= _ROWS[app][2] - 1e-6

"""Search-throughput bench — fitness memoization, parallelism, batching.

Quantifies the three layers that make the pure-Python GGA tractable:

* the content-addressed fitness cache plus thread-parallel evaluation of
  the cache misses (evaluations/sec for a GGA run *and* a fully
  cache-served restart, against an uncached sequential re-evaluation of
  the exact same population batches; hit rate reported),
* the compiled fitness evaluator (part-granular memoization + direct
  Tarjan cycle check) against the uncompiled reference evaluator on the
  identical lookup stream, and against the committed PR3 baseline,
* thread-parallel population evaluation in isolation,
* batched and compiled per-block interpretation (one numpy block axis /
  one lowered numpy function instead of a Python loop over the launch
  grid) for shared-memory kernels.

Acceptance bars: the cached run must beat the uncached sequential
baseline by >= 3x evaluations/sec, and the compiled fitness evaluator
must beat PR3's committed uncached baseline (3434.9 evals/sec) by
>= 10x on the same protocol.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.analysis.filtering import identify_targets
from repro.apps import build_app
from repro.cudalite import parse_program
from repro.gpu.device import K20X
from repro.gpu.interpreter import run_program
from repro.gpu.profiler import gather_metadata
from repro.observability import aggregate_counters
from repro.search import (
    GGA,
    build_problem,
    get_objective,
)
from repro.search.fitness_cache import reset_shared_cache
from repro.search.objective import (
    clear_compiled_fitness,
    compiled_fitness,
    evaluate_individual_reference,
)

from common import bench_params, fmt_row, print_header

_ROWS = {}

#: the perf trajectory record this PR updates (committed at the repo root)
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_pr6.json"

#: PR3's committed uncached sequential baseline (BENCH_pr3.json) — the
#: reference point for the compiled evaluator's >= 10x acceptance bar
PR3_BASELINE_EPS = 3434.9

#: a classic stage-in / write-out tiled stencil: reads and writes are
#: disjoint, so the interpreter's `auto` mode picks the batched strategy
_TILED_STENCIL = """
__global__ void blur(const double* in, double* out, int nx, int ny) {
    __shared__ double t[8][8];
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    int i = blockIdx.x * blockDim.x + tx;
    int j = blockIdx.y * blockDim.y + ty;
    t[tx][ty] = in[i][j];
    __syncthreads();
    if (tx >= 1 && tx < 7 && ty >= 1 && ty < 7) {
        out[i][j] = t[tx - 1][ty] + t[tx + 1][ty] + t[tx][ty - 1]
            + t[tx][ty + 1] - 4.0 * t[tx][ty];
    }
}

int main() {
    int nx = 96;
    int ny = 96;
    double* a = cudaMalloc2D(nx, ny);
    double* b = cudaMalloc2D(nx, ny);
    deviceRandom(a, 20150615);
    blur<<<dim3(12, 12, 1), dim3(8, 8, 1)>>>(a, b, nx, ny);
    return 0;
}
"""


def _search_problem(app: str = "SCALE-LES"):
    generated = build_app(app)
    meta = gather_metadata(generated.program, K20X)
    report = identify_targets(meta, K20X)
    return build_problem(generated.program, meta, report, K20X).problem


def _timed_gga(problem, params):
    """Run one GGA while recording every population batch it evaluates."""
    gga = GGA(problem, K20X, params)
    batches = []
    original = gga.evaluator.evaluate_many

    def recording(individuals):
        batches.append(list(individuals))
        return original(individuals)

    gga.evaluator.evaluate_many = recording
    start = time.perf_counter()
    result = gga.run()
    return result, time.perf_counter() - start, batches


def test_fitness_cache_throughput(benchmark):
    def run():
        problem = _search_problem("AWP-ODC-GPU")
        params = bench_params()
        params.workers = 4
        params.generations = 120
        params.stall_generations = 40
        reset_shared_cache()

        # the memoized + parallel pipeline: one GGA run plus a restarted
        # run over the same problem (the restart is served entirely by the
        # process-wide cache without recomputing anything)
        result, first_time, batches = _timed_gga(problem, params)
        restart, restart_time, restart_batches = _timed_gga(problem, params)
        assert restart.evaluations == 0
        assert restart.best_fitness == result.best_fitness
        cached_time = first_time + restart_time
        lookups = result.fitness_lookups + restart.fitness_lookups
        evaluations = result.evaluations + restart.evaluations

        # uncached sequential baseline: replay the identical batches with
        # every individual evaluated from scratch through the *reference*
        # evaluator (evaluate_individual now routes to the compiled path,
        # so the baseline must name the uncompiled oracle explicitly)
        objective = get_objective(params.objective)
        replay = [ind for batch in batches + restart_batches for ind in batch]
        start = time.perf_counter()
        for ind in replay:
            evaluate_individual_reference(
                problem, ind, K20X, objective, params.penalties
            )
        baseline_time = time.perf_counter() - start

        # compiled fitness evaluator, cold (fresh memos), same stream;
        # spot-check bit-identity against the reference on the way
        clear_compiled_fitness(problem)
        start = time.perf_counter()
        evaluator = compiled_fitness(problem, K20X, objective, params.penalties)
        compiled_results = [evaluator.evaluate(ind) for ind in replay]
        compiled_time = time.perf_counter() - start
        for ind, got in zip(replay[:100], compiled_results[:100]):
            want = evaluate_individual_reference(
                problem, ind, K20X, objective, params.penalties
            )
            assert got == want, (ind, got, want)

        return {
            "lookups": lookups,
            "evaluations": evaluations,
            "hit_rate": (lookups - evaluations) / lookups,
            "cached_eps": lookups / cached_time,
            "baseline_eps": lookups / baseline_time,
            "restart_eps": restart.fitness_lookups / restart_time,
            "speedup": baseline_time / cached_time,
            "compiled_eps": len(replay) / compiled_time,
            "compiled_speedup": baseline_time / compiled_time,
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS["cache"] = row
    assert row["hit_rate"] > 0.5
    assert row["speedup"] >= 3.0, row
    assert row["compiled_eps"] >= 10 * PR3_BASELINE_EPS, row


def test_parallel_evaluation(benchmark):
    def run():
        problem = _search_problem("AWP-ODC-GPU")
        seq_params = bench_params()
        seq_params.workers = 1
        par_params = bench_params()
        par_params.workers = 4

        reset_shared_cache()
        seq_result, seq_time, _ = _timed_gga(problem, seq_params)
        reset_shared_cache()
        par_result, par_time, _ = _timed_gga(problem, par_params)

        assert par_result.best == seq_result.best
        assert par_result.best_fitness == seq_result.best_fitness
        return {
            "seq_eps": seq_result.fitness_lookups / seq_time,
            "par_eps": par_result.fitness_lookups / par_time,
        }

    _ROWS["parallel"] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_time_to_target(benchmark):
    """Time-to-target-fitness for the stock single-population GGA.

    The target is the run's own final best fitness; the row records when
    the trajectory first reached it (wall seconds, generation, exact
    evaluations) — the same metric ``bench_islands.py`` scales over K.
    """

    def run():
        problem = _search_problem("AWP-ODC-GPU")
        params = bench_params()
        reset_shared_cache()
        result, wall, _ = _timed_gga(problem, params)
        target = result.best_fitness
        crossing = next(
            s for s in result.history
            if s.best_feasible_fitness >= 0.999 * target
        )
        return {
            "best_fitness": result.best_fitness,
            "wall_s": wall,
            "time_to_target_s": crossing.elapsed_s,
            "generation_at_target": crossing.generation,
            "evaluations_at_target": crossing.evaluations,
            "target_eps": (
                crossing.evaluations / crossing.elapsed_s
                if crossing.elapsed_s else 0.0
            ),
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS["target"] = row
    assert row["time_to_target_s"] <= row["wall_s"]
    assert row["generation_at_target"] <= bench_params().generations


def test_batched_interpretation(benchmark):
    def run():
        from repro.gpu import compiler

        program = parse_program(_TILED_STENCIL)
        loop_start = time.perf_counter()
        loop = run_program(program, block_exec="loop")
        loop_time = time.perf_counter() - loop_start
        batched_start = time.perf_counter()
        batched = run_program(program, block_exec="batched")
        batched_time = time.perf_counter() - batched_start
        # compiled mode: first launch lowers + compiles, the timed launch
        # reuses the in-memory code cache (the steady state a fitness
        # sweep or verification replay sees)
        compiler.reset_code_cache()
        run_program(program, block_exec="compiled")
        compiled_start = time.perf_counter()
        compiled = run_program(program, block_exec="compiled")
        compiled_time = time.perf_counter() - compiled_start
        assert compiler.stats().lowered == 1
        assert all(
            np.array_equal(loop.arrays[k], batched.arrays[k])
            and np.array_equal(loop.arrays[k], compiled.arrays[k])
            for k in loop.arrays
        )
        # one counted run for the BENCH record's interpreter totals
        counted = run_program(program, collect_counters=True)
        totals = aggregate_counters(
            [l.counters for l in counted.launches if l.counters is not None]
        )
        return {
            "loop_ms": loop_time * 1e3,
            "batched_ms": batched_time * 1e3,
            "compiled_ms": compiled_time * 1e3,
            "speedup": loop_time / batched_time,
            "compiled_speedup": loop_time / compiled_time,
            "counters": {k: c.as_dict() for k, c in totals.items()},
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS["batched"] = row
    assert row["speedup"] > 1.0, row


def test_throughput_print(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_header("Search throughput: memoized + parallel fitness, batched blocks")
    if "cache" in _ROWS:
        row = _ROWS["cache"]
        widths = (26, 16, 16, 12)
        print(fmt_row(("GGA fitness pipeline", "evals/sec", "lookups", "hitrate"),
                      widths))
        print(fmt_row(
            ("uncached sequential", f"{row['baseline_eps']:.0f}",
             row["lookups"], "-"), widths))
        print(fmt_row(
            ("content-addressed cache", f"{row['cached_eps']:.0f}",
             row["lookups"], f"{row['hit_rate']:.3f}"), widths))
        print(fmt_row(
            ("restart (all cached)", f"{row['restart_eps']:.0f}",
             "-", "1.000"), widths))
        print(fmt_row(
            ("compiled evaluator (cold)", f"{row['compiled_eps']:.0f}",
             row["lookups"], "-"), widths))
        print(f"cache speedup: {row['speedup']:.1f}x "
              f"({row['evaluations']} objective calls for "
              f"{row['lookups']} lookups)")
        print(f"compiled fitness: {row['compiled_speedup']:.1f}x vs the "
              f"uncompiled reference, "
              f"{row['compiled_eps'] / PR3_BASELINE_EPS:.1f}x vs PR3's "
              f"committed baseline ({PR3_BASELINE_EPS:.0f}/s)")
    if "parallel" in _ROWS:
        row = _ROWS["parallel"]
        print(f"\nthread workers (4): {row['par_eps']:.0f} lookups/sec "
              f"vs sequential {row['seq_eps']:.0f}")
    if "target" in _ROWS:
        row = _ROWS["target"]
        print(f"\ntime-to-target-fitness: best {row['best_fitness']:.3f} "
              f"first reached at {row['time_to_target_s']:.2f}s "
              f"(gen {row['generation_at_target']}, "
              f"{row['evaluations_at_target']} exact evaluations)")
    if "batched" in _ROWS:
        row = _ROWS["batched"]
        print(f"\nbatched block interpretation: {row['batched_ms']:.1f} ms "
              f"vs loop {row['loop_ms']:.1f} ms "
              f"({row['speedup']:.1f}x on a 144-block tiled stencil); "
              f"compiled {row['compiled_ms']:.1f} ms "
              f"({row['compiled_speedup']:.1f}x)")
    _write_bench_json()


def _write_bench_json() -> None:
    """Persist the run as ``BENCH_pr6.json`` — the perf trajectory record."""
    record = {"schema": "repro.bench/1", "bench": "search_throughput"}
    if "cache" in _ROWS:
        row = _ROWS["cache"]
        record["fitness_pipeline"] = {
            "cached_evals_per_sec": round(row["cached_eps"], 1),
            "baseline_evals_per_sec": round(row["baseline_eps"], 1),
            "restart_evals_per_sec": round(row["restart_eps"], 1),
            "cache_hit_rate": round(row["hit_rate"], 4),
            "lookups": row["lookups"],
            "evaluations": row["evaluations"],
            "speedup_vs_uncached": round(row["speedup"], 2),
        }
        record["compiled_fitness"] = {
            "compiled_evals_per_sec": round(row["compiled_eps"], 1),
            "speedup_vs_reference": round(row["compiled_speedup"], 2),
            "pr3_baseline_evals_per_sec": PR3_BASELINE_EPS,
            "speedup_vs_pr3_baseline": round(
                row["compiled_eps"] / PR3_BASELINE_EPS, 2
            ),
        }
    if "parallel" in _ROWS:
        row = _ROWS["parallel"]
        record["parallel_evaluation"] = {
            "sequential_evals_per_sec": round(row["seq_eps"], 1),
            "parallel4_evals_per_sec": round(row["par_eps"], 1),
        }
    if "target" in _ROWS:
        row = _ROWS["target"]
        record["search"] = {
            "best_fitness": round(row["best_fitness"], 3),
            "time_to_target_s": round(row["time_to_target_s"], 3),
            "generation_at_target": row["generation_at_target"],
            "evaluations_at_target": row["evaluations_at_target"],
            "target_evals_per_sec": round(row["target_eps"], 1),
        }
    if "batched" in _ROWS:
        row = _ROWS["batched"]
        record["batched_interpretation"] = {
            "loop_ms": round(row["loop_ms"], 2),
            "batched_ms": round(row["batched_ms"], 2),
            "compiled_ms": round(row["compiled_ms"], 2),
            "speedup": round(row["speedup"], 2),
            "compiled_speedup": round(row["compiled_speedup"], 2),
        }
        record["interpreter_counters"] = row.get("counters", {})
    BENCH_JSON.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {BENCH_JSON.name}")

"""Warm-store bench — cross-run artifact cache cold vs warm (repro.store).

Quantifies the persistent content-addressed store behind ``repro.api``:

* a cold Fluam run through the facade populates the store (metadata,
  targets, DDG/OEG, exact search result, per-group verification
  verdicts, block tunings, whole-program verdict),
* an identical warm repeat must reuse every stage, produce bit-identical
  output and beat the cold run by >= 2x wall time (the acceptance bar
  from the issue),
* a repeat with a *different* GA seed misses the exact search key but
  warm-starts the GGA from the stored final population + exported
  fitness-cache entries.

Writes ``BENCH_pr5.json`` at the repo root — the perf trajectory record
for this PR.
"""

import json
import shutil
import tempfile
import time
from pathlib import Path

from repro.api import TransformConfig, transform
from repro.search.fitness_cache import reset_shared_cache
from repro.store import ArtifactStore

from common import BENCH_SEED, bench_params, print_header

_ROWS = {}

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_pr5.json"

APP = "Fluam"


def _config(store_root: Path, seed: int = BENCH_SEED) -> TransformConfig:
    return TransformConfig(
        ga_params=bench_params(seed=seed),
        store=True,
        store_root=str(store_root),
        telemetry=False,
    )


def _timed(store_root: Path, seed: int = BENCH_SEED):
    reset_shared_cache()  # isolate the persistent store from the
    # process-wide fitness cache so "warm" means "served from disk"
    start = time.perf_counter()
    result = transform(APP, _config(store_root, seed=seed))
    return result, time.perf_counter() - start


def test_cold_vs_warm(benchmark):
    def run():
        store_root = Path(tempfile.mkdtemp(prefix="repro-bench-store-"))
        try:
            cold, cold_s = _timed(store_root)
            assert cold.reused == {}
            warm, warm_s = _timed(store_root)
            assert warm.source == cold.source  # bit-identical output
            assert warm.reused.get("search") == "result"
            assert warm.verified and cold.verified

            seeded, seeded_s = _timed(store_root, seed=BENCH_SEED + 1)
            reuse = seeded.reused.get("search", "")
            assert reuse.startswith("warm-start:"), seeded.reused

            entries = ArtifactStore(store_root).entry_count()
        finally:
            shutil.rmtree(store_root, ignore_errors=True)
        return {
            "cold_s": cold_s,
            "warm_s": warm_s,
            "speedup": cold_s / warm_s,
            "reused_stages": dict(warm.reused),
            "store_entries": entries,
            "warm_start_s": seeded_s,
            "warm_start_reuse": reuse,
            "warm_start_speedup": cold_s / seeded_s,
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS["warm"] = row
    assert row["speedup"] >= 2.0, row


def test_warm_store_print(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_header("Persistent store: cold vs warm Fluam (repro.api facade)")
    if "warm" not in _ROWS:
        return
    row = _ROWS["warm"]
    print(f"cold run:        {row['cold_s']:8.2f} s "
          f"({row['store_entries']} artifacts stored)")
    print(f"warm repeat:     {row['warm_s']:8.2f} s "
          f"({row['speedup']:.1f}x, bit-identical, "
          f"{len(row['reused_stages'])} stages reused)")
    print(f"new GA seed:     {row['warm_start_s']:8.2f} s "
          f"({row['warm_start_speedup']:.1f}x, {row['warm_start_reuse']})")
    _write_bench_json()


def _write_bench_json() -> None:
    """Persist the run as ``BENCH_pr5.json`` — the perf trajectory record."""
    row = _ROWS["warm"]
    record = {
        "schema": "repro.bench/1",
        "bench": "warm_store",
        "app": APP,
        "warm_store": {
            "cold_s": round(row["cold_s"], 2),
            "warm_s": round(row["warm_s"], 2),
            "speedup": round(row["speedup"], 2),
            "store_entries": row["store_entries"],
            "reused_stages": row["reused_stages"],
        },
        "warm_started_search": {
            "wall_s": round(row["warm_start_s"], 2),
            "speedup_vs_cold": round(row["warm_start_speedup"], 2),
            "search_reuse": row["warm_start_reuse"],
        },
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {BENCH_JSON.name}")

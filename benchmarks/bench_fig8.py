"""Figure 8 — Automated vs manual target filtering.

The paper compares the speedups reached when the kernels are filtered
automatically by the framework against a manually filtered version.  All
applications match except Fluam, whose latency-bound kernels falsely appear
memory-bound to the automated filter, bloat the search space and hurt
convergence; the companion claim is that with *no* filtering at all the
optimization converges ~2.5x slower on average.
"""

import pytest

from repro.apps import APP_NAMES
from repro.gpu.device import K20X

from common import fmt_row, print_header, run_pipeline

_ROWS = {}
_CONV = {}


@pytest.mark.parametrize("app", APP_NAMES)
def test_fig8_filtering(benchmark, app):
    def run_both():
        auto = run_pipeline(app, K20X, filtering="auto")
        manual = run_pipeline(app, K20X, filtering="manual")
        return auto, manual

    auto, manual = benchmark.pedantic(run_both, rounds=1, iterations=1)
    _ROWS[app] = (auto.speedup, manual.speedup)
    _CONV[app] = (
        auto.state.search.converged_at,
        len(auto.state.targets.targets),
    )


def test_fig8_no_filter_convergence(benchmark):
    """Search-space blow-up without filtering (the 2.5x convergence claim)."""

    def run_off():
        return run_pipeline("SCALE-LES", K20X, filtering="off")

    off = benchmark.pedantic(run_off, rounds=1, iterations=1)
    on = run_pipeline("SCALE-LES", K20X, filtering="auto")
    _CONV["no-filter"] = (
        off.state.search.converged_at,
        len(off.state.targets.targets),
        on.state.search.converged_at,
        len(on.state.targets.targets),
    )
    assert len(off.state.targets.targets) > len(on.state.targets.targets)


def test_fig8_print(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_header("Figure 8: Automated vs manual kernel filtering (K20X)")
    widths = (14, 14, 14, 10)
    print(fmt_row(("Application", "AutoFilter", "ManualFilter", "Equal?"), widths))
    for app in APP_NAMES:
        if app not in _ROWS:
            continue
        auto, manual = _ROWS[app]
        equal = abs(auto - manual) < 0.02
        print(fmt_row((app, f"{auto:.3f}x", f"{manual:.3f}x",
                       "yes" if equal else "NO"), widths))
    if "no-filter" in _CONV:
        off_gen, off_targets, on_gen, on_targets = _CONV["no-filter"]
        print(
            f"\nno filtering: {off_targets} targets (vs {on_targets}), "
            f"converged at generation {off_gen} (vs {on_gen})"
        )

    if len(_ROWS) == len(APP_NAMES):
        # all apps except Fluam agree between automated and manual filtering
        for app in APP_NAMES:
            auto, manual = _ROWS[app]
            if app == "Fluam":
                # manual filtering helps Fluam (or stays within noise)
                assert manual >= auto - 0.06
            else:
                assert abs(auto - manual) < 0.06, (app, auto, manual)

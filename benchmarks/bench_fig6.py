"""Figure 6 — Per-kernel runtimes of SCALE-LES's new kernels: automated vs
manual transformation (K20X).

The paper's finding: a few generated kernels (K_07, K_15, K_16, K_23 there)
contribute most of the automated-vs-manual runtime difference because the
automated generator does not share the innermost loops of deep-nested-loop
kernels, so shared data is never reused.  Here the deep-loop constituents
are emitted as separate segments in automated mode, producing the same
concentrated gap.
"""

import pytest

from repro.gpu.device import K20X
from repro.pipeline import project_transformed

from common import fmt_row, print_header, run_pipeline

_DATA = {}


def _kernel_times(state):
    projection = project_transformed(
        state.transform, state.built.problem, K20X
    )
    times = {}
    members = {}
    for launch, proj in zip(state.transform.launches, projection.kernels):
        if launch.fused is not None:
            times[launch.kernel_name] = times.get(launch.kernel_name, 0.0) + proj.time_s
            members[launch.kernel_name] = launch.members
    return times, members


def test_fig6_runs(benchmark):
    def run_both():
        auto = run_pipeline("SCALE-LES", K20X)
        manual = run_pipeline("SCALE-LES", K20X, mode="manual")
        return auto.state, manual.state

    _DATA["states"] = benchmark.pedantic(run_both, rounds=1, iterations=1)


def test_fig6_print(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if "states" not in _DATA:
        pytest.skip("run bench first")
    auto_state, manual_state = _DATA["states"]
    auto_times, auto_members = _kernel_times(auto_state)
    manual_times, _ = _kernel_times(manual_state)
    common_kernels = sorted(set(auto_times) & set(manual_times))

    deep = set(run_pipeline("SCALE-LES", K20X).state.reports and [])
    from repro.apps import build_app

    deep_kernels = set(build_app("SCALE-LES").deep_loop_kernels)

    rows = []
    for name in common_kernels:
        gap = auto_times[name] - manual_times[name]
        has_deep = any(
            m.split("@")[0] in deep_kernels for m in auto_members[name]
        )
        rows.append((name, auto_times[name], manual_times[name], gap, has_deep))
    rows.sort(key=lambda r: -r[3])

    print_header(
        "Figure 6: SCALE-LES per-kernel runtime, automated vs manual (K20X)"
    )
    widths = (8, 12, 12, 12, 10)
    print(fmt_row(("Kernel", "Auto(us)", "Manual(us)", "Gap(us)", "DeepLoop"), widths))
    for name, ta, tm, gap, has_deep in rows[:12]:
        print(
            fmt_row(
                (
                    name,
                    f"{ta * 1e6:.1f}",
                    f"{tm * 1e6:.1f}",
                    f"{gap * 1e6:+.1f}",
                    "yes" if has_deep else "",
                ),
                widths,
            )
        )

    total_gap = sum(max(0.0, r[3]) for r in rows)
    deep_gap = sum(max(0.0, r[3]) for r in rows if r[4])
    print(f"\ntotal gap {total_gap * 1e6:.1f} us, from deep-loop fusions: "
          f"{deep_gap * 1e6:.1f} us ({100 * deep_gap / max(total_gap, 1e-12):.0f}%)")
    # the paper's shape: the gap concentrates in the deep-loop kernels
    if total_gap > 0:
        assert deep_gap >= 0.5 * total_gap
    # and the manual program is faster overall
    assert sum(manual_times.values()) <= sum(auto_times.values()) + 1e-9

"""Figure 5 — Speedups on K40 including the programmer-guided bars.

Same series as Figure 4 on the K40 device model plus the programmer-guided
transformation: SCALE-LES guided by fixing deep-loop fusion, HOMME by the
one-sided divergence strategy, Fluam by manual target filtering (§6.2.2).
The paper reports automated >= 85% of manual, guided ~92%, and HOMME's
guided-with-fission exceeding the manual (fusion-only) approach.
"""

import pytest

from repro.apps import APP_NAMES
from repro.gpu.device import K40

from common import fmt_row, guided_run, print_header, run_pipeline

_WIDTHS = (14, 12, 14, 12, 10)
_ROWS = {}

GUIDED_APPS = ("SCALE-LES", "HOMME", "Fluam")
MANUAL_REFERENCE_APPS = ("SCALE-LES", "HOMME")


@pytest.mark.parametrize("app", APP_NAMES)
def test_fig5_series(benchmark, app):
    def run_all():
        automated = run_pipeline(app, K40).speedup
        fission_fusion = run_pipeline(app, K40, tuning=False).speedup
        guided = guided_run(app, K40).speedup if app in GUIDED_APPS else None
        manual = (
            run_pipeline(app, K40, mode="manual").speedup
            if app in MANUAL_REFERENCE_APPS
            else None
        )
        return fission_fusion, automated, guided, manual

    _ROWS[app] = benchmark.pedantic(run_all, rounds=1, iterations=1)


def test_fig5_print(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_header("Figure 5: Speedup over original CUDA codebase (K40)")
    print(fmt_row(("Application", "Fiss+Fusion", "+BlockTune", "Guided", "Manual"), _WIDTHS))
    for app in APP_NAMES:
        if app not in _ROWS:
            continue
        ff, automated, guided, manual = _ROWS[app]
        print(
            fmt_row(
                (
                    app,
                    f"{ff:.3f}x",
                    f"{automated:.3f}x",
                    f"{guided:.3f}x" if guided else "-",
                    f"{manual:.3f}x" if manual else "-",
                ),
                _WIDTHS,
            )
        )

    if len(_ROWS) == len(APP_NAMES):
        for app in MANUAL_REFERENCE_APPS:
            ff, automated, guided, manual = _ROWS[app]
            # automated achieves a large share of the manual improvement...
            auto_gain = automated - 1.0
            manual_gain = manual - 1.0
            assert auto_gain >= 0.55 * manual_gain, (app, automated, manual)
            # ...and guided closes the gap further
            assert guided >= automated - 1e-6, (app, guided, automated)
        # guided Fluam (manual filtering) stays within noise of automated
        # (partial reproduction: see EXPERIMENTS.md - our false targets
        # still contribute small launch-overhead wins instead of only
        # hurting convergence)
        ff, automated, guided, _ = _ROWS["Fluam"]
        assert guided >= automated - 0.06

"""Ablation bench — design choices called out in DESIGN.md.

Quantifies, on the SCALE-LES and AWP-ODC-GPU workloads, how much each
ingredient of the transformation contributes:

* shared-memory staging of locality arrays (vs fusing without tiles),
* the lazy-fission relaxation of the penalty function (Eq. 1's C_SM term),
* thread-block tuning,
* temporal blocking for complex fusions (disabling it degrades every
  producer→consumer group to separate launches).
"""

import pytest

from repro.gpu.device import K20X
from repro.pipeline import Framework, PipelineConfig
from repro.apps import build_app
from repro.search import PenaltyParams

from common import bench_params, fmt_row, print_header, run_pipeline

_ROWS = {}


def _run(app, *, overrides=None, penalties=None, **cfgkw):
    generated = build_app(app)
    params = bench_params()
    if penalties is not None:
        params.penalties = penalties
    config = PipelineConfig(
        device=K20X,
        ga_params=params,
        verify=False,
        fusion_overrides=overrides,
        **cfgkw,
    )
    return Framework(generated.program, config).run()


def test_ablation_staging(benchmark):
    def run():
        with_tiles = run_pipeline("SCALE-LES", K20X).speedup
        without = _run(
            "SCALE-LES", overrides={"stage_shared": False}
        ).speedup
        return with_tiles, without

    _ROWS["staging"] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_ablation_lazy_fission_relaxation(benchmark):
    def run():
        relaxed = run_pipeline("AWP-ODC-GPU", K20X).speedup
        # C_SM relaxation off: boundary solutions penalized in full
        strict = _run(
            "AWP-ODC-GPU", penalties=PenaltyParams(c_sm_relax=0.0)
        ).speedup
        return relaxed, strict

    _ROWS["lazy-fission"] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_ablation_temporal_blocking(benchmark):
    def run():
        on = run_pipeline("B-CALM", K20X).speedup
        off = _run(
            "B-CALM", overrides={"temporal_blocking": False}
        ).speedup
        return on, off

    _ROWS["temporal-blocking"] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_ablation_block_tuning(benchmark):
    def run():
        on = run_pipeline("Fluam", K20X, tuning=True).speedup
        off = run_pipeline("Fluam", K20X, tuning=False).speedup
        return on, off

    _ROWS["block-tuning"] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_ablation_print(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_header("Ablation: contribution of each transformation ingredient")
    widths = (22, 14, 14, 10)
    print(fmt_row(("Ingredient (app)", "Enabled", "Disabled", "Delta"), widths))
    labels = {
        "staging": "smem staging (SCALE)",
        "lazy-fission": "C_SM relax (AWP)",
        "temporal-blocking": "temporal blk (B-CALM)",
        "block-tuning": "block tuning (Fluam)",
    }
    for key, label in labels.items():
        if key not in _ROWS:
            continue
        on, off = _ROWS[key]
        print(fmt_row((label, f"{on:.3f}x", f"{off:.3f}x", f"{on - off:+.3f}"), widths))
    # directional assertions
    if "staging" in _ROWS:
        assert _ROWS["staging"][0] >= _ROWS["staging"][1] - 0.02
    if "block-tuning" in _ROWS:
        assert _ROWS["block-tuning"][0] >= _ROWS["block-tuning"][1] - 1e-9

"""Island-model GGA bench — time-to-target-fitness scaling (PR 9).

Measures what the island + surrogate machinery is for: how fast the
search reaches a *fixed quality target* on the largest app, SCALE-LES
(142 nodes), cold and warm.

Protocol (one process, back-to-back, so machine state is shared):

* the K=1 baseline runs the plain single-population GGA for the full
  budget; its final best fitness becomes the **target** and the wall
  time at which it first reached that fitness is its time-to-best,
* each island configuration (K in {2, 4}, elite ring migration plus the
  analytic-model surrogate pre-filter) runs the same GAParams and seed
  with the population split across islands; time-to-target is the
  earliest per-island ``elapsed_s`` at which any island's best feasible
  fitness crosses 99.9% of the target,
* every island run publishes its elites into a per-K artifact store;
  the **warm** repeat hydrates from it and must re-reach the target
  within a few generations (cross-run elite migration),
* besides wall times the record keeps the machine-independent numbers —
  the generation and the cumulative exact-evaluation count at which the
  target was crossed — so the scaling claim survives noisy runners.

Writes ``BENCH_pr9.json`` at the repo root.  The committed record shows
K=4 cold reaching the K=1 best in under half the K=1 time-to-best
(>= 2x), with >= 2x fewer generations as the deterministic backstop.
"""

import json
import math
import shutil
import tempfile
import time
from dataclasses import replace
from pathlib import Path

from repro.analysis.filtering import identify_targets
from repro.apps import build_app
from repro.gpu.device import K20X
from repro.gpu.profiler import gather_metadata
from repro.search import GAParams, build_problem, run_search
from repro.search.fitness_cache import reset_shared_cache
from repro.search.objective import (
    clear_compiled_fitness,
    clear_projection_caches,
)
from repro.store import open_store

from common import BENCH_SEED, print_header

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_pr9.json"

APP = "SCALE-LES"

#: shared search budget; the K=1 baseline gets the long horizon that
#: defines the target, islands only need enough budget to cross it
POPULATION = 96
BASELINE_GENERATIONS = 400
ISLAND_GENERATIONS = 200
WARM_GENERATIONS = 60
MIGRATION_INTERVAL = 2
MIGRATION_SIZE = 3
SURROGATE_TOPK = 0.25

#: a run "reaches the target" at 99.9% of the baseline best (float-safe)
TARGET_TOLERANCE = 0.999

_RESULT = {}


def _problem():
    generated = build_app(APP)
    meta = gather_metadata(generated.program, K20X)
    report = identify_targets(meta, K20X)
    return build_problem(generated.program, meta, report, K20X).problem


def _params(islands: int, generations: int) -> GAParams:
    params = GAParams(
        population=POPULATION,
        generations=generations,
        seed=BENCH_SEED,
    )
    if islands > 1:
        params = replace(
            params,
            islands=islands,
            migration_interval=MIGRATION_INTERVAL,
            migration_size=MIGRATION_SIZE,
            surrogate_topk=SURROGATE_TOPK,
        )
    return params


def _run(problem, params, store=None):
    """One search from a clean in-process slate (store reuse is the only
    cross-run channel)."""
    reset_shared_cache()
    clear_compiled_fitness(problem)
    clear_projection_caches(problem)
    start = time.perf_counter()
    result = run_search(problem, K20X, params, store=store)
    return result, time.perf_counter() - start


def _crossing(result, target):
    """(elapsed_s, generation, evaluations) at the first generation row
    crossing the target, or (None, None, None)."""
    best = None
    for stats in sorted(result.history, key=lambda s: s.elapsed_s):
        fitness = stats.best_feasible_fitness
        if math.isnan(fitness) or fitness < TARGET_TOLERANCE * target:
            continue
        evals = sum(
            max(
                (
                    s.evaluations
                    for s in result.history
                    if s.island == island and s.elapsed_s <= stats.elapsed_s
                ),
                default=0,
            )
            for island in {s.island for s in result.history}
        )
        best = (stats.elapsed_s, stats.generation, evals)
        break
    return best or (None, None, None)


def _entry(result, wall_s, target):
    ttt, gen, evals = _crossing(result, target)
    rho = result.surrogate_rank_correlation
    return {
        "best_fitness": round(result.best_fitness, 3),
        "wall_s": round(wall_s, 3),
        "time_to_target_s": None if ttt is None else round(ttt, 3),
        "generation_at_target": gen,
        "evaluations_at_target": evals,
        "generations_run": result.generations_run,
        "evaluations": result.evaluations,
        "migrations_received": result.migrations_received,
        "migrations_dropped": result.migrations_dropped,
        "surrogate_skipped": result.surrogate_skipped,
        "surrogate_rank_correlation": (
            None if math.isnan(rho) else round(rho, 3)
        ),
    }


def _measure():
    if _RESULT:
        return _RESULT
    problem = _problem()

    baseline, baseline_wall = _run(
        problem, _params(1, BASELINE_GENERATIONS)
    )
    target = baseline.best_fitness
    t2b, t2b_gen, t2b_evals = _crossing(baseline, target)
    assert t2b is not None, "baseline never reached its own best"

    curve = {"k1": {"cold": _entry(baseline, baseline_wall, target)}}
    # K=1 has no island store plumbing: the "warm" row is an honest
    # repeat showing no cross-run reuse on the classic path
    repeat, repeat_wall = _run(problem, _params(1, BASELINE_GENERATIONS))
    curve["k1"]["warm"] = _entry(repeat, repeat_wall, target)

    for islands in (2, 4):
        store_root = Path(
            tempfile.mkdtemp(prefix=f"repro-bench-islands-k{islands}-")
        )
        try:
            store = open_store(store_root)
            cold, cold_wall = _run(
                problem, _params(islands, ISLAND_GENERATIONS), store=store
            )
            warm, warm_wall = _run(
                problem, _params(islands, WARM_GENERATIONS), store=store
            )
        finally:
            shutil.rmtree(store_root, ignore_errors=True)
        curve[f"k{islands}"] = {
            "cold": _entry(cold, cold_wall, target),
            "warm": _entry(warm, warm_wall, target),
        }

    k4 = curve["k4"]["cold"]
    headline = {
        "target_fitness": round(target, 3),
        "k1_time_to_best_s": round(t2b, 3),
        "k1_time_to_best_generation": t2b_gen,
        "k4_cold_speedup": (
            None
            if k4["time_to_target_s"] is None
            else round(t2b / k4["time_to_target_s"], 3)
        ),
        "k4_cold_generation_speedup": (
            None
            if k4["generation_at_target"] is None
            else round(t2b_gen / max(1, k4["generation_at_target"]), 3)
        ),
        "k4_cold_evaluation_speedup": (
            None
            if k4["evaluations_at_target"] is None
            else round(t2b_evals / max(1, k4["evaluations_at_target"]), 3)
        ),
    }

    _RESULT.update(
        {
            "schema": "repro.bench/1",
            "bench": "islands",
            "app": APP,
            "protocol": {
                "population": POPULATION,
                "baseline_generations": BASELINE_GENERATIONS,
                "island_generations": ISLAND_GENERATIONS,
                "warm_generations": WARM_GENERATIONS,
                "seed": BENCH_SEED,
                "migration_interval": MIGRATION_INTERVAL,
                "migration_size": MIGRATION_SIZE,
                "surrogate_topk": SURROGATE_TOPK,
                "target_tolerance": TARGET_TOLERANCE,
            },
            "curve": curve,
            "headline": headline,
        }
    )
    return _RESULT


def test_scaling_curve():
    record = _measure()
    curve, headline = record["curve"], record["headline"]
    # deterministic bars: islands find a strictly better optimum and
    # cross the baseline's best in less than half the generations
    assert curve["k4"]["cold"]["best_fitness"] > headline["target_fitness"]
    assert curve["k2"]["cold"]["best_fitness"] > headline["target_fitness"]
    assert headline["k4_cold_generation_speedup"] >= 2.0
    # wall-clock bar, with a collapse guard low enough for noisy runners
    assert headline["k4_cold_speedup"] is not None
    assert headline["k4_cold_speedup"] >= 1.0
    # migration actually happened and the pre-filter was audited
    assert curve["k4"]["cold"]["migrations_received"] > 0
    assert curve["k4"]["cold"]["surrogate_rank_correlation"] is not None


def test_warm_hydration():
    record = _measure()
    for key in ("k2", "k4"):
        warm = record["curve"][key]["warm"]
        # hydrated islands re-reach the target almost immediately
        assert warm["generation_at_target"] is not None
        assert warm["generation_at_target"] <= 10
    # the classic K=1 path has no island store: its repeat must not
    # magically improve (guards against hydration leaking into GGA)
    k1_cold = record["curve"]["k1"]["cold"]["generation_at_target"]
    k1_warm = record["curve"]["k1"]["warm"]["generation_at_target"]
    assert k1_warm == k1_cold


def test_record_written():
    record = _measure()
    BENCH_JSON.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    print_header(f"island scaling on {APP} (pop {POPULATION})")
    headline = record["headline"]
    print(f"target fitness (K=1 best):  {headline['target_fitness']}")
    print(f"K=1 time-to-best:           {headline['k1_time_to_best_s']}s "
          f"@gen {headline['k1_time_to_best_generation']}")
    for key in ("k2", "k4"):
        for mode in ("cold", "warm"):
            entry = record["curve"][key][mode]
            print(
                f"{key} {mode}: target @ {entry['time_to_target_s']}s "
                f"(gen {entry['generation_at_target']}), "
                f"best {entry['best_fitness']}, "
                f"migr {entry['migrations_received']}, "
                f"rho {entry['surrogate_rank_correlation']}"
            )
    print(f"K=4 cold speedup:           {headline['k4_cold_speedup']}x wall, "
          f"{headline['k4_cold_generation_speedup']}x generations")
    print(f"record written to {BENCH_JSON}")

"""Transformation-service bench — sustained multi-tenant serving (PR 10).

Measures the serving layer end to end: a real ``TransformService`` (4
persistent workers, fresh shared store) driven by 4 concurrent clients
over HTTP, exactly as tenants would:

* **cold** — 16 distinct requests (same program, distinct seeds) fan
  out across the pool; every one executes the full pipeline,
* **warm** — the same 16 requests again; each is a new execution but
  hydrates every stage from the shared store, so the sustained
  request rate is bounded by serving overhead, not the pipeline
  (acceptance bar: every warm request completes in under 1 s),
* **dedup** — 8 identical concurrent requests while the first is in
  flight must collapse to exactly one execution, with every client
  receiving the byte-identical response body.

Besides wall-clock rates the record keeps the machine-independent
facts — execution and dedup-hit counts, reuse provenance, ledger
accounting — so the serving claims survive noisy runners.

Writes ``BENCH_pr10.json`` at the repo root.
"""

import asyncio
import json
import shutil
import statistics
import tempfile
import threading
import time
from pathlib import Path

from repro.observability.ledger import RunLedger
from repro.observability.metrics import get_registry
from repro.service import ServiceClient, TransformService

from common import print_header

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_pr10.json"

WORKERS = 4
CLIENTS = 4
REQUESTS_PER_CLIENT = 4
DEDUP_CLIENTS = 8

#: the served program: three fusable stencil kernels (small enough that
#: a cold transform is sub-second, so the bench measures serving, not GA)
SOURCE = """
__global__ void blur(double *A, const double *B, int nx, int ny, int nz) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if (i >= 1 && i < nx - 1 && j >= 1 && j < ny - 1) {
        for (int k = 0; k < nz; k++) {
            A[i][j][k] = 0.25 * (B[i + 1][j][k] + B[i - 1][j][k] + B[i][j + 1][k] + B[i][j - 1][k]);
        }
    }
}
__global__ void scale(double *C, const double *B, int nx, int ny, int nz) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < nx && j < ny) {
        for (int k = 0; k < nz; k++) {
            C[i][j][k] = B[i][j][k] * 2.0;
        }
    }
}
__global__ void combine(double *D, const double *A, const double *C, int nx, int ny, int nz) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int j = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < nx && j < ny) {
        for (int k = 0; k < nz; k++) {
            D[i][j][k] = A[i][j][k] + C[i][j][k];
        }
    }
}
int main() {
    int nx = 32;
    int ny = 32;
    int nz = 8;
    double *A = cudaMalloc3D(nx, ny, nz);
    double *B = cudaMalloc3D(nx, ny, nz);
    double *C = cudaMalloc3D(nx, ny, nz);
    double *D = cudaMalloc3D(nx, ny, nz);
    deviceRandom(B, 7);
    dim3 grid(4, 4, 1);
    dim3 block(8, 8, 1);
    blur<<<grid, block>>>(A, B, nx, ny, nz);
    scale<<<grid, block>>>(C, B, nx, ny, nz);
    combine<<<grid, block>>>(D, A, C, nx, ny, nz);
    return 0;
}
"""

GA = {
    "population": 12,
    "generations": 8,
    "stall_generations": 4,
    "workers": 1,
    "executor": "thread",
}

#: a longer search for the dedup burst: the first request must still be
#: in flight while the other 7 arrive
SLOW_GA = {**GA, "population": 24, "generations": 18, "stall_generations": 18}

_RESULT = {}


class _Service:
    """The service in a daemon thread (mirrors tests/test_service.py)."""

    def __init__(self, store_root):
        self.store_root = store_root
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._started.wait(timeout=120)
        self.client = ServiceClient(port=self.port)
        self.client.wait_ready(timeout=120)

    def _run(self):
        async def main():
            self.loop = asyncio.get_running_loop()
            self.shutdown = asyncio.Event()
            self.service = TransformService(
                store_root=self.store_root, pool_size=WORKERS
            )
            _host, self.port = await self.service.start("127.0.0.1", 0)
            self._started.set()
            await self.shutdown.wait()
            await self.service.stop(drain=True)

        asyncio.run(main())

    def stop(self):
        self.loop.call_soon_threadsafe(self.shutdown.set)
        self._thread.join(timeout=60)


def _counter(name):
    return get_registry().counter_total(name)


def _sweep(client, phase_tag):
    """16 requests from 4 concurrent client threads; returns the stats."""
    latencies = [[] for _ in range(CLIENTS)]
    responses = {}
    errors = []

    def tenant(slot):
        for n in range(REQUESTS_PER_CLIENT):
            seed = 1000 + slot * REQUESTS_PER_CLIENT + n
            start = time.perf_counter()
            served = client.transform(
                source=SOURCE,
                config={**{"ga_params": GA}, "seed": seed},
                request_id=f"{phase_tag}-{seed}",
            )
            latencies[slot].append(time.perf_counter() - start)
            if served.status != 200:
                errors.append((seed, served.status, served.body))
            responses[seed] = served.response()

    threads = [
        threading.Thread(target=tenant, args=(slot,))
        for slot in range(CLIENTS)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    assert not errors, errors
    flat = [x for per_client in latencies for x in per_client]
    return {
        "requests": len(flat),
        "wall_s": round(wall, 3),
        "requests_per_sec": round(len(flat) / wall, 3),
        "mean_latency_s": round(statistics.mean(flat), 4),
        "max_latency_s": round(max(flat), 4),
    }, responses


def _dedup_burst(client):
    executions_before = _counter("service_executions_total")
    dedup_before = _counter("service_dedup_hits_total")
    submitted = client.submit(
        source=SOURCE, config={"ga_params": SLOW_GA, "seed": 77}
    )
    assert submitted.status == 202
    job_id = submitted.json()["job_id"]

    bodies = [None] * (DEDUP_CLIENTS - 1)
    flags = [None] * (DEDUP_CLIENTS - 1)

    def join(slot):
        served = client.transform(
            source=SOURCE, config={"ga_params": SLOW_GA, "seed": 77}
        )
        bodies[slot] = served.body
        flags[slot] = served.dedup

    threads = [
        threading.Thread(target=join, args=(slot,))
        for slot in range(DEDUP_CLIENTS - 1)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    owner_body = client.wait(job_id, timeout=300).body
    return {
        "clients": DEDUP_CLIENTS,
        "executions": int(
            _counter("service_executions_total") - executions_before
        ),
        "dedup_hits": int(_counter("service_dedup_hits_total") - dedup_before),
        "bodies_identical": all(b == owner_body for b in bodies),
        "dedup_flags_all_hit": all(flags),
        "job_id": job_id,
    }


def _measure():
    if _RESULT:
        return _RESULT["record"]
    store_root = tempfile.mkdtemp(prefix="bench-service-")
    restarts_before = _counter("service_worker_restarts_total")
    service = _Service(store_root)
    try:
        cold, cold_responses = _sweep(service.client, "cold")
        warm, warm_responses = _sweep(service.client, "warm")
        dedup = _dedup_burst(service.client)
        ledger_records = RunLedger(store_root).list(kind="service")
    finally:
        service.stop()
        shutil.rmtree(store_root, ignore_errors=True)

    cold["all_reused"] = all(bool(r.reused) for r in cold_responses.values())
    warm["all_reused"] = all(bool(r.reused) for r in warm_responses.values())
    warm["speedups_match_cold"] = all(
        warm_responses[seed].speedup == cold_responses[seed].speedup
        for seed in cold_responses
    )
    dedup_job_id = dedup.pop("job_id")
    dedup_record = next(
        r for r in ledger_records
        if r["service"]["job_id"] == dedup_job_id
    )
    dedup["ledger_dedup_clients"] = dedup_record["service"]["dedup_clients"]

    record = {
        "schema": "repro.bench/1",
        "bench": "service",
        "protocol": {
            "workers": WORKERS,
            "concurrent_clients": CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "dedup_clients": DEDUP_CLIENTS,
            "ga": GA,
        },
        "cold": cold,
        "warm": warm,
        "dedup": dedup,
        "headline": {
            "sustained_requests_per_sec": warm["requests_per_sec"],
            "warm_speedup_vs_cold": round(
                warm["requests_per_sec"] / cold["requests_per_sec"], 3
            ),
            "worker_restarts": int(
                _counter("service_worker_restarts_total") - restarts_before
            ),
            "ledger_service_records": len(ledger_records),
        },
    }
    _RESULT["record"] = record
    return record


# ------------------------------------------------------------------- tests


def test_cold_phase_executes_everything():
    record = _measure()
    assert record["cold"]["requests"] == CLIENTS * REQUESTS_PER_CLIENT
    assert record["cold"]["all_reused"] is False


def test_warm_phase_is_fully_store_served():
    record = _measure()
    warm = record["warm"]
    assert warm["all_reused"] is True
    assert warm["speedups_match_cold"] is True
    # the ISSUE acceptance bar: warm requests complete in under 1 s
    assert warm["max_latency_s"] < 1.0
    assert record["headline"]["warm_speedup_vs_cold"] > 1.0


def test_dedup_burst_collapses_to_one_execution():
    record = _measure()
    dedup = record["dedup"]
    assert dedup["executions"] == 1
    assert dedup["dedup_hits"] == DEDUP_CLIENTS - 1
    assert dedup["bodies_identical"] is True
    assert dedup["dedup_flags_all_hit"] is True
    assert dedup["ledger_dedup_clients"] == DEDUP_CLIENTS


def test_service_stayed_healthy():
    record = _measure()
    assert record["headline"]["worker_restarts"] == 0
    # 16 cold + 16 warm + 1 dedup execution, one ledger record each
    assert record["headline"]["ledger_service_records"] == 33


def test_record_written():
    record = _measure()
    BENCH_JSON.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    print_header(
        f"transformation service ({WORKERS} workers, {CLIENTS} clients)"
    )
    for phase in ("cold", "warm"):
        entry = record[phase]
        print(
            f"{phase}: {entry['requests']} requests in {entry['wall_s']}s "
            f"= {entry['requests_per_sec']} req/s "
            f"(mean {entry['mean_latency_s']}s, max {entry['max_latency_s']}s)"
        )
    dedup = record["dedup"]
    print(
        f"dedup: {dedup['clients']} identical clients -> "
        f"{dedup['executions']} execution, {dedup['dedup_hits']} hits, "
        f"bit-identical={dedup['bodies_identical']}"
    )
    print(f"record written to {BENCH_JSON}")

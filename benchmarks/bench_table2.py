"""Table 2 — Tuning Thread Block Size for New Kernels.

Per application: number of kernels output of fusion, how many the tuner
changed, and the average occupancy before/after tuning (§4.2).
"""

import pytest

from repro.apps import APP_NAMES, SPECS

from common import fmt_row, print_header, run_pipeline

_WIDTHS = (14, 10, 8, 10, 10)
_ROWS = {}

#: paper's Table 2 values: (kernels out of fusion, tuned, occ before, after)
PAPER_TABLE2 = {
    "SCALE-LES": (38, 14, 0.65, 0.80),
    "HOMME": (9, 4, 0.55, 0.85),
    "Fluam": (17, 11, 0.81, 0.90),
    "MITgcm": (6, 3, 0.95, 0.96),
    "AWP-ODC-GPU": (3, 2, 0.75, 0.77),
    "B-CALM": (3, 0, 0.72, 0.72),
}


@pytest.mark.parametrize("app", APP_NAMES)
def test_table2_row(benchmark, app):
    outcome = benchmark.pedantic(
        lambda: run_pipeline(app, tuning=True), rounds=1, iterations=1
    )
    state = outcome.state
    tuning = state.transform.tuning
    tuned = [t for t in tuning if t.changed]
    occ_before = (
        sum(t.occupancy_before for t in tuning) / len(tuning) if tuning else 0.0
    )
    occ_after = (
        sum(t.occupancy_after for t in tuning) / len(tuning) if tuning else 0.0
    )
    _ROWS[app] = (
        len(state.transform.fused_kernels),
        len(tuned),
        round(occ_before, 2),
        round(occ_after, 2),
    )
    # tuning never lowers modeled occupancy
    assert all(t.occupancy_after >= t.occupancy_before - 1e-12 for t in tuning)


def test_table2_print(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_header("Table 2: Tuning Thread Block Size for New Kernels")
    print(fmt_row(("Application", "FusedKern", "Tuned", "OccBefore", "OccAfter"), _WIDTHS))
    for app in APP_NAMES:
        if app not in _ROWS:
            continue
        print(fmt_row((app,) + _ROWS[app], _WIDTHS))
        p = PAPER_TABLE2[app]
        print(f"  (paper: fused={p[0]} tuned={p[1]} occ {p[2]:.2f} -> {p[3]:.2f})")
    # shape: tuning changes occupancy the most where blocks started small
    if {"HOMME", "MITgcm"} <= set(_ROWS):
        gain = lambda app: _ROWS[app][3] - _ROWS[app][2]
        assert gain("HOMME") >= gain("MITgcm") - 1e-9

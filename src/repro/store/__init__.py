"""repro.store — the persistent, content-addressed cross-run cache.

Memoizes each pipeline stage's output across processes so that repeated
transformations of the same (or an incrementally edited) application
skip straight to the parts that actually changed:

* metadata / targets / graphs — reconstructed from versioned JSON;
* search — the exact GGA outcome is reused when every search input
  matches, and otherwise the previous run's population and fitness
  evaluations *warm-start* the new search;
* codegen — per-group and whole-program verification verdicts are
  remembered by content, so an unchanged group is never re-verified.

The store is purely advisory: corruption, unreadable roots, or poisoned
entries degrade a run to cold execution with a logged warning — never an
error.  See :class:`ArtifactStore` for the on-disk contract.
"""

from .artifact_store import (
    ArtifactStore,
    StoreStats,
    default_store_root,
    open_store,
    store_enabled_from_env,
)
from .keys import (
    compiled_kernel_key,
    device_fingerprint,
    digest,
    kernel_fingerprint,
    params_fingerprint,
    program_fingerprint,
    service_request_key,
)

__all__ = [
    "ArtifactStore",
    "StoreStats",
    "compiled_kernel_key",
    "default_store_root",
    "device_fingerprint",
    "digest",
    "kernel_fingerprint",
    "open_store",
    "params_fingerprint",
    "program_fingerprint",
    "service_request_key",
    "store_enabled_from_env",
]

"""The persistent, content-addressed artifact store (``repro.store``).

Every pipeline stage can memoize its output across *processes*: artifacts
are JSON envelopes written under a versioned on-disk layout, keyed by a
content digest of everything the artifact depends on (program
fingerprint, device, configuration, code version — see
:mod:`repro.store.keys`).

Design constraints, mirroring the in-memory fitness cache:

* **Atomic writes** — an artifact is staged to a temporary file in the
  same directory and ``os.replace``-d into place, so readers never see a
  half-written entry (and concurrent writers race benignly: last writer
  wins with an intact file).
* **Integrity-validated reads** — every envelope carries a SHA-256
  checksum of its canonical payload encoding; a read that fails JSON
  parsing, schema validation, key matching or the checksum is treated as
  a *miss*, the offending file is removed (poison recovery), and a
  warning is logged.  Store corruption can therefore degrade a run to a
  cold execution but never fail it.
* **Fail-soft writes** — an unwritable store (read-only filesystem, disk
  full) downgrades to warnings; the run proceeds uncached.

Layout::

    <root>/v1/<namespace>/<key[:2]>/<key>.json

The root defaults to ``~/.cache/repro`` and is overridden by the
``REPRO_STORE`` environment variable or
:attr:`repro.api.TransformConfig.store_root`.  Wipe it with
``rm -rf <root>`` (or :meth:`ArtifactStore.wipe`) at any time — the
store is a pure cache and every entry can be regenerated.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, Dict, Optional

from .. import __version__
from ..errors import StoreError
from ..observability.metrics import get_registry
from ..observability.tracing import span
from ..reliability import faults
from .keys import checksum_payload

logger = logging.getLogger(__name__)

#: bumped whenever the on-disk envelope format changes incompatibly
STORE_SCHEMA = "repro.store/1"
#: directory level encoding the layout version (independent of SCHEMA so a
#: layout change does not have to orphan readable envelopes and vice versa)
LAYOUT_DIR = "v1"

ENV_STORE = "REPRO_STORE"
DEFAULT_ROOT = "~/.cache/repro"

_FALSY = {"0", "false", "off", "no"}


def default_store_root(environ: Optional[Dict[str, str]] = None) -> str:
    """The effective store root: ``REPRO_STORE`` or ``~/.cache/repro``."""
    env = os.environ if environ is None else environ
    raw = (env.get(ENV_STORE) or "").strip()
    if raw and raw.lower() not in _FALSY:
        return raw
    return DEFAULT_ROOT


def store_enabled_from_env(environ: Optional[Dict[str, str]] = None) -> bool:
    """Whether the environment opts this process into the store.

    The store is opt-in: it activates when ``REPRO_STORE`` names a root
    (any non-falsy value), or when the caller asks for it explicitly
    (``--store`` / ``TransformConfig(store=True)``).
    """
    env = os.environ if environ is None else environ
    raw = (env.get(ENV_STORE) or "").strip()
    return bool(raw) and raw.lower() not in _FALSY


@dataclass
class StoreStats:
    """Read/write counters for one :class:`ArtifactStore`."""

    hits: int = 0
    misses: int = 0
    #: entries rejected by envelope validation and removed (poison recovery)
    invalid: int = 0
    writes: int = 0
    write_errors: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    #: hits per namespace (provenance for ``run.json``)
    hit_namespaces: Dict[str, int] = field(default_factory=dict)
    #: per-namespace traffic table (hits/misses/writes/bytes each way),
    #: carried into ``run.json`` and the run ledger
    namespaces: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def namespace(self, name: str) -> Dict[str, int]:
        """The (created-on-demand) traffic row for one namespace."""
        return self.namespaces.setdefault(
            name,
            {
                "hits": 0,
                "misses": 0,
                "writes": 0,
                "bytes_read": 0,
                "bytes_written": 0,
            },
        )

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalid": self.invalid,
            "writes": self.writes,
            "write_errors": self.write_errors,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "hit_rate": round(self.hit_rate, 4),
            "hit_namespaces": dict(sorted(self.hit_namespaces.items())),
            "namespaces": {
                ns: dict(row)
                for ns, row in sorted(self.namespaces.items())
            },
        }


class ArtifactStore:
    """A cross-run cache of pipeline artifacts rooted at a directory."""

    def __init__(self, root: "str | Path | None" = None) -> None:
        raw = Path(root if root is not None else default_store_root())
        self.root = raw.expanduser()
        if self.root.exists() and not self.root.is_dir():
            raise StoreError(f"store root {self.root} is not a directory")
        self.stats = StoreStats()

    # --------------------------------------------------------------- layout

    def path_for(self, namespace: str, key: str) -> Path:
        return self.root / LAYOUT_DIR / namespace / key[:2] / f"{key}.json"

    # ----------------------------------------------------------------- read

    def get(self, namespace: str, key: str) -> Optional[Dict[str, Any]]:
        """The payload stored under ``(namespace, key)``, or ``None``.

        Every failure mode — missing file, unreadable file, malformed
        JSON, wrong schema/key, checksum mismatch, injected poison — is
        a miss; validation failures additionally remove the entry.
        """
        path = self.path_for(namespace, key)
        registry = get_registry()
        start = perf_counter()
        with span("store:get", namespace=namespace):
            try:
                raw = path.read_text()
            except FileNotFoundError:
                self._record_miss(namespace, registry, "miss", start)
                return None
            except OSError as exc:
                logger.warning(
                    "store: unreadable entry %s (%s); treating as a miss",
                    path, exc,
                )
                self._record_miss(namespace, registry, "error", start)
                return None
            if faults.poison_cache_value("store"):
                raw = raw[: len(raw) // 2] + "\x00poisoned"
            payload = self._validate(namespace, key, raw)
            if payload is None:
                self._quarantine(path)
                self.stats.invalid += 1
                self._record_miss(namespace, registry, "invalid", start)
                return None
            nbytes = len(raw.encode("utf-8", "replace"))
            self.stats.hits += 1
            self.stats.bytes_read += nbytes
            self.stats.hit_namespaces[namespace] = (
                self.stats.hit_namespaces.get(namespace, 0) + 1
            )
            row = self.stats.namespace(namespace)
            row["hits"] += 1
            row["bytes_read"] += nbytes
            registry.inc("store_reads_total", namespace=namespace, outcome="hit")
            registry.inc("store_read_bytes_total", nbytes, namespace=namespace)
            registry.observe(
                "store_read_seconds", perf_counter() - start,
                namespace=namespace,
            )
            return payload

    def _record_miss(
        self, namespace: str, registry, outcome: str,
        start: Optional[float] = None,
    ) -> None:
        self.stats.misses += 1
        self.stats.namespace(namespace)["misses"] += 1
        registry.inc("store_reads_total", namespace=namespace, outcome=outcome)
        if start is not None:
            registry.observe(
                "store_read_seconds", perf_counter() - start,
                namespace=namespace,
            )

    def _validate(
        self, namespace: str, key: str, raw: str
    ) -> Optional[Dict[str, Any]]:
        try:
            envelope = json.loads(raw)
        except (json.JSONDecodeError, ValueError):
            logger.warning(
                "store: corrupt entry %s/%s (unparseable JSON); "
                "degrading to a cold run for this artifact", namespace, key,
            )
            return None
        if not isinstance(envelope, dict):
            logger.warning("store: entry %s/%s is not an object", namespace, key)
            return None
        if envelope.get("schema") != STORE_SCHEMA:
            logger.warning(
                "store: entry %s/%s has schema %r (want %r)",
                namespace, key, envelope.get("schema"), STORE_SCHEMA,
            )
            return None
        if envelope.get("namespace") != namespace or envelope.get("key") != key:
            logger.warning(
                "store: entry %s/%s addressed as %s/%s — misplaced file",
                envelope.get("namespace"), envelope.get("key"), namespace, key,
            )
            return None
        payload = envelope.get("payload")
        if not isinstance(payload, dict):
            logger.warning("store: entry %s/%s has no payload", namespace, key)
            return None
        if envelope.get("sha256") != checksum_payload(payload):
            logger.warning(
                "store: entry %s/%s failed its checksum; removing it and "
                "degrading to a cold run for this artifact", namespace, key,
            )
            return None
        return payload

    def _quarantine(self, path: Path) -> None:
        """Remove a corrupt entry so it cannot poison later runs."""
        try:
            path.unlink()
        except OSError:  # pragma: no cover - removal is best effort
            pass

    # ---------------------------------------------------------------- write

    def put(self, namespace: str, key: str, payload: Dict[str, Any]) -> bool:
        """Atomically persist ``payload``; returns False on failure."""
        path = self.path_for(namespace, key)
        envelope = {
            "schema": STORE_SCHEMA,
            "namespace": namespace,
            "key": key,
            "repro_version": __version__,
            "sha256": checksum_payload(payload),
            "payload": payload,
        }
        registry = get_registry()
        start = perf_counter()
        with span("store:put", namespace=namespace):
            try:
                body = json.dumps(envelope, sort_keys=True) + "\n"
                nbytes = len(body.encode("utf-8"))
                path.parent.mkdir(parents=True, exist_ok=True)
                fd, tmp = tempfile.mkstemp(
                    dir=str(path.parent), prefix=".tmp-", suffix=".json"
                )
                try:
                    with os.fdopen(fd, "w") as fh:
                        fh.write(body)
                    os.replace(tmp, path)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
            except (OSError, TypeError, ValueError) as exc:
                logger.warning(
                    "store: could not persist %s/%s (%s); continuing uncached",
                    namespace, key, exc,
                )
                self.stats.write_errors += 1
                registry.inc(
                    "store_writes_total", namespace=namespace, outcome="error"
                )
                return False
        self.stats.writes += 1
        self.stats.bytes_written += nbytes
        row = self.stats.namespace(namespace)
        row["writes"] += 1
        row["bytes_written"] += nbytes
        registry.inc("store_writes_total", namespace=namespace, outcome="ok")
        registry.inc("store_write_bytes_total", nbytes, namespace=namespace)
        registry.observe(
            "store_write_seconds", perf_counter() - start, namespace=namespace
        )
        return True

    # ----------------------------------------------------------- maintenance

    def wipe(self, namespace: Optional[str] = None) -> int:
        """Delete every entry (or one namespace); returns files removed."""
        base = self.root / LAYOUT_DIR
        if namespace is not None:
            base = base / namespace
        removed = 0
        if not base.exists():
            return 0
        for path in sorted(base.rglob("*.json")):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover
                pass
        return removed

    def entry_count(self, namespace: Optional[str] = None) -> int:
        base = self.root / LAYOUT_DIR
        if namespace is not None:
            base = base / namespace
        if not base.exists():
            return 0
        return sum(1 for _ in base.rglob("*.json"))

    def describe(self) -> Dict[str, object]:
        """Provenance block for ``run.json``."""
        return {
            "root": str(self.root),
            "schema": STORE_SCHEMA,
            "stats": self.stats.as_dict(),
        }


def open_store(
    root: "str | Path | None" = None, *, create: bool = True
) -> Optional[ArtifactStore]:
    """Best-effort store construction: ``None`` instead of an exception.

    The pipeline must never fail because its cache is unusable, so the
    one construction-time error (:class:`StoreError`, root is a regular
    file) is logged and swallowed here.
    """
    try:
        store = ArtifactStore(root)
        if create:
            store.root.mkdir(parents=True, exist_ok=True)
        return store
    except (StoreError, OSError) as exc:
        logger.warning("store: disabled (%s)", exc)
        return None

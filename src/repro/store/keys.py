"""Content keys for the persistent artifact store.

Every key is a SHA-256 digest over a ``repr``-canonicalized tuple of the
artifact's inputs, salted with the package version — so a new release
never reads artifacts produced by code that may have computed them
differently, and two runs of the same code over the same inputs always
address the same entry.

The dependency chain mirrors the pipeline: each stage key embeds the key
material of the stages it consumes, so invalidation is automatic — edit
the program and every downstream entry changes address; change only a
search parameter and the metadata/graph entries keep hitting.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cudalite import ast_nodes as ast
    from ..gpu.device import DeviceSpec
    from ..search.params import GAParams


def _version_salt() -> str:
    from .. import __version__

    return f"repro/{__version__}"


def digest(*parts: object) -> str:
    """SHA-256 over the canonical encoding of ``parts`` (version-salted)."""
    payload = repr((_version_salt(),) + parts)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def checksum_payload(payload: dict) -> str:
    """Integrity checksum of a store payload (canonical JSON encoding)."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def program_fingerprint(program: "ast.Program") -> str:
    """Content digest of a program (via its canonical unparsed text)."""
    from ..cudalite.unparser import unparse

    return hashlib.sha256(unparse(program).encode("utf-8")).hexdigest()


def device_fingerprint(device: "DeviceSpec") -> str:
    """Content digest of a device model (every spec field participates)."""
    return digest("device", tuple(sorted(asdict(device).items())))


def params_fingerprint(params: "GAParams") -> str:
    """Content digest of a full GA parameter set (includes the seed)."""
    return digest("ga-params", repr(params))


# ----------------------------------------------------------- stage keys


def metadata_key(program_fp: str, device_fp: str) -> str:
    return digest("metadata", program_fp, device_fp)


def targets_key(
    program_fp: str,
    device_fp: str,
    boundary_fraction: float,
    manual_exclusions: Tuple[str, ...],
    disable_filtering: bool,
) -> str:
    return digest(
        "targets",
        program_fp,
        device_fp,
        boundary_fraction,
        tuple(sorted(manual_exclusions)),
        bool(disable_filtering),
    )


def graphs_key(targets_key_: str) -> str:
    """Graphs depend on the program+metadata+filter outcome — all of which
    the targets key already covers."""
    return digest("graphs", targets_key_)


def search_key(problem_fp: str, device_fp: str, params_fp: str) -> str:
    """Exact search identity: reuse is only sound when every input that
    can steer the GGA — problem, device, parameters *and seed* — matches."""
    return digest("search", problem_fp, device_fp, params_fp)


def population_key(
    problem_fp: str, device_fp: str, objective: str, penalties_repr: str
) -> str:
    """Warm-start identity: a population transfers across runs whose
    fitness landscape matches (problem/device/objective/penalties), even
    when the seed or generation budget differs."""
    return digest("population", problem_fp, device_fp, objective, penalties_repr)


def island_migration_key(
    problem_fp: str,
    device_fp: str,
    objective: str,
    penalties_repr: str,
    island: int,
) -> str:
    """Identity of one island's published elites.

    Keyed like the warm-start population — fitness-landscape identity
    (problem/device/objective/penalties), seed-free so elites transfer
    across differently-seeded runs — plus the island slot, so a K-island
    run hydrates each slot from its own predecessor."""
    return digest(
        "island-migration",
        problem_fp,
        device_fp,
        objective,
        penalties_repr,
        int(island),
    )


def verified_group_key(
    fused_text: str,
    launch_sig: Tuple[object, ...],
    constituents_sig: Tuple[object, ...],
    shapes_sig: Tuple[object, ...],
    compare: Tuple[str, ...],
    verify_seed: int,
    verify_rtol: float,
) -> str:
    """Identity of one verified fused group.

    Keyed purely on group-level content (generated kernel text, launch
    configuration, constituent kernels/bindings, the shapes of every
    array touched, and the verification config), *not* on the program
    fingerprint — so a verified group survives unrelated edits elsewhere
    in the application (incremental re-verification)."""
    return digest(
        "verified-group",
        fused_text,
        launch_sig,
        constituents_sig,
        shapes_sig,
        tuple(compare),
        verify_seed,
        verify_rtol,
    )


def verified_program_key(original_text: str, transformed_text: str) -> str:
    """Identity of one whole-program verification (original vs output)."""
    return digest("verified-program", original_text, transformed_text)


def kernel_fingerprint(kernel: "ast.KernelDef") -> str:
    """Content digest of one kernel definition (canonical unparsed text)."""
    from ..cudalite.unparser import unparse

    return hashlib.sha256(unparse(kernel).encode("utf-8")).hexdigest()


def compiled_kernel_key(kernel_fp: str, lowering_version: int) -> str:
    """Identity of one lowered kernel source.

    Keyed on kernel *content* (not program): the same kernel text in any
    application hits the same compiled artifact.  The lowering version
    participates on top of the package-version salt so a lowerer change
    within a release still invalidates stale sources.
    """
    return digest("compiled-kernel", kernel_fp, int(lowering_version))


def service_request_key(program_fp: str, config_digest: str) -> str:
    """Identity of one transformation request, as served by ``repro.service``.

    Keyed on the program content and the *semantic* configuration digest
    (output paths and store wiring excluded — see
    :func:`repro.observability.ledger.config_digest`), so two clients
    asking for the same transformation deduplicate regardless of where
    each wants its artifacts written."""
    return digest("service-request", program_fp, config_digest)


def tuning_key(
    device_fp: str,
    block: Tuple[int, int, int],
    smem_per_block: int,
    regs_per_thread: int,
    dims: int,
) -> str:
    """Identity of one thread-block tuning decision (kernel-name-free)."""
    return digest("tuning", device_fp, block, smem_per_block, regs_per_thread, dims)

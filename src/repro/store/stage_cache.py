"""Save/load adapters between pipeline artifacts and the artifact store.

One pair of functions per memoized artifact kind.  Every ``load_*``
returns ``None`` (a cold run) on any miss, deserialization failure or
semantic-validation failure — the pipeline treats the store as purely
advisory.  Every ``save_*`` is best-effort.

Namespaces
----------
``metadata``          — the three metadata files (text round-trip)
``targets``           — roofline/boundary filter decisions
``graphs``            — DDG + OEG (nodes/edges with attributes) + report
``search``            — the exact GGA outcome for one (problem, device,
                        params-incl-seed) triple
``population``        — warm-start payload: best + final population +
                        fitness-cache entries, transferable across seeds
``verified_groups``   — per-group verification verdicts, keyed on group
                        content only (survive unrelated program edits)
``verified_programs`` — whole-program verification verdicts
``tuning``            — thread-block tuning decisions
``compiled_kernel``   — lowered kernel sources for the compiled
                        execution mode (recompiled on load)
``island_migration``  — per-island elite payloads published at every
                        migration epoch; later runs hydrate their
                        islands from these (seed-free key, like
                        ``population``)
"""

from __future__ import annotations

import logging
from dataclasses import asdict
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..analysis.filtering import FilterDecision, TargetReport
from ..analysis.metadata import (
    ProgramMetadata,
    _parse_device,
    _parse_ops,
    _parse_perf,
)
from ..gpu.device import DeviceSpec
from ..search.fitness_cache import (
    cache_enabled_from_env,
    get_shared_cache,
    validate_fitness_result,
)
from ..search.gga import SearchResult
from ..search.grouping import FusionProblem, Grouping, Violations
from ..search.params import GAParams
from ..transform.blocksize import TuningDecision
from . import keys
from .artifact_store import ArtifactStore

logger = logging.getLogger(__name__)

NS_METADATA = "metadata"
NS_TARGETS = "targets"
NS_GRAPHS = "graphs"
NS_SEARCH = "search"
NS_POPULATION = "population"
NS_VERIFIED_GROUPS = "verified_groups"
NS_VERIFIED_PROGRAMS = "verified_programs"
NS_TUNING = "tuning"
NS_COMPILED_KERNELS = "compiled_kernel"
NS_ISLAND_MIGRATION = "island_migration"

#: elites persisted per island per migration epoch
MAX_SAVED_ELITES = 16

#: individuals persisted for warm starting (beyond the best)
MAX_SAVED_POPULATION = 64
#: fitness-cache entries persisted per search
MAX_SAVED_FITNESS = 20_000


# ------------------------------------------------------------------ metadata


def save_metadata(store: ArtifactStore, key: str, meta: ProgramMetadata) -> None:
    store.put(
        NS_METADATA,
        key,
        {
            "performance": meta._perf_text(),
            "operations": meta._ops_text(),
            "device": meta._device_text(),
        },
    )


def load_metadata(store: ArtifactStore, key: str) -> Optional[ProgramMetadata]:
    payload = store.get(NS_METADATA, key)
    if payload is None:
        return None
    try:
        device = _parse_device(payload["device"])
        meta = ProgramMetadata(device=device)
        _parse_perf(payload["performance"], meta)
        _parse_ops(payload["operations"], meta)
    except Exception as exc:
        logger.warning("store: metadata entry unusable (%s); recomputing", exc)
        return None
    if not meta.performance or not meta.launch_order:
        logger.warning("store: metadata entry empty; recomputing")
        return None
    return meta


# ------------------------------------------------------------------- targets


def save_targets(store: ArtifactStore, key: str, report: TargetReport) -> None:
    store.put(
        NS_TARGETS,
        key,
        {"decisions": [asdict(d) for d in report.decisions.values()]},
    )


def load_targets(store: ArtifactStore, key: str) -> Optional[TargetReport]:
    payload = store.get(NS_TARGETS, key)
    if payload is None:
        return None
    try:
        decisions = {
            d["kernel"]: FilterDecision(
                kernel=d["kernel"],
                eligible=bool(d["eligible"]),
                reason=d["reason"],
                operational_intensity=float(d.get("operational_intensity", 0.0)),
                active_fraction=float(d.get("active_fraction", 1.0)),
            )
            for d in payload["decisions"]
        }
    except Exception as exc:
        logger.warning("store: targets entry unusable (%s); recomputing", exc)
        return None
    if not decisions:
        return None
    return TargetReport(decisions=decisions)


# -------------------------------------------------------------------- graphs


def _graph_to_payload(graph: nx.DiGraph) -> Dict[str, object]:
    return {
        "nodes": [[node, dict(data)] for node, data in sorted(graph.nodes(data=True))],
        "edges": [
            [u, v, dict(data)] for u, v, data in sorted(graph.edges(data=True))
        ],
    }


def _graph_from_payload(payload: Dict[str, object]) -> nx.DiGraph:
    graph = nx.DiGraph()
    for node, data in payload["nodes"]:
        graph.add_node(node, **data)
    for u, v, data in payload["edges"]:
        graph.add_edge(u, v, **data)
    return graph


def save_graphs(
    store: ArtifactStore,
    key: str,
    ddg: nx.DiGraph,
    oeg: nx.DiGraph,
    report: str,
) -> None:
    store.put(
        NS_GRAPHS,
        key,
        {
            "ddg": _graph_to_payload(ddg),
            "oeg": _graph_to_payload(oeg),
            "report": report,
        },
    )


def load_graphs(
    store: ArtifactStore, key: str
) -> Optional[Tuple[nx.DiGraph, nx.DiGraph, str]]:
    payload = store.get(NS_GRAPHS, key)
    if payload is None:
        return None
    try:
        ddg = _graph_from_payload(payload["ddg"])
        oeg = _graph_from_payload(payload["oeg"])
        report = str(payload["report"])
    except Exception as exc:
        logger.warning("store: graphs entry unusable (%s); recomputing", exc)
        return None
    if ddg.number_of_nodes() == 0 or oeg.number_of_nodes() == 0:
        return None
    return ddg, oeg, report


# -------------------------------------------------------------------- search


def _grouping_to_payload(grouping: Grouping) -> Dict[str, object]:
    return {
        "split": sorted(grouping.split),
        "groups": sorted(sorted(group) for group in grouping.groups),
    }


def _grouping_from_payload(
    payload: Dict[str, object], problem: FusionProblem
) -> Optional[Grouping]:
    try:
        grouping = Grouping(
            split=frozenset(payload["split"]),
            groups=tuple(frozenset(group) for group in payload["groups"]),
        )
    except (KeyError, TypeError):
        return None
    known = set(problem.infos)
    if not set(grouping.split) <= known:
        return None
    if any(not group <= known for group in grouping.groups):
        return None
    if not grouping.covers(problem):
        return None
    return grouping


def _search_keys(
    problem: FusionProblem, device: DeviceSpec, params: GAParams
) -> Tuple[str, str]:
    device_fp = keys.device_fingerprint(device)
    exact = keys.search_key(
        problem.fingerprint(), device_fp, keys.params_fingerprint(params)
    )
    warm = keys.population_key(
        problem.fingerprint(), device_fp, params.objective, repr(params.penalties)
    )
    return exact, warm


def save_search(
    store: ArtifactStore,
    problem: FusionProblem,
    device: DeviceSpec,
    params: GAParams,
    result: SearchResult,
    population: Optional[List[Grouping]] = None,
) -> None:
    """Persist the exact outcome plus the warm-start payload."""
    exact_key, warm_key = _search_keys(problem, device, params)
    store.put(
        NS_SEARCH,
        exact_key,
        {
            "best": _grouping_to_payload(result.best),
            "best_fitness": result.best_fitness,
            "projected_time_s": result.projected_time_s,
            "generations_run": result.generations_run,
            "converged_at": result.converged_at,
            "avg_fissions_per_generation": result.avg_fissions_per_generation,
            "evaluations": result.evaluations,
        },
    )
    pop_payload = [_grouping_to_payload(result.best)]
    for individual in population or []:
        if len(pop_payload) > MAX_SAVED_POPULATION:
            break
        pop_payload.append(_grouping_to_payload(individual))
    store.put(
        NS_POPULATION,
        warm_key,
        {
            "population": pop_payload,
            "fitness": _export_fitness_entries(),
        },
    )


def load_search_result(
    store: ArtifactStore,
    problem: FusionProblem,
    device: DeviceSpec,
    params: GAParams,
) -> Optional[SearchResult]:
    """Exact-match reuse: the stored best partition *is* this run's answer."""
    exact_key, _ = _search_keys(problem, device, params)
    payload = store.get(NS_SEARCH, exact_key)
    if payload is None:
        return None
    try:
        best = _grouping_from_payload(payload["best"], problem)
        if best is None:
            logger.warning(
                "store: cached search result no longer fits the problem; "
                "recomputing"
            )
            return None
        return SearchResult(
            best=best,
            best_fitness=float(payload["best_fitness"]),
            projected_time_s=float(payload["projected_time_s"]),
            history=[],
            generations_run=int(payload["generations_run"]),
            converged_at=int(payload["converged_at"]),
            avg_fissions_per_generation=float(
                payload["avg_fissions_per_generation"]
            ),
            evaluations=int(payload["evaluations"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        logger.warning("store: search entry unusable (%s); recomputing", exc)
        return None


def load_warm_start(
    store: ArtifactStore,
    problem: FusionProblem,
    device: DeviceSpec,
    params: GAParams,
) -> Tuple[List[Grouping], int]:
    """Warm-start payload: seed individuals + preloaded fitness entries.

    Returns ``(seed_population, fitness_entries_loaded)``; both empty/zero
    on a miss.  Fitness entries go straight into the process-wide memo
    table (PR 1), so even a differently-seeded search starts with every
    previously evaluated partition's fitness in cache.
    """
    _, warm_key = _search_keys(problem, device, params)
    payload = store.get(NS_POPULATION, warm_key)
    if payload is None:
        return [], 0
    seeds: List[Grouping] = []
    try:
        for entry in payload.get("population", []):
            grouping = _grouping_from_payload(entry, problem)
            if grouping is not None:
                seeds.append(grouping)
    except (KeyError, TypeError):
        seeds = []
    loaded = 0
    if params.fitness_cache and cache_enabled_from_env():
        loaded = _import_fitness_entries(payload.get("fitness", []))
    return seeds, loaded


def _export_fitness_entries() -> List[List[object]]:
    """Snapshot the in-memory fitness memo table for persistence."""
    cache = get_shared_cache()
    entries: List[List[object]] = []
    for key, value in cache.export_entries(MAX_SAVED_FITNESS):
        if not validate_fitness_result(value):
            continue
        fitness, violations = value
        entries.append([key, float(fitness), asdict(violations)])
    return entries


def _import_fitness_entries(entries: List[List[object]]) -> int:
    cache = get_shared_cache()
    loaded = 0
    for entry in entries:
        try:
            key, fitness, violations = entry
            value = (float(fitness), Violations(**violations))
        except (TypeError, ValueError, KeyError):
            continue
        if not isinstance(key, str) or not validate_fitness_result(value):
            continue
        cache.put(key, value)
        loaded += 1
    return loaded


# --------------------------------------------------------- island migration


def _island_migration_key(
    problem: FusionProblem, device: DeviceSpec, params: GAParams, island: int
) -> str:
    return keys.island_migration_key(
        problem.fingerprint(),
        keys.device_fingerprint(device),
        params.objective,
        repr(params.penalties),
        island,
    )


def save_island_elites(
    store: ArtifactStore,
    problem: FusionProblem,
    device: DeviceSpec,
    params: GAParams,
    island: int,
    elites: List[Grouping],
) -> None:
    """Publish one island's current elites (overwrites the previous epoch)."""
    store.put(
        NS_ISLAND_MIGRATION,
        _island_migration_key(problem, device, params, island),
        {
            "island": int(island),
            "elites": [
                _grouping_to_payload(e) for e in elites[:MAX_SAVED_ELITES]
            ],
        },
    )


def load_island_elites(
    store: ArtifactStore,
    problem: FusionProblem,
    device: DeviceSpec,
    params: GAParams,
    island: int,
) -> List[Grouping]:
    """Elites a previous run published for this island slot.

    Corrupt or stale payloads degrade to an empty list — a cold island —
    with individual entries that no longer fit the problem dropped.
    """
    payload = store.get(
        NS_ISLAND_MIGRATION,
        _island_migration_key(problem, device, params, island),
    )
    if payload is None:
        return []
    elites: List[Grouping] = []
    try:
        for entry in payload.get("elites", []):
            grouping = _grouping_from_payload(entry, problem)
            if grouping is not None:
                elites.append(grouping)
    except (KeyError, TypeError, AttributeError):
        logger.warning(
            "store: island %d migration entry unusable; starting cold", island
        )
        return []
    return elites


# ------------------------------------------------------- verification reuse


def record_verified_group(store: ArtifactStore, key: str, verdict) -> None:
    """Remember that the group addressed by ``key`` verified clean."""
    store.put(
        NS_VERIFIED_GROUPS,
        key,
        {
            "kernel": verdict.kernel,
            "members": list(verdict.members),
            "status": verdict.status,
        },
    )


def group_previously_verified(store: ArtifactStore, key: str) -> bool:
    payload = store.get(NS_VERIFIED_GROUPS, key)
    return payload is not None and payload.get("status") == "pass"


def record_verified_program(store: ArtifactStore, key: str) -> None:
    store.put(NS_VERIFIED_PROGRAMS, key, {"verified": True})


def program_previously_verified(store: ArtifactStore, key: str) -> bool:
    payload = store.get(NS_VERIFIED_PROGRAMS, key)
    return payload is not None and payload.get("verified") is True


# --------------------------------------------------------------- block tuning


def save_tuning(store: ArtifactStore, key: str, decision: TuningDecision) -> None:
    store.put(
        NS_TUNING,
        key,
        {
            "original_block": list(decision.original_block),
            "tuned_block": list(decision.tuned_block),
            "occupancy_before": decision.occupancy_before,
            "occupancy_after": decision.occupancy_after,
            "changed": decision.changed,
        },
    )


def save_compiled_kernel(
    store: ArtifactStore, key: str, kernel: str, source: str, lowering_version: int
) -> None:
    """Persist one lowered kernel *source* (never code objects: the loader
    recompiles, so a poisoned store can at worst fail to parse)."""
    store.put(
        NS_COMPILED_KERNELS,
        key,
        {
            "kernel": kernel,
            "lowering_version": int(lowering_version),
            "source": source,
        },
    )


def load_compiled_kernel(
    store: ArtifactStore, key: str, lowering_version: int
) -> Optional[str]:
    """Return the stored lowered source, or None on any miss/mismatch."""
    payload = store.get(NS_COMPILED_KERNELS, key)
    if payload is None:
        return None
    try:
        if int(payload["lowering_version"]) != int(lowering_version):
            return None
        source = payload["source"]
    except (KeyError, TypeError, ValueError):
        return None
    return source if isinstance(source, str) else None


def load_tuning(
    store: ArtifactStore, key: str, kernel: str
) -> Optional[TuningDecision]:
    payload = store.get(NS_TUNING, key)
    if payload is None:
        return None
    try:
        return TuningDecision(
            kernel=kernel,
            original_block=tuple(payload["original_block"]),
            tuned_block=tuple(payload["tuned_block"]),
            occupancy_before=float(payload["occupancy_before"]),
            occupancy_after=float(payload["occupancy_after"]),
            changed=bool(payload["changed"]),
            reused=True,
        )
    except (KeyError, TypeError, ValueError):
        return None

"""Command-line front end (``repro-fuzz``).

Runs a generative fuzz campaign over a seed range::

    repro-fuzz --seeds 0..199 --oracles cheap --out fuzz-artifacts

Exit status: ``0`` when every oracle passed on every seed, ``1`` when
failures or crashes were recorded (the report still gets written), ``2``
on configuration errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence, Tuple

from .campaign import CampaignConfig, run_campaign
from .oracles import CHEAP_ORACLES, ORACLE_NAMES


def _parse_seed_range(raw: str) -> Tuple[int, int]:
    """``"A..B"`` (inclusive) or a single ``"N"``."""
    text = raw.strip()
    if ".." in text:
        lo, _, hi = text.partition("..")
        try:
            start, end = int(lo), int(hi)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"bad seed range {raw!r} (expected A..B)"
            ) from None
    else:
        try:
            start = end = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"bad seed range {raw!r} (expected N or A..B)"
            ) from None
    if end < start:
        raise argparse.ArgumentTypeError(f"empty seed range {raw!r}")
    return start, end


def _parse_oracles(raw: str) -> Tuple[str, ...]:
    text = raw.strip().lower()
    if text == "cheap":
        return CHEAP_ORACLES
    if text == "all":
        return ORACLE_NAMES
    names = tuple(name.strip() for name in text.split(",") if name.strip())
    unknown = set(names) - set(ORACLE_NAMES)
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown oracle(s) {sorted(unknown)}; "
            f"choose from {', '.join(ORACLE_NAMES)}, or 'cheap'/'all'"
        )
    if not names:
        raise argparse.ArgumentTypeError("no oracles selected")
    return names


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description=(
            "Generative fuzzing of the transformation pipeline: random "
            "stencil applications, differential oracles, crash triage "
            "and automatic reduction."
        ),
    )
    parser.add_argument(
        "--seeds",
        type=_parse_seed_range,
        default=(0, 49),
        metavar="A..B",
        help="inclusive seed range (default 0..49)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget; the campaign stops between seeds",
    )
    parser.add_argument(
        "--oracles",
        type=_parse_oracles,
        default=CHEAP_ORACLES,
        metavar="SET",
        help=(
            "'cheap' (transform+differential+modes), 'all', or a "
            "comma-separated oracle list"
        ),
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="write fuzz_report.json and reduced reproducers here",
    )
    parser.add_argument(
        "--no-reduce",
        action="store_true",
        help="skip delta-debugging reduction of failing programs",
    )
    parser.add_argument(
        "--store",
        nargs="?",
        const="",
        default=None,
        metavar="ROOT",
        help=(
            "append a campaign record to the run ledger of the artifact "
            "store at ROOT (default: REPRO_STORE / ~/.cache/repro)"
        ),
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="never write a ledger record, even with REPRO_STORE set",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-seed progress"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_arg_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on bad usage; normalize for callers of main()
        return int(exc.code or 0) and 2
    start, end = args.seeds
    if args.no_store:
        store, store_root = False, None
    elif args.store is not None:
        store, store_root = True, (args.store or None)
    else:
        store, store_root = None, None  # follow REPRO_STORE
    config = CampaignConfig(
        seed_start=start,
        seed_end=end,
        oracles=tuple(args.oracles),
        budget=args.budget,
        reduce=not args.no_reduce,
        out_dir=args.out,
        store=store,
        store_root=store_root,
        progress=None if args.quiet else lambda line: print(line, flush=True),
    )
    try:
        report = run_campaign(config)
    except ValueError as exc:
        print(f"repro-fuzz: {exc}", file=sys.stderr)
        return 2
    summary = report["summary"]
    print(
        f"repro-fuzz: {summary['apps']} apps, "
        f"{summary['failures']} failures, {summary['crashes']} crashes "
        f"({summary['unbucketed']} unbucketed)"
    )
    clean = not summary["failures"] and not summary["crashes"]
    return 0 if clean else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Seeded random stencil-application generator.

Every generated program is assembled through the same
:class:`~repro.apps.base.AppBuilder` the six paper apps use, so it enters
the pipeline through the production front door: kernels with the standard
``nx/ny/nz`` scalar tail, a host ``main`` with ``cudaMalloc*`` +
``deviceRandom`` initialization and ``<<<grid, block>>>`` launches.

Generation is a pure function of ``(seed, spec)``: the same pair yields a
byte-identical program in any process (see the ``zlib.crc32`` note in
:class:`~repro.apps.base.AppBuilder`), which is what makes corpus replay
and cross-run triage possible.

Knobs live on :class:`FuzzSpec`; each kernel is drawn from the weighted
``ARCHETYPES`` mix:

``stencil`` / ``pointwise`` / ``fused`` / ``deep_loop`` / ``boundary`` /
``compute`` / ``latency``
    The paper-app structural vocabulary (3D arrays, vertical ``k`` loops).
``shared``
    Tile staged through ``__shared__`` memory (2D, exact-fit domain);
    batchable, so the compiled mode runs it on the batched lattice.
``race``
    In-place update through a shared tile — the batched/compiled modes
    must degrade it to the per-block loop (``unbatchable_shared``).
``unlowerable``
    Maybe-defined scalar read — the kernel lowerer must refuse and the
    compiled mode must fall back per kernel (``lowering``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..apps.base import AppBuilder, AppSpec, GeneratedApp

__all__ = ["ARCHETYPES", "FuzzSpec", "default_spec", "generate_app"]

#: every kernel archetype the generator can emit
ARCHETYPES = (
    "stencil",
    "pointwise",
    "fused",
    "deep_loop",
    "boundary",
    "compute",
    "latency",
    "shared",
    "race",
    "unlowerable",
)

#: default archetype mix: mostly paper-shaped kernels, with a steady
#: trickle of the compiled-mode edge cases
_DEFAULT_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("stencil", 4.0),
    ("pointwise", 2.0),
    ("fused", 1.5),
    ("deep_loop", 1.0),
    ("boundary", 1.0),
    ("compute", 1.0),
    ("latency", 0.5),
    ("shared", 1.5),
    ("race", 0.75),
    ("unlowerable", 0.75),
)

#: exact-fit (domain, block) geometries — nx/ny are multiples of the
#: block so the unguarded shared-tile archetypes never read out of range
_GEOMETRIES: Tuple[Tuple[Tuple[int, int, int], Tuple[int, int, int]], ...] = (
    ((16, 16, 3), (8, 8, 1)),
    ((32, 16, 2), (8, 8, 1)),
    ((24, 24, 4), (8, 8, 1)),
    ((32, 32, 2), (16, 8, 1)),
)


@dataclass(frozen=True)
class FuzzSpec:
    """Generation parameters (all bounds inclusive)."""

    min_kernels: int = 2
    max_kernels: int = 6
    #: cap on distinct arrays per dimensionality pool
    max_arrays: int = 6
    #: star-stencil radius drawn from [0, max_radius]
    max_radius: int = 2
    #: max input arrays combined by one stencil/fused component
    max_stencil_inputs: int = 3
    #: probability a kernel input reuses an already-written array
    #: (producer->consumer chains) instead of an untouched one
    sharing_density: float = 0.6
    #: archetype -> relative draw weight; zero removes an archetype
    weights: Tuple[Tuple[str, float], ...] = _DEFAULT_WEIGHTS
    #: candidate exact-fit (domain, block) geometries
    geometries: Tuple[
        Tuple[Tuple[int, int, int], Tuple[int, int, int]], ...
    ] = _GEOMETRIES
    #: inner trip count for deep_loop kernels
    deep_loop_trips: int = 3
    #: transcendental chain length for compute kernels
    compute_intensity: int = 6

    def __post_init__(self) -> None:
        if not 1 <= self.min_kernels <= self.max_kernels:
            raise ValueError("need 1 <= min_kernels <= max_kernels")
        unknown = {name for name, _ in self.weights} - set(ARCHETYPES)
        if unknown:
            raise ValueError(f"unknown archetype(s): {sorted(unknown)}")
        if not any(w > 0 for _, w in self.weights):
            raise ValueError("at least one archetype weight must be positive")
        if not self.geometries:
            raise ValueError("need at least one geometry")
        for (nx, ny, _), (bx, by, bz) in self.geometries:
            if nx % bx or ny % by or bz != 1:
                raise ValueError(
                    f"geometry ({nx},{ny})/({bx},{by},{bz}) is not exact-fit"
                )


def default_spec() -> FuzzSpec:
    return FuzzSpec()


@dataclass
class _Gen:
    """One generation run's mutable state."""

    spec: FuzzSpec
    rng: random.Random
    builder: AppBuilder
    #: 3D working arrays (prefix ``a``) and 2D tile arrays (prefix ``s``)
    pool3: List[str] = field(default_factory=list)
    pool2: List[str] = field(default_factory=list)
    written: Dict[str, bool] = field(default_factory=dict)

    def array(self, dims: int = 3) -> str:
        pool = self.pool3 if dims == 3 else self.pool2
        if len(pool) < 2 or (
            len(pool) < self.spec.max_arrays
            and self.rng.random() >= self.spec.sharing_density
        ):
            name = self.builder.new_array("a" if dims == 3 else "s", dims=dims)
            pool.append(name)
            return name
        written = [a for a in pool if self.written.get(a)]
        if written and self.rng.random() < self.spec.sharing_density:
            return self.rng.choice(written)
        return self.rng.choice(pool)

    def distinct(self, count: int, dims: int = 3) -> List[str]:
        names: List[str] = []
        for _ in range(count * 4):
            name = self.array(dims)
            if name not in names:
                names.append(name)
            if len(names) == count:
                break
        # random picks can collide in a small pool — top up with fresh
        # arrays (past the soft cap) so callers always get their arity
        pool = self.pool3 if dims == 3 else self.pool2
        while len(names) < count:
            name = self.builder.new_array("a" if dims == 3 else "s", dims=dims)
            pool.append(name)
            names.append(name)
        return names


def _emit(gen: _Gen, archetype: str, name: str) -> None:
    spec, rng, bld = gen.spec, gen.rng, gen.builder
    radius = lambda: rng.randint(0, spec.max_radius)  # noqa: E731
    if archetype == "stencil":
        ins = gen.distinct(rng.randint(1, spec.max_stencil_inputs))
        out = gen.array()
        bld.stencil_kernel(name, out, [(a, radius()) for a in ins])
    elif archetype == "pointwise":
        ins = gen.distinct(rng.randint(1, spec.max_stencil_inputs))
        out = gen.array()
        bld.pointwise_kernel(name, out, ins)
    elif archetype == "fused":
        components = []
        for out in gen.distinct(2):
            ins = [a for a in gen.distinct(rng.randint(1, 2)) if a != out]
            if not ins:
                ins = [gen.array()]
            components.append((out, [(a, radius()) for a in ins]))
        bld.fused_like_kernel(name, components)
    elif archetype == "deep_loop":
        ins = gen.distinct(rng.randint(1, 2))
        out = gen.array()
        bld.deep_loop_kernel(
            name, out, [(a, radius()) for a in ins], inner_trips=spec.deep_loop_trips
        )
    elif archetype == "boundary":
        src, out = gen.array(), gen.array()
        bld.boundary_kernel(name, out, src)
        gen.written[out] = True
        return
    elif archetype == "compute":
        src, out = gen.array(), gen.array()
        bld.compute_bound_kernel(name, out, src, intensity=spec.compute_intensity)
        gen.written[out] = True
        return
    elif archetype == "latency":
        src, out = gen.array(), gen.array()
        bld.latency_kernel(name, out, src)
        gen.written[out] = True
        return
    elif archetype == "shared":
        src, out = gen.distinct(2, dims=2)
        bld.shared_tile_kernel(name, out, src, radius=max(1, radius()))
        gen.written[out] = True
        return
    elif archetype == "race":
        arr = gen.array(dims=2)
        bld.inplace_shared_kernel(name, arr)
        gen.written[arr] = True
        return
    elif archetype == "unlowerable":
        src, out = gen.distinct(2, dims=2)
        bld.maybe_defined_kernel(name, out, src)
        gen.written[out] = True
        return
    else:  # pragma: no cover - FuzzSpec validates archetype names
        raise ValueError(f"unknown archetype {archetype!r}")
    # the stencil-family branches fall through to mark their outputs
    if archetype in ("stencil", "pointwise", "deep_loop"):
        gen.written[out] = True
    elif archetype == "fused":
        for out, _ in components:
            gen.written[out] = True


def generate_app(seed: int, spec: Optional[FuzzSpec] = None) -> GeneratedApp:
    """Generate application ``fuzz{seed:06d}`` — a pure function of inputs."""
    spec = spec or default_spec()
    rng = random.Random(seed)
    domain, block = spec.geometries[rng.randrange(len(spec.geometries))]
    app_spec = AppSpec(
        name=f"fuzz{seed:06d}",
        domain=domain,
        block=block,
        paper_kernels=0,
        paper_arrays=0,
        paper_targets=0,
        paper_new_kernels=0,
        paper_speedup=(1.0, 1.0),
    )
    builder = AppBuilder(app_spec, seed=seed)
    gen = _Gen(spec=spec, rng=rng, builder=builder)
    names = [name for name, weight in spec.weights if weight > 0]
    weights = [weight for _, weight in spec.weights if weight > 0]
    count = rng.randint(spec.min_kernels, spec.max_kernels)
    for index in range(count):
        archetype = rng.choices(names, weights=weights, k=1)[0]
        _emit(gen, archetype, f"{archetype}_{index}")
    return builder.build()

"""Automatic delta-debugging reducer for failing fuzz programs.

Given a program and a ``still_fails`` predicate, the reducer tries
progressively finer-grained simplifications — each candidate is kept only
if the predicate still holds — until a fixpoint (or the attempt budget)
is reached:

1. **Drop kernels** — remove one kernel definition plus its launches.
2. **Shrink loops** — halve the ``nz`` extent and literal loop trip
   counts (the cheapest way to shrink work without changing structure).
3. **Drop statements** — delete one kernel-body statement at a time,
   innermost blocks included.

The AST is immutable, so every candidate is a fresh
:class:`~repro.cudalite.ast_nodes.Program`; the original is never
mutated.  The predicate is called on *candidates only* — callers should
verify the initial program fails before invoking the reducer.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Optional, Tuple

from ..cudalite import ast_nodes as ast

__all__ = ["program_size", "reduce_program"]

Predicate = Callable[[ast.Program], bool]

#: a path into a kernel body: each step is (statement index, branch tag)
#: where the tag selects the nested block ("then" / "els" / "body")
_Path = Tuple[Tuple[int, str], ...]


# -------------------------------------------------------------- kernel drop


def _drop_kernel(program: ast.Program, name: str) -> Optional[ast.Program]:
    kernels = tuple(k for k in program.kernels if k.name != name)
    if not kernels:
        return None
    try:
        main = program.main()
    except KeyError:
        return program.replace_kernels(kernels)
    stmts = tuple(
        s
        for s in main.body.stmts
        if not (isinstance(s, ast.Launch) and s.kernel == name)
    )
    new_main = replace(main, body=ast.Block(stmts))
    return program.replace_kernels(kernels, new_main)


# -------------------------------------------------------------- loop shrink


def _halve_int(expr: Optional[ast.Expr]) -> Optional[ast.Expr]:
    if isinstance(expr, ast.IntLit) and expr.value > 1:
        return ast.IntLit(expr.value // 2)
    return None


def _shrink_main_nz(program: ast.Program) -> Optional[ast.Program]:
    try:
        main = program.main()
    except KeyError:
        return None
    stmts = list(main.body.stmts)
    for index, stmt in enumerate(stmts):
        if isinstance(stmt, ast.VarDecl) and stmt.name == "nz":
            smaller = _halve_int(stmt.init)
            if smaller is None:
                return None
            stmts[index] = replace(stmt, init=smaller)
            new_main = replace(main, body=ast.Block(tuple(stmts)))
            return program.replace_kernels(program.kernels, new_main)
    return None


def _shrink_literal_loops(stmt: ast.Stmt) -> Optional[ast.Stmt]:
    """Halve the first halvable literal ``for`` bound under ``stmt``."""
    if isinstance(stmt, ast.For):
        smaller = _halve_int(stmt.bound)
        if smaller is not None:
            return replace(stmt, bound=smaller)
        body = _shrink_block(stmt.body)
        return None if body is None else replace(stmt, body=body)
    if isinstance(stmt, ast.If):
        then = _shrink_block(stmt.then)
        if then is not None:
            return replace(stmt, then=then)
        if stmt.els is not None:
            els = _shrink_block(stmt.els)
            if els is not None:
                return replace(stmt, els=els)
    if isinstance(stmt, ast.While):
        body = _shrink_block(stmt.body)
        return None if body is None else replace(stmt, body=body)
    return None


def _shrink_block(block: ast.Block) -> Optional[ast.Block]:
    for index, stmt in enumerate(block.stmts):
        shrunk = _shrink_literal_loops(stmt)
        if shrunk is not None:
            stmts = list(block.stmts)
            stmts[index] = shrunk
            return ast.Block(tuple(stmts))
    return None


def _shrink_kernel_loops(program: ast.Program) -> List[ast.Program]:
    candidates: List[ast.Program] = []
    for kernel in program.kernels:
        body = _shrink_block(kernel.body)
        if body is None:
            continue
        kernels = tuple(
            replace(k, body=body) if k.name == kernel.name else k
            for k in program.kernels
        )
        candidates.append(program.replace_kernels(kernels))
    return candidates


# --------------------------------------------------------- statement delete


def _enumerate_paths(block: ast.Block, prefix: _Path = ()) -> List[_Path]:
    """Every deletable statement path in ``block``, deepest first."""
    paths: List[_Path] = []
    for index, stmt in enumerate(block.stmts):
        here = prefix + ((index, ""),)
        if isinstance(stmt, ast.If):
            paths.extend(_enumerate_paths(stmt.then, prefix + ((index, "then"),)))
            if stmt.els is not None:
                paths.extend(_enumerate_paths(stmt.els, prefix + ((index, "els"),)))
        elif isinstance(stmt, (ast.For, ast.While)):
            paths.extend(_enumerate_paths(stmt.body, prefix + ((index, "body"),)))
        paths.append(here)
    return paths


def _delete_at(block: ast.Block, path: _Path) -> Optional[ast.Block]:
    (index, tag), rest = path[0], path[1:]
    if index >= len(block.stmts):
        return None
    stmts = list(block.stmts)
    if not rest:
        del stmts[index]
        return ast.Block(tuple(stmts))
    stmt = stmts[index]
    if tag == "then" and isinstance(stmt, ast.If):
        inner = _delete_at(stmt.then, rest)
        if inner is None:
            return None
        stmts[index] = replace(stmt, then=inner)
    elif tag == "els" and isinstance(stmt, ast.If) and stmt.els is not None:
        inner = _delete_at(stmt.els, rest)
        if inner is None:
            return None
        stmts[index] = replace(stmt, els=inner)
    elif tag == "body" and isinstance(stmt, (ast.For, ast.While)):
        inner = _delete_at(stmt.body, rest)
        if inner is None:
            return None
        stmts[index] = replace(stmt, body=inner)
    else:
        return None
    return ast.Block(tuple(stmts))


def _delete_statement_candidates(program: ast.Program) -> List[ast.Program]:
    candidates: List[ast.Program] = []
    for kernel in program.kernels:
        for path in _enumerate_paths(kernel.body):
            body = _delete_at(kernel.body, path)
            if body is None or not body.stmts:
                continue
            kernels = tuple(
                replace(k, body=body) if k.name == kernel.name else k
                for k in program.kernels
            )
            candidates.append(program.replace_kernels(kernels))
    return candidates


# ------------------------------------------------------------------- driver


def program_size(program: ast.Program) -> int:
    """Cheap size metric for reduction reporting: total statement count."""

    def stmts_in(block: ast.Block) -> int:
        total = 0
        for stmt in block.stmts:
            total += 1
            if isinstance(stmt, ast.If):
                total += stmts_in(stmt.then)
                if stmt.els is not None:
                    total += stmts_in(stmt.els)
            elif isinstance(stmt, (ast.For, ast.While)):
                total += stmts_in(stmt.body)
        return total

    total = 0
    for kernel in program.kernels:
        total += stmts_in(kernel.body)
    for host in program.host_funcs:
        total += stmts_in(host.body)
    return total


def reduce_program(
    program: ast.Program,
    still_fails: Predicate,
    max_attempts: int = 400,
) -> ast.Program:
    """Shrink ``program`` while ``still_fails`` holds on every kept step.

    ``max_attempts`` bounds the total number of predicate evaluations (a
    failing transform can be slow; the budget keeps reduction bounded).
    Returns the smallest failing program found — possibly the input
    itself when nothing could be removed.
    """
    attempts = 0

    def try_candidate(candidate: Optional[ast.Program]) -> bool:
        # every operation strictly shrinks (fewer statements or smaller
        # literals), so acceptance cannot cycle; no size check needed
        nonlocal attempts
        if candidate is None or attempts >= max_attempts:
            return False
        attempts += 1
        try:
            return bool(still_fails(candidate))
        except Exception:  # a reducer probe must never abort the campaign
            return False

    current = program
    changed = True
    while changed and attempts < max_attempts:
        changed = False
        for kernel in list(current.kernels):
            candidate = _drop_kernel(current, kernel.name)
            if try_candidate(candidate):
                current = candidate
                changed = True
        candidate = _shrink_main_nz(current)
        while try_candidate(candidate):
            current = candidate
            changed = True
            candidate = _shrink_main_nz(current)
        for candidate in _shrink_kernel_loops(current):
            if try_candidate(candidate):
                current = candidate
                changed = True
                break
        for candidate in _delete_statement_candidates(current):
            if try_candidate(candidate):
                current = candidate
                changed = True
                break
    return current

"""The fuzz-campaign driver: seeds in, triaged report out.

One campaign iterates a seed range, generates one application per seed,
runs the selected oracle battery, buckets every escape deterministically
(:mod:`repro.fuzz.triage`) and — for oracle failures — shrinks the
offending program with the delta-debugging reducer so the report carries
a minimal reproducer, ready to be committed to ``tests/corpus/``.

The driver itself is crash-proof by construction: a failure anywhere in
generate/oracle/reduce is caught, bucketed and recorded; the campaign
always completes and always produces a report (the CI contract is *zero
unbucketed crashes*, not zero crashes).
"""

from __future__ import annotations

import json
import logging
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..cudalite import parse_program, unparse
from ..observability.metrics import get_registry
from .appgen import FuzzSpec, generate_app
from .oracles import CHEAP_ORACLES, OracleFailure, fuzz_config, run_oracles
from .reduce import program_size, reduce_program
from .triage import build_report, bucket_exception, crash_record, write_report

__all__ = ["CORPUS_SCHEMA", "CampaignConfig", "run_campaign"]

logger = logging.getLogger(__name__)

CORPUS_SCHEMA = "repro.fuzz.corpus/1"


@dataclass
class CampaignConfig:
    """One campaign's parameters."""

    seed_start: int = 0
    seed_end: int = 49  # inclusive
    oracles: Tuple[str, ...] = CHEAP_ORACLES
    spec: Optional[FuzzSpec] = None
    #: wall-clock budget in seconds (None = unbounded); the campaign
    #: stops *between* seeds when exceeded and says so in the report
    budget: Optional[float] = None
    #: shrink failing programs into minimal reproducers
    reduce: bool = True
    reduce_attempts: int = 120
    #: report + reproducer destination (None = report returned only)
    out_dir: Optional[str] = None
    #: append a campaign record to the store's run ledger
    #: (None = follow ``REPRO_STORE``)
    store: Optional[bool] = None
    #: ledger store root (None = ``REPRO_STORE`` / default root)
    store_root: Optional[str] = None
    #: progress sink (e.g. ``print``); None = silent
    progress: Optional[Callable[[str], None]] = field(
        default=None, repr=False, compare=False
    )


def _reproducer(
    seed: int,
    name: str,
    failure: OracleFailure,
    source: str,
    reduced_source: Optional[str],
    sizes: Tuple[int, int],
) -> Dict[str, object]:
    """A corpus-schema reproducer record for one oracle failure."""
    return {
        "schema": CORPUS_SCHEMA,
        "name": name,
        "seed": seed,
        "oracles": [failure.oracle],
        "kind": failure.kind,
        "note": failure.detail[:500],
        "source": reduced_source or source,
        "original_size": sizes[0],
        "reduced_size": sizes[1],
    }


def _reduce_failure(
    program, failure: OracleFailure, config, attempts: int
):
    """Shrink ``program`` while the same (oracle, kind) failure persists."""

    def still_fails(candidate) -> bool:
        verdict = run_oracles(candidate, [failure.oracle], config)
        return failure.signature() in verdict.signatures()

    return reduce_program(program, still_fails, max_attempts=attempts)


def _ledger_append(config: CampaignConfig, report: Dict[str, object]) -> None:
    """Append the campaign to the store's run ledger (fail-soft).

    Runs only with telemetry on *and* a store opted in (explicitly via
    ``CampaignConfig.store`` or through ``REPRO_STORE``), so nightly fuzz
    history lands next to transform runs without changing default output.
    """
    from ..observability.ledger import append_record, build_fuzz_record
    from ..observability.runtime import telemetry_enabled
    from ..store.artifact_store import open_store, store_enabled_from_env

    if not telemetry_enabled():
        return
    enabled = (
        config.store if config.store is not None else store_enabled_from_env()
    )
    if not enabled:
        return
    store = open_store(config.store_root)
    if store is None:
        return
    try:
        append_record(store, build_fuzz_record(report))
    except Exception as exc:  # noqa: BLE001 - bookkeeping is best-effort
        logger.warning("ledger: could not append campaign record (%s)", exc)


def run_campaign(config: CampaignConfig) -> Dict[str, object]:
    """Run the campaign and return (and optionally write) the report."""
    if config.seed_end < config.seed_start:
        raise ValueError("seed_end must be >= seed_start")
    registry = get_registry()
    say = config.progress or (lambda _line: None)
    started = time.monotonic()
    failures: List[Dict[str, object]] = []
    crashes: List[Dict[str, object]] = []
    reproducers: List[Dict[str, object]] = []
    apps = 0
    stopped_early = False
    last_seed = config.seed_start - 1
    for seed in range(config.seed_start, config.seed_end + 1):
        if config.budget is not None and time.monotonic() - started > config.budget:
            stopped_early = True
            say(f"budget exhausted after seed {last_seed}")
            break
        last_seed = seed
        registry.inc("fuzz_apps_total")
        apps += 1
        try:
            app = generate_app(seed, config.spec)
        except BaseException as exc:  # noqa: BLE001 - campaign must survive
            bucket = bucket_exception(exc)
            crashes.append(crash_record(seed, "generate", exc, bucket))
            registry.inc("fuzz_crashes_total", stage=bucket.stage)
            say(f"seed {seed}: generator crash [{bucket.key}]")
            continue
        oracle_config = fuzz_config(seed=seed)
        try:
            verdict = run_oracles(app, config.oracles, oracle_config)
        except BaseException as exc:  # noqa: BLE001
            bucket = bucket_exception(exc)
            crashes.append(crash_record(seed, "oracles", exc, bucket))
            registry.inc("fuzz_crashes_total", stage=bucket.stage)
            say(f"seed {seed}: oracle-driver crash [{bucket.key}]")
            continue
        for failure in verdict.failures:
            registry.inc("fuzz_oracle_failures_total", oracle=failure.oracle)
            record: Dict[str, object] = {
                "seed": seed,
                "app": verdict.app,
                "oracle": failure.oracle,
                "kind": failure.kind,
                "detail": failure.detail[:500],
            }
            if failure.exc is not None:
                bucket = bucket_exception(failure.exc)
                record["bucket"] = bucket.key
                crashes.append(
                    crash_record(
                        seed, f"oracle:{failure.oracle}", failure.exc, bucket
                    )
                )
                registry.inc("fuzz_crashes_total", stage=bucket.stage)
            failures.append(record)
            say(f"seed {seed}: {failure.signature()}")
            if config.reduce:
                source = unparse(app.program)
                try:
                    reduced = _reduce_failure(
                        app.program, failure, oracle_config, config.reduce_attempts
                    )
                    reduced_source = unparse(reduced)
                    # a reduction must stay parseable, or it is discarded
                    parse_program(reduced_source)
                    sizes = (program_size(app.program), program_size(reduced))
                except BaseException:  # noqa: BLE001
                    reduced_source, sizes = None, (
                        program_size(app.program),
                        program_size(app.program),
                    )
                reproducers.append(
                    _reproducer(
                        seed, verdict.app, failure, source, reduced_source, sizes
                    )
                )
    campaign = {
        "seed_start": config.seed_start,
        "seed_end": config.seed_end,
        "seeds_run": apps,
        "last_seed": last_seed,
        "oracles": list(config.oracles),
        "budget_seconds": config.budget,
        "stopped_early": stopped_early,
        "duration_seconds": round(time.monotonic() - started, 3),
        "reduce": config.reduce,
    }
    report = build_report(campaign, failures, crashes, apps)
    if config.out_dir:
        out = Path(config.out_dir)
        write_report(report, out / "fuzz_report.json")
        for repro in reproducers:
            path = out / f"repro-seed{repro['seed']:06d}-{repro['oracles'][0]}.json"
            path.write_text(json.dumps(repro, indent=2, sort_keys=True) + "\n")
    say(
        f"{apps} apps, {len(failures)} oracle failures, "
        f"{len(crashes)} crashes in {campaign['duration_seconds']}s"
    )
    _ledger_append(config, report)
    return report

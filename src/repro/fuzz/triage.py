"""Deterministic crash bucketing and campaign reports.

Two runs of the same campaign must produce the same buckets, so a bucket
key is built only from stable exception features:

* the pipeline **stage** (when the exception is a
  :class:`~repro.errors.ReproError` carrying one, else ``"-"``),
* the exception **type** name,
* the **top repro frame** — the innermost traceback frame inside the
  ``repro`` package, normalized to ``module:function`` (paths, line
  numbers and message text are deliberately excluded: they vary across
  checkouts and refactors faster than the defect does).

The JSON campaign report (schema ``repro.fuzz/1``) is what CI archives
and what ``scripts/check_fuzz_report.py`` validates.
"""

from __future__ import annotations

import json
import platform
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

__all__ = [
    "REPORT_SCHEMA",
    "CrashBucket",
    "bucket_exception",
    "build_report",
    "write_report",
]

REPORT_SCHEMA = "repro.fuzz/1"


@dataclass(frozen=True)
class CrashBucket:
    """Stable identity of one crash class."""

    stage: str
    exc_type: str
    frame: str  # "module:function" of the innermost repro frame

    @property
    def key(self) -> str:
        return f"{self.stage}|{self.exc_type}|{self.frame}"


def _normalize_module(filename: str) -> Optional[str]:
    """``.../src/repro/gpu/lowering.py`` -> ``repro.gpu.lowering``."""
    parts = Path(filename).with_suffix("").parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return ".".join(parts[index:])
    return None


def bucket_exception(exc: BaseException) -> CrashBucket:
    """Deterministically bucket ``exc`` by (stage, type, top repro frame)."""
    stage = getattr(exc, "stage", None) or "-"
    frame = "-"
    for summary in reversed(traceback.extract_tb(exc.__traceback__)):
        module = _normalize_module(summary.filename)
        if module is not None:
            frame = f"{module}:{summary.name}"
            break
    return CrashBucket(
        stage=str(stage), exc_type=type(exc).__name__, frame=frame
    )


def crash_record(
    seed: int, where: str, exc: BaseException, bucket: Optional[CrashBucket] = None
) -> Dict[str, object]:
    """A JSON-serializable record of one bucketed crash."""
    bucket = bucket or bucket_exception(exc)
    return {
        "seed": seed,
        "where": where,
        "bucket": bucket.key,
        "stage": bucket.stage,
        "exc_type": bucket.exc_type,
        "frame": bucket.frame,
        "message": str(exc)[:500],
    }


def build_report(
    campaign: Dict[str, object],
    failures: Sequence[Dict[str, object]],
    crashes: Sequence[Dict[str, object]],
    apps: int,
) -> Dict[str, object]:
    """Assemble the campaign report (schema ``repro.fuzz/1``).

    ``summary.unbucketed`` exists so the CI gate can assert it is zero:
    every crash the campaign sees must carry a bucket key.
    """
    buckets: Dict[str, int] = {}
    unbucketed = 0
    for crash in crashes:
        key = crash.get("bucket")
        if not key:
            unbucketed += 1
            continue
        buckets[str(key)] = buckets.get(str(key), 0) + 1
    return {
        "schema": REPORT_SCHEMA,
        "campaign": dict(campaign),
        "platform": {
            "python": platform.python_version(),
            "system": platform.system(),
        },
        "summary": {
            "apps": apps,
            "failures": len(failures),
            "crashes": len(crashes),
            "unbucketed": unbucketed,
            "buckets": dict(sorted(buckets.items())),
        },
        "failures": list(failures),
        "crashes": list(crashes),
    }


def write_report(report: Dict[str, object], path: Union[str, Path]) -> None:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def load_report(path: Union[str, Path]) -> Dict[str, object]:
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict):
        raise ValueError(f"{path}: fuzz report must be a JSON object")
    return data

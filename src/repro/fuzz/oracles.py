"""The invariant battery run against every generated application.

Each oracle checks one documented contract of the pipeline; a violation
is an :class:`OracleFailure` with a *stable* ``kind`` signature so triage
buckets deterministically and the reducer can check "still the same
failure" cheaply.

``transform``
    Fail-soft contract: on a valid program, :func:`repro.api.transform`
    with ``fail_hard=False`` completes without raising — degradations
    must be absorbed, never escape.
``differential``
    The transformed program's whole-program output is bit-identical to
    the original's (the per-group verification gate is bitwise by
    default; fusion/fission/tuning must preserve every element).
``modes``
    The loop / batched / compiled / auto interpreter strategies agree
    bitwise on arrays and on the mode-invariant counter signature.
``warm_store``
    Re-running the identical transform against a warm artifact store is
    bit-identical to the cold run (caching must never change results).
``fault_seams``
    With each recoverable fault seam firing once, the transform still
    completes (graceful degradation end-to-end).
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..api import TransformConfig, TransformResult, transform
from ..cudalite import ast_nodes as ast
from ..gpu.interpreter import run_program
from ..observability import counters_signature
from ..reliability import faults
from ..search.params import GAParams

__all__ = [
    "CHEAP_ORACLES",
    "ORACLE_NAMES",
    "OracleFailure",
    "OracleVerdict",
    "fuzz_config",
    "run_oracles",
]

#: every oracle, in execution order
ORACLE_NAMES = ("transform", "differential", "modes", "warm_store", "fault_seams")

#: the fast subset used by the PR-level smoke campaign
CHEAP_ORACLES = ("transform", "differential", "modes")

#: seams whose firing the pipeline must absorb in a fail-soft transform
#: (worker_crash/worker_hang need the parallel evaluator and a timeout
#: budget — the dedicated reliability tests cover those)
_RECOVERABLE_SEAMS = ("parse", "analysis", "codegen", "interpreter", "store")

_EXEC_MODES = ("loop", "batched", "compiled", "auto")


@dataclass(frozen=True)
class OracleFailure:
    """One contract violation.

    ``kind`` is the stable signature (identical re-runs produce an equal
    ``kind``); ``detail`` is free-form diagnostics; ``exc`` carries the
    original exception for triage when the violation was an escape.
    """

    oracle: str
    kind: str
    detail: str = ""
    exc: Optional[BaseException] = field(default=None, compare=False)

    def signature(self) -> str:
        return f"{self.oracle}:{self.kind}"


@dataclass
class OracleVerdict:
    """Outcome of one app's oracle battery."""

    app: str
    passed: Tuple[str, ...] = ()
    failures: Tuple[OracleFailure, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.failures

    def signatures(self) -> Tuple[str, ...]:
        return tuple(f.signature() for f in self.failures)


def fuzz_config(seed: int = 0, **overrides) -> TransformConfig:
    """A small, deterministic transform configuration for fuzzing.

    The paper-scale GA budget (100x500) is three orders of magnitude too
    slow for a seed campaign; a tiny sequential budget exercises the same
    pipeline stages.  Telemetry and the store stay off unless an oracle
    turns them on explicitly.
    """
    params = GAParams(
        population=10,
        generations=6,
        stall_generations=3,
        seed=seed,
        workers=1,
        executor="thread",
    )
    defaults = dict(
        ga_params=params,
        telemetry=False,
        store=False,
        verify_rtol=0.0,
    )
    defaults.update(overrides)
    return TransformConfig(**defaults)


def _program_of(app_or_program: object) -> ast.Program:
    if isinstance(app_or_program, ast.Program):
        return app_or_program
    program = getattr(app_or_program, "program", None)
    if isinstance(program, ast.Program):
        return program
    raise TypeError(
        f"expected a Program or GeneratedApp, got {type(app_or_program).__name__}"
    )


def _escape(oracle: str, exc: BaseException) -> OracleFailure:
    return OracleFailure(
        oracle=oracle,
        kind=f"uncaught:{type(exc).__name__}",
        detail=str(exc),
        exc=exc,
    )


def _array_diff(
    left: Dict[str, np.ndarray], right: Dict[str, np.ndarray]
) -> Optional[str]:
    if sorted(left) != sorted(right):
        return f"array sets differ: {sorted(left)} vs {sorted(right)}"
    for name in sorted(left):
        if not np.array_equal(left[name], right[name]):
            delta = np.max(np.abs(left[name] - right[name]))
            return f"array {name!r} differs (max abs delta {delta!r})"
    return None


# ------------------------------------------------------------------ oracles


def _check_transform(
    program: ast.Program, config: TransformConfig
) -> Tuple[Optional[TransformResult], Optional[OracleFailure]]:
    try:
        return transform(program, config), None
    except BaseException as exc:  # noqa: BLE001 - the contract under test
        return None, _escape("transform", exc)


def _check_differential(
    program: ast.Program, result: TransformResult
) -> Optional[OracleFailure]:
    transformed = result.program
    if transformed is None:
        return OracleFailure(
            "differential", "no-output-program", "transform produced no program"
        )
    try:
        base = run_program(program, block_exec="loop")
        out = run_program(transformed, block_exec="loop")
    except BaseException as exc:  # noqa: BLE001
        return _escape("differential", exc)
    detail = _array_diff(base.arrays, out.arrays)
    if detail is not None:
        return OracleFailure("differential", "array-mismatch", detail)
    return None


def _check_modes(program: ast.Program) -> Optional[OracleFailure]:
    try:
        runs = {
            mode: run_program(program, block_exec=mode, collect_counters=True)
            for mode in _EXEC_MODES
        }
    except BaseException as exc:  # noqa: BLE001
        return _escape("modes", exc)
    for mode in _EXEC_MODES[1:]:
        detail = _array_diff(runs["loop"].arrays, runs[mode].arrays)
        if detail is not None:
            return OracleFailure("modes", f"array-mismatch:{mode}", detail)
    signatures = {
        mode: counters_signature(rec.counters for rec in runs[mode].launches)
        for mode in _EXEC_MODES
    }
    for mode in _EXEC_MODES[1:]:
        if signatures[mode] != signatures["loop"]:
            return OracleFailure(
                "modes",
                f"counter-mismatch:{mode}",
                f"loop={signatures['loop']} {mode}={signatures[mode]}",
            )
    return None


def _check_warm_store(
    program: ast.Program, config: TransformConfig
) -> Optional[OracleFailure]:
    from dataclasses import replace

    with tempfile.TemporaryDirectory(prefix="repro-fuzz-store-") as root:
        stored = replace(config, store=True, store_root=root)
        try:
            cold = transform(program, stored)
            warm = transform(program, stored)
        except BaseException as exc:  # noqa: BLE001
            return _escape("warm_store", exc)
    if cold.source != warm.source:
        return OracleFailure(
            "warm_store",
            "warm-divergence",
            "warm re-run produced a different transformed program",
        )
    return None


def _check_fault_seams(
    program: ast.Program, config: TransformConfig
) -> Optional[OracleFailure]:
    for seam in _RECOVERABLE_SEAMS:
        plan = faults.FaultPlan(seams=faults.parse_seam_specs(f"{seam}:x1"))
        faults.install_plan(plan)
        try:
            transform(program, config)
        except BaseException as exc:  # noqa: BLE001
            return OracleFailure(
                oracle="fault_seams",
                kind=f"fault:{seam}:{type(exc).__name__}",
                detail=str(exc),
                exc=exc,
            )
        finally:
            faults.clear_plan()
    return None


# ------------------------------------------------------------------- driver


def run_oracles(
    app_or_program: object,
    oracles: Optional[Sequence[str]] = None,
    config: Optional[TransformConfig] = None,
) -> OracleVerdict:
    """Run the selected oracles and collect every violation.

    Oracles are independent: one failing does not stop the rest (except
    ``differential``, which needs the transform's output and inherits a
    ``transform`` failure as its own skip).
    """
    selected = tuple(oracles) if oracles is not None else CHEAP_ORACLES
    unknown = set(selected) - set(ORACLE_NAMES)
    if unknown:
        raise ValueError(f"unknown oracle(s): {sorted(unknown)}")
    program = _program_of(app_or_program)
    name = getattr(app_or_program, "name", "<program>")
    config = config or fuzz_config()
    passed: List[str] = []
    failures: List[OracleFailure] = []
    result: Optional[TransformResult] = None
    transform_failed = False
    if "transform" in selected or "differential" in selected:
        result, failure = _check_transform(program, config)
        transform_failed = failure is not None
        if "transform" in selected:
            if failure is None:
                passed.append("transform")
            else:
                failures.append(failure)
    checks: Dict[str, Callable[[], Optional[OracleFailure]]] = {
        "differential": lambda: (
            OracleFailure(
                "differential", "transform-failed", "no result to compare"
            )
            if transform_failed
            else _check_differential(program, result)
        ),
        "modes": lambda: _check_modes(program),
        "warm_store": lambda: _check_warm_store(program, config),
        "fault_seams": lambda: _check_fault_seams(program, config),
    }
    for oracle in selected:
        if oracle == "transform":
            continue
        failure = checks[oracle]()
        if failure is None:
            passed.append(oracle)
        else:
            failures.append(failure)
    return OracleVerdict(
        app=name, passed=tuple(passed), failures=tuple(failures)
    )

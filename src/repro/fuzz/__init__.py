"""Generative fuzzing of the transformation pipeline.

The six paper apps exercise one structural point each; this package
generates *families* of valid CudaLite applications and checks the
pipeline's contracts on every one of them:

:mod:`repro.fuzz.appgen`
    Seeded, parameterized random application generator.  Every program
    goes through the same front door as the paper apps (an
    :class:`~repro.apps.base.AppBuilder`-built
    :class:`~repro.apps.base.GeneratedApp`).

:mod:`repro.fuzz.oracles`
    The invariant battery: fail-soft transform, bitwise transform
    differential, execution-mode agreement, warm-store determinism and
    graceful degradation under every fault seam.

:mod:`repro.fuzz.reduce`
    Delta-debugging reducer that shrinks a failing program while the
    oracle keeps failing.

:mod:`repro.fuzz.triage`
    Deterministic crash bucketing and campaign reports.

:mod:`repro.fuzz.campaign`
    The seed-range driver behind the ``repro-fuzz`` CLI and the CI jobs.
"""

from .appgen import ARCHETYPES, FuzzSpec, generate_app
from .campaign import CampaignConfig, run_campaign
from .oracles import (
    ORACLE_NAMES,
    OracleFailure,
    OracleVerdict,
    fuzz_config,
    run_oracles,
)
from .reduce import reduce_program
from .triage import CrashBucket, bucket_exception, build_report, write_report

__all__ = [
    "ARCHETYPES",
    "FuzzSpec",
    "generate_app",
    "CampaignConfig",
    "run_campaign",
    "ORACLE_NAMES",
    "OracleFailure",
    "OracleVerdict",
    "fuzz_config",
    "run_oracles",
    "reduce_program",
    "CrashBucket",
    "bucket_exception",
    "build_report",
    "write_report",
]

"""Data Dependency Graph construction (Algorithm 1, §3.2.3).

The DDG is a DAG whose vertices are *kernel invocations* and *data arrays*;
edges express produced-by / consumed-by relations:

* ``array → kernel``  — the invocation reads the array
* ``kernel → array``  — the invocation writes the array

Algorithm 1 adds one node per data array.  That naive form can contain
cycles (kernel A reads X / writes Y while kernel B writes X / reads Y); the
paper resolves this with two graph optimizations, which
:func:`optimize_ddg` applies:

* **redundant array instances** — arrays written by several invocations get
  one *instance* (version) node per write, turning the graph into a
  dataflow DAG, and
* **invocation-order cycle breaking** — any remaining cycle is broken by
  dropping the edge that contradicts host invocation order.

Node naming: invocation nodes are ``<kernel>@<launch index>``; array
instance nodes are ``<array>#<version>`` (version 0 is the initial
contents).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from ..analysis.accesses import collect_accesses
from ..analysis.metadata import ProgramMetadata
from ..cudalite import ast_nodes as ast
from ..errors import GraphError

KERNEL = "kernel"
ARRAY = "array"


def invocation_id(kernel: str, index: int) -> str:
    return f"{kernel}@{index}"


def array_id(array: str, version: int = 0) -> str:
    return f"{array}#{version}"


def split_invocation(node_id: str) -> Tuple[str, int]:
    kernel, _, idx = node_id.rpartition("@")
    return kernel, int(idx)


def split_array(node_id: str) -> Tuple[str, int]:
    base, _, version = node_id.rpartition("#")
    return base, int(version)


@dataclass(frozen=True)
class InvocationIO:
    """Per-invocation read/write sets in terms of *host* array names."""

    node: str
    kernel: str
    index: int
    reads: Tuple[str, ...]
    writes: Tuple[str, ...]
    grid: Tuple[int, int, int]
    block: Tuple[int, int, int]


def invocation_table(
    program: ast.Program, metadata: ProgramMetadata
) -> List[InvocationIO]:
    """Resolve each recorded launch's formal params to host array names."""
    table: List[InvocationIO] = []
    access_cache: Dict[str, Tuple[Set[str], Set[str], List[str]]] = {}
    for index, entry in enumerate(metadata.launch_order):
        kernel_name, args, grid, block = entry[0], entry[1], entry[2], entry[3]
        if kernel_name not in access_cache:
            kernel = program.kernel(kernel_name)
            acc = collect_accesses(kernel)
            pointer_names = [p.name for p in kernel.pointer_params()]
            access_cache[kernel_name] = (
                acc.arrays_read,
                acc.arrays_written,
                pointer_names,
            )
        formal_reads, formal_writes, pointer_names = access_cache[kernel_name]
        if len(pointer_names) != len(args):
            raise GraphError(
                f"invocation {kernel_name}@{index}: arg count mismatch"
            )
        binding = dict(zip(pointer_names, args))
        reads = tuple(sorted({binding[f] for f in formal_reads if f in binding}))
        writes = tuple(sorted({binding[f] for f in formal_writes if f in binding}))
        table.append(
            InvocationIO(
                node=invocation_id(kernel_name, index),
                kernel=kernel_name,
                index=index,
                reads=reads,
                writes=writes,
                grid=tuple(grid),
                block=tuple(block),
            )
        )
    return table


def build_naive_ddg(invocations: List[InvocationIO]) -> nx.DiGraph:
    """Algorithm 1 verbatim: one node per array, may contain cycles."""
    ddg = nx.DiGraph(kind="ddg", form="naive")
    for inv in invocations:
        ddg.add_node(inv.node, kind=KERNEL, kernel=inv.kernel, index=inv.index)
        for array in inv.reads:
            node = array_id(array, 0)
            if node not in ddg:
                ddg.add_node(node, kind=ARRAY, base=array, version=0)
            ddg.add_edge(node, inv.node)
        for array in inv.writes:
            node = array_id(array, 0)
            if node not in ddg:
                ddg.add_node(node, kind=ARRAY, base=array, version=0)
            ddg.add_edge(inv.node, node)
    return ddg


def build_versioned_ddg(invocations: List[InvocationIO]) -> nx.DiGraph:
    """DDG with redundant array instances (the optimized form).

    Every write creates a fresh instance node of the array; reads consume
    the latest instance.  The result is acyclic by construction.
    """
    ddg = nx.DiGraph(kind="ddg", form="versioned")
    version: Dict[str, int] = {}

    def current(array: str) -> str:
        v = version.setdefault(array, 0)
        node = array_id(array, v)
        if node not in ddg:
            ddg.add_node(node, kind=ARRAY, base=array, version=v)
        return node

    for inv in invocations:
        ddg.add_node(inv.node, kind=KERNEL, kernel=inv.kernel, index=inv.index)
        for array in inv.reads:
            ddg.add_edge(current(array), inv.node)
        for array in inv.writes:
            # a write that also reads (in-place update) consumes the old
            # instance first
            if array not in inv.reads:
                current(array)  # make sure version 0 exists
            version[array] = version.get(array, 0) + 1
            node = array_id(array, version[array])
            ddg.add_node(node, kind=ARRAY, base=array, version=version[array])
            ddg.add_edge(inv.node, node)
    return ddg


@dataclass
class DDGOptimizationReport:
    """What :func:`optimize_ddg` changed (shown to the programmer)."""

    instances_added: Dict[str, int]
    edges_dropped: List[Tuple[str, str]]
    had_cycles: bool

    def summary(self) -> str:
        lines = []
        multi = {a: n for a, n in self.instances_added.items() if n > 1}
        if multi:
            lines.append(
                "redundant array instances added for: "
                + ", ".join(f"{a} (x{n})" for a, n in sorted(multi.items()))
            )
        if self.edges_dropped:
            lines.append(
                "cycle-breaking edges dropped: "
                + ", ".join(f"{u}->{v}" for u, v in self.edges_dropped)
            )
        if not lines:
            lines.append("no DDG changes were necessary")
        return "\n".join(lines)


def optimize_ddg(
    invocations: List[InvocationIO],
) -> Tuple[nx.DiGraph, DDGOptimizationReport]:
    """Build the optimized DDG and report the applied changes."""
    naive = build_naive_ddg(invocations)
    had_cycles = not nx.is_directed_acyclic_graph(naive)
    ddg = build_versioned_ddg(invocations)
    instance_counts: Dict[str, int] = {}
    for node, data in ddg.nodes(data=True):
        if data["kind"] == ARRAY:
            base = data["base"]
            instance_counts[base] = instance_counts.get(base, 0) + 1
    dropped: List[Tuple[str, str]] = []
    if not nx.is_directed_acyclic_graph(ddg):  # pragma: no cover - safety net
        # invocation-order heuristic: drop edges pointing backwards in time
        for u, v in list(ddg.edges):
            if ddg.nodes[u]["kind"] == KERNEL and ddg.nodes[v]["kind"] == ARRAY:
                continue
            ddg_order_u = _order_of(ddg, u)
            ddg_order_v = _order_of(ddg, v)
            if ddg_order_u is not None and ddg_order_v is not None and ddg_order_u > ddg_order_v:
                ddg.remove_edge(u, v)
                dropped.append((u, v))
        if not nx.is_directed_acyclic_graph(ddg):
            raise GraphError("DDG still cyclic after optimization")
    report = DDGOptimizationReport(
        instances_added=instance_counts,
        edges_dropped=dropped,
        had_cycles=had_cycles,
    )
    return ddg, report


def _order_of(ddg: nx.DiGraph, node: str) -> Optional[int]:
    data = ddg.nodes[node]
    return data.get("index")


def kernel_nodes(ddg: nx.DiGraph) -> List[str]:
    """Invocation nodes in launch order."""
    nodes = [n for n, d in ddg.nodes(data=True) if d["kind"] == KERNEL]
    return sorted(nodes, key=lambda n: ddg.nodes[n]["index"])


def array_nodes(ddg: nx.DiGraph) -> List[str]:
    return sorted(n for n, d in ddg.nodes(data=True) if d["kind"] == ARRAY)


def arrays_of_invocation(ddg: nx.DiGraph, node: str) -> Tuple[Set[str], Set[str]]:
    """(reads, writes) of an invocation node, as base array names."""
    reads = {
        ddg.nodes[p]["base"] for p in ddg.predecessors(node)
        if ddg.nodes[p]["kind"] == ARRAY
    }
    writes = {
        ddg.nodes[s]["base"] for s in ddg.successors(node)
        if ddg.nodes[s]["kind"] == ARRAY
    }
    return reads, writes


def validate_ddg(ddg: nx.DiGraph) -> None:
    """Invariants: bipartite kernel/array structure and acyclicity."""
    for u, v in ddg.edges:
        ku = ddg.nodes[u]["kind"]
        kv = ddg.nodes[v]["kind"]
        if ku == kv:
            raise GraphError(f"DDG edge {u}->{v} joins two {ku} nodes")
    if not nx.is_directed_acyclic_graph(ddg):
        raise GraphError("DDG contains a cycle")

"""Dependency-graph substrate: DDG, OEG and DOT round-tripping."""

from .ddg import (
    ARRAY,
    KERNEL,
    DDGOptimizationReport,
    InvocationIO,
    array_id,
    array_nodes,
    arrays_of_invocation,
    build_naive_ddg,
    build_versioned_ddg,
    invocation_id,
    invocation_table,
    kernel_nodes,
    optimize_ddg,
    split_array,
    split_invocation,
    validate_ddg,
)
from .dot import dot_to_graph, graph_to_dot, read_dot, write_dot
from .oeg import (
    build_oeg,
    group_schedule,
    internal_precedence,
    is_convex,
    reachability,
    topological_order,
    validate_oeg,
)

__all__ = [
    "KERNEL", "ARRAY", "InvocationIO", "DDGOptimizationReport",
    "invocation_id", "array_id", "split_invocation", "split_array",
    "invocation_table", "build_naive_ddg", "build_versioned_ddg",
    "optimize_ddg", "kernel_nodes", "array_nodes", "arrays_of_invocation",
    "validate_ddg",
    "build_oeg", "validate_oeg", "topological_order", "reachability",
    "is_convex", "group_schedule", "internal_precedence",
    "graph_to_dot", "dot_to_graph", "write_dot", "read_dot",
]

"""Order-of-Execution Graph (OEG) construction and queries (§3.2.3).

The OEG is a DAG over kernel invocations whose edges are the precedence
constraints that any transformed program must respect.  It is derived from
the (optimized, versioned) DDG:

* **RAW** — the writer of an array instance precedes each of its readers;
* **WAR** — each reader of instance ``v`` precedes the writer of ``v+1``;
* **WAW** — the writer of instance ``v`` precedes the writer of ``v+1``.

Fusion feasibility is *convexity*: a set of invocations can be fused into
one kernel only if no dependence path leaves the set and re-enters it
(otherwise some outside kernel would have to run "in the middle of" the
fused kernel).  :func:`is_convex` implements that test; it is the central
problem-related constraint handed to the optimization algorithm.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..errors import GraphError
from .ddg import ARRAY, KERNEL, kernel_nodes, split_array


def build_oeg(ddg: nx.DiGraph, reduce: bool = True) -> nx.DiGraph:
    """Derive the OEG from a versioned DDG."""
    oeg = nx.DiGraph(kind="oeg")
    for node in kernel_nodes(ddg):
        data = ddg.nodes[node]
        oeg.add_node(
            node,
            kernel=data["kernel"],
            index=data["index"],
            eligible=data.get("eligible", True),
        )

    # group array instances by base name, ordered by version
    instances: Dict[str, List[Tuple[int, str]]] = defaultdict(list)
    for node, data in ddg.nodes(data=True):
        if data["kind"] == ARRAY:
            instances[data["base"]].append((data["version"], node))
    for versions in instances.values():
        versions.sort()

    def writer_of(instance: str) -> Optional[str]:
        for pred in ddg.predecessors(instance):
            if ddg.nodes[pred]["kind"] == KERNEL:
                return pred
        return None

    def readers_of(instance: str) -> List[str]:
        return [
            succ
            for succ in ddg.successors(instance)
            if ddg.nodes[succ]["kind"] == KERNEL
        ]

    for base, versions in instances.items():
        for pos, (version, instance) in enumerate(versions):
            writer = writer_of(instance)
            readers = readers_of(instance)
            # RAW
            if writer is not None:
                for reader in readers:
                    if reader != writer:
                        oeg.add_edge(writer, reader, dep="RAW", array=base)
            if pos + 1 < len(versions):
                next_writer = writer_of(versions[pos + 1][1])
                if next_writer is None:
                    continue
                # WAR
                for reader in readers:
                    if reader != next_writer:
                        oeg.add_edge(reader, next_writer, dep="WAR", array=base)
                # WAW
                if writer is not None and writer != next_writer:
                    oeg.add_edge(writer, next_writer, dep="WAW", array=base)

    if not nx.is_directed_acyclic_graph(oeg):
        raise GraphError("OEG construction produced a cycle")
    if reduce:
        reduced = nx.transitive_reduction(oeg)
        # transitive_reduction drops attributes; copy them back
        reduced.graph.update(oeg.graph)
        for node in reduced.nodes:
            reduced.nodes[node].update(oeg.nodes[node])
        for u, v in reduced.edges:
            reduced.edges[u, v].update(oeg.edges[u, v])
        oeg = reduced
    return oeg


def validate_oeg(oeg: nx.DiGraph) -> None:
    if not nx.is_directed_acyclic_graph(oeg):
        raise GraphError("OEG contains a cycle")


def topological_order(oeg: nx.DiGraph) -> List[str]:
    """A topological order that ties-breaks by original launch index."""
    return list(
        nx.lexicographical_topological_sort(
            oeg, key=lambda n: oeg.nodes[n].get("index", 0)
        )
    )


def reachability(oeg: nx.DiGraph) -> Dict[str, Set[str]]:
    """Transitive successors of every node (cached by callers)."""
    closure: Dict[str, Set[str]] = {}
    for node in reversed(list(nx.topological_sort(oeg))):
        reach: Set[str] = set()
        for succ in oeg.successors(node):
            reach.add(succ)
            reach |= closure[succ]
        closure[node] = reach
    return closure


def is_convex(
    group: Iterable[str],
    oeg: nx.DiGraph,
    reach: Optional[Dict[str, Set[str]]] = None,
) -> bool:
    """True if ``group`` can be fused without violating the OEG.

    A group is convex when for every pair ``a, b`` in the group, every node
    on a dependence path ``a → ... → b`` is also in the group.
    """
    members = set(group)
    if len(members) <= 1:
        return True
    closure = reach if reach is not None else reachability(oeg)
    for a in members:
        for mid in closure.get(a, ()):  # nodes reachable from a
            if mid in members:
                continue
            # a -> mid; does mid reach back into the group?
            if closure.get(mid, frozenset()) & members:
                return False
    return True


def group_schedule(
    groups: Sequence[FrozenSet[str]], oeg: nx.DiGraph
) -> List[FrozenSet[str]]:
    """Order fused groups topologically (the new host invocation order).

    Builds the condensation of the OEG over the grouping and topologically
    sorts it.  Raises :class:`GraphError` if the grouping induces a cycle
    (i.e. some group is not convex).
    """
    owner: Dict[str, int] = {}
    for gid, group in enumerate(groups):
        for node in group:
            if node in owner:
                raise GraphError(f"node {node} appears in two groups")
            owner[node] = gid
    condensed = nx.DiGraph()
    condensed.add_nodes_from(range(len(groups)))
    for u, v in oeg.edges:
        gu, gv = owner.get(u), owner.get(v)
        if gu is None or gv is None:
            raise GraphError("grouping does not cover all OEG nodes")
        if gu != gv:
            condensed.add_edge(gu, gv)
    if not nx.is_directed_acyclic_graph(condensed):
        raise GraphError("grouping violates OEG precedence (non-convex group)")
    min_index = [
        min(oeg.nodes[n]["index"] for n in group) if group else 0 for group in groups
    ]
    order = nx.lexicographical_topological_sort(
        condensed, key=lambda g: min_index[g]
    )
    return [groups[g] for g in order]


def internal_precedence(
    group: Iterable[str], oeg: nx.DiGraph
) -> List[Tuple[str, str, str]]:
    """Precedence edges *inside* a group: (producer, consumer, array).

    Non-empty means the fusion is *complex* (§5.5.3) and the generated
    kernel needs barriers / temporal blocking.
    """
    members = set(group)
    edges = []
    for u, v, data in oeg.edges(data=True):
        if u in members and v in members:
            edges.append((u, v, data.get("array", "?")))
    return edges

"""DOT export / import for DDG and OEG (§5.3).

The paper emits the graphs as GraphViz DOT files so the programmer can
visualize them and — crucially — *amend* them before feeding the next stage.
This module writes DOT with node/edge attributes and parses back the subset
it writes (enough for round-tripping programmer edits without a GraphViz
dependency).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..errors import GraphError
from .ddg import ARRAY, KERNEL

_NODE_RE = re.compile(r'^\s*"(?P<id>[^"]+)"\s*(\[(?P<attrs>[^\]]*)\])?\s*;\s*$')
_EDGE_RE = re.compile(
    r'^\s*"(?P<src>[^"]+)"\s*->\s*"(?P<dst>[^"]+)"\s*(\[(?P<attrs>[^\]]*)\])?\s*;\s*$'
)
_ATTR_RE = re.compile(r'(\w+)\s*=\s*(?:"([^"]*)"|(\w+))')


def _fmt_attrs(attrs: Dict[str, object]) -> str:
    if not attrs:
        return ""
    rendered = ", ".join(f'{key}="{value}"' for key, value in sorted(attrs.items()))
    return f" [{rendered}]"


def graph_to_dot(graph: nx.DiGraph, name: str = "G") -> str:
    """Render a DDG or OEG to DOT text.

    Kernel-invocation nodes are boxes; array-instance nodes are ellipses.
    Edge ``dep``/``array`` attributes (OEG) and graph kind are preserved.
    """
    lines = [f"digraph {name} {{"]
    kind = graph.graph.get("kind", "graph")
    lines.append(f'    graph [kind="{kind}"];')
    for node, data in graph.nodes(data=True):
        attrs: Dict[str, object] = {}
        node_kind = data.get("kind", KERNEL if "kernel" in data else "")
        if node_kind == ARRAY or data.get("base") is not None:
            attrs["shape"] = "ellipse"
            attrs["kind"] = ARRAY
            attrs["base"] = data.get("base", node)
            attrs["version"] = data.get("version", 0)
        else:
            attrs["shape"] = "box"
            attrs["kind"] = KERNEL
            attrs["kernel"] = data.get("kernel", node)
            attrs["index"] = data.get("index", 0)
            if not data.get("eligible", True):
                attrs["eligible"] = "false"
                attrs["style"] = "dashed"
        lines.append(f'    "{node}"{_fmt_attrs(attrs)};')
    for u, v, data in graph.edges(data=True):
        attrs = {}
        if "dep" in data:
            attrs["dep"] = data["dep"]
            attrs["label"] = f'{data["dep"]}:{data.get("array", "")}'
        if "array" in data:
            attrs["array"] = data["array"]
        lines.append(f'    "{u}" -> "{v}"{_fmt_attrs(attrs)};')
    lines.append("}")
    return "\n".join(lines) + "\n"


def _parse_attrs(text: Optional[str]) -> Dict[str, str]:
    if not text:
        return {}
    return {
        m.group(1): (m.group(2) if m.group(2) is not None else m.group(3))
        for m in _ATTR_RE.finditer(text)
    }


def dot_to_graph(text: str) -> nx.DiGraph:
    """Parse DOT text produced by :func:`graph_to_dot` (tolerant to edits)."""
    graph = nx.DiGraph()
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith(("digraph", "}", "//", "#")):
            continue
        if line.startswith("graph "):
            attrs = _parse_attrs(line)
            graph.graph.update(attrs)
            continue
        edge = _EDGE_RE.match(line)
        if edge:
            attrs = _parse_attrs(edge.group("attrs"))
            data: Dict[str, object] = {}
            if "dep" in attrs:
                data["dep"] = attrs["dep"]
            if "array" in attrs:
                data["array"] = attrs["array"]
            graph.add_edge(edge.group("src"), edge.group("dst"), **data)
            continue
        node = _NODE_RE.match(line)
        if node:
            attrs = _parse_attrs(node.group("attrs"))
            node_id = node.group("id")
            data = {}
            if attrs.get("kind") == ARRAY:
                data = {
                    "kind": ARRAY,
                    "base": attrs.get("base", node_id),
                    "version": int(attrs.get("version", 0)),
                }
            elif attrs.get("kind") == KERNEL or "kernel" in attrs:
                data = {
                    "kind": KERNEL,
                    "kernel": attrs.get("kernel", node_id),
                    "index": int(attrs.get("index", 0)),
                    "eligible": attrs.get("eligible", "true") != "false",
                }
            graph.add_node(node_id, **data)
            continue
        raise GraphError(f"cannot parse DOT line: {raw!r}")
    # default attributes for nodes introduced only via edges
    for node, data in graph.nodes(data=True):
        if "kind" not in data:
            if "#" in node:
                base, _, version = node.rpartition("#")
                data.update(kind=ARRAY, base=base, version=int(version or 0))
            else:
                kernel, _, index = node.rpartition("@")
                data.update(
                    kind=KERNEL,
                    kernel=kernel or node,
                    index=int(index) if index.isdigit() else 0,
                    eligible=True,
                )
    return graph


def write_dot(graph: nx.DiGraph, path) -> None:
    """Write a graph to a DOT file."""
    from pathlib import Path

    Path(path).write_text(graph_to_dot(graph))


def read_dot(path) -> nx.DiGraph:
    """Read a (possibly programmer-amended) DOT file back into a graph."""
    from pathlib import Path

    return dot_to_graph(Path(path).read_text())

"""Verification and fault-tolerance subsystem.

Three cooperating pieces:

:mod:`repro.reliability.faults`
    Deterministic, seeded fault injection at named pipeline seams
    (``REPRO_FAULT_SEAMS`` / ``REPRO_FAULT_SEED``), so every degradation
    path in the pipeline is exercisable in CI.

:mod:`repro.reliability.verify`
    The per-group semantic verification gate: executes each fused kernel
    against its unfused constituents on the CudaLite interpreter with
    deterministically synthesized inputs and bit-compares the outputs.

:mod:`repro.reliability.degrade`
    The degradation ladder (complex fusion → simple fusion → no fusion)
    and the :class:`DemotionRecord` bookkeeping that surfaces every
    demotion, with its cause, in the stage report.
"""

from .degrade import DemotionRecord, fusion_waves
from .faults import (
    ENV_FAULT_HANG,
    ENV_FAULT_SEAMS,
    ENV_FAULT_SEED,
    KNOWN_SEAMS,
    SEAMS,
    FaultPlan,
    active_plan,
    check,
    clear_plan,
    install_plan,
    plan_from_env,
    worker_fault,
)
from .verify import GroupVerdict, VerifyConfig, verify_group

__all__ = [
    "DemotionRecord",
    "fusion_waves",
    "ENV_FAULT_HANG",
    "ENV_FAULT_SEAMS",
    "ENV_FAULT_SEED",
    "KNOWN_SEAMS",
    "SEAMS",
    "FaultPlan",
    "active_plan",
    "check",
    "clear_plan",
    "install_plan",
    "plan_from_env",
    "worker_fault",
    "GroupVerdict",
    "VerifyConfig",
    "verify_group",
]

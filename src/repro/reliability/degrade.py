"""The fusion degradation ladder and its bookkeeping.

When a fused group fails codegen or the verification gate, the pipeline
does not abort: it *demotes* the group one rung down the ladder

    complex fusion  →  simple fusion (per precedence wave)  →  no fusion

and records the demotion, with its cause, for the stage report.

The middle rung needs care to stay semantics-preserving.  A complex
group has internal RAW edges (producer kernels feeding consumers), which
is exactly what simple fusion cannot express within one kernel.  The
ladder therefore splits the group into *precedence waves* — longest-path
depths over the internal dependence edges — so that no edge connects two
members of the same wave.  Each multi-member wave is simple-fused into
its own kernel and the waves launch in depth order; separate launches
act as barriers, so every producer's writes are globally visible before
any consumer in a later wave reads them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

#: ladder rungs, strongest first
LEVELS = ("complex", "simple", "none")


@dataclass(frozen=True)
class DemotionRecord:
    """One group's slide down the fusion ladder.

    ``members`` are the affected node ids (e.g. ``("k1@0", "k2@1")``),
    ``from_level``/``to_level`` are rungs from :data:`LEVELS`, and
    ``cause`` is a human-readable reason (the triggering error or
    verification verdict).
    """

    members: Tuple[str, ...]
    from_level: str
    to_level: str
    cause: str

    def describe(self) -> str:
        names = ",".join(str(m) for m in self.members)
        return f"[{names}] {self.from_level}->{self.to_level}: {self.cause}"


def fusion_waves(
    count: int, edges: Sequence[Tuple[int, int]]
) -> List[List[int]]:
    """Partition ``range(count)`` into precedence waves.

    ``edges`` are (producer, consumer) pairs over local member positions.
    A member's wave is its longest-path depth from any source, so no
    edge ever connects two members of one wave — each wave is a valid
    simple-fusion candidate, and launching waves in order preserves
    every cross-wave dependence through the inter-launch barrier.

    Members within a wave keep their original relative order, which
    keeps the ladder deterministic.
    """
    depth: Dict[int, int] = {i: 0 for i in range(count)}
    # longest-path relaxation; edges follow launch order (producer index
    # < consumer index after scheduling) so a single ordered sweep would
    # do, but iterate to a fixed point to stay order-agnostic
    for _ in range(max(1, count)):
        changed = False
        for producer, consumer in edges:
            if depth[consumer] < depth[producer] + 1:
                depth[consumer] = depth[producer] + 1
                changed = True
        if not changed:
            break
    waves: Dict[int, List[int]] = {}
    for member in range(count):
        waves.setdefault(depth[member], []).append(member)
    return [waves[d] for d in sorted(waves)]

"""Per-group semantic verification of generated fused kernels.

The whole-program verification stage (§5 of the paper) checks the final
transformed program; this gate checks each *fused group* the moment it is
generated, by executing the fused kernel and its unfused constituents on
the CudaLite interpreter over deterministically synthesized inputs and
comparing outputs bit-for-bit.  A group that fails here is demoted down
the fusion ladder instead of poisoning the final program.

Determinism: inputs are drawn from a per-array ``numpy`` generator seeded
by ``sha256(seed, array_name)``, so a verdict depends only on the kernels
and the configured seed — never on worker count, scheduling or host
state.

Environment configuration
-------------------------
``REPRO_VERIFY_GROUPS``
    ``0`` / ``false`` disables the gate (default enabled).
``REPRO_VERIFY_SEED``
    Input-synthesis seed (default ``0``).
``REPRO_VERIFY_RTOL``
    Comparison tolerance; ``0`` (the default) means bitwise equality.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError
from ..gpu.interpreter import Dim3, launch_kernel
from . import faults

ENV_VERIFY_GROUPS = "REPRO_VERIFY_GROUPS"
ENV_VERIFY_SEED = "REPRO_VERIFY_SEED"
ENV_VERIFY_RTOL = "REPRO_VERIFY_RTOL"

_FALSY = ("0", "false", "no", "off")


@dataclass(frozen=True)
class VerifyConfig:
    """Gate configuration (normally resolved from the environment)."""

    enabled: bool = True
    seed: int = 0
    #: 0 = bitwise comparison; >0 = np.allclose with this rtol (and atol)
    rtol: float = 0.0

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None) -> "VerifyConfig":
        env = os.environ if environ is None else environ
        enabled = env.get(ENV_VERIFY_GROUPS, "1").strip().lower() not in _FALSY
        try:
            seed = int(env.get(ENV_VERIFY_SEED, "0"))
        except ValueError:
            seed = 0
        try:
            rtol = float(env.get(ENV_VERIFY_RTOL, "0"))
        except ValueError:
            rtol = 0.0
        return cls(enabled=enabled, seed=seed, rtol=rtol)


@dataclass(frozen=True)
class GroupVerdict:
    """Outcome of verifying one fused group.

    ``status`` is ``"pass"``, ``"fail"`` or ``"inconclusive"`` (the
    baseline itself could not run, or inputs could not be synthesized —
    the fusion is kept, since there is no evidence against it).
    """

    kernel: str
    members: Tuple[str, ...]
    status: str
    cause: str = ""

    @property
    def passed(self) -> bool:
        return self.status == "pass"

    @property
    def failed(self) -> bool:
        return self.status == "fail"


def _array_seed(base: int, name: str) -> int:
    digest = hashlib.sha256(f"{base}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _array_dtypes(constituents: Sequence[object]) -> Dict[str, np.dtype]:
    """Host array name → dtype, from the constituent kernels' signatures."""
    dtypes: Dict[str, np.dtype] = {}
    for binding in constituents:
        pointer_params = [
            p for p in binding.kernel.params if p.type.is_pointer
        ]
        for param, host in zip(pointer_params, binding.array_args):
            dtype = np.int64 if param.type.base == "int" else np.float64
            dtypes.setdefault(host, np.dtype(dtype))
    return dtypes


def synthesize_inputs(
    names: Sequence[str],
    array_shapes: Mapping[str, Tuple[int, ...]],
    dtypes: Mapping[str, np.dtype],
    seed: int,
) -> Dict[str, np.ndarray]:
    """Deterministic per-array inputs, independent of iteration order."""
    arrays: Dict[str, np.ndarray] = {}
    for name in names:
        shape = array_shapes[name]
        rng = np.random.default_rng(_array_seed(seed, name))
        dtype = dtypes.get(name, np.dtype(np.float64))
        if np.issubdtype(dtype, np.integer):
            arrays[name] = rng.integers(0, 5, size=shape, dtype=np.int64)
        else:
            arrays[name] = rng.random(shape)
    return arrays


def _kernel_args(
    kernel,
    array_args: Sequence[str],
    scalar_values: Sequence[float],
    arrays: Mapping[str, np.ndarray],
) -> List[object]:
    """Interleave arrays and scalars back into kernel-parameter order."""
    args: List[object] = []
    arr_it = iter(array_args)
    scalar_it = iter(scalar_values)
    for param in kernel.params:
        if param.type.is_pointer:
            args.append(arrays[next(arr_it)])
        else:
            value = next(scalar_it)
            args.append(int(value) if param.type.base == "int" else float(value))
    return args


def _launch(binding, arrays: Mapping[str, np.ndarray]) -> None:
    launch_kernel(
        binding.kernel,
        Dim3(*binding.grid),
        Dim3(*binding.block),
        _kernel_args(binding.kernel, binding.array_args, binding.scalar_values, arrays),
    )


def verify_group(
    fused,
    constituents: Sequence[object],
    array_shapes: Mapping[str, Tuple[int, ...]],
    compare_arrays: Optional[Sequence[str]] = None,
    config: Optional[VerifyConfig] = None,
) -> GroupVerdict:
    """Execute ``fused`` against its unfused ``constituents`` and compare.

    ``fused`` needs ``kernel``/``pointer_args``/``scalar_values``/
    ``grid``/``block`` (a :class:`~repro.transform.fusion.FusedKernel`);
    each constituent needs ``kernel``/``array_args``/``scalar_values``/
    ``grid``/``block`` (a
    :class:`~repro.search.problem_builder.CodegenBinding`).
    ``compare_arrays`` restricts the comparison (defaults to every array
    either side touches).
    """
    config = config or VerifyConfig.from_env()
    members = tuple(getattr(fused, "constituents", ()))
    if not config.enabled:
        return GroupVerdict(fused.kernel.name, members, "pass", "gate disabled")

    needed: List[str] = []
    for binding in constituents:
        for name in binding.array_args:
            if name not in needed:
                needed.append(name)
    for name in fused.pointer_args:
        if name not in needed:
            needed.append(name)
    missing = [n for n in needed if n not in array_shapes]
    if missing:
        return GroupVerdict(
            fused.kernel.name,
            members,
            "inconclusive",
            f"no shape known for array(s) {', '.join(sorted(missing))}",
        )

    dtypes = _array_dtypes(constituents)
    inputs = synthesize_inputs(needed, array_shapes, dtypes, config.seed)

    # --- baseline: the unfused constituents, launched in order
    baseline = {name: arr.copy() for name, arr in inputs.items()}
    try:
        for binding in constituents:
            _launch(binding, baseline)
    except ReproError as exc:
        return GroupVerdict(
            fused.kernel.name,
            members,
            "inconclusive",
            f"baseline execution failed: {exc}",
        )

    # --- candidate: the fused kernel over the same inputs
    candidate = {name: arr.copy() for name, arr in inputs.items()}
    try:
        faults.check("interpreter", f"verifying {fused.kernel.name}")
        launch_kernel(
            fused.kernel,
            Dim3(*fused.grid),
            Dim3(*fused.block),
            _kernel_args(
                fused.kernel, fused.pointer_args, fused.scalar_values, candidate
            ),
        )
    except ReproError as exc:
        return GroupVerdict(
            fused.kernel.name, members, "fail", f"fused execution failed: {exc}"
        )

    compare = list(compare_arrays) if compare_arrays else needed
    for name in compare:
        if name not in baseline:
            continue
        a, b = baseline[name], candidate[name]
        if config.rtol > 0:
            ok = np.allclose(a, b, rtol=config.rtol, atol=config.rtol)
        else:
            ok = bool(np.array_equal(a, b))
        if not ok:
            diff = np.abs(np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64))
            count = int(np.count_nonzero(diff))
            return GroupVerdict(
                fused.kernel.name,
                members,
                "fail",
                f"output mismatch on array {name!r} "
                f"({count} cells differ, max |diff| {float(diff.max()):.3e})",
            )
    return GroupVerdict(fused.kernel.name, members, "pass")

"""Deterministic fault injection at named pipeline seams.

The degradation paths built into the pipeline (per-group demotion, worker
retry, pool fallback, cache-poison recovery) are only trustworthy if they
are exercised, so this module lets tests and CI inject failures *inside*
the production code paths, deterministically.

Seams
-----
``parse``
    Raised while re-parsing a group constituent before fusion.
``analysis``
    Raised while building a node's :class:`NodeInfo` in the problem
    builder; the builder falls back to a conservative, fusion-ineligible
    description of the node.
``codegen``
    Raised just before ``fuse_kernels`` for a group; the group is demoted
    along the fusion ladder.
``interpreter``
    Raised inside the verification gate's fused-kernel execution (never
    in baseline runs, which must stay clean references).
``fitness_cache``
    Poisons a fitness-cache read; read validation must turn it into a
    cache miss.
``store``
    Poisons a persistent artifact-store read (``repro.store``); envelope
    validation must treat the entry as corrupt and degrade the stage to
    a cold (uncached) execution.
``worker_crash`` / ``worker_hang``
    Fired inside evaluator workers only: a crash kills the worker (a
    real ``os._exit`` in process children, a raised error in threads), a
    hang sleeps long enough to trip the evaluation timeout.
``island_migration``
    Drops an elite-migration payload on delivery between GGA islands;
    the receiving island must continue solo and record a
    ``migration_note`` in the search telemetry.
``service_worker``
    Hard-kills a ``repro.service`` pool worker (``os._exit``) right
    after it accepts a job — the serving pool must detect the dead
    pipe, respawn the worker and retry the job within its bounded
    retry budget.

Configuration
-------------
``REPRO_FAULT_SEAMS``
    Comma-separated seam specs.  Each spec is ``seam`` (always fire),
    ``seam:P`` (fire with probability ``P``), ``seam:xN`` (fire on the
    first ``N`` visits only) or ``seam:@K`` (fire on visit ``K`` only,
    1-based); suffixes combine left to right, e.g. ``codegen:0.5:x2``.
``REPRO_FAULT_SEED``
    Seed for the probabilistic decisions (default ``0``).  Firing is a
    pure function of (seed, seam, visit number), so a plan replays
    identically across runs, executors and worker counts.
``REPRO_FAULT_HANG_S``
    Sleep duration for ``worker_hang`` (default ``2.0`` seconds).

A plan can be installed programmatically (:func:`install_plan`) or lazily
from the environment: the first :func:`check` call in a process with no
plan installed reads the env vars, which is what makes the seams reach
forked/spawned process-pool workers without extra plumbing.
"""

from __future__ import annotations

import hashlib
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import FaultInjectionError

ENV_FAULT_SEAMS = "REPRO_FAULT_SEAMS"
ENV_FAULT_SEED = "REPRO_FAULT_SEED"
ENV_FAULT_HANG = "REPRO_FAULT_HANG_S"

#: the canonical registry of every seam the production code paths visit.
#: All entry points — the ``REPRO_FAULT_SEAMS`` parser, programmatic
#: :class:`FaultPlan` construction and the :func:`check` /
#: :func:`poison_cache_value` call sites — validate against it, so a
#: typo'd seam name fails loudly instead of silently never firing.
KNOWN_SEAMS = (
    "parse",
    "analysis",
    "codegen",
    "interpreter",
    "fitness_cache",
    "store",
    "worker_crash",
    "worker_hang",
    "island_migration",
    "service_worker",
)

#: backwards-compatible alias for :data:`KNOWN_SEAMS`
SEAMS = KNOWN_SEAMS

_KNOWN_SEAM_SET = frozenset(KNOWN_SEAMS)


def _require_known(seam: str, what: str) -> None:
    if seam not in _KNOWN_SEAM_SET:
        raise FaultInjectionError(
            f"unknown fault seam {seam!r} ({what}); "
            f"known seams: {', '.join(KNOWN_SEAMS)}"
        )


@dataclass
class _SeamSpec:
    probability: float = 1.0
    max_fires: Optional[int] = None  # xN: stop after N fires
    only_visit: Optional[int] = None  # @K: fire on visit K only (1-based)


@dataclass
class FaultPlan:
    """A deterministic schedule of fault firings.

    ``should_fire`` is a pure function of (seed, seam, visit counter), so
    two runs with the same plan observe the same faults at the same
    points regardless of thread/process scheduling.
    """

    seams: Dict[str, _SeamSpec] = field(default_factory=dict)
    seed: int = 0
    hang_seconds: float = 2.0
    _visits: Dict[str, int] = field(default_factory=dict)
    _fires: Dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __post_init__(self) -> None:
        # programmatic plans bypass parse_seam_specs; validate here so a
        # typo'd seam cannot be installed and silently never fire
        for seam in self.seams:
            _require_known(seam, "in FaultPlan.seams")

    def should_fire(self, seam: str) -> bool:
        spec = self.seams.get(seam)
        if spec is None:
            return False
        with self._lock:
            self._visits[seam] = self._visits.get(seam, 0) + 1
            visit = self._visits[seam]
            if spec.only_visit is not None and visit != spec.only_visit:
                return False
            if spec.max_fires is not None and self._fires.get(seam, 0) >= spec.max_fires:
                return False
            if spec.probability < 1.0:
                digest = hashlib.sha256(
                    f"{self.seed}:{seam}:{visit}".encode()
                ).digest()
                draw = int.from_bytes(digest[:8], "big") / float(2**64)
                if draw >= spec.probability:
                    return False
            self._fires[seam] = self._fires.get(seam, 0) + 1
            return True

    def counts(self) -> Dict[str, Tuple[int, int]]:
        """(visits, fires) per configured seam — for tests/diagnostics."""
        with self._lock:
            return {
                seam: (self._visits.get(seam, 0), self._fires.get(seam, 0))
                for seam in self.seams
            }


def parse_seam_specs(raw: str) -> Dict[str, _SeamSpec]:
    """Parse a ``REPRO_FAULT_SEAMS`` value into seam specs."""
    seams: Dict[str, _SeamSpec] = {}
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        parts = token.split(":")
        name = parts[0].strip()
        _require_known(name, f"in {ENV_FAULT_SEAMS} spec {token!r}")
        spec = _SeamSpec()
        for mod in parts[1:]:
            mod = mod.strip()
            try:
                if mod.startswith("x"):
                    spec.max_fires = int(mod[1:])
                elif mod.startswith("@"):
                    spec.only_visit = int(mod[1:])
                else:
                    spec.probability = float(mod)
                    if not 0.0 <= spec.probability <= 1.0:
                        raise ValueError
            except ValueError:
                raise FaultInjectionError(
                    f"malformed fault spec {token!r}: bad modifier {mod!r}"
                ) from None
        seams[name] = spec
    return seams


def plan_from_env(environ: Optional[Dict[str, str]] = None) -> Optional[FaultPlan]:
    """Build a plan from ``REPRO_FAULT_*`` env vars; None when unset."""
    env = os.environ if environ is None else environ
    raw = env.get(ENV_FAULT_SEAMS, "").strip()
    if not raw:
        return None
    seed = 0
    try:
        seed = int(env.get(ENV_FAULT_SEED, "0"))
    except ValueError:
        pass
    hang = 2.0
    try:
        hang = float(env.get(ENV_FAULT_HANG, "2.0"))
    except ValueError:
        pass
    return FaultPlan(seams=parse_seam_specs(raw), seed=seed, hang_seconds=hang)


# ----------------------------------------------------------- active-plan state

_state_lock = threading.Lock()
_active: Optional[FaultPlan] = None
_env_checked = False


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` as this process's active plan (None disables)."""
    global _active, _env_checked
    with _state_lock:
        _active = plan
        _env_checked = True


def clear_plan() -> None:
    """Remove any active plan and forget the env lookup (tests)."""
    global _active, _env_checked
    with _state_lock:
        _active = None
        _env_checked = False


def active_plan() -> Optional[FaultPlan]:
    """The process's active plan, lazily initialized from the environment.

    Lazy env initialization is what carries fault plans into process-pool
    workers: the child inherits ``REPRO_FAULT_SEAMS`` and builds its own
    plan on first use.
    """
    global _active, _env_checked
    with _state_lock:
        if not _env_checked:
            _active = plan_from_env()
            _env_checked = True
        return _active


def check(seam: str, describe: str = "") -> None:
    """Raise the seam's canonical error if the active plan says to fire.

    Call sites sit *inside* production code paths; with no plan active
    this is a dictionary miss and costs nothing.
    """
    _require_known(seam, "at a check() call site")
    plan = active_plan()
    if plan is None or not plan.should_fire(seam):
        return
    suffix = f" ({describe})" if describe else ""
    # imported here to keep this module dependency-free at import time
    from ..errors import (
        AnalysisError,
        InterpreterError,
        ParseError,
        TransformError,
    )

    if seam == "parse":
        raise ParseError(f"injected parse fault{suffix}")
    if seam == "analysis":
        raise AnalysisError(f"injected analysis fault{suffix}")
    if seam == "codegen":
        raise TransformError(f"injected codegen fault{suffix}")
    if seam == "interpreter":
        from ..errors import OutOfBoundsError

        raise OutOfBoundsError(f"injected interpreter OOB fault{suffix}")
    raise FaultInjectionError(
        f"seam {seam!r} cannot be raised via check(); use its dedicated hook"
    )


def poison_cache_value(seam: str = "fitness_cache") -> bool:
    """Should the current cache read be poisoned?  (read-side hook)"""
    _require_known(seam, "at a poison_cache_value() call site")
    plan = active_plan()
    return plan is not None and plan.should_fire(seam)


def service_worker_fault() -> None:
    """Hard-kill the current service pool worker if the seam fires.

    Called by ``repro.service.worker`` between accepting a job and
    running it — the point where a crash is hardest for the pool to
    confuse with a clean result.  Only ever fires in a dedicated worker
    subprocess, so ``os._exit`` is safe (and is the point: the parent
    must see a dead pipe, not an exception)."""
    plan = active_plan()
    if plan is not None and plan.should_fire("service_worker"):
        os._exit(23)


def worker_fault(allow_exit: bool) -> None:
    """Fire worker crash/hang seams from inside an evaluator worker.

    ``allow_exit`` is True only in process-pool children, where a crash
    is simulated as a hard ``os._exit`` (producing a genuinely broken
    pool).  In threads a crash raises instead — killing the interpreter
    would take the whole test process down.
    """
    plan = active_plan()
    if plan is None:
        return
    if plan.should_fire("worker_hang"):
        import time

        time.sleep(plan.hang_seconds)
    if plan.should_fire("worker_crash"):
        if allow_exit:
            os._exit(17)
        from ..errors import SearchError

        raise SearchError("injected worker crash")

"""Hand-written lexer for the CudaLite dialect.

The lexer is a single linear scan producing :class:`~repro.cudalite.tokens.Token`
objects.  It supports ``//`` line comments and ``/* */`` block comments and
tracks 1-based line/column positions for error reporting.
"""

from __future__ import annotations

from typing import Iterator, List

from ..errors import LexError
from .tokens import KEYWORDS, PUNCTUATORS, TokKind, Token

_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")


class Lexer:
    """Tokenizes CudaLite source text.

    Parameters
    ----------
    source:
        The program text.

    Use :meth:`tokenize` to obtain the full token list (terminated by a
    single EOF token).
    """

    def __init__(self, source: str) -> None:
        self.src = source
        self.pos = 0
        self.line = 1
        self.col = 1

    # -- low-level cursor helpers -------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.src[idx] if idx < len(self.src) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos >= len(self.src):
                return
            if self.src[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments."""
        while self.pos < len(self.src):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.src) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.col
                self._advance(2)
                while self.pos < len(self.src) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.src):
                    raise LexError("unterminated block comment", start_line, start_col)
                self._advance(2)
            else:
                return

    # -- token scanners -----------------------------------------------------------

    def _scan_number(self) -> Token:
        line, col = self.line, self.col
        start = self.pos
        is_float = False
        while self._peek() in _DIGITS:
            self._advance()
        if self._peek() == "." and self._peek(1) in _DIGITS | {""} and (
            self._peek(1) in _DIGITS or self.pos > start
        ):
            is_float = True
            self._advance()
            while self._peek() in _DIGITS:
                self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1) in _DIGITS
            or (self._peek(1) in "+-" and self._peek(2) in _DIGITS)
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek() in _DIGITS:
                self._advance()
        # CUDA float suffixes
        if self._peek() in ("f", "F"):
            is_float = True
            self._advance()
        text = self.src[start : self.pos]
        return Token(TokKind.FLOAT if is_float else TokKind.INT, text, line, col)

    def _scan_ident(self) -> Token:
        line, col = self.line, self.col
        start = self.pos
        while self._peek() in _IDENT_CONT:
            self._advance()
        text = self.src[start : self.pos]
        kind = TokKind.KEYWORD if text in KEYWORDS else TokKind.IDENT
        return Token(kind, text, line, col)

    def _scan_punct(self) -> Token:
        line, col = self.line, self.col
        for punct in PUNCTUATORS:
            if self.src.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokKind.PUNCT, punct, line, col)
        raise LexError(f"unexpected character {self._peek()!r}", line, col)

    # -- public API ----------------------------------------------------------------

    def tokens(self) -> Iterator[Token]:
        """Yield tokens one at a time, ending with an EOF token."""
        while True:
            self._skip_trivia()
            if self.pos >= len(self.src):
                yield Token(TokKind.EOF, "", self.line, self.col)
                return
            ch = self._peek()
            if ch in _DIGITS or (ch == "." and self._peek(1) in _DIGITS):
                yield self._scan_number()
            elif ch in _IDENT_START:
                yield self._scan_ident()
            else:
                yield self._scan_punct()

    def tokenize(self) -> List[Token]:
        """Return the complete token list (terminated by EOF)."""
        return list(self.tokens())


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: tokenize ``source`` and return the token list."""
    return Lexer(source).tokenize()

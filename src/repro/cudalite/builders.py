"""Convenience constructors for building CudaLite ASTs programmatically.

The code generator and the application generators build a lot of AST; these
helpers keep that code close to the shape of the emitted CUDA.  All helpers
return the immutable nodes from :mod:`repro.cudalite.ast_nodes`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from . import ast_nodes as ast

ExprLike = Union[ast.Expr, int, float, str]


def expr(value: ExprLike) -> ast.Expr:
    """Coerce a Python value into an expression node.

    ``int`` → IntLit, ``float`` → FloatLit, ``str`` → Ident, Expr passes
    through unchanged.
    """
    if isinstance(value, ast.Expr):
        return value
    if isinstance(value, bool):
        return ast.BoolLit(value)
    if isinstance(value, int):
        return ast.IntLit(value)
    if isinstance(value, float):
        return ast.FloatLit(value, _float_text(value))
    if isinstance(value, str):
        return ast.Ident(value)
    raise TypeError(f"cannot coerce {value!r} to an expression")


def _float_text(value: float) -> str:
    text = repr(value)
    return text


def ident(name: str) -> ast.Ident:
    return ast.Ident(name)


def lit(value: Union[int, float]) -> ast.Expr:
    return expr(value)


def binop(op: str, lhs: ExprLike, rhs: ExprLike) -> ast.Binary:
    return ast.Binary(op, expr(lhs), expr(rhs))


def add(lhs: ExprLike, rhs: ExprLike) -> ast.Expr:
    """``lhs + rhs`` with constant folding of zero / literal operands."""
    left, right = expr(lhs), expr(rhs)
    if isinstance(left, ast.IntLit) and left.value == 0:
        return right
    if isinstance(right, ast.IntLit) and right.value == 0:
        return left
    if isinstance(left, ast.IntLit) and isinstance(right, ast.IntLit):
        return ast.IntLit(left.value + right.value)
    if isinstance(right, ast.IntLit) and right.value < 0:
        return ast.Binary("-", left, ast.IntLit(-right.value))
    return ast.Binary("+", left, right)


def sub(lhs: ExprLike, rhs: ExprLike) -> ast.Expr:
    left, right = expr(lhs), expr(rhs)
    if isinstance(right, ast.IntLit) and right.value == 0:
        return left
    if isinstance(left, ast.IntLit) and isinstance(right, ast.IntLit):
        return ast.IntLit(left.value - right.value)
    return ast.Binary("-", left, right)


def mul(lhs: ExprLike, rhs: ExprLike) -> ast.Expr:
    left, right = expr(lhs), expr(rhs)
    if isinstance(left, ast.IntLit) and isinstance(right, ast.IntLit):
        return ast.IntLit(left.value * right.value)
    if isinstance(left, ast.IntLit) and left.value == 1:
        return right
    if isinstance(right, ast.IntLit) and right.value == 1:
        return left
    return ast.Binary("*", left, right)


def logical_and(*operands: ExprLike) -> ast.Expr:
    """Fold a sequence of conditions with ``&&`` (left-assoc)."""
    exprs = [expr(o) for o in operands]
    if not exprs:
        return ast.BoolLit(True)
    result = exprs[0]
    for item in exprs[1:]:
        result = ast.Binary("&&", result, item)
    return result


def lt(lhs: ExprLike, rhs: ExprLike) -> ast.Binary:
    return ast.Binary("<", expr(lhs), expr(rhs))


def ge(lhs: ExprLike, rhs: ExprLike) -> ast.Binary:
    return ast.Binary(">=", expr(lhs), expr(rhs))


def idx(base: ExprLike, *indices: ExprLike) -> ast.Index:
    """``base[i0][i1]...``"""
    return ast.Index(expr(base), tuple(expr(i) for i in indices))


def call(func: str, *args: ExprLike) -> ast.Call:
    return ast.Call(func, tuple(expr(a) for a in args))


def member(obj: ExprLike, field: str) -> ast.Member:
    return ast.Member(expr(obj), field)


def thread_idx(axis: str) -> ast.Member:
    return ast.Member(ast.Ident("threadIdx"), axis)


def block_idx(axis: str) -> ast.Member:
    return ast.Member(ast.Ident("blockIdx"), axis)


def block_dim(axis: str) -> ast.Member:
    return ast.Member(ast.Ident("blockDim"), axis)


def global_index(axis: str) -> ast.Expr:
    """``blockIdx.a * blockDim.a + threadIdx.a`` — the canonical global id."""
    return ast.Binary(
        "+",
        ast.Binary("*", block_idx(axis), block_dim(axis)),
        thread_idx(axis),
    )


# --------------------------------------------------------------------- statements


def decl(
    type_name: str,
    name: str,
    init: Optional[ExprLike] = None,
    *,
    pointer: bool = False,
    shared: bool = False,
    dims: Sequence[ExprLike] = (),
) -> ast.VarDecl:
    return ast.VarDecl(
        ast.TypeSpec(type_name, is_pointer=pointer),
        name,
        expr(init) if init is not None else None,
        tuple(expr(d) for d in dims),
        shared,
    )


def assign(target: ExprLike, value: ExprLike, op: str = "=") -> ast.Assign:
    tgt = expr(target)
    if not isinstance(tgt, (ast.Ident, ast.Index)):
        raise TypeError("assignment target must be Ident or Index")
    return ast.Assign(tgt, op, expr(value))


def block(stmts: Iterable[ast.Stmt]) -> ast.Block:
    return ast.Block(tuple(stmts))


def if_(cond: ExprLike, then: Iterable[ast.Stmt], els: Optional[Iterable[ast.Stmt]] = None) -> ast.If:
    return ast.If(
        expr(cond),
        block(then),
        block(els) if els is not None else None,
    )


def for_(
    var: str,
    start: ExprLike,
    bound: ExprLike,
    body: Iterable[ast.Stmt],
    *,
    cmp: str = "<",
    step: ExprLike = 1,
) -> ast.For:
    return ast.For(var, expr(start), cmp, expr(bound), expr(step), block(body))


def sync() -> ast.SyncThreads:
    return ast.SyncThreads()


def launch(
    kernel: str,
    grid: Union[ast.Expr, Sequence[int]],
    blk: Union[ast.Expr, Sequence[int]],
    args: Sequence[ExprLike],
) -> ast.Launch:
    def _dim3(value) -> ast.Expr:
        if isinstance(value, ast.Expr):
            return value
        return ast.Call("dim3", tuple(expr(v) for v in value))

    return ast.Launch(kernel, _dim3(grid), _dim3(blk), tuple(expr(a) for a in args))


def param(type_name: str, name: str, *, pointer: bool = False, const: bool = False) -> ast.Param:
    return ast.Param(ast.TypeSpec(type_name, is_pointer=pointer, is_const=const), name)


def kernel(name: str, params: Sequence[ast.Param], body: Iterable[ast.Stmt]) -> ast.KernelDef:
    return ast.KernelDef(name, tuple(params), block(body))


def host_main(body: Iterable[ast.Stmt]) -> ast.HostFunc:
    return ast.HostFunc("main", ast.TypeSpec("int"), (), block(body))


def program(items: Iterable[ast.Node]) -> ast.Program:
    return ast.Program(tuple(items))

"""Recursive-descent parser for the CudaLite dialect.

The grammar is a subset of CUDA C restricted to what dense Cartesian-grid
stencil programs need (the same restriction the paper states in its
Limitations section): ``__global__`` kernels with canonical counted loops,
``__shared__`` tiles, guards, and a simplified host side with
``<<<grid, block>>>`` launches.

The parser produces the immutable AST defined in
:mod:`repro.cudalite.ast_nodes`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import ParseError
from . import ast_nodes as ast
from .lexer import tokenize
from .tokens import TokKind, Token

_TYPE_KEYWORDS = ("void", "int", "float", "double", "bool", "dim3", "unsigned", "long")

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=")

# Binary operator precedence, higher binds tighter.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


class Parser:
    """Parses a token stream into a :class:`~repro.cudalite.ast_nodes.Program`."""

    def __init__(self, source: str) -> None:
        self.toks: List[Token] = tokenize(source)
        self.pos = 0

    # ------------------------------------------------------------- token helpers

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.toks) - 1)
        return self.toks[idx]

    def _next(self) -> Token:
        tok = self.toks[self.pos]
        if tok.kind is not TokKind.EOF:
            self.pos += 1
        return tok

    def _error(self, message: str, tok: Optional[Token] = None) -> ParseError:
        tok = tok or self._peek()
        return ParseError(f"{message} (got {tok.text!r})", tok.line, tok.col)

    def _expect_punct(self, text: str) -> Token:
        tok = self._next()
        if not tok.is_punct(text):
            raise self._error(f"expected {text!r}", tok)
        return tok

    def _expect_kw(self, word: str) -> Token:
        tok = self._next()
        if not tok.is_kw(word):
            raise self._error(f"expected keyword {word!r}", tok)
        return tok

    def _expect_ident(self) -> str:
        tok = self._next()
        if tok.kind is not TokKind.IDENT:
            raise self._error("expected identifier", tok)
        return tok.text

    def _accept_punct(self, text: str) -> bool:
        if self._peek().is_punct(text):
            self._next()
            return True
        return False

    def _accept_kw(self, word: str) -> bool:
        if self._peek().is_kw(word):
            self._next()
            return True
        return False

    # ------------------------------------------------------------------ program

    def parse_program(self) -> ast.Program:
        """Parse a complete translation unit."""
        items: List[ast.Node] = []
        while self._peek().kind is not TokKind.EOF:
            items.append(self._parse_top_item())
        return ast.Program(tuple(items))

    def _parse_top_item(self) -> ast.Node:
        if self._peek().is_kw("__global__"):
            return self._parse_kernel()
        if self._is_type_start():
            return self._parse_host_func()
        raise self._error("expected kernel or host function")

    def _is_type_start(self) -> bool:
        tok = self._peek()
        return tok.kind is TokKind.KEYWORD and tok.text in _TYPE_KEYWORDS + ("const",)

    def _parse_kernel(self) -> ast.KernelDef:
        self._expect_kw("__global__")
        self._expect_kw("void")
        name = self._expect_ident()
        params = self._parse_params()
        body = self._parse_block()
        return ast.KernelDef(name, params, body)

    def _parse_host_func(self) -> ast.HostFunc:
        ret = self._parse_type()
        name = self._expect_ident()
        params = self._parse_params()
        body = self._parse_block()
        return ast.HostFunc(name, ret, params, body)

    def _parse_type(self) -> ast.TypeSpec:
        is_const = self._accept_kw("const")
        tok = self._next()
        if tok.kind is not TokKind.KEYWORD or tok.text not in _TYPE_KEYWORDS:
            raise self._error("expected type", tok)
        base = tok.text
        if base == "unsigned" or base == "long":
            # fold "unsigned int" / "long" spellings into plain int
            if self._peek().is_kw("int") or self._peek().is_kw("long"):
                self._next()
            base = "int"
        if not is_const:
            is_const = self._accept_kw("const")
        is_pointer = self._accept_punct("*")
        self._accept_kw("__restrict__")
        return ast.TypeSpec(base, is_pointer=is_pointer, is_const=is_const)

    def _parse_params(self) -> Tuple[ast.Param, ...]:
        self._expect_punct("(")
        params: List[ast.Param] = []
        if not self._peek().is_punct(")"):
            while True:
                ptype = self._parse_type()
                pname = self._expect_ident()
                params.append(ast.Param(ptype, pname))
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        return tuple(params)

    # --------------------------------------------------------------- statements

    def _parse_block(self) -> ast.Block:
        self._expect_punct("{")
        stmts: List[ast.Stmt] = []
        while not self._peek().is_punct("}"):
            if self._peek().kind is TokKind.EOF:
                raise self._error("unexpected end of input in block")
            stmts.append(self._parse_stmt())
        self._expect_punct("}")
        return ast.Block(tuple(stmts))

    def _parse_stmt_or_block(self) -> ast.Block:
        """Parse either a block or a single statement (wrapped in a Block)."""
        if self._peek().is_punct("{"):
            return self._parse_block()
        return ast.Block((self._parse_stmt(),))

    def _parse_stmt(self) -> ast.Stmt:
        tok = self._peek()
        if tok.is_punct("{"):
            return self._parse_block()
        if tok.is_kw("if"):
            return self._parse_if()
        if tok.is_kw("for"):
            return self._parse_for()
        if tok.is_kw("while"):
            return self._parse_while()
        if tok.is_kw("return"):
            self._next()
            value = None
            if not self._peek().is_punct(";"):
                value = self._parse_expr()
            self._expect_punct(";")
            return ast.Return(value)
        if tok.is_kw("__shared__") or self._is_type_start():
            return self._parse_decl()
        if tok.kind is TokKind.IDENT and tok.text == "__syncthreads":
            self._next()
            self._expect_punct("(")
            self._expect_punct(")")
            self._expect_punct(";")
            return ast.SyncThreads()
        if tok.kind is TokKind.IDENT and self._peek(1).is_punct("<<<"):
            return self._parse_launch()
        return self._parse_simple_stmt()

    def _parse_decl(self) -> ast.VarDecl:
        is_shared = self._accept_kw("__shared__")
        vtype = self._parse_type()
        name = self._expect_ident()
        dims: List[ast.Expr] = []
        while self._accept_punct("["):
            dims.append(self._parse_expr())
            self._expect_punct("]")
        init: Optional[ast.Expr] = None
        if self._accept_punct("="):
            init = self._parse_expr()
        elif self._peek().is_punct("(") and vtype.base == "dim3":
            # constructor-style dim3 declaration: dim3 grid(8, 8, 1);
            self._next()
            args: List[ast.Expr] = []
            if not self._peek().is_punct(")"):
                while True:
                    args.append(self._parse_expr())
                    if not self._accept_punct(","):
                        break
            self._expect_punct(")")
            init = ast.Call("dim3", tuple(args))
        self._expect_punct(";")
        return ast.VarDecl(vtype, name, init, tuple(dims), is_shared)

    def _parse_if(self) -> ast.If:
        self._expect_kw("if")
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        then = self._parse_stmt_or_block()
        els: Optional[ast.Block] = None
        if self._accept_kw("else"):
            els = self._parse_stmt_or_block()
        return ast.If(cond, then, els)

    def _parse_for(self) -> ast.For:
        """Parse a canonical counted loop.

        Supported forms::

            for (int v = start; v <  bound; v++)      { ... }
            for (int v = start; v <= bound; v += s)   { ... }
            for (v = start;     v <  bound; ++v)      { ... }
        """
        self._expect_kw("for")
        self._expect_punct("(")
        # init
        self._accept_kw("int")
        var = self._expect_ident()
        self._expect_punct("=")
        start = self._parse_expr()
        self._expect_punct(";")
        # condition
        cond_var = self._expect_ident()
        if cond_var != var:
            raise self._error(f"loop condition must test {var!r}")
        cmp_tok = self._next()
        if not (cmp_tok.is_punct("<") or cmp_tok.is_punct("<=")):
            raise self._error("loop condition must use < or <=", cmp_tok)
        bound = self._parse_expr()
        self._expect_punct(";")
        # update
        step: ast.Expr = ast.IntLit(1)
        if self._accept_punct("++"):  # ++v
            upd_var = self._expect_ident()
        else:
            upd_var = self._expect_ident()
            if self._accept_punct("++"):
                pass
            elif self._accept_punct("+="):
                step = self._parse_expr()
            elif self._accept_punct("="):
                # v = v + s
                lhs_name = self._expect_ident()
                if lhs_name != var:
                    raise self._error("loop update must increment the loop variable")
                self._expect_punct("+")
                step = self._parse_expr()
            else:
                raise self._error("unsupported loop update")
        if upd_var != var:
            raise self._error(f"loop update must modify {var!r}")
        self._expect_punct(")")
        body = self._parse_stmt_or_block()
        return ast.For(var, start, cmp_tok.text, bound, step, body)

    def _parse_while(self) -> ast.While:
        self._expect_kw("while")
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        body = self._parse_stmt_or_block()
        return ast.While(cond, body)

    def _parse_launch(self) -> ast.Launch:
        kernel = self._expect_ident()
        self._expect_punct("<<<")
        grid = self._parse_expr()
        self._expect_punct(",")
        block = self._parse_expr()
        self._expect_punct(">>>")
        self._expect_punct("(")
        args: List[ast.Expr] = []
        if not self._peek().is_punct(")"):
            while True:
                args.append(self._parse_expr())
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.Launch(kernel, grid, block, tuple(args))

    def _parse_simple_stmt(self) -> ast.Stmt:
        """Assignment, increment or expression statement."""
        expr = self._parse_expr()
        tok = self._peek()
        if tok.kind is TokKind.PUNCT and tok.text in _ASSIGN_OPS:
            op = self._next().text
            value = self._parse_expr()
            self._expect_punct(";")
            if not isinstance(expr, (ast.Ident, ast.Index)):
                raise self._error("assignment target must be a variable or subscript")
            return ast.Assign(expr, op, value)
        if tok.is_punct("++") or tok.is_punct("--"):
            self._next()
            self._expect_punct(";")
            if not isinstance(expr, (ast.Ident, ast.Index)):
                raise self._error("increment target must be a variable")
            delta = "+=" if tok.text == "++" else "-="
            return ast.Assign(expr, delta, ast.IntLit(1))
        self._expect_punct(";")
        return ast.ExprStmt(expr)

    # -------------------------------------------------------------- expressions

    def _parse_expr(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self._accept_punct("?"):
            then = self._parse_expr()
            self._expect_punct(":")
            els = self._parse_expr()
            return ast.Ternary(cond, then, els)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        lhs = self._parse_unary()
        while True:
            tok = self._peek()
            if tok.kind is not TokKind.PUNCT:
                return lhs
            prec = _PRECEDENCE.get(tok.text, 0)
            if prec < min_prec or prec == 0:
                return lhs
            op = self._next().text
            rhs = self._parse_binary(prec + 1)
            lhs = ast.Binary(op, lhs, rhs)

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.is_punct("-") or tok.is_punct("!") or tok.is_punct("+"):
            self._next()
            operand = self._parse_unary()
            if tok.text == "+":
                return operand
            # fold negative literals for cleaner ASTs
            if tok.text == "-" and isinstance(operand, ast.IntLit):
                return ast.IntLit(-operand.value)
            if tok.text == "-" and isinstance(operand, ast.FloatLit):
                return ast.FloatLit(-operand.value, "-" + operand.text)
            return ast.Unary(tok.text, operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._peek().is_punct("["):
                indices: List[ast.Expr] = []
                while self._accept_punct("["):
                    indices.append(self._parse_expr())
                    self._expect_punct("]")
                if isinstance(expr, ast.Index):
                    expr = ast.Index(expr.base, expr.indices + tuple(indices))
                else:
                    expr = ast.Index(expr, tuple(indices))
            elif self._peek().is_punct("."):
                self._next()
                field = self._expect_ident()
                expr = ast.Member(expr, field)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self._next()
        if tok.kind is TokKind.INT:
            return ast.IntLit(int(tok.text))
        if tok.kind is TokKind.FLOAT:
            text = tok.text
            value = float(text[:-1] if text[-1] in "fF" else text)
            return ast.FloatLit(value, text)
        if tok.is_kw("true"):
            return ast.BoolLit(True)
        if tok.is_kw("false"):
            return ast.BoolLit(False)
        if tok.is_kw("dim3"):
            # dim3(...) constructor used as an expression
            self._expect_punct("(")
            args: List[ast.Expr] = []
            if not self._peek().is_punct(")"):
                while True:
                    args.append(self._parse_expr())
                    if not self._accept_punct(","):
                        break
            self._expect_punct(")")
            return ast.Call("dim3", tuple(args))
        if tok.kind is TokKind.IDENT:
            if self._peek().is_punct("("):
                self._next()
                args = []
                if not self._peek().is_punct(")"):
                    while True:
                        args.append(self._parse_expr())
                        if not self._accept_punct(","):
                            break
                self._expect_punct(")")
                return ast.Call(tok.text, tuple(args))
            return ast.Ident(tok.text)
        if tok.is_punct("("):
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        raise self._error("expected expression", tok)


def parse_program(source: str) -> ast.Program:
    """Parse CudaLite source text into a :class:`Program`."""
    return Parser(source).parse_program()


def parse_kernel(source: str) -> ast.KernelDef:
    """Parse a source fragment containing exactly one kernel definition."""
    program = parse_program(source)
    if len(program.kernels) != 1:
        raise ParseError(
            f"expected exactly one kernel, found {len(program.kernels)}"
        )
    return program.kernels[0]


def parse_expr(source: str) -> ast.Expr:
    """Parse a standalone expression (useful in tests and builders)."""
    parser = Parser(source)
    expr = parser._parse_expr()
    if parser._peek().kind is not TokKind.EOF:
        raise parser._error("trailing tokens after expression")
    return expr

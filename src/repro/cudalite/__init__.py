"""CudaLite: a CUDA-C dialect substrate (lexer, parser, AST, unparser).

This package stands in for the ROSE compiler infrastructure the paper uses:
it parses stencil CUDA programs into an AST, lets transformations manipulate
the AST, and unparses back to readable source.
"""

from . import ast_nodes as ast
from . import builders
from .lexer import Lexer, tokenize
from .parser import Parser, parse_expr, parse_kernel, parse_program
from .semantics import (
    BUILTIN_GEOMETRY,
    HOST_INTRINSICS,
    MATH_INTRINSICS,
    KernelSymbols,
    SemanticChecker,
    check_program,
)
from .unparser import Unparser, unparse, unparse_expr

__all__ = [
    "ast",
    "builders",
    "Lexer",
    "tokenize",
    "Parser",
    "parse_program",
    "parse_kernel",
    "parse_expr",
    "Unparser",
    "unparse",
    "unparse_expr",
    "SemanticChecker",
    "check_program",
    "KernelSymbols",
    "BUILTIN_GEOMETRY",
    "MATH_INTRINSICS",
    "HOST_INTRINSICS",
]

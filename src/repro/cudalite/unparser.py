"""Unparser: turns CudaLite ASTs back into readable source text.

The paper emphasises that generated kernels remain *highly readable* so the
programmer can amend them; this unparser therefore produces conventionally
formatted CUDA-style code (4-space indents, one statement per line, minimal
parentheses driven by operator precedence).

The emitted text is guaranteed to re-parse to an equal AST (round-trip
property, tested with hypothesis).
"""

from __future__ import annotations

from typing import List

from . import ast_nodes as ast

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}
_UNARY_PREC = 7
_POSTFIX_PREC = 8
_TERNARY_PREC = 0


class Unparser:
    """Stateful pretty-printer over the immutable AST."""

    def __init__(self, indent: str = "    ") -> None:
        self.indent = indent
        self.lines: List[str] = []
        self.depth = 0

    # -------------------------------------------------------------------- emit

    def _line(self, text: str) -> None:
        self.lines.append(self.indent * self.depth + text)

    def unparse(self, node: ast.Node) -> str:
        """Render ``node`` (a Program, KernelDef, HostFunc or Stmt) to text."""
        self.lines = []
        self._emit_node(node)
        return "\n".join(self.lines) + "\n"

    def _emit_node(self, node: ast.Node) -> None:
        if isinstance(node, ast.Program):
            for idx, item in enumerate(node.items):
                if idx:
                    self.lines.append("")
                self._emit_node(item)
        elif isinstance(node, ast.KernelDef):
            params = ", ".join(self._param(p) for p in node.params)
            self._line(f"__global__ void {node.name}({params}) {{")
            self._emit_block_body(node.body)
            self._line("}")
        elif isinstance(node, ast.HostFunc):
            params = ", ".join(self._param(p) for p in node.params)
            self._line(f"{self._type(node.ret_type)} {node.name}({params}) {{")
            self._emit_block_body(node.body)
            self._line("}")
        elif isinstance(node, ast.Stmt):
            self._emit_stmt(node)
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot unparse {type(node).__name__}")

    def _param(self, param: ast.Param) -> str:
        type_text = self._type(param.type)
        sep = "" if type_text.endswith("*") else " "
        return f"{type_text}{sep}{param.name}"

    @staticmethod
    def _type(spec: ast.TypeSpec) -> str:
        parts = []
        if spec.is_const:
            parts.append("const")
        parts.append(spec.base)
        text = " ".join(parts)
        return text + " *" if spec.is_pointer else text

    # -------------------------------------------------------------- statements

    def _emit_block_body(self, block: ast.Block) -> None:
        self.depth += 1
        for stmt in block.stmts:
            self._emit_stmt(stmt)
        self.depth -= 1

    def _emit_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._line("{")
            self._emit_block_body(stmt)
            self._line("}")
        elif isinstance(stmt, ast.VarDecl):
            self._line(self._decl_text(stmt))
        elif isinstance(stmt, ast.Assign):
            target = self._expr(stmt.target, _TERNARY_PREC)
            value = self._expr(stmt.value, _TERNARY_PREC)
            self._line(f"{target} {stmt.op} {value};")
        elif isinstance(stmt, ast.ExprStmt):
            self._line(self._expr(stmt.expr, _TERNARY_PREC) + ";")
        elif isinstance(stmt, ast.SyncThreads):
            self._line("__syncthreads();")
        elif isinstance(stmt, ast.If):
            cond = self._expr(stmt.cond, _TERNARY_PREC)
            self._line(f"if ({cond}) {{")
            self._emit_block_body(stmt.then)
            if stmt.els is not None:
                self._line("} else {")
                self._emit_block_body(stmt.els)
            self._line("}")
        elif isinstance(stmt, ast.For):
            start = self._expr(stmt.start, _TERNARY_PREC)
            bound = self._expr(stmt.bound, _TERNARY_PREC)
            if isinstance(stmt.step, ast.IntLit) and stmt.step.value == 1:
                update = f"{stmt.var}++"
            else:
                update = f"{stmt.var} += {self._expr(stmt.step, _TERNARY_PREC)}"
            self._line(
                f"for (int {stmt.var} = {start}; {stmt.var} {stmt.cmp} {bound}; "
                f"{update}) {{"
            )
            self._emit_block_body(stmt.body)
            self._line("}")
        elif isinstance(stmt, ast.While):
            self._line(f"while ({self._expr(stmt.cond, _TERNARY_PREC)}) {{")
            self._emit_block_body(stmt.body)
            self._line("}")
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self._line("return;")
            else:
                self._line(f"return {self._expr(stmt.value, _TERNARY_PREC)};")
        elif isinstance(stmt, ast.Launch):
            grid = self._expr(stmt.grid, _TERNARY_PREC)
            block = self._expr(stmt.block, _TERNARY_PREC)
            args = ", ".join(self._expr(a, _TERNARY_PREC) for a in stmt.args)
            self._line(f"{stmt.kernel}<<<{grid}, {block}>>>({args});")
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot unparse statement {type(stmt).__name__}")

    def _decl_text(self, decl: ast.VarDecl) -> str:
        prefix = "__shared__ " if decl.is_shared else ""
        type_text = self._type(decl.type)
        sep = "" if type_text.endswith("*") else " "
        text = f"{prefix}{type_text}{sep}{decl.name}"
        for dim in decl.array_dims:
            text += f"[{self._expr(dim, _TERNARY_PREC)}]"
        if decl.init is not None:
            if decl.type.base == "dim3" and isinstance(decl.init, ast.Call):
                args = ", ".join(
                    self._expr(a, _TERNARY_PREC) for a in decl.init.args
                )
                return f"{text}({args});"
            text += f" = {self._expr(decl.init, _TERNARY_PREC)}"
        return text + ";"

    # ------------------------------------------------------------- expressions

    def _expr(self, expr: ast.Expr, parent_prec: int) -> str:
        text, prec = self._expr_with_prec(expr)
        if prec < parent_prec:
            return f"({text})"
        return text

    def _expr_with_prec(self, expr: ast.Expr):
        if isinstance(expr, ast.IntLit):
            if expr.value < 0:
                return str(expr.value), _UNARY_PREC
            return str(expr.value), _POSTFIX_PREC
        if isinstance(expr, ast.FloatLit):
            return expr.text, _POSTFIX_PREC if not expr.text.startswith("-") else _UNARY_PREC
        if isinstance(expr, ast.BoolLit):
            return ("true" if expr.value else "false"), _POSTFIX_PREC
        if isinstance(expr, ast.Ident):
            return expr.name, _POSTFIX_PREC
        if isinstance(expr, ast.Member):
            return f"{self._expr(expr.obj, _POSTFIX_PREC)}.{expr.field_name}", _POSTFIX_PREC
        if isinstance(expr, ast.Index):
            base = self._expr(expr.base, _POSTFIX_PREC)
            subs = "".join(f"[{self._expr(i, _TERNARY_PREC)}]" for i in expr.indices)
            return base + subs, _POSTFIX_PREC
        if isinstance(expr, ast.Call):
            args = ", ".join(self._expr(a, _TERNARY_PREC) for a in expr.args)
            return f"{expr.func}({args})", _POSTFIX_PREC
        if isinstance(expr, ast.Unary):
            operand = self._expr(expr.operand, _UNARY_PREC)
            if expr.op == "-" and operand.startswith("-"):
                # avoid emitting "--x", which would lex as a decrement
                operand = f"({operand})"
            return f"{expr.op}{operand}", _UNARY_PREC
        if isinstance(expr, ast.Binary):
            prec = _PRECEDENCE[expr.op]
            lhs = self._expr(expr.lhs, prec)
            # right operand needs strictly higher precedence (left-assoc ops)
            rhs = self._expr(expr.rhs, prec + 1)
            return f"{lhs} {expr.op} {rhs}", prec
        if isinstance(expr, ast.Ternary):
            cond = self._expr(expr.cond, 1)
            then = self._expr(expr.then, _TERNARY_PREC)
            els = self._expr(expr.els, _TERNARY_PREC)
            return f"{cond} ? {then} : {els}", _TERNARY_PREC
        raise TypeError(f"cannot unparse expression {type(expr).__name__}")


def unparse(node: ast.Node) -> str:
    """Render an AST node to CudaLite source text."""
    return Unparser().unparse(node)


def unparse_expr(expr: ast.Expr) -> str:
    """Render a single expression to text."""
    return Unparser()._expr(expr, _TERNARY_PREC)

"""Static semantic checks and symbol information for CudaLite programs.

The checker validates the invariants the rest of the pipeline relies on:

* every launched kernel is defined and called with the right arity;
* kernels only reference their parameters, locals, loop variables and the
  CUDA builtins (``threadIdx``/``blockIdx``/``blockDim``/``gridDim`` and the
  math intrinsics);
* pointer parameters are only used as array bases (CudaLite has no pointer
  arithmetic, which is how the dialect sidesteps the aliasing problem the
  paper lists under Limitations);
* ``__shared__`` declarations carry explicit constant dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..errors import SemanticError
from . import ast_nodes as ast

#: Builtin thread-geometry identifiers available inside kernels.
BUILTIN_GEOMETRY = frozenset({"threadIdx", "blockIdx", "blockDim", "gridDim"})

#: Math intrinsics usable inside kernels.
MATH_INTRINSICS = frozenset(
    {
        "sqrt",
        "fabs",
        "abs",
        "exp",
        "log",
        "sin",
        "cos",
        "tan",
        "pow",
        "min",
        "max",
        "fmin",
        "fmax",
        "floor",
        "ceil",
    }
)

#: Host-side intrinsics of the dialect.  ``cudaMalloc3D``/``cudaMalloc2D``/
#: ``cudaMalloc1D`` allocate device arrays with explicit logical shape;
#: ``deviceRandom``/``deviceFill`` stand in for host initialization + H2D
#: copies; the rest mirror the CUDA runtime API.
HOST_INTRINSICS = frozenset(
    {
        "cudaMalloc3D",
        "cudaMalloc2D",
        "cudaMalloc1D",
        "cudaMemcpyToHost",
        "cudaMemcpyToDevice",
        "cudaDeviceSynchronize",
        "cudaFree",
        "deviceRandom",
        "deviceFill",
        "dim3",
    }
)


@dataclass
class KernelSymbols:
    """Symbol information collected for one kernel."""

    name: str
    pointer_params: Tuple[str, ...]
    scalar_params: Tuple[str, ...]
    locals: Set[str] = field(default_factory=set)
    shared_arrays: Dict[str, Tuple[int, ...]] = field(default_factory=dict)


class SemanticChecker:
    """Validates a program and gathers per-kernel symbol tables."""

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.kernel_symbols: Dict[str, KernelSymbols] = {}

    def check(self) -> Dict[str, KernelSymbols]:
        """Run all checks; returns per-kernel symbol info.

        Raises
        ------
        SemanticError
            On any violation.
        """
        names = [k.name for k in self.program.kernels]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SemanticError(f"duplicate kernel definitions: {sorted(duplicates)}")
        for kern in self.program.kernels:
            self.kernel_symbols[kern.name] = self._check_kernel(kern)
        for host in self.program.host_funcs:
            self._check_host(host)
        return self.kernel_symbols

    # ----------------------------------------------------------------- kernels

    def _check_kernel(self, kern: ast.KernelDef) -> KernelSymbols:
        pointer_params = tuple(p.name for p in kern.pointer_params())
        scalar_params = tuple(p.name for p in kern.scalar_params())
        syms = KernelSymbols(kern.name, pointer_params, scalar_params)
        scope: Set[str] = set(pointer_params) | set(scalar_params)
        self._check_stmts(kern, kern.body.stmts, scope, syms)
        return syms

    def _check_stmts(
        self,
        kern: ast.KernelDef,
        stmts: Tuple[ast.Stmt, ...],
        scope: Set[str],
        syms: KernelSymbols,
    ) -> None:
        local_scope = set(scope)
        for stmt in stmts:
            self._check_stmt(kern, stmt, local_scope, syms)

    def _check_stmt(
        self,
        kern: ast.KernelDef,
        stmt: ast.Stmt,
        scope: Set[str],
        syms: KernelSymbols,
    ) -> None:
        where = f"kernel {kern.name!r}"
        if isinstance(stmt, ast.VarDecl):
            if stmt.is_shared:
                if not stmt.array_dims:
                    raise SemanticError(
                        f"{where}: __shared__ {stmt.name} needs array dimensions"
                    )
                dims: List[int] = []
                for dim in stmt.array_dims:
                    value = _const_int(dim)
                    if value is None or value <= 0:
                        raise SemanticError(
                            f"{where}: __shared__ {stmt.name} dims must be "
                            "positive integer constants"
                        )
                    dims.append(value)
                syms.shared_arrays[stmt.name] = tuple(dims)
            if stmt.init is not None:
                self._check_expr(kern, stmt.init, scope, syms)
            scope.add(stmt.name)
            syms.locals.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            self._check_expr(kern, stmt.target, scope, syms, is_store=True)
            self._check_expr(kern, stmt.value, scope, syms)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(kern, stmt.expr, scope, syms)
        elif isinstance(stmt, ast.SyncThreads):
            pass
        elif isinstance(stmt, ast.If):
            self._check_expr(kern, stmt.cond, scope, syms)
            self._check_stmts(kern, stmt.then.stmts, scope, syms)
            if stmt.els is not None:
                self._check_stmts(kern, stmt.els.stmts, scope, syms)
        elif isinstance(stmt, ast.For):
            self._check_expr(kern, stmt.start, scope, syms)
            self._check_expr(kern, stmt.bound, scope, syms)
            self._check_expr(kern, stmt.step, scope, syms)
            inner = set(scope)
            inner.add(stmt.var)
            syms.locals.add(stmt.var)
            self._check_stmts(kern, stmt.body.stmts, inner, syms)
        elif isinstance(stmt, ast.While):
            self._check_expr(kern, stmt.cond, scope, syms)
            self._check_stmts(kern, stmt.body.stmts, scope, syms)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                raise SemanticError(f"{where}: kernels cannot return a value")
        elif isinstance(stmt, ast.Block):
            self._check_stmts(kern, stmt.stmts, scope, syms)
        elif isinstance(stmt, ast.Launch):
            raise SemanticError(f"{where}: kernels cannot launch kernels")
        else:  # pragma: no cover - defensive
            raise SemanticError(f"{where}: unsupported statement {type(stmt).__name__}")

    def _check_expr(
        self,
        kern: ast.KernelDef,
        expr: ast.Expr,
        scope: Set[str],
        syms: KernelSymbols,
        is_store: bool = False,
    ) -> None:
        where = f"kernel {kern.name!r}"
        if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.BoolLit)):
            return
        if isinstance(expr, ast.Ident):
            if expr.name in BUILTIN_GEOMETRY:
                raise SemanticError(
                    f"{where}: {expr.name} must be accessed via .x/.y/.z"
                )
            if expr.name in syms.pointer_params and not is_store:
                # bare pointer use (aliasing) is forbidden
                raise SemanticError(
                    f"{where}: pointer {expr.name!r} used without subscripts"
                )
            if expr.name not in scope and expr.name not in syms.shared_arrays:
                raise SemanticError(f"{where}: undefined name {expr.name!r}")
            return
        if isinstance(expr, ast.Member):
            if not (
                isinstance(expr.obj, ast.Ident)
                and expr.obj.name in BUILTIN_GEOMETRY
                and expr.field_name in ("x", "y", "z")
            ):
                raise SemanticError(f"{where}: unsupported member access")
            return
        if isinstance(expr, ast.Index):
            name = expr.array_name
            if name is None:
                raise SemanticError(f"{where}: subscript base must be a name")
            if name not in syms.pointer_params and name not in syms.shared_arrays:
                raise SemanticError(
                    f"{where}: subscript of non-array {name!r}"
                )
            for index in expr.indices:
                self._check_expr(kern, index, scope, syms)
            return
        if isinstance(expr, ast.Call):
            if expr.func not in MATH_INTRINSICS:
                raise SemanticError(f"{where}: unknown function {expr.func!r}")
            for arg in expr.args:
                self._check_expr(kern, arg, scope, syms)
            return
        if isinstance(expr, ast.Unary):
            self._check_expr(kern, expr.operand, scope, syms)
            return
        if isinstance(expr, ast.Binary):
            self._check_expr(kern, expr.lhs, scope, syms)
            self._check_expr(kern, expr.rhs, scope, syms)
            return
        if isinstance(expr, ast.Ternary):
            self._check_expr(kern, expr.cond, scope, syms)
            self._check_expr(kern, expr.then, scope, syms)
            self._check_expr(kern, expr.els, scope, syms)
            return
        raise SemanticError(f"{where}: unsupported expression {type(expr).__name__}")

    # -------------------------------------------------------------------- host

    def _check_host(self, host: ast.HostFunc) -> None:
        kernels = {k.name: k for k in self.program.kernels}
        for node in host.body.walk():
            if isinstance(node, ast.Launch):
                if node.kernel not in kernels:
                    raise SemanticError(
                        f"host {host.name!r}: launch of undefined kernel "
                        f"{node.kernel!r}"
                    )
                expected = len(kernels[node.kernel].params)
                if len(node.args) != expected:
                    raise SemanticError(
                        f"host {host.name!r}: kernel {node.kernel!r} expects "
                        f"{expected} args, got {len(node.args)}"
                    )


def _const_int(expr: ast.Expr):
    """Evaluate an expression to an int constant if trivially possible."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.Binary):
        lhs = _const_int(expr.lhs)
        rhs = _const_int(expr.rhs)
        if lhs is None or rhs is None:
            return None
        ops = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a // b if b else None,
        }
        fn = ops.get(expr.op)
        return fn(lhs, rhs) if fn else None
    return None


def check_program(program: ast.Program) -> Dict[str, KernelSymbols]:
    """Validate ``program``; returns per-kernel symbol tables."""
    return SemanticChecker(program).check()

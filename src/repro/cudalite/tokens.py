"""Token definitions for the CudaLite dialect.

CudaLite is a small CUDA-C dialect covering exactly the constructs the
HPDC'15 transformation framework operates on: ``__global__`` stencil kernels,
thread-index expressions, ``__shared__`` tiles, ``__syncthreads()`` and a
simplified host side with ``<<<grid, block>>>`` launches.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokKind(Enum):
    """Kinds of lexical tokens."""

    IDENT = auto()
    INT = auto()
    FLOAT = auto()
    KEYWORD = auto()
    PUNCT = auto()
    EOF = auto()


#: Reserved words of the dialect.  ``dim3`` is a type keyword because host
#: code declares launch configurations with it.
KEYWORDS = frozenset(
    {
        "__global__",
        "__device__",
        "__shared__",
        "__restrict__",
        "const",
        "void",
        "int",
        "unsigned",
        "long",
        "float",
        "double",
        "bool",
        "dim3",
        "if",
        "else",
        "for",
        "while",
        "return",
        "true",
        "false",
    }
)

#: Multi-character punctuators, longest first so the lexer can match greedily.
#: ``<<<`` / ``>>>`` delimit kernel launch configurations (CudaLite has no
#: shift operators, so the triple brackets are unambiguous).
PUNCTUATORS = (
    "<<<",
    ">>>",
    "&&",
    "||",
    "==",
    "!=",
    "<=",
    ">=",
    "+=",
    "-=",
    "*=",
    "/=",
    "++",
    "--",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    ".",
    "<",
    ">",
    "=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "!",
    "?",
    ":",
    "&",
)


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes
    ----------
    kind:
        The token class (identifier, literal, keyword, punctuator, EOF).
    text:
        The exact source spelling.
    line, col:
        1-based source position of the first character.
    """

    kind: TokKind
    text: str
    line: int
    col: int

    def is_kw(self, word: str) -> bool:
        """Return True if this token is the keyword ``word``."""
        return self.kind is TokKind.KEYWORD and self.text == word

    def is_punct(self, text: str) -> bool:
        """Return True if this token is the punctuator ``text``."""
        return self.kind is TokKind.PUNCT and self.text == text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.col})"

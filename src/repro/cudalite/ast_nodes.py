"""Abstract syntax tree for the CudaLite dialect.

The node set is intentionally small: it covers exactly the constructs that
dense-grid stencil CUDA kernels and their host drivers need.  Nodes are
dataclasses; equality ignores source locations so that round-trip tests
(``parse(unparse(ast)) == ast``) are meaningful.

Expression nodes
    :class:`IntLit`, :class:`FloatLit`, :class:`BoolLit`, :class:`Ident`,
    :class:`Member`, :class:`Index`, :class:`Call`, :class:`Unary`,
    :class:`Binary`, :class:`Ternary`.

Statement nodes
    :class:`VarDecl`, :class:`Assign`, :class:`ExprStmt`, :class:`If`,
    :class:`For`, :class:`While`, :class:`Return`, :class:`Block`,
    :class:`Launch`, :class:`SyncThreads`.

Top level
    :class:`Param`, :class:`KernelDef`, :class:`HostFunc`, :class:`Program`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, List, Optional, Tuple, Union

# --------------------------------------------------------------------------- types


@dataclass(frozen=True)
class TypeSpec:
    """A CudaLite type: base name plus pointer/const qualifiers.

    ``base`` is one of ``void int float double bool dim3``.
    """

    base: str
    is_pointer: bool = False
    is_const: bool = False

    def __str__(self) -> str:
        parts = []
        if self.is_const:
            parts.append("const")
        parts.append(self.base)
        text = " ".join(parts)
        return text + " *" if self.is_pointer else text

    @property
    def itemsize(self) -> int:
        """Byte width of one element of this type (4 or 8)."""
        return {"double": 8, "float": 4, "int": 4, "bool": 1}.get(self.base, 8)


DOUBLE = TypeSpec("double")
FLOAT = TypeSpec("float")
INT = TypeSpec("int")
DOUBLE_PTR = TypeSpec("double", is_pointer=True)
FLOAT_PTR = TypeSpec("float", is_pointer=True)


# ----------------------------------------------------------------------- base node


@dataclass(frozen=True)
class Node:
    """Base class for all AST nodes."""

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (expressions and statements)."""
        for value in self.__dict__.values():
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants in preorder."""
        yield self
        for child in self.children():
            yield from child.walk()


class Expr(Node):
    """Marker base class for expression nodes."""


class Stmt(Node):
    """Marker base class for statement nodes."""


# -------------------------------------------------------------------- expressions


@dataclass(frozen=True)
class IntLit(Expr):
    """Integer literal."""

    value: int


@dataclass(frozen=True)
class FloatLit(Expr):
    """Floating-point literal. ``text`` preserves the source spelling."""

    value: float
    text: str = ""

    def __post_init__(self) -> None:
        if not self.text:
            object.__setattr__(self, "text", repr(self.value))


@dataclass(frozen=True)
class BoolLit(Expr):
    """``true`` / ``false`` literal."""

    value: bool


@dataclass(frozen=True)
class Ident(Expr):
    """A name reference."""

    name: str


@dataclass(frozen=True)
class Member(Expr):
    """Member access such as ``threadIdx.x``."""

    obj: Expr
    field_name: str


@dataclass(frozen=True)
class Index(Expr):
    """Array subscript chain ``base[e0][e1]...`` collapsed into one node."""

    base: Expr
    indices: Tuple[Expr, ...]

    @property
    def array_name(self) -> Optional[str]:
        """The indexed array's name if the base is a plain identifier."""
        return self.base.name if isinstance(self.base, Ident) else None


@dataclass(frozen=True)
class Call(Expr):
    """Function call ``func(args...)`` (math builtins, dim3, host intrinsics)."""

    func: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class Unary(Expr):
    """Prefix unary operation: ``-x``, ``!x``, ``+x``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    """Binary operation with C semantics for the supported operator set."""

    op: str
    lhs: Expr
    rhs: Expr


@dataclass(frozen=True)
class Ternary(Expr):
    """Conditional expression ``cond ? then : els``."""

    cond: Expr
    then: Expr
    els: Expr


# --------------------------------------------------------------------- statements


@dataclass(frozen=True)
class VarDecl(Stmt):
    """A declaration, optionally initialized.

    ``array_dims`` is non-empty for array declarations such as
    ``__shared__ double tile[18][18];``.  ``is_shared`` marks ``__shared__``
    storage.
    """

    type: TypeSpec
    name: str
    init: Optional[Expr] = None
    array_dims: Tuple[Expr, ...] = ()
    is_shared: bool = False


@dataclass(frozen=True)
class Assign(Stmt):
    """Assignment ``target op value`` where op is ``=``, ``+=``, ``-=``, ...."""

    target: Expr
    op: str
    value: Expr


@dataclass(frozen=True)
class ExprStmt(Stmt):
    """A bare expression statement (e.g. a call)."""

    expr: Expr


@dataclass(frozen=True)
class SyncThreads(Stmt):
    """``__syncthreads();`` — a block-level barrier."""


@dataclass(frozen=True)
class Block(Stmt):
    """A ``{ ... }`` statement list."""

    stmts: Tuple[Stmt, ...]


@dataclass(frozen=True)
class If(Stmt):
    """``if (cond) then [else els]``; branches are always Blocks."""

    cond: Expr
    then: Block
    els: Optional[Block] = None


@dataclass(frozen=True)
class For(Stmt):
    """Canonical counted loop ``for (int v = start; v <op> bound; v += step)``.

    ``cmp`` is ``<`` or ``<=``; ``step`` defaults to 1 (``v++``).
    """

    var: str
    start: Expr
    cmp: str
    bound: Expr
    step: Expr
    body: Block


@dataclass(frozen=True)
class While(Stmt):
    """``while (cond) body`` (used rarely; kept for completeness)."""

    cond: Expr
    body: Block


@dataclass(frozen=True)
class Return(Stmt):
    """``return [expr];``"""

    value: Optional[Expr] = None


@dataclass(frozen=True)
class Launch(Stmt):
    """Kernel launch ``kernel<<<grid, block>>>(args...);`` (host-side)."""

    kernel: str
    grid: Expr
    block: Expr
    args: Tuple[Expr, ...]


# ---------------------------------------------------------------------- top level


@dataclass(frozen=True)
class Param(Node):
    """A formal parameter of a kernel or host function."""

    type: TypeSpec
    name: str


@dataclass(frozen=True)
class KernelDef(Node):
    """A ``__global__ void name(params) { body }`` definition."""

    name: str
    params: Tuple[Param, ...]
    body: Block

    def param_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.params)

    def pointer_params(self) -> Tuple[Param, ...]:
        """Parameters that are device array pointers."""
        return tuple(p for p in self.params if p.type.is_pointer)

    def scalar_params(self) -> Tuple[Param, ...]:
        """Parameters passed by value (sizes, coefficients)."""
        return tuple(p for p in self.params if not p.type.is_pointer)


@dataclass(frozen=True)
class HostFunc(Node):
    """A host-side function (typically ``int main``)."""

    name: str
    ret_type: TypeSpec
    params: Tuple[Param, ...]
    body: Block


@dataclass(frozen=True)
class Program(Node):
    """A full CudaLite translation unit."""

    items: Tuple[Node, ...]

    @property
    def kernels(self) -> Tuple[KernelDef, ...]:
        return tuple(i for i in self.items if isinstance(i, KernelDef))

    @property
    def host_funcs(self) -> Tuple[HostFunc, ...]:
        return tuple(i for i in self.items if isinstance(i, HostFunc))

    def kernel(self, name: str) -> KernelDef:
        """Return the kernel definition named ``name``.

        Raises
        ------
        KeyError
            If no kernel with that name exists.
        """
        for k in self.kernels:
            if k.name == name:
                return k
        raise KeyError(f"no kernel named {name!r}")

    def main(self) -> HostFunc:
        """Return the host entry function (named ``main``)."""
        for f in self.host_funcs:
            if f.name == "main":
                return f
        raise KeyError("program has no main()")

    def replace_kernels(
        self, new_kernels: Tuple[KernelDef, ...], new_main: Optional[HostFunc] = None
    ) -> "Program":
        """Return a program with all kernels (and optionally main) replaced.

        Non-kernel, non-main items are preserved in their original order;
        new kernels are placed before host functions.
        """
        others = [
            i
            for i in self.items
            if not isinstance(i, KernelDef)
            and not (isinstance(i, HostFunc) and i.name == "main" and new_main)
        ]
        host = [i for i in others if isinstance(i, HostFunc)]
        rest = [i for i in others if not isinstance(i, HostFunc)]
        items: List[Node] = list(rest) + list(new_kernels)
        if new_main is not None:
            items += [new_main]
        items += host
        return Program(tuple(items))


#: Union type of things accepted where an lvalue is expected.
LValue = Union[Ident, Index]


def clone_with(node: Node, **changes) -> Node:
    """Return a copy of ``node`` with the given fields replaced."""
    return replace(node, **changes)

"""Command-line front end (``repro-transform``).

Mirrors the paper's tool: the programmer points it at a CUDA(Lite) source
file, optionally bounds the stages (``--until`` / ``--from``) and receives
stage reports, DOT files and the generated program in a working directory.

The CLI is a thin shell over :func:`repro.api.transform`: it assembles a
:class:`repro.api.TransformConfig` (``--config`` file first, then explicit
flags on top) and delegates execution, run-manifest writing and telemetry
output to the facade.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path

from ..api import TransformConfig, transform
from ..errors import ConfigError, ReproError
from ..gpu.device import available_devices
from ..observability.logfmt import configure_logging
from ..search.params import GAParams
from .stages import STAGES


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-transform",
        description=(
            "Automated CUDA-to-CUDA kernel fission/fusion transformation "
            "for stencil applications (HPDC'15 reproduction)."
        ),
    )
    parser.add_argument("source", help="CudaLite source file")
    parser.add_argument(
        "-o", "--output", default=None, help="write the transformed program here"
    )
    parser.add_argument(
        "--config",
        default=None,
        metavar="FILE",
        help=(
            "JSON TransformConfig file (see repro.api); explicit flags "
            "override its fields"
        ),
    )
    parser.add_argument(
        "--device",
        default=None,
        choices=sorted(available_devices()),
        help="target device model (default: K20X)",
    )
    parser.add_argument(
        "--mode",
        default=None,
        choices=("automated", "guided", "manual"),
        help="transformation mode (guided/manual enable high-quality codegen)",
    )
    parser.add_argument(
        "--until", default=None, choices=STAGES, help="stop after this stage"
    )
    parser.add_argument(
        "--workdir", default=None, help="directory for stage artifacts"
    )
    parser.add_argument(
        "--ga-params", default=None, help="GA parameter file (see GAParams)"
    )
    parser.add_argument(
        "--islands",
        type=int,
        default=None,
        metavar="K",
        help=(
            "GGA island subpopulations (default: REPRO_ISLANDS or the GA "
            "parameter set; 1 = classic single-population search)"
        ),
    )
    parser.add_argument(
        "--migration-interval",
        type=int,
        default=None,
        metavar="M",
        help="generations between elite migrations in island mode",
    )
    parser.add_argument(
        "--migration-size",
        type=int,
        default=None,
        metavar="E",
        help="elites exchanged per migration epoch in island mode",
    )
    parser.add_argument(
        "--surrogate-topk",
        type=float,
        default=None,
        metavar="F",
        help=(
            "fraction of offspring admitted to exact fitness evaluation "
            "after the analytic-model-only surrogate ranking "
            "(1.0 disables the pre-filter)"
        ),
    )
    parser.add_argument(
        "--no-fission", action="store_true", help="disable kernel fission"
    )
    parser.add_argument(
        "--no-tuning", action="store_true", help="disable thread-block tuning"
    )
    parser.add_argument(
        "--no-filter", action="store_true", help="disable target filtering"
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="KERNEL",
        help="manually exclude a kernel from the search (repeatable)",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip output verification on the simulator",
    )
    parser.add_argument(
        "--no-group-verify",
        action="store_true",
        help="skip the per-group semantic verification gate during codegen",
    )
    parser.add_argument(
        "--fail-hard",
        action="store_true",
        help=(
            "abort on search/verification failures instead of degrading "
            "gracefully to the identity transformation"
        ),
    )
    parser.add_argument(
        "--log-level",
        default="warning",
        choices=("debug", "info", "warning", "error"),
        help="logging verbosity for pipeline diagnostics",
    )
    parser.add_argument(
        "--log-format",
        default=None,
        choices=("text", "json"),
        help=(
            "log record format; json emits one object per line with "
            "trace/span correlation ids (default: REPRO_LOG_FORMAT or text)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="GA random seed (default: 12345)"
    )
    parser.add_argument(
        "--block-exec",
        default=None,
        choices=("auto", "loop", "batched", "compiled"),
        help=(
            "interpreter execution strategy for kernel launches "
            "(default: REPRO_BLOCK_EXEC or 'auto'; 'compiled' lowers "
            "kernels to cached numpy code with per-kernel fallback)"
        ),
    )
    parser.add_argument(
        "--store",
        nargs="?",
        const=True,
        default=None,
        metavar="ROOT",
        help=(
            "enable the persistent cross-run artifact store, optionally at "
            "ROOT (default: REPRO_STORE or ~/.cache/repro)"
        ),
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="disable the persistent store even when REPRO_STORE is set",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help=(
            "write end-of-run metrics here (JSON, or Prometheus text when "
            "the path ends in .prom)"
        ),
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a Chrome trace-event file (Perfetto-loadable) here",
    )
    parser.add_argument(
        "--no-telemetry",
        action="store_true",
        help=(
            "disable metrics, tracing, search telemetry and run.json "
            "(equivalent to REPRO_TELEMETRY=0)"
        ),
    )
    return parser


def _build_config(args) -> TransformConfig:
    """``--config`` file first, explicit flags layered on top.

    Flags whose argparse default is ``None``/``False``/``[]`` only
    override the file when the user actually passed them, preserving the
    documented precedence (explicit > file > env > default).
    """
    config = (
        TransformConfig.from_file(args.config)
        if args.config
        else TransformConfig()
    )
    overrides = {}
    if args.device is not None:
        overrides["device"] = args.device
    if args.mode is not None:
        overrides["mode"] = args.mode
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.ga_params:
        overrides["ga_params"] = GAParams.read(args.ga_params)
    if args.islands is not None:
        overrides["islands"] = args.islands
    if args.migration_interval is not None:
        overrides["migration_interval"] = args.migration_interval
    if args.migration_size is not None:
        overrides["migration_size"] = args.migration_size
    if args.surrogate_topk is not None:
        overrides["surrogate_topk"] = args.surrogate_topk
    if args.until is not None:
        overrides["until"] = args.until
    if args.workdir is not None:
        overrides["workdir"] = args.workdir
    if args.exclude:
        overrides["exclude"] = tuple(args.exclude)
    if args.no_filter:
        overrides["filtering"] = False
    if args.no_fission:
        overrides["fission"] = False
    if args.no_tuning:
        overrides["tuning"] = False
    if args.no_verify:
        overrides["verify"] = False
    if args.no_group_verify:
        overrides["verify_groups"] = False
    if args.fail_hard:
        overrides["fail_hard"] = True
    if args.metrics_out is not None:
        overrides["metrics_out"] = args.metrics_out
    if args.trace_out is not None:
        overrides["trace_out"] = args.trace_out
    if args.block_exec is not None:
        overrides["block_exec"] = args.block_exec
    if args.no_telemetry:
        overrides["telemetry"] = False
    if args.no_store:
        overrides["store"] = False
    elif args.store is not None:
        overrides["store"] = True
        if isinstance(args.store, str):
            overrides["store_root"] = args.store
    return replace(config, **overrides) if overrides else config


def main(argv=None) -> int:
    args = build_arg_parser().parse_args(argv)
    configure_logging(args.log_level, args.log_format)
    try:
        config = _build_config(args)
    except (ConfigError, ReproError) as exc:
        print(f"repro-transform: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    try:
        result = transform(Path(args.source), config)
    except ReproError as exc:
        # expected failure modes get a one-line diagnostic, not a traceback
        stage = f" [stage: {exc.stage}]" if exc.stage else ""
        print(
            f"repro-transform: {type(exc).__name__}{stage}: {exc}",
            file=sys.stderr,
        )
        return 2
    print(result.report)
    if config.workdir:
        workdir = Path(config.workdir)
        workdir.mkdir(parents=True, exist_ok=True)
        (workdir / "report.txt").write_text(result.report + "\n")

    if config.until in (None, "codegen") and result.source is not None:
        if args.output:
            Path(args.output).write_text(result.source)
            print(f"transformed program written to {args.output}")
        else:
            print(result.source)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line front end (``repro-transform``).

Mirrors the paper's tool: the programmer points it at a CUDA(Lite) source
file, optionally bounds the stages (``--until`` / ``--from``) and receives
stage reports, DOT files and the generated program in a working directory.
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path

from typing import Dict, Optional

from ..cudalite.parser import parse_program
from ..cudalite.unparser import unparse
from ..errors import PipelineError, ReproError
from ..gpu.device import available_devices, query_device
from ..observability.metrics import get_registry
from ..observability.runinfo import build_run_manifest, write_run_manifest
from ..observability.runtime import set_telemetry_enabled, telemetry_enabled
from ..observability.tracing import get_tracer
from ..search.params import GAParams, fast_params
from .framework import Framework
from .stages import STAGES, PipelineConfig


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-transform",
        description=(
            "Automated CUDA-to-CUDA kernel fission/fusion transformation "
            "for stencil applications (HPDC'15 reproduction)."
        ),
    )
    parser.add_argument("source", help="CudaLite source file")
    parser.add_argument(
        "-o", "--output", default=None, help="write the transformed program here"
    )
    parser.add_argument(
        "--device",
        default="K20X",
        choices=sorted(available_devices()),
        help="target device model",
    )
    parser.add_argument(
        "--mode",
        default="automated",
        choices=("automated", "guided", "manual"),
        help="transformation mode (guided/manual enable high-quality codegen)",
    )
    parser.add_argument(
        "--until", default=None, choices=STAGES, help="stop after this stage"
    )
    parser.add_argument(
        "--workdir", default=None, help="directory for stage artifacts"
    )
    parser.add_argument(
        "--ga-params", default=None, help="GA parameter file (see GAParams)"
    )
    parser.add_argument(
        "--no-fission", action="store_true", help="disable kernel fission"
    )
    parser.add_argument(
        "--no-tuning", action="store_true", help="disable thread-block tuning"
    )
    parser.add_argument(
        "--no-filter", action="store_true", help="disable target filtering"
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="KERNEL",
        help="manually exclude a kernel from the search (repeatable)",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip output verification on the simulator",
    )
    parser.add_argument(
        "--no-group-verify",
        action="store_true",
        help="skip the per-group semantic verification gate during codegen",
    )
    parser.add_argument(
        "--fail-hard",
        action="store_true",
        help=(
            "abort on search/verification failures instead of degrading "
            "gracefully to the identity transformation"
        ),
    )
    parser.add_argument(
        "--log-level",
        default="warning",
        choices=("debug", "info", "warning", "error"),
        help="logging verbosity for pipeline diagnostics",
    )
    parser.add_argument(
        "--seed", type=int, default=12345, help="GA random seed"
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help=(
            "write end-of-run metrics here (JSON, or Prometheus text when "
            "the path ends in .prom)"
        ),
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a Chrome trace-event file (Perfetto-loadable) here",
    )
    parser.add_argument(
        "--no-telemetry",
        action="store_true",
        help=(
            "disable metrics, tracing, search telemetry and run.json "
            "(equivalent to REPRO_TELEMETRY=0)"
        ),
    )
    return parser


def _config_dict(args) -> Dict[str, object]:
    """The resolved CLI configuration, for the run manifest."""
    return {
        "device": args.device,
        "mode": args.mode,
        "until": args.until,
        "workdir": args.workdir,
        "seed": args.seed,
        "ga_params_file": args.ga_params,
        "exclude": list(args.exclude),
        "no_filter": args.no_filter,
        "no_fission": args.no_fission,
        "no_tuning": args.no_tuning,
        "no_verify": args.no_verify,
        "no_group_verify": args.no_group_verify,
        "fail_hard": args.fail_hard,
    }


def _write_telemetry_outputs(
    args,
    framework: Optional[Framework],
    exit_code: int,
    error: Optional[Dict[str, object]],
) -> None:
    """Persist run.json (+ optional metrics/trace files) for this run.

    Runs on success *and* on the exit-code-2 path, so failed runs leave a
    machine-readable diagnostic; skipped entirely under ``--no-telemetry``.
    """
    if not telemetry_enabled():
        return
    if not (args.workdir or args.metrics_out or args.trace_out):
        # no working directory and no explicit telemetry destinations:
        # don't surprise the caller with a run.json in their cwd
        return
    state = framework.state if framework is not None else None
    speedup = None
    verified = None
    demotions = 0
    if state is not None:
        verified = state.verified
        if state.transform is not None:
            demotions = len(state.transform.demotions)
            try:
                speedup = state.speedup
            except PipelineError:
                speedup = None
    run_dir = Path(args.workdir) if args.workdir else Path(".")
    run_dir.mkdir(parents=True, exist_ok=True)
    manifest = build_run_manifest(
        source=args.source,
        config=_config_dict(args),
        stage_times=framework.stage_times if framework is not None else {},
        reports=dict(state.reports) if state is not None else {},
        speedup=speedup,
        verified=verified,
        demotions=demotions,
        exit_code=exit_code,
        error=error,
    )
    write_run_manifest(str(run_dir / "run.json"), manifest)
    if args.metrics_out:
        registry = get_registry()
        if args.metrics_out.endswith(".prom"):
            registry.write_prometheus(args.metrics_out)
        else:
            registry.write_json(args.metrics_out)
    if args.trace_out:
        get_tracer().write(args.trace_out)


def main(argv=None) -> int:
    args = build_arg_parser().parse_args(argv)
    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(levelname)s %(name)s: %(message)s",
    )
    if not args.no_telemetry:
        return _main(args)
    previous = telemetry_enabled()
    set_telemetry_enabled(False)
    try:
        return _main(args)
    finally:
        set_telemetry_enabled(previous)


def _main(args) -> int:
    framework: Optional[Framework] = None
    try:
        source = Path(args.source).read_text()
        program = parse_program(source)

        if args.ga_params:
            params = GAParams.read(args.ga_params)
        else:
            params = fast_params(seed=args.seed)

        config = PipelineConfig(
            device=query_device(args.device),
            mode=args.mode,
            ga_params=params,
            manual_exclusions=tuple(args.exclude),
            disable_filtering=args.no_filter,
            enable_fission=not args.no_fission,
            tune_blocks=not args.no_tuning,
            verify=not args.no_verify,
            verify_groups=not args.no_group_verify,
            fail_soft=not args.fail_hard,
            workdir=args.workdir,
        )
        framework = Framework(program, config)
        state = framework.run(until=args.until)
    except ReproError as exc:
        # expected failure modes get a one-line diagnostic, not a traceback
        stage = f" [stage: {exc.stage}]" if exc.stage else ""
        print(
            f"repro-transform: {type(exc).__name__}{stage}: {exc}",
            file=sys.stderr,
        )
        _write_telemetry_outputs(
            args,
            framework,
            exit_code=2,
            error={
                "type": type(exc).__name__,
                "stage": exc.stage,
                "message": str(exc),
            },
        )
        return 2
    report = framework.report()
    print(report)
    if args.workdir:
        workdir = Path(args.workdir)
        workdir.mkdir(parents=True, exist_ok=True)
        (workdir / "report.txt").write_text(report + "\n")

    if args.until in (None, "codegen") and state.transform is not None:
        output = unparse(state.transform.program)
        if args.output:
            Path(args.output).write_text(output)
            print(f"transformed program written to {args.output}")
        else:
            print(output)
    _write_telemetry_outputs(args, framework, exit_code=0, error=None)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

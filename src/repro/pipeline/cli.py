"""Command-line front end (``repro-transform``).

Mirrors the paper's tool: the programmer points it at a CUDA(Lite) source
file, optionally bounds the stages (``--until`` / ``--from``) and receives
stage reports, DOT files and the generated program in a working directory.
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path

from ..cudalite.parser import parse_program
from ..cudalite.unparser import unparse
from ..errors import ReproError
from ..gpu.device import available_devices, query_device
from ..search.params import GAParams, fast_params
from .framework import Framework
from .stages import STAGES, PipelineConfig


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-transform",
        description=(
            "Automated CUDA-to-CUDA kernel fission/fusion transformation "
            "for stencil applications (HPDC'15 reproduction)."
        ),
    )
    parser.add_argument("source", help="CudaLite source file")
    parser.add_argument(
        "-o", "--output", default=None, help="write the transformed program here"
    )
    parser.add_argument(
        "--device",
        default="K20X",
        choices=sorted(available_devices()),
        help="target device model",
    )
    parser.add_argument(
        "--mode",
        default="automated",
        choices=("automated", "guided", "manual"),
        help="transformation mode (guided/manual enable high-quality codegen)",
    )
    parser.add_argument(
        "--until", default=None, choices=STAGES, help="stop after this stage"
    )
    parser.add_argument(
        "--workdir", default=None, help="directory for stage artifacts"
    )
    parser.add_argument(
        "--ga-params", default=None, help="GA parameter file (see GAParams)"
    )
    parser.add_argument(
        "--no-fission", action="store_true", help="disable kernel fission"
    )
    parser.add_argument(
        "--no-tuning", action="store_true", help="disable thread-block tuning"
    )
    parser.add_argument(
        "--no-filter", action="store_true", help="disable target filtering"
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="KERNEL",
        help="manually exclude a kernel from the search (repeatable)",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip output verification on the simulator",
    )
    parser.add_argument(
        "--no-group-verify",
        action="store_true",
        help="skip the per-group semantic verification gate during codegen",
    )
    parser.add_argument(
        "--fail-hard",
        action="store_true",
        help=(
            "abort on search/verification failures instead of degrading "
            "gracefully to the identity transformation"
        ),
    )
    parser.add_argument(
        "--log-level",
        default="warning",
        choices=("debug", "info", "warning", "error"),
        help="logging verbosity for pipeline diagnostics",
    )
    parser.add_argument(
        "--seed", type=int, default=12345, help="GA random seed"
    )
    return parser


def main(argv=None) -> int:
    args = build_arg_parser().parse_args(argv)
    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(levelname)s %(name)s: %(message)s",
    )
    try:
        source = Path(args.source).read_text()
        program = parse_program(source)

        if args.ga_params:
            params = GAParams.read(args.ga_params)
        else:
            params = fast_params(seed=args.seed)

        config = PipelineConfig(
            device=query_device(args.device),
            mode=args.mode,
            ga_params=params,
            manual_exclusions=tuple(args.exclude),
            disable_filtering=args.no_filter,
            enable_fission=not args.no_fission,
            tune_blocks=not args.no_tuning,
            verify=not args.no_verify,
            verify_groups=not args.no_group_verify,
            fail_soft=not args.fail_hard,
            workdir=args.workdir,
        )
        framework = Framework(program, config)
        state = framework.run(until=args.until)
    except ReproError as exc:
        # expected failure modes get a one-line diagnostic, not a traceback
        stage = f" [stage: {exc.stage}]" if exc.stage else ""
        print(
            f"repro-transform: {type(exc).__name__}{stage}: {exc}",
            file=sys.stderr,
        )
        return 2
    print(framework.report())

    if args.until in (None, "codegen") and state.transform is not None:
        output = unparse(state.transform.program)
        if args.output:
            Path(args.output).write_text(output)
            print(f"transformed program written to {args.output}")
        else:
            print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Applying the search result: generate the transformed program (§3.2.5).

Materializes a :class:`~repro.search.grouping.Grouping` chosen by the GGA:

* groups of size one launch the original kernel (the *no fusion* case) or a
  fission fragment;
* larger groups are fused (`simple` or `complex` depending on internal
  precedence), with thread-block tuning (§4.2) re-generating the kernel at
  the occupancy-optimal block shape;
* every fused kernel passes the per-group semantic verification gate
  (:mod:`repro.reliability.verify`) before it is committed;
* the host code is rewritten to invoke the new kernels in an order
  compatible with the new OEG.

A group the code generator cannot realize — or whose generated kernel
fails verification — degrades down the fusion ladder (complex → per-wave
simple fusion → per-member launches) instead of failing the pipeline;
every demotion is recorded with its cause.  The transformed program is
always valid.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx

from ..cudalite import ast_nodes as ast
from ..cudalite.unparser import unparse
from ..errors import ReproError, TransformError, VerificationError
from ..gpu.device import DeviceSpec
from ..gpu.perfmodel import (
    CodegenTraits,
    KernelProjection,
    ProgramProjection,
    estimate_registers,
    project_kernel,
)
from ..analysis.volume import estimate_volume
from ..observability.metrics import get_registry
from ..observability.tracing import span
from ..reliability import faults
from ..reliability.degrade import DemotionRecord, fusion_waves
from ..reliability.verify import GroupVerdict, VerifyConfig, verify_group
from ..search.grouping import FusionProblem, Grouping
from ..search.problem_builder import CodegenBinding
from ..store import keys as store_keys
from ..store import stage_cache
from ..store.artifact_store import ArtifactStore
from ..transform.blocksize import TuningDecision, tune_kernel_block
from ..transform.fusion import (
    Constituent,
    FusedKernel,
    FusionOptions,
    make_constituent,
)
from ..transform.fusion import fuse_kernels
from ..transform.hostcode import NewLaunch, assemble_program

logger = logging.getLogger(__name__)


@dataclass
class GeneratedLaunch:
    """One launch of the transformed program, with projection inputs."""

    kernel_name: str
    grid: Tuple[int, int, int]
    block: Tuple[int, int, int]
    members: Tuple[str, ...]
    fused: Optional[FusedKernel] = None
    node: Optional[str] = None  # for singleton launches


@dataclass
class TransformResult:
    """The materialized transformation."""

    program: ast.Program
    launches: List[GeneratedLaunch]
    tuning: List[TuningDecision]
    #: groups the code generator had to degrade to per-member launches
    degraded_groups: List[Tuple[str, ...]] = field(default_factory=list)
    #: every slide down the fusion ladder, with its cause
    demotions: List[DemotionRecord] = field(default_factory=list)
    #: per-group verification-gate verdicts for the committed kernels
    group_verdicts: List[GroupVerdict] = field(default_factory=list)

    @property
    def new_kernel_count(self) -> int:
        return len({l.kernel_name for l in self.launches})

    @property
    def fused_kernels(self) -> List[FusedKernel]:
        seen = set()
        out = []
        for launch in self.launches:
            if launch.fused is not None and launch.kernel_name not in seen:
                seen.add(launch.kernel_name)
                out.append(launch.fused)
        return out


def _schedule_groups(
    problem: FusionProblem, grouping: Grouping
) -> List[FrozenSet[str]]:
    """Topologically order the groups under the node-level OEG."""
    active = grouping.active_nodes(problem)
    oeg, _ = problem.node_oeg(active)
    owner: Dict[str, int] = {}
    for gid, group in enumerate(grouping.groups):
        for node in group:
            owner[node] = gid
    condensed = nx.DiGraph()
    condensed.add_nodes_from(range(len(grouping.groups)))
    for u, v in oeg.edges:
        gu, gv = owner[u], owner[v]
        if gu != gv:
            condensed.add_edge(gu, gv)
    if not nx.is_directed_acyclic_graph(condensed):
        raise TransformError("chosen grouping violates precedence")
    min_order = [
        min((problem.info(n).order for n in group), default=0.0)
        for group in grouping.groups
    ]
    order = nx.lexicographical_topological_sort(
        condensed, key=lambda g: min_order[g]
    )
    return [grouping.groups[g] for g in order]


def _internal_raw_edges(
    problem: FusionProblem, members: Sequence[str]
) -> List[Tuple[int, int, str]]:
    """Producer→consumer edges (by member position) inside one group."""
    ordered = sorted(members, key=lambda n: problem.info(n).order)
    index = {n: i for i, n in enumerate(ordered)}
    edges: List[Tuple[int, int, str]] = []
    last_writer: Dict[str, str] = {}
    for node in ordered:
        info = problem.info(node)
        for array in sorted(info.arrays_read):
            writer = last_writer.get(array)
            if writer is not None and writer != node:
                edges.append((index[writer], index[node], array))
        for array in info.arrays_written:
            last_writer[array] = node
    return edges


def _group_verify_key(
    fused: FusedKernel,
    member_bindings: Sequence[CodegenBinding],
    compare: Sequence[str],
    array_shapes: Mapping[str, Tuple[int, ...]],
    verify_cfg: VerifyConfig,
) -> str:
    """Content address of one group's verification outcome.

    Covers everything the gate's verdict depends on — the generated kernel
    text, launch configuration, every constituent kernel with its binding,
    the shapes of every touched array, the compared outputs and the
    verification settings — and nothing else, so the verdict survives
    unrelated edits elsewhere in the program.
    """
    launch_sig = (tuple(fused.grid), tuple(fused.block))
    constituents_sig = tuple(
        (
            unparse(b.kernel),
            tuple(b.array_args),
            tuple(float(v) for v in b.scalar_values),
            tuple(b.grid),
            tuple(b.block),
        )
        for b in member_bindings
    )
    touched = sorted(
        {a for b in member_bindings for a in b.array_args} | set(compare)
    )
    shapes_sig = tuple(
        (name, tuple(array_shapes.get(name, ()))) for name in touched
    )
    return store_keys.verified_group_key(
        unparse(fused.kernel),
        launch_sig,
        constituents_sig,
        shapes_sig,
        tuple(sorted(compare)),
        verify_cfg.seed,
        verify_cfg.rtol,
    )


def _constituent(binding: CodegenBinding) -> Constituent:
    return make_constituent(
        binding.kernel,
        binding.array_args,
        binding.scalar_arg_exprs(),
        binding.scalar_values,
        binding.grid,
        binding.block,
    )


def materialize(
    original: ast.Program,
    problem: FusionProblem,
    bindings: Mapping[str, CodegenBinding],
    grouping: Grouping,
    device: DeviceSpec,
    array_shapes: Mapping[str, Tuple[int, ...]],
    options: Optional[FusionOptions] = None,
    tune_blocks: bool = True,
    initial_block: Optional[Tuple[int, int, int]] = None,
    verify_config: Optional[VerifyConfig] = None,
    store: Optional[ArtifactStore] = None,
) -> TransformResult:
    """Generate the transformed program for ``grouping``.

    ``initial_block`` defaults to the constituents' own launch block (the
    fused kernel inherits the original configuration; §4.2's tuner then
    improves it), matching how the paper reports occupancy before/after.

    ``verify_config`` parameterizes the per-group verification gate
    (``None`` resolves it from ``REPRO_VERIFY_*``).  A group that fails
    codegen or verification is demoted down the fusion ladder — complex
    fusion → per-wave simple fusion → per-member launches — and each
    demotion is recorded in :attr:`TransformResult.demotions`.

    ``store`` enables incremental re-verification: a generated group whose
    content (kernel text, launch configuration, constituents, array
    shapes, verification settings) matches a previously *passed*
    verification is committed without re-running the interpreter, and
    block-tuning decisions are memoized by their occupancy inputs.
    """
    options = options or FusionOptions()
    verify_cfg = verify_config or VerifyConfig.from_env()
    schedule = _schedule_groups(problem, grouping)
    device_fp = store_keys.device_fingerprint(device)

    new_kernels: Dict[str, ast.KernelDef] = {}
    launches: List[GeneratedLaunch] = []
    tuning: List[TuningDecision] = []
    degraded: List[Tuple[str, ...]] = []
    demotions: List[DemotionRecord] = []
    verdicts: List[GroupVerdict] = []
    fused_counter = 0

    group_options = FusionOptions(**{**options.__dict__})
    group_options.smem_limit = device.shared_mem_per_block

    def singleton_launch(node: str) -> None:
        binding = bindings[node]
        new_kernels.setdefault(binding.kernel.name, binding.kernel)
        args = tuple(ast.Ident(a) for a in binding.array_args) + binding.scalar_arg_exprs()
        launches.append(
            GeneratedLaunch(
                kernel_name=binding.kernel.name,
                grid=binding.grid,
                block=binding.block,
                members=(node,),
                node=node,
            )
        )
        _launch_args[id(launches[-1])] = args

    _launch_args: Dict[int, Tuple[ast.Expr, ...]] = {}

    def pick_block(members: Sequence[str]) -> Tuple[int, int, int]:
        if initial_block is not None:
            return initial_block
        blocks = [bindings[n].block for n in members]
        return max(set(blocks), key=blocks.count)

    def written_arrays(members: Sequence[str]) -> List[str]:
        out: Set[str] = set()
        for node in members:
            out |= set(problem.info(node).arrays_written)
        return sorted(out)

    def build_verified(
        name: str,
        members: Sequence[str],
        precedence: Sequence[Tuple[int, int, str]],
    ) -> Tuple[FusedKernel, Optional[TuningDecision], GroupVerdict]:
        """Fuse ``members``, tune the block, verify the result.

        Raises a :class:`ReproError` (codegen, parse, verification) when
        the group cannot be realized at this ladder level — the caller
        demotes it.
        """
        with span(f"codegen:group:{name}", members=len(members)):
            return _build_verified_inner(name, members, precedence)

    def _build_verified_inner(
        name: str,
        members: Sequence[str],
        precedence: Sequence[Tuple[int, int, str]],
    ) -> Tuple[FusedKernel, Optional[TuningDecision], GroupVerdict]:
        for node in members:
            faults.check("parse", f"re-parsing constituent {node}")
        constituents = [_constituent(bindings[n]) for n in members]
        start_block = pick_block(members)
        faults.check("codegen", f"fusing group {name}")
        fused = fuse_kernels(
            name,
            constituents,
            start_block,
            array_shapes,
            precedence=precedence,
            options=group_options,
        )
        decision: Optional[TuningDecision] = None
        tuned: Optional[FusedKernel] = None
        if tune_blocks:
            dims = (
                2
                if fused.block[1] > 1
                or (initial_block is not None and initial_block[1] > 1)
                else 1
            )
            tuning_key = store_keys.tuning_key(
                device_fp,
                fused.block,
                fused.traits.smem_per_block,
                fused.traits.regs_per_thread,
                dims,
            )
            if store is not None:
                decision = stage_cache.load_tuning(store, tuning_key, name)
            if decision is None:
                decision = tune_kernel_block(
                    device,
                    name,
                    fused.block,
                    fused.traits.smem_per_block,
                    fused.traits.regs_per_thread,
                    dims=dims,
                )
                if store is not None:
                    stage_cache.save_tuning(store, tuning_key, decision)
            if decision.changed:
                try:
                    tuned = fuse_kernels(
                        name,
                        constituents,
                        decision.tuned_block,
                        array_shapes,
                        precedence=precedence,
                        options=group_options,
                    )
                except TransformError:
                    tuned = None  # keep the untuned kernel

        member_bindings = [bindings[n] for n in members]
        compare = written_arrays(members)
        candidate = tuned if tuned is not None else fused

        def gated_verify(kernel_candidate: FusedKernel) -> GroupVerdict:
            """Verify one generated kernel, reusing a stored verdict when
            the group's full content matches a previously passed gate."""
            group_key: Optional[str] = None
            if store is not None and verify_cfg.enabled:
                group_key = _group_verify_key(
                    kernel_candidate,
                    member_bindings,
                    compare,
                    array_shapes,
                    verify_cfg,
                )
                if stage_cache.group_previously_verified(store, group_key):
                    get_registry().inc(
                        "verify_group_verdicts_total", status="reused"
                    )
                    return GroupVerdict(
                        kernel=name,
                        members=tuple(members),
                        status="pass",
                        cause="reused from store",
                    )
            with span("verify:group", kernel=name):
                fresh = verify_group(
                    kernel_candidate,
                    member_bindings,
                    array_shapes,
                    compare,
                    verify_cfg,
                )
            get_registry().inc(
                "verify_group_verdicts_total", status=fresh.status
            )
            if group_key is not None and fresh.status == "pass":
                stage_cache.record_verified_group(store, group_key, fresh)
            return fresh

        verdict = gated_verify(candidate)
        if verdict.failed and tuned is not None:
            # the tuned regeneration broke the kernel; fall back to the
            # verified-able untuned block and drop the tuning decision
            untuned_verdict = gated_verify(fused)
            if not untuned_verdict.failed:
                logger.warning(
                    "tuned kernel %s failed verification (%s); "
                    "keeping original block %s",
                    name,
                    verdict.cause,
                    fused.block,
                )
                return fused, None, untuned_verdict
            verdict = untuned_verdict
        if verdict.failed:
            raise VerificationError(f"kernel {name}: {verdict.cause}")
        if verdict.status == "inconclusive":
            logger.info(
                "verification inconclusive for %s (%s); keeping fusion",
                name,
                verdict.cause,
            )
        return candidate, decision, verdict

    def commit(
        name: str,
        members: Sequence[str],
        fused: FusedKernel,
        decision: Optional[TuningDecision],
        verdict: GroupVerdict,
    ) -> None:
        nonlocal fused_counter
        fused_counter += 1
        if decision is not None:
            tuning.append(decision)
        verdicts.append(verdict)
        new_kernels[name] = fused.kernel
        args = tuple(ast.Ident(a) for a in fused.pointer_args) + fused.scalar_args
        launches.append(
            GeneratedLaunch(
                kernel_name=name,
                grid=fused.grid,
                block=fused.block,
                members=tuple(members),
                fused=fused,
            )
        )
        _launch_args[id(launches[-1])] = args

    def realize_waves(
        ordered: Sequence[str],
        precedence: Sequence[Tuple[int, int, str]],
        cause: str,
    ) -> None:
        """Middle ladder rung: split a failed complex group into its
        precedence waves and simple-fuse each multi-member wave.  Waves
        launch in depth order, so the inter-launch barrier carries every
        dependence an edge expressed inside the fused kernel."""
        waves = fusion_waves(
            len(ordered), [(p, c) for p, c, _ in precedence]
        )
        if not any(len(wave) > 1 for wave in waves):
            demotions.append(
                DemotionRecord(tuple(ordered), "complex", "none", cause)
            )
            degraded.append(tuple(ordered))
            for node in ordered:
                singleton_launch(node)
            return
        demotions.append(
            DemotionRecord(tuple(ordered), "complex", "simple", cause)
        )
        any_fused = False
        for wave in waves:
            wave_nodes = [ordered[i] for i in wave]
            if len(wave_nodes) == 1:
                singleton_launch(wave_nodes[0])
                continue
            wave_name = f"K_{fused_counter:02d}"
            try:
                fused, decision, verdict = build_verified(
                    wave_name, wave_nodes, precedence=[]
                )
            except ReproError as exc:
                logger.warning(
                    "simple fusion of wave %s failed (%s); "
                    "demoting to per-member launches",
                    wave_nodes,
                    exc,
                )
                demotions.append(
                    DemotionRecord(tuple(wave_nodes), "simple", "none", str(exc))
                )
                for node in wave_nodes:
                    singleton_launch(node)
                continue
            any_fused = True
            commit(wave_name, wave_nodes, fused, decision, verdict)
        if not any_fused:
            degraded.append(tuple(ordered))

    for group in schedule:
        ordered = sorted(group, key=lambda n: problem.info(n).order)
        if len(ordered) == 1:
            singleton_launch(ordered[0])
            continue
        name = f"K_{fused_counter:02d}"
        precedence = _internal_raw_edges(problem, ordered)
        try:
            fused, decision, verdict = build_verified(name, ordered, precedence)
        except ReproError as exc:
            logger.warning(
                "group %s failed at full fusion (%s); demoting", ordered, exc
            )
            if precedence:
                realize_waves(ordered, precedence, str(exc))
            else:
                demotions.append(
                    DemotionRecord(tuple(ordered), "simple", "none", str(exc))
                )
                degraded.append(tuple(ordered))
                for node in ordered:
                    singleton_launch(node)
            continue
        commit(name, ordered, fused, decision, verdict)

    new_launch_stmts = [
        NewLaunch(
            kernel=l.kernel_name,
            grid=l.grid,
            block=l.block,
            args=_launch_args[id(l)],
        )
        for l in launches
    ]
    program = assemble_program(
        original, list(new_kernels.values()), new_launch_stmts
    )
    return TransformResult(
        program=program,
        launches=launches,
        tuning=tuning,
        degraded_groups=degraded,
        demotions=demotions,
        group_verdicts=verdicts,
    )


def project_transformed(
    result: TransformResult,
    problem: FusionProblem,
    device: DeviceSpec,
) -> ProgramProjection:
    """Project the transformed program's execution time."""
    projections: List[KernelProjection] = []
    for launch in result.launches:
        if launch.fused is not None:
            projections.append(
                project_kernel(
                    device, launch.fused.volume, launch.block, launch.fused.traits
                )
            )
        else:
            assert launch.node is not None
            projections.append(
                _project_singleton(problem, launch.node, device)
            )
    return ProgramProjection(tuple(projections))


def _project_singleton(
    problem: FusionProblem, node: str, device: DeviceSpec
) -> KernelProjection:
    from ..analysis.volume import LaunchVolume

    info = problem.info(node)
    volume = LaunchVolume(
        kernel_name=info.kernel,
        active_threads=info.extents[0] * info.extents[1] * info.extents[2],
        launched_threads=info.extents[0] * info.extents[1] * info.extents[2],
        points_per_array=dict(info.points_per_array),
        arrays_read=set(info.arrays_read),
        arrays_written=set(info.arrays_written),
        flops=info.flops,
    )
    traits = CodegenTraits(
        radius=dict(info.radius),
        regs_per_thread=estimate_registers(
            len(info.arrays_read | info.arrays_written), info.flops_per_point
        ),
    )
    return project_kernel(device, volume, info.block, traits)


def project_baseline(
    problem: FusionProblem, device: DeviceSpec
) -> ProgramProjection:
    """Projection of the *original* program (all whole nodes, untouched)."""
    projections = [
        _project_singleton(problem, node, device)
        for node in problem.whole_nodes()
    ]
    return ProgramProjection(tuple(projections))

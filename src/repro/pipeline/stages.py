"""Pipeline stages and shared state (§3.2, Figure 2).

The transformation is a sequence of five stages, each of which emits a
report and an amendable artifact (the programmer-intervention surface):

``metadata``   → three metadata files
``targets``    → the filter report (targets of fission/fusion)
``graphs``     → DDG and OEG (DOT files)
``search``     → the GGA result (new grouping; visualizable as a new OEG)
``codegen``    → the transformed CUDA program + block tuning report

:class:`PipelineState` carries every artifact so the framework can run
up-to / from any stage, persist artifacts to a working directory and let
the programmer amend them in between.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..analysis.filtering import TargetReport, identify_targets, tag_eligibility
from ..analysis.metadata import ProgramMetadata
from ..cudalite import ast_nodes as ast
from ..cudalite.unparser import unparse
from ..errors import PipelineError, ReproError
from ..gpu.device import DeviceSpec, K20X
from ..gpu.interpreter import outputs_allclose, run_program
from ..gpu.perfmodel import ProgramProjection
from ..gpu.profiler import gather_metadata
from ..graphs import (
    build_oeg,
    graph_to_dot,
    invocation_table,
    optimize_ddg,
    validate_ddg,
    validate_oeg,
)
from ..observability.metrics import get_registry
from ..observability.model_validation import validate_model
from ..observability.runtime import telemetry_enabled
from ..observability.search_telemetry import search_telemetry_rows, write_jsonl
from ..reliability.degrade import DemotionRecord
from ..reliability.verify import VerifyConfig
from ..search import (
    BuiltProblem,
    GAParams,
    SearchResult,
    build_problem,
    fast_params,
    run_search,
    singleton_grouping,
)
from ..store import keys as store_keys
from ..store import stage_cache
from ..store.artifact_store import ArtifactStore
from ..transform.fusion import FusionOptions
from .apply import (
    TransformResult,
    materialize,
    project_baseline,
    project_transformed,
)

logger = logging.getLogger(__name__)

STAGES: Tuple[str, ...] = ("metadata", "targets", "graphs", "search", "codegen")


@dataclass
class PipelineConfig:
    """Configuration of one end-to-end transformation."""

    device: DeviceSpec = K20X
    #: 'automated' (default), 'guided' or 'manual' — §6.2.2 terminology;
    #: guided/manual enable the higher-quality codegen strategies.
    mode: str = "automated"
    ga_params: Optional[GAParams] = None
    boundary_fraction: float = 0.30
    manual_exclusions: Tuple[str, ...] = ()
    disable_filtering: bool = False
    enable_fission: bool = True
    tune_blocks: bool = True
    stage_shared: bool = True
    #: verify the transformed program's output against the original
    verify: bool = True
    #: verify each fused group against its unfused constituents as it is
    #: generated (the per-group gate; see repro.reliability.verify)
    verify_groups: bool = True
    #: degrade gracefully instead of raising: a failed search falls back
    #: to the identity grouping, a failed whole-program verification
    #: falls back to the identity (untransformed-kernel) program
    fail_soft: bool = True
    #: optional directory where stage artifacts are written
    workdir: Optional[str] = None
    #: persistent cross-run artifact cache (``None`` disables reuse); see
    #: :mod:`repro.store` — corruption always degrades to a cold run
    store: Optional[ArtifactStore] = None
    #: fine-grained codegen-strategy overrides (field name -> value), applied
    #: on top of the mode defaults; this is how a *guided* run enables only
    #: the specific fix the programmer identified (§6.2.2)
    fusion_overrides: Optional[Dict[str, object]] = None

    def fusion_options(self) -> FusionOptions:
        quality = self.mode == "manual"
        options = FusionOptions(
            stage_shared=self.stage_shared,
            merge_deep_loops=quality,
            one_sided_guards=quality,
        )
        if self.fusion_overrides:
            for key, value in self.fusion_overrides.items():
                if not hasattr(options, key):
                    raise PipelineError(f"unknown fusion option {key!r}")
                setattr(options, key, value)
        return options


@dataclass
class PipelineState:
    """Everything produced so far."""

    program: ast.Program
    config: PipelineConfig
    metadata: Optional[ProgramMetadata] = None
    targets: Optional[TargetReport] = None
    ddg: Optional[nx.DiGraph] = None
    oeg: Optional[nx.DiGraph] = None
    built: Optional[BuiltProblem] = None
    search: Optional[SearchResult] = None
    transform: Optional[TransformResult] = None
    baseline_projection: Optional[ProgramProjection] = None
    transformed_projection: Optional[ProgramProjection] = None
    verified: Optional[bool] = None
    reports: Dict[str, str] = field(default_factory=dict)
    #: stage/artifact reuse provenance (stage name -> what was reused);
    #: lands in ``run.json`` so a repeat run is auditable
    reused: Dict[str, str] = field(default_factory=dict)
    _program_fp: Optional[str] = field(default=None, repr=False)

    @property
    def program_fingerprint(self) -> str:
        if self._program_fp is None:
            self._program_fp = store_keys.program_fingerprint(self.program)
        return self._program_fp

    @property
    def device_fingerprint(self) -> str:
        return store_keys.device_fingerprint(self.config.device)

    @property
    def speedup(self) -> float:
        if self.baseline_projection is None or self.transformed_projection is None:
            raise PipelineError("run the codegen stage before asking for speedup")
        return self.baseline_projection.time_s / self.transformed_projection.time_s

    def _persist(self, name: str, content: str) -> None:
        if self.config.workdir is None:
            return
        directory = Path(self.config.workdir)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / name).write_text(content)


# -------------------------------------------------------------------- stages


def _metadata_store_key(state: PipelineState) -> str:
    return store_keys.metadata_key(
        state.program_fingerprint, state.device_fingerprint
    )


def stage_metadata(state: PipelineState) -> PipelineState:
    """Stage 1: gather performance / operations / device metadata.

    With a store attached, a previously profiled (program, device) pair
    is reconstructed from its persisted metadata files instead of
    re-running the profiling interpreter.
    """
    store = state.config.store
    reuse_note = ""
    metadata: Optional[ProgramMetadata] = None
    if store is not None:
        metadata = stage_cache.load_metadata(store, _metadata_store_key(state))
        if metadata is not None:
            state.reused["metadata"] = "profile"
            reuse_note = " (reused from store)"
    if metadata is None:
        metadata = gather_metadata(state.program, state.config.device)
        if store is not None:
            stage_cache.save_metadata(
                store, _metadata_store_key(state), metadata
            )
    state.metadata = metadata
    if state.config.workdir is not None:
        state.metadata.write(Path(state.config.workdir) / "metadata")
    kernels = state.metadata.kernels()
    state.reports["metadata"] = (
        f"profiled {len(kernels)} kernels over "
        f"{len(state.metadata.launch_order)} launches; "
        f"total projected runtime {state.metadata.total_runtime_s() * 1e3:.3f} ms"
        + reuse_note
    )
    return state


def _targets_store_key(state: PipelineState) -> str:
    return store_keys.targets_key(
        state.program_fingerprint,
        state.device_fingerprint,
        state.config.boundary_fraction,
        tuple(state.config.manual_exclusions),
        state.config.disable_filtering,
    )


def stage_targets(state: PipelineState) -> PipelineState:
    """Stage 2: identify the fusion targets."""
    if state.metadata is None:
        raise PipelineError("metadata stage has not run")
    store = state.config.store
    reuse_note = ""
    targets: Optional[TargetReport] = None
    if store is not None:
        targets = stage_cache.load_targets(store, _targets_store_key(state))
        if targets is not None:
            state.reused["targets"] = "filter"
            reuse_note = "\n(reused from store)"
    if targets is None:
        targets = identify_targets(
            state.metadata,
            state.config.device,
            boundary_fraction=state.config.boundary_fraction,
            manual_exclusions=state.config.manual_exclusions,
            disable_filtering=state.config.disable_filtering,
        )
        if store is not None:
            stage_cache.save_targets(store, _targets_store_key(state), targets)
    state.targets = targets
    state.reports["targets"] = state.targets.summary() + reuse_note
    state._persist("targets.txt", state.reports["targets"])
    return state


def stage_graphs(state: PipelineState) -> PipelineState:
    """Stage 3: build and optimize the DDG, derive the OEG."""
    if state.metadata is None or state.targets is None:
        raise PipelineError("earlier stages have not run")
    store = state.config.store
    graphs_key = store_keys.graphs_key(_targets_store_key(state))
    reuse_note = ""
    ddg = oeg = None
    report_text: Optional[str] = None
    if store is not None:
        cached = stage_cache.load_graphs(store, graphs_key)
        if cached is not None:
            ddg, oeg, report_text = cached
            state.reused["graphs"] = "ddg+oeg"
            reuse_note = " (reused from store)"
    if ddg is None or oeg is None:
        invocations = invocation_table(state.program, state.metadata)
        ddg, report = optimize_ddg(invocations)
        validate_ddg(ddg)
        oeg = build_oeg(ddg)
        validate_oeg(oeg)
        tag_eligibility(ddg, oeg, state.targets)
        report_text = report.summary()
        if store is not None:
            stage_cache.save_graphs(store, graphs_key, ddg, oeg, report_text)
    state.ddg = ddg
    state.oeg = oeg
    state.reports["graphs"] = (
        f"DDG: {ddg.number_of_nodes()} nodes / {ddg.number_of_edges()} edges; "
        f"OEG: {oeg.number_of_nodes()} nodes / {oeg.number_of_edges()} edges"
        + reuse_note
        + "\n"
        + (report_text or "")
    )
    state._persist("ddg.dot", graph_to_dot(ddg, "DDG"))
    state._persist("oeg.dot", graph_to_dot(oeg, "OEG"))
    return state


def stage_search(state: PipelineState) -> PipelineState:
    """Stage 4: run the GGA to find the best fissions/fusions."""
    if state.targets is None or state.metadata is None:
        raise PipelineError("earlier stages have not run")
    # programmer-amended OEG edges (dep="USER" in the DOT file) become
    # additional precedence constraints for the search (§3.2.3)
    extra_precedence = []
    if state.oeg is not None:
        for u, v, dep in state.oeg.edges(data="dep"):
            if dep == "USER":
                extra_precedence.append((u, v))
    state.built = build_problem(
        state.program,
        state.metadata,
        state.targets,
        state.config.device,
        extra_precedence=extra_precedence,
        enable_fission=state.config.enable_fission,
    )
    params = state.config.ga_params or fast_params()
    store = state.config.store
    search_note = ""
    fell_back = False
    reused_result: Optional[SearchResult] = None
    seeds: List = []
    if store is not None:
        reused_result = stage_cache.load_search_result(
            store, state.built.problem, state.config.device, params
        )
        if reused_result is not None:
            state.reused["search"] = "result"
            search_note = "; result reused from store"
        else:
            seeds, fitness_loaded = stage_cache.load_warm_start(
                store, state.built.problem, state.config.device, params
            )
            if seeds or fitness_loaded:
                state.reused["search"] = (
                    f"warm-start:{len(seeds)} seeds, "
                    f"{fitness_loaded} cached evaluations"
                )
                search_note = (
                    f"; warm-started from store ({len(seeds)} seeds, "
                    f"{fitness_loaded} cached evaluations)"
                )
    if reused_result is not None:
        state.search = reused_result
    else:
        try:
            state.search = run_search(
                state.built.problem,
                state.config.device,
                params,
                seed_population=seeds or None,
                store=store,
            )
        except ReproError as exc:
            if not state.config.fail_soft:
                raise
            logger.error(
                "search failed (%s); falling back to the identity grouping", exc
            )
            state.search = SearchResult(
                best=singleton_grouping(state.built.problem),
                best_fitness=0.0,
                projected_time_s=0.0,
                history=[],
                generations_run=0,
                converged_at=0,
                avg_fissions_per_generation=0.0,
                evaluations=0,
            )
            fell_back = True
            search_note += (
                f"; search failed ({exc}), fell back to identity grouping"
            )
        if store is not None and not fell_back:
            stage_cache.save_search(
                store,
                state.built.problem,
                state.config.device,
                params,
                state.search,
                state.search.final_population,
            )
    result = state.search
    if state.built.analysis_failures:
        failed = ", ".join(sorted(state.built.analysis_failures))
        search_note += (
            f"; {len(state.built.analysis_failures)} launches "
            f"analyzed conservatively ({failed})"
        )
    if result.islands > 1:
        search_note += (
            f"; {result.islands} islands, "
            f"{result.migrations_received} migrants exchanged"
            + (
                f" ({result.migrations_dropped} dropped)"
                if result.migrations_dropped
                else ""
            )
        )
    if result.surrogate_skipped:
        search_note += (
            f"; surrogate pre-filter skipped {result.surrogate_skipped} "
            f"exact evaluations"
        )
    state.reports["search"] = (
        f"GGA: {result.generations_run} generations, "
        f"{result.evaluations} evaluations, converged at generation "
        f"{result.converged_at}; best projected fitness "
        f"{result.best_fitness:.2f} GFLOPS; "
        f"{result.fused_group_count} fused groups / "
        f"{result.new_kernel_count} new kernels; "
        f"avg fissions/generation {result.avg_fissions_per_generation:.3f}"
        + search_note
    )
    state._persist("search.txt", state.reports["search"])
    if telemetry_enabled() and state.config.workdir is not None:
        from ..search.fitness_cache import get_shared_cache

        Path(state.config.workdir).mkdir(parents=True, exist_ok=True)
        write_jsonl(
            str(Path(state.config.workdir) / "search_telemetry.jsonl"),
            search_telemetry_rows(
                result, cache_invalid=get_shared_cache().stats.invalid
            ),
        )
    return state


def _whole_program_verified(state: PipelineState) -> bool:
    """Run original vs transformed (forward + reversed block order)."""
    assert state.transform is not None
    before = run_program(state.program)
    after = run_program(state.transform.program)
    # second run with reversed block order exposes inter-block races
    after_reversed = run_program(state.transform.program, block_order="reverse")
    return outputs_allclose(before, after) and outputs_allclose(
        before, after_reversed
    )


def stage_codegen(state: PipelineState) -> PipelineState:
    """Stage 5: generate the new kernels and rewrite the host code.

    Per-group verification and ladder demotion happen inside
    :func:`~repro.pipeline.apply.materialize`; this stage additionally
    verifies the whole transformed program and — under ``fail_soft`` —
    falls back to the identity (no-fusion) program rather than raising
    when that last check fails.
    """
    if state.built is None or state.search is None or state.metadata is None:
        raise PipelineError("earlier stages have not run")
    verify_cfg = VerifyConfig.from_env()
    if not state.config.verify_groups:
        verify_cfg = replace(verify_cfg, enabled=False)
    store = state.config.store
    state.transform = materialize(
        state.program,
        state.built.problem,
        state.built.bindings,
        state.search.best,
        state.config.device,
        state.metadata.array_shapes,
        options=state.config.fusion_options(),
        tune_blocks=state.config.tune_blocks,
        verify_config=verify_cfg,
        store=store,
    )
    reused_groups = [
        v.kernel
        for v in state.transform.group_verdicts
        if v.cause == "reused from store"
    ]
    if reused_groups:
        state.reused["verify_groups"] = f"{len(reused_groups)} groups"
    reused_tuning = sum(1 for t in state.transform.tuning if t.reused)
    if reused_tuning:
        state.reused["tuning"] = f"{reused_tuning} blocks"
    state.baseline_projection = project_baseline(
        state.built.problem, state.config.device
    )
    codegen_note = ""
    if state.config.verify:
        program_key = store_keys.verified_program_key(
            unparse(state.program), unparse(state.transform.program)
        )
        if store is not None and stage_cache.program_previously_verified(
            store, program_key
        ):
            state.verified = True
            state.reused["verify_program"] = "verdict"
            codegen_note = "; verification reused from store"
        else:
            state.verified = _whole_program_verified(state)
            if state.verified and store is not None:
                stage_cache.record_verified_program(store, program_key)
        if not state.verified:
            if not state.config.fail_soft:
                raise PipelineError(
                    "transformed program output does not match the original"
                )
            logger.error(
                "whole-program verification failed; falling back to the "
                "identity (no-fusion) program"
            )
            demoted = [
                DemotionRecord(
                    launch.members,
                    "complex" if launch.fused.is_complex else "simple",
                    "none",
                    "whole-program verification mismatch",
                )
                for launch in state.transform.launches
                if launch.fused is not None
            ]
            fallback = materialize(
                state.program,
                state.built.problem,
                state.built.bindings,
                singleton_grouping(state.built.problem),
                state.config.device,
                state.metadata.array_shapes,
                options=state.config.fusion_options(),
                tune_blocks=False,
                verify_config=replace(verify_cfg, enabled=False),
            )
            fallback.demotions = state.transform.demotions + demoted
            fallback.degraded_groups = state.transform.degraded_groups + [
                d.members for d in demoted
            ]
            state.transform = fallback
            codegen_note = "; fell back to identity program"
            state.verified = _whole_program_verified(state)
            if not state.verified:
                raise PipelineError(
                    "identity fallback program does not match the original "
                    "— the pipeline cannot produce a correct program"
                )
    state.transformed_projection = project_transformed(
        state.transform, state.built.problem, state.config.device
    )
    validation_note = _model_validation(state)
    tuned = [t for t in state.transform.tuning if t.changed]
    demotions = state.transform.demotions
    registry = get_registry()
    for d in demotions:
        registry.inc(
            "demotions_total", **{"from": d.from_level, "to": d.to_level}
        )
    demotion_note = ""
    if demotions:
        demotion_note = f"; {len(demotions)} demotions:\n" + "\n".join(
            "  " + d.describe() for d in demotions
        )
    state.reports["codegen"] = (
        f"generated {state.transform.new_kernel_count} kernels "
        f"({len(state.transform.fused_kernels)} fused, "
        f"{len(state.transform.degraded_groups)} degraded groups); "
        f"tuned {len(tuned)} / {len(state.transform.tuning)} blocks; "
        f"projected speedup {state.speedup:.3f}x"
        + ("; output verified" if state.verified else "")
        + codegen_note
        + demotion_note
        + validation_note
    )
    state._persist("transformed.cu", unparse(state.transform.program))
    state._persist("codegen.txt", state.reports["codegen"])
    if telemetry_enabled() and state.config.workdir is not None:
        telemetry_path = Path(state.config.workdir) / "search_telemetry.jsonl"
        if telemetry_path.exists():
            write_jsonl(
                str(telemetry_path),
                [
                    {
                        "type": "codegen_summary",
                        "demotions": len(demotions),
                        "degraded_groups": len(state.transform.degraded_groups),
                        "verified": state.verified,
                        "speedup": state.speedup,
                    }
                ],
                append=True,
            )
    return state


def _model_validation(state: PipelineState) -> str:
    """Compare interpreter counters against the perf model's projections.

    Re-runs the transformed program with hardware-ish counters enabled and
    lines every launch up with its :class:`KernelProjection`.  Gated on
    telemetry + a working directory (the extra interpreted run is not free,
    so library users and benchmarks that set neither never pay for it).
    Returns a one-line note for the codegen report ("" when skipped).
    """
    if not (telemetry_enabled() and state.config.workdir is not None):
        return ""
    assert state.transform is not None and state.transformed_projection is not None
    try:
        counted = run_program(state.transform.program, collect_counters=True)
    except ReproError as exc:  # pragma: no cover - counted rerun is best effort
        logger.warning("model-validation run failed: %s", exc)
        return ""
    report = validate_model(
        counted.launches, state.transformed_projection.kernels
    )
    report.write_json(str(Path(state.config.workdir) / "model_validation.json"))
    state._persist("model_validation.txt", report.summary() + "\n")
    registry = get_registry()
    registry.inc("model_validation_kernels_total", len(report.kernels))
    ratio = report.aggregate_bytes_ratio
    if ratio is not None:
        registry.set_gauge("model_validation_bytes_ratio", ratio)
    return (
        f"; model validation: {len(report.kernels)} launches compared"
        + (f", projected/measured bytes {ratio:.2f}x" if ratio is not None else "")
    )


STAGE_FUNCTIONS = {
    "metadata": stage_metadata,
    "targets": stage_targets,
    "graphs": stage_graphs,
    "search": stage_search,
    "codegen": stage_codegen,
}

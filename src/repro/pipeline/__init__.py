"""End-to-end transformation pipeline: stages, framework, CLI."""

from ..reliability.degrade import DemotionRecord
from ..reliability.verify import GroupVerdict, VerifyConfig
from .apply import (
    GeneratedLaunch,
    TransformResult,
    materialize,
    project_baseline,
    project_transformed,
)
from .framework import Framework, transform_program
from .stages import (
    STAGES,
    PipelineConfig,
    PipelineState,
    stage_codegen,
    stage_graphs,
    stage_metadata,
    stage_search,
    stage_targets,
)

__all__ = [
    "Framework", "transform_program",
    "PipelineConfig", "PipelineState", "STAGES",
    "stage_metadata", "stage_targets", "stage_graphs",
    "stage_search", "stage_codegen",
    "materialize", "TransformResult", "GeneratedLaunch",
    "project_baseline", "project_transformed",
    "DemotionRecord", "GroupVerdict", "VerifyConfig",
]

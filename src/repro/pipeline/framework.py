"""The end-to-end transformation framework (§3).

:class:`Framework` drives the five stages and exposes the two operating
modes the paper describes:

* **automated transformation** — ``Framework(program, config).run()``
  executes every stage without interference;
* **programmer-guided transformation** — the programmer registers
  *intervention* callbacks that receive each stage's artifact and may amend
  it before the next stage consumes it, and/or runs the pipeline
  ``until``/``from_stage`` a chosen point (the command-line arguments of
  the paper's tool).

Example
-------
>>> fw = Framework(program, PipelineConfig(device=K20X))
>>> fw.intervene("targets", lambda state: my_fix_targets(state))
>>> state = fw.run()
>>> print(state.speedup)
"""

from __future__ import annotations

import logging
import time
from typing import Callable, Dict, List, Optional

from ..cudalite import ast_nodes as ast
from ..cudalite.parser import parse_program
from ..errors import PipelineError, ReproError
from ..observability.metrics import get_registry
from ..observability.tracing import span
from .stages import (
    STAGE_FUNCTIONS,
    STAGES,
    PipelineConfig,
    PipelineState,
)

logger = logging.getLogger(__name__)

Intervention = Callable[[PipelineState], Optional[PipelineState]]


class Framework:
    """Drives an end-to-end kernel fission/fusion transformation."""

    def __init__(
        self,
        program: "ast.Program | str",
        config: Optional[PipelineConfig] = None,
    ) -> None:
        if isinstance(program, str):
            program = parse_program(program)
        self.state = PipelineState(program=program, config=config or PipelineConfig())
        self._interventions: Dict[str, List[Intervention]] = {s: [] for s in STAGES}
        self._completed: List[str] = []
        #: wall time per completed stage, in execution order (telemetry)
        self.stage_times: Dict[str, float] = {}

    # ------------------------------------------------------------ intervention

    def intervene(self, stage: str, callback: Intervention) -> "Framework":
        """Register a programmer intervention to run *after* ``stage``.

        The callback receives the pipeline state and may mutate it (or
        return a replacement).  Returns ``self`` for chaining.
        """
        if stage not in STAGES:
            raise PipelineError(f"unknown stage {stage!r}; stages: {STAGES}")
        self._interventions[stage].append(callback)
        return self

    # -------------------------------------------------------------- execution

    def run_stage(self, stage: str) -> PipelineState:
        """Run one stage (its prerequisites must have run already).

        A :class:`ReproError` escaping a stage is tagged with the stage
        name (``exc.stage``) so front ends can report where the pipeline
        failed without parsing messages.
        """
        if stage not in STAGES:
            raise PipelineError(f"unknown stage {stage!r}; stages: {STAGES}")
        logger.info("running stage %s", stage, extra={"stage": stage})
        start = time.perf_counter()
        try:
            with span(f"stage:{stage}"):
                self.state = STAGE_FUNCTIONS[stage](self.state)
        except ReproError as exc:
            if exc.stage is None:
                exc.stage = stage
            logger.error(
                "stage %s failed: %s", stage, exc, extra={"stage": stage}
            )
            self._record_stage_time(stage, time.perf_counter() - start, failed=True)
            raise
        for callback in self._interventions[stage]:
            replacement = callback(self.state)
            if replacement is not None:
                self.state = replacement
        if stage not in self._completed:
            self._completed.append(stage)
        self._record_stage_time(stage, time.perf_counter() - start)
        logger.info(
            "stage %s complete: %s",
            stage,
            self.state.reports.get(stage, ""),
            extra={"stage": stage},
        )
        return self.state

    def _record_stage_time(
        self, stage: str, elapsed: float, failed: bool = False
    ) -> None:
        self.stage_times[stage] = self.stage_times.get(stage, 0.0) + elapsed
        registry = get_registry()
        registry.observe("pipeline_stage_seconds", elapsed, stage=stage)
        registry.inc(
            "pipeline_stage_runs_total",
            stage=stage,
            outcome="failed" if failed else "ok",
        )

    def run(
        self,
        until: Optional[str] = None,
        from_stage: Optional[str] = None,
    ) -> PipelineState:
        """Run the pipeline, optionally bounded (`--until` / `--from`)."""
        start = STAGES.index(from_stage) if from_stage else 0
        stop = STAGES.index(until) + 1 if until else len(STAGES)
        if start > 0 and STAGES[start - 1] not in self._completed:
            raise PipelineError(
                f"cannot start from {STAGES[start]!r}: stage "
                f"{STAGES[start - 1]!r} has not completed"
            )
        for stage in STAGES[start:stop]:
            self.run_stage(stage)
        return self.state

    # --------------------------------------------------------------- reporting

    def report(self) -> str:
        """Aggregate report of all completed stages."""
        lines = []
        for stage in STAGES:
            if stage in self.state.reports:
                lines.append(f"== {stage} ==")
                lines.append(self.state.reports[stage])
        return "\n".join(lines)


def transform_program(
    program: "ast.Program | str",
    config: Optional[PipelineConfig] = None,
) -> PipelineState:
    """One-call automated transformation (parse → ... → generated program)."""
    return Framework(program, config).run()

"""Canonical stencil-kernel model (the code generator's working form).

The paper's code generator supports the canonical GPU-stencil pattern
(horizontal thread mapping, optional sequential vertical loop — §7 "Data
access"):

.. code-block:: c

    __global__ void K(...) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;   // index decls
        int j = blockIdx.y * blockDim.y + threadIdx.y;
        double c = 0.5;                                   // scalar pre-stmts
        if (i >= 1 && i < nx - 1 && ...) {                // optional guard
            for (int k = 0; k < nz; k++) {                // optional k-loop
                <assignments / simple ifs / nested fors>
            }
        }
    }

:func:`extract_model` recognizes this shape and produces a
:class:`CanonicalKernel`; kernels that do not match are transformed with the
*no-fusion* strategy (copied verbatim), mirroring the paper's restrictions.

The module also provides the identifier-substitution rewriter used by every
code-generating transformation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..cudalite import ast_nodes as ast
from ..analysis.accesses import find_global_index_vars

# ------------------------------------------------------------------ renaming


def rename_expr(expr: ast.Expr, mapping: Mapping[str, str]) -> ast.Expr:
    """Return ``expr`` with identifiers renamed according to ``mapping``."""
    if isinstance(expr, ast.Ident):
        new = mapping.get(expr.name)
        return ast.Ident(new) if new is not None else expr
    if isinstance(expr, ast.Member):
        return ast.Member(rename_expr(expr.obj, mapping), expr.field_name)
    if isinstance(expr, ast.Index):
        return ast.Index(
            rename_expr(expr.base, mapping),
            tuple(rename_expr(i, mapping) for i in expr.indices),
        )
    if isinstance(expr, ast.Call):
        return ast.Call(expr.func, tuple(rename_expr(a, mapping) for a in expr.args))
    if isinstance(expr, ast.Unary):
        return ast.Unary(expr.op, rename_expr(expr.operand, mapping))
    if isinstance(expr, ast.Binary):
        return ast.Binary(
            expr.op, rename_expr(expr.lhs, mapping), rename_expr(expr.rhs, mapping)
        )
    if isinstance(expr, ast.Ternary):
        return ast.Ternary(
            rename_expr(expr.cond, mapping),
            rename_expr(expr.then, mapping),
            rename_expr(expr.els, mapping),
        )
    return expr


def rename_stmt(stmt: ast.Stmt, mapping: Mapping[str, str]) -> ast.Stmt:
    """Return ``stmt`` with identifiers renamed (declarations included)."""
    if isinstance(stmt, ast.VarDecl):
        return ast.VarDecl(
            stmt.type,
            mapping.get(stmt.name, stmt.name),
            rename_expr(stmt.init, mapping) if stmt.init is not None else None,
            tuple(rename_expr(d, mapping) for d in stmt.array_dims),
            stmt.is_shared,
        )
    if isinstance(stmt, ast.Assign):
        return ast.Assign(
            rename_expr(stmt.target, mapping),
            stmt.op,
            rename_expr(stmt.value, mapping),
        )
    if isinstance(stmt, ast.ExprStmt):
        return ast.ExprStmt(rename_expr(stmt.expr, mapping))
    if isinstance(stmt, ast.SyncThreads):
        return stmt
    if isinstance(stmt, ast.If):
        return ast.If(
            rename_expr(stmt.cond, mapping),
            rename_block(stmt.then, mapping),
            rename_block(stmt.els, mapping) if stmt.els is not None else None,
        )
    if isinstance(stmt, ast.For):
        return ast.For(
            mapping.get(stmt.var, stmt.var),
            rename_expr(stmt.start, mapping),
            stmt.cmp,
            rename_expr(stmt.bound, mapping),
            rename_expr(stmt.step, mapping),
            rename_block(stmt.body, mapping),
        )
    if isinstance(stmt, ast.While):
        return ast.While(rename_expr(stmt.cond, mapping), rename_block(stmt.body, mapping))
    if isinstance(stmt, ast.Return):
        return ast.Return(
            rename_expr(stmt.value, mapping) if stmt.value is not None else None
        )
    if isinstance(stmt, ast.Block):
        return rename_block(stmt, mapping)
    return stmt


def rename_block(block: ast.Block, mapping: Mapping[str, str]) -> ast.Block:
    return ast.Block(tuple(rename_stmt(s, mapping) for s in block.stmts))


def substitute_expr(
    expr: ast.Expr, replacements: Mapping[str, ast.Expr]
) -> ast.Expr:
    """Replace identifier *uses* by arbitrary expressions."""
    if isinstance(expr, ast.Ident):
        return replacements.get(expr.name, expr)
    if isinstance(expr, ast.Member):
        return expr
    if isinstance(expr, ast.Index):
        return ast.Index(
            substitute_expr(expr.base, replacements),
            tuple(substitute_expr(i, replacements) for i in expr.indices),
        )
    if isinstance(expr, ast.Call):
        return ast.Call(
            expr.func, tuple(substitute_expr(a, replacements) for a in expr.args)
        )
    if isinstance(expr, ast.Unary):
        return ast.Unary(expr.op, substitute_expr(expr.operand, replacements))
    if isinstance(expr, ast.Binary):
        return ast.Binary(
            expr.op,
            substitute_expr(expr.lhs, replacements),
            substitute_expr(expr.rhs, replacements),
        )
    if isinstance(expr, ast.Ternary):
        return ast.Ternary(
            substitute_expr(expr.cond, replacements),
            substitute_expr(expr.then, replacements),
            substitute_expr(expr.els, replacements),
        )
    return expr


# ------------------------------------------------------------ canonical model


@dataclass
class CanonicalKernel:
    """The canonical stencil form the fusion generator understands."""

    name: str
    kernel: ast.KernelDef
    #: axis -> index variable name (e.g. {'x': 'i', 'y': 'j'}).
    index_vars: Dict[str, str]
    #: Index declarations in source order.
    index_decls: List[ast.VarDecl] = field(default_factory=list)
    #: Other pre-guard scalar declarations (coefficients etc.).
    pre_stmts: List[ast.Stmt] = field(default_factory=list)
    #: The guard condition (None when the kernel body is unguarded).
    guard: Optional[ast.Expr] = None
    #: The single outer sequential loop, if present.
    k_loop: Optional[ast.For] = None
    #: Statements in the innermost canonical region.
    body: List[ast.Stmt] = field(default_factory=list)
    #: True when ``body`` still contains nested loops (deep nests, §6.2.2).
    has_deep_loops: bool = False

    @property
    def axis_of(self) -> Dict[str, str]:
        """index variable name -> axis."""
        return {v: a for a, v in self.index_vars.items()}


def extract_model(kernel: ast.KernelDef) -> Optional[CanonicalKernel]:
    """Extract the canonical form, or None if the kernel doesn't match."""
    index_vars_by_name = find_global_index_vars(kernel)
    # invert: one variable per axis (first declaration wins)
    index_vars: Dict[str, str] = {}
    for var, axis in index_vars_by_name.items():
        index_vars.setdefault(axis, var)

    stmts = list(kernel.body.stmts)
    index_decls: List[ast.VarDecl] = []
    pre_stmts: List[ast.Stmt] = []
    pos = 0
    chosen = set(index_vars.values())
    while pos < len(stmts) and isinstance(stmts[pos], ast.VarDecl):
        decl = stmts[pos]
        if decl.name in index_vars_by_name and decl.name in chosen:
            index_decls.append(decl)
        elif decl.is_shared or decl.array_dims:
            return None  # pre-existing shared tiles: not canonical for fusion
        else:
            pre_stmts.append(decl)
        pos += 1
    rest = stmts[pos:]
    if not rest:
        return None

    guard: Optional[ast.Expr] = None
    region: Sequence[ast.Stmt] = rest
    if len(rest) == 1 and isinstance(rest[0], ast.If) and rest[0].els is None:
        guard = rest[0].cond
        region = rest[0].then.stmts

    k_loop: Optional[ast.For] = None
    body: Sequence[ast.Stmt]
    if len(region) == 1 and isinstance(region[0], ast.For):
        k_loop = region[0]
        body = k_loop.body.stmts
    else:
        body = region

    # canonical bodies contain assignments, simple guarded assignments and
    # (deep) nested loops; anything else bails out
    deep = False
    for stmt in _walk_region(body):
        if isinstance(stmt, ast.For):
            deep = True
        elif isinstance(stmt, (ast.Assign, ast.If, ast.VarDecl, ast.Block)):
            continue
        elif isinstance(stmt, (ast.SyncThreads, ast.While, ast.Return, ast.ExprStmt, ast.Launch)):
            return None
    return CanonicalKernel(
        name=kernel.name,
        kernel=kernel,
        index_vars=index_vars,
        index_decls=index_decls,
        pre_stmts=pre_stmts,
        guard=guard,
        k_loop=k_loop,
        body=list(body),
        has_deep_loops=deep,
    )


def _walk_region(stmts: Sequence[ast.Stmt]):
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, ast.If):
            yield from _walk_region(stmt.then.stmts)
            if stmt.els is not None:
                yield from _walk_region(stmt.els.stmts)
        elif isinstance(stmt, ast.For):
            yield from _walk_region(stmt.body.stmts)
        elif isinstance(stmt, ast.Block):
            yield from _walk_region(stmt.stmts)


def local_names(kernel: ast.KernelDef) -> List[str]:
    """All names declared inside the kernel body (including loop vars)."""
    names: List[str] = []
    for node in kernel.body.walk():
        if isinstance(node, ast.VarDecl):
            names.append(node.name)
        elif isinstance(node, ast.For):
            names.append(node.var)
    return names

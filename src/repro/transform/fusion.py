"""Kernel fusion code generation (§5.5).

Three cases, exactly as the paper structures them:

* **No fusion** — the kernel is copied verbatim.
* **Simple fusion** — constituents have no precedence among them.  Bodies
  are aggregated into one kernel; locality-target arrays are staged into
  shared-memory tiles; code segments are aligned to common loop bounds with
  conditional statements inserted for constituents with smaller iteration
  spaces.
* **Complex fusion** — at least one producer→consumer precedence exists
  inside the group.  Barriers order the waves, and the shared-memory
  coherence problem at block boundaries is solved with temporal blocking:
  the tile stages the array's *old* values (halo included), the producer
  recomputes the array over the extended tile region, and consumers read
  the tile after a barrier.

The generator reproduces the paper's known automated-codegen inefficiencies
as explicit, switchable behaviours (see :class:`FusionOptions`):
``merge_deep_loops=False`` emits deep-loop constituents as separate
sequential segments (lost reuse, §6.2.2/SCALE-LES), and
``one_sided_guards=False`` uses plain two-sided guards (extra divergence,
§6.2.2/HOMME).  The manual / programmer-guided modes flip these switches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..analysis.accesses import KernelAccesses, collect_accesses
from ..analysis.volume import LaunchVolume, estimate_volume, eval_scalar_expr
from ..cudalite import ast_nodes as ast
from ..cudalite import builders as b
from ..cudalite.unparser import unparse_expr
from ..errors import TransformError
from ..gpu.perfmodel import CodegenTraits, estimate_registers, tile_halo_factor
from .kernel_model import (
    CanonicalKernel,
    extract_model,
    local_names,
    rename_block,
    rename_expr,
    rename_stmt,
    substitute_expr,
)
from .shared_memory import (
    BX0,
    BY0,
    GLOBAL_X,
    GLOBAL_Y,
    TX,
    TY,
    TileSpec,
    extended_compute_stmts,
    geometry_decls,
    rewrite_reads_to_tile,
    staging_stmts,
)

UNIFIED_INDEX = {"x": "i", "y": "j", "z": "gz"}
UNIFIED_LOOP = "k"


@dataclass
class Constituent:
    """One original kernel invocation entering a fusion."""

    model: CanonicalKernel
    #: formal pointer parameter -> host array name
    array_binding: Dict[str, str]
    #: formal scalar parameter -> host-side argument expression
    scalar_binding: Dict[str, ast.Expr]
    #: formal scalar parameter -> actual value at the profiled launch
    scalar_values: Dict[str, float]
    grid: Tuple[int, int, int]
    block: Tuple[int, int, int]
    accesses: Optional[KernelAccesses] = None

    def __post_init__(self) -> None:
        if self.accesses is None:
            self.accesses = collect_accesses(self.model.kernel)

    @property
    def name(self) -> str:
        return self.model.name

    @property
    def extents(self) -> Tuple[int, int, int]:
        return (
            self.grid[0] * self.block[0],
            self.grid[1] * self.block[1],
            self.grid[2] * self.block[2],
        )

    def host_arrays_read(self) -> Set[str]:
        return {self.array_binding[a] for a in self.accesses.arrays_read}

    def host_arrays_written(self) -> Set[str]:
        return {self.array_binding[a] for a in self.accesses.arrays_written}


@dataclass
class FusionOptions:
    """Code-generation strategy switches."""

    #: Stage locality-target arrays into shared-memory tiles.
    stage_shared: bool = True
    #: Merge constituents with deep nested loops into the unified loop
    #: (False = the automated inefficiency; True = manual/guided quality).
    merge_deep_loops: bool = False
    #: Accumulate divergent iterations one-sided (manual strategy) instead
    #: of emitting two-sided guards.
    one_sided_guards: bool = False
    #: Apply temporal blocking for complex fusions.
    temporal_blocking: bool = True
    #: Maximum producer/consumer wave depth inside one fused kernel.
    max_waves: int = 2
    #: Shared-memory budget for tiles (bytes); None = unchecked here.
    smem_limit: Optional[int] = None
    #: Divergence penalty per extra distinct guard (two-sided vs one-sided).
    two_sided_cost: float = 0.03
    one_sided_cost: float = 0.015


@dataclass
class FusedKernel:
    """A generated kernel plus everything the host rewrite needs."""

    kernel: ast.KernelDef
    #: host array name per pointer parameter, in parameter order
    pointer_args: Tuple[str, ...]
    #: host expression per scalar parameter, in parameter order
    scalar_args: Tuple[ast.Expr, ...]
    grid: Tuple[int, int, int]
    block: Tuple[int, int, int]
    traits: CodegenTraits
    volume: LaunchVolume
    constituents: Tuple[str, ...]
    is_complex: bool
    tiles: Tuple[TileSpec, ...] = ()
    #: scalar argument *values* per scalar parameter, in parameter order
    #: (lets the verification gate launch the kernel without host context)
    scalar_values: Tuple[float, ...] = ()


# --------------------------------------------------------------------- helpers


def _loop_signature(
    c: Constituent,
) -> Optional[Tuple[int, int, int]]:
    """(start, exclusive bound, step) of the constituent's k-loop, evaluated."""
    loop = c.model.k_loop
    if loop is None:
        return None
    start = eval_scalar_expr(loop.start, c.scalar_values)
    bound = eval_scalar_expr(loop.bound, c.scalar_values)
    step = eval_scalar_expr(loop.step, c.scalar_values)
    if start is None or bound is None or not step:
        raise TransformError(
            f"kernel {c.name!r}: loop bounds are not metadata-evaluable"
        )
    end = int(bound) + 1 if loop.cmp == "<=" else int(bound)
    return (int(start), end, int(step))


def _guard_with_extents(
    c: Constituent,
    mapping: Mapping[str, str],
    fused_extents: Tuple[int, int, int],
) -> Optional[ast.Expr]:
    """Constituent guard, renamed, plus extent clamps for the fused lattice."""
    conds: List[ast.Expr] = []
    if c.model.guard is not None:
        conds.append(rename_expr(c.model.guard, mapping))
    axis_order = ("x", "y", "z")
    for axis_idx, axis in enumerate(axis_order):
        var = c.model.index_vars.get(axis)
        if var is None:
            continue
        if fused_extents[axis_idx] > c.extents[axis_idx]:
            conds.append(b.lt(UNIFIED_INDEX[axis], c.extents[axis_idx]))
    if not conds:
        return None
    return b.logical_and(*conds)


def _wave_depths(
    count: int, edges: Sequence[Tuple[int, int, str]]
) -> List[int]:
    """Longest-path wave index per constituent under internal precedence."""
    depth = [0] * count
    for _ in range(count):
        changed = False
        for producer, consumer, _ in edges:
            if depth[consumer] < depth[producer] + 1:
                depth[consumer] = depth[producer] + 1
                changed = True
        if not changed:
            break
    return depth


def _check_wave_monotonicity(
    constituents: Sequence[Constituent], waves: Sequence[int]
) -> None:
    """Every dependence pair (a before b) must satisfy wave(a) <= wave(b).

    Within one wave, members are emitted in original order, so equal waves
    are always safe; a *decreasing* wave across a dependence would reorder
    the operations and change program semantics.
    """
    last_writer: Dict[str, int] = {}
    readers: Dict[str, List[int]] = {}
    for ci, c in enumerate(constituents):
        for array in sorted(c.host_arrays_read()):
            writer = last_writer.get(array)
            if writer is not None and waves[writer] > waves[ci]:
                raise TransformError(
                    f"wave ordering would hoist {c.name!r} above its "
                    f"producer on {array!r}: fusion infeasible"
                )
            readers.setdefault(array, []).append(ci)
        for array in sorted(c.host_arrays_written()):
            for reader in readers.get(array, []):
                if reader != ci and waves[reader] > waves[ci]:
                    raise TransformError(
                        f"wave ordering would move the write of {array!r} by "
                        f"{c.name!r} above one of its readers: fusion "
                        "infeasible"
                    )
            writer = last_writer.get(array)
            if writer is not None and waves[writer] > waves[ci]:
                raise TransformError(
                    f"wave ordering breaks the write-after-write order on "
                    f"{array!r}: fusion infeasible"
                )
            last_writer[array] = ci


def _read_radius(
    c: Constituent, host_array: str
) -> int:
    """Max |offset| with which the constituent reads ``host_array``."""
    axis_vars = tuple(c.model.index_vars.values())
    radius = 0
    for formal, host in c.array_binding.items():
        if host != host_array:
            continue
        info = c.accesses.arrays.get(formal)
        if info is None:
            continue
        radius = max(radius, info.halo_radius(axis_vars))
    return radius


def _k_read_offsets(c: Constituent, host_array: str) -> Set[int]:
    """z/loop-dimension read offsets of a (3-D) array."""
    loop_vars = {l.var for l in c.accesses.loops}
    offsets: Set[int] = set()
    for formal, host in c.array_binding.items():
        if host != host_array:
            continue
        info = c.accesses.arrays.get(formal)
        if info is None:
            continue
        for access in info.reads:
            if len(access) >= 3:
                base, off = access[2]
                if base in loop_vars:
                    offsets.add(off)
    return offsets


# ----------------------------------------------------------------------- fuse


def fuse_kernels(
    name: str,
    constituents: Sequence[Constituent],
    block: Tuple[int, int, int],
    array_shapes: Mapping[str, Tuple[int, ...]],
    precedence: Sequence[Tuple[int, int, str]] = (),
    options: Optional[FusionOptions] = None,
) -> FusedKernel:
    """Fuse ``constituents`` into one kernel named ``name``.

    Parameters
    ----------
    block:
        Thread-block shape of the generated kernel (tile extents are baked
        in, so the host must launch with exactly this shape).
    array_shapes:
        Logical shapes of the host arrays (staging bounds).
    precedence:
        Internal OEG edges as (producer index, consumer index, host array).
    """
    options = options or FusionOptions()
    if not constituents:
        raise TransformError("cannot fuse an empty group")
    for c in constituents:
        if c.model is None:
            raise TransformError("non-canonical constituent")

    fused_extents = (
        max(c.extents[0] for c in constituents),
        max(c.extents[1] for c in constituents),
        max(c.extents[2] for c in constituents),
    )

    # ---------------------------------------------------------- parameter plan
    pointer_written: Set[str] = set()
    pointer_all: Set[str] = set()
    for c in constituents:
        pointer_all |= set(c.array_binding.values())
        pointer_written |= c.host_arrays_written()
    pointer_args = tuple(sorted(pointer_all))

    scalar_names: Dict[str, str] = {}  # host-expr text -> fused param name
    scalar_params: List[ast.Param] = []
    scalar_args: List[ast.Expr] = []
    fused_scalar_values: Dict[str, float] = {}
    used_names: Set[str] = set(pointer_args) | set(UNIFIED_INDEX.values()) | {
        UNIFIED_LOOP, TX, TY, BX0, BY0,
    }
    per_const_mapping: List[Dict[str, str]] = []
    for ci, c in enumerate(constituents):
        mapping: Dict[str, str] = dict(c.array_binding)
        for param in c.model.kernel.scalar_params():
            host_expr = c.scalar_binding[param.name]
            # share a fused parameter only for same-named params bound to
            # the same host value (readability: nx stays nx even when the
            # launch happens to pass nx == ny)
            key = (param.name, unparse_expr(host_expr))
            if key not in scalar_names:
                candidate = param.name
                if candidate in used_names and scalar_names.get(key) != candidate:
                    candidate = f"{param.name}_{ci}"
                while candidate in used_names:
                    candidate += "_"
                scalar_names[key] = candidate
                used_names.add(candidate)
                scalar_params.append(ast.Param(param.type, candidate))
                scalar_args.append(host_expr)
                fused_scalar_values[candidate] = c.scalar_values[param.name]
            mapping[param.name] = scalar_names[key]
        for axis, var in c.model.index_vars.items():
            mapping[var] = UNIFIED_INDEX[axis]
        for local in local_names(c.model.kernel):
            if local not in mapping:
                mapping[local] = f"{local}_k{ci}"
        per_const_mapping.append(mapping)

    # ------------------------------------------------------------ segmentation
    sigs: List[Optional[Tuple[int, int, int]]] = []
    mergeable: List[bool] = []
    for c in constituents:
        try:
            sig = _loop_signature(c)
            ok = not c.model.has_deep_loops or options.merge_deep_loops
        except TransformError:
            sig = None
            ok = False  # un-evaluable loop bounds: emit as a solo segment
        sigs.append(sig)
        if sig is not None and sig[2] != 1:
            ok = False  # non-unit steps are not merged
        mergeable.append(ok)

    loop_members = [i for i, c in enumerate(constituents) if mergeable[i] and sigs[i]]
    flat_members = [
        i
        for i, c in enumerate(constituents)
        if mergeable[i] and not sigs[i] and c.model.k_loop is None
    ]
    solo_members = [i for i in range(len(constituents)) if not mergeable[i]]

    segments: List[Tuple[str, List[int]]] = []
    if flat_members:
        segments.append(("flat", flat_members))
    if loop_members:
        segments.append(("loop", loop_members))
    for i in solo_members:
        segments.append(("solo", [i]))
    # keep deterministic execution order: sort segments by first member index
    segments.sort(key=lambda s: min(s[1]))

    member_segment: Dict[int, int] = {}
    for seg_idx, (_, members) in enumerate(segments):
        for m in members:
            member_segment[m] = seg_idx

    # write-after-read with a halo is unrealizable inside one kernel: a
    # faster block could overwrite neighbours before this block reads them
    first_writer: Dict[str, int] = {}
    for ci, c in enumerate(constituents):
        for host in c.host_arrays_written():
            first_writer.setdefault(host, ci)
    for ci, c in enumerate(constituents):
        for host in c.host_arrays_read():
            radius = _read_radius(c, host)
            writer = first_writer.get(host)
            if radius > 0 and writer is not None and writer > ci:
                raise TransformError(
                    f"{c.name!r} reads {host!r} with halo radius {radius} "
                    f"before {constituents[writer].name!r} overwrites it: "
                    "fusion infeasible (inter-block WAR hazard)"
                )

    # precedence: radius-0 consumers flow through global memory (the same
    # thread wrote the value — no tile, no barrier); radius > 0 consumers
    # need temporal blocking
    raw_arrays: Dict[str, Tuple[int, List[int]]] = {}
    halo_edges: List[Tuple[int, int, str]] = []
    passthrough: Set[str] = set()
    for producer, consumer, array in precedence:
        radius = _read_radius(constituents[consumer], array)
        same_segment = member_segment[producer] == member_segment[consumer]
        if radius == 0:
            passthrough.add(array)
            continue
        if not same_segment:
            raise TransformError(
                f"cross-segment producer/consumer on {array!r} with "
                f"halo radius {radius}: fusion infeasible"
            )
        if not options.temporal_blocking:
            raise TransformError(
                "complex fusion with halo requires temporal blocking"
            )
        k_offs = _k_read_offsets(constituents[consumer], array)
        if any(off != 0 for off in k_offs):
            raise TransformError(
                f"consumer reads {array!r} at a vertical offset: "
                "temporal blocking tile holds the current plane only"
            )
        entry = raw_arrays.setdefault(array, (producer, []))
        if entry[0] != producer:
            raise TransformError(
                f"array {array!r} produced by two constituents in one fusion"
            )
        # the tile stages the array's pre-kernel values once per iteration;
        # any other in-group writer (even one the producer fully overwrites
        # inside its guard) leaves the tile stale at guard-boundary cells,
        # where the sequential program keeps that writer's value
        other_writers = sorted(
            other.name
            for ci, other in enumerate(constituents)
            if ci != producer and array in other.host_arrays_written()
        )
        if other_writers:
            raise TransformError(
                f"temporal-blocked array {array!r} is also written by "
                f"{other_writers} inside the fusion: the staged tile cannot "
                "observe those writes: infeasible"
            )
        raw_arrays[array][1].append(consumer)
        halo_edges.append((producer, consumer, array))
        # the producer's extended compute re-evaluates its statements at
        # *halo* sites, so every array it reads is effectively read with a
        # halo: none of them may be written by any member of this group
        # (before: the halo cells would be stale across blocks; after: an
        # inter-block WAR hazard)
        producer_reads = constituents[producer].host_arrays_read()
        for ci, other in enumerate(constituents):
            if ci == producer:
                continue
            clobbered = producer_reads & other.host_arrays_written()
            if clobbered:
                raise TransformError(
                    f"temporal-blocking producer {constituents[producer].name!r} "
                    f"reads {sorted(clobbered)} which {other.name!r} writes "
                    "inside the fusion: infeasible"
                )

    waves = _wave_depths(len(constituents), halo_edges)
    if max(waves, default=0) + 1 > options.max_waves:
        raise TransformError(
            f"internal precedence depth {max(waves) + 1} exceeds "
            f"max_waves={options.max_waves}"
        )
    # wave assignment reorders emission; it must stay consistent with EVERY
    # dependence among the members (a halo consumer demoted to a later wave
    # must not jump over a member it has a WAW/WAR/RAW relation with)
    _check_wave_monotonicity(constituents, waves)
    is_complex = bool(halo_edges)

    # ------------------------------------------------------------- tile plan
    # locality targets: arrays read by >= 2 constituents of a merged segment,
    # plus all internal-RAW arrays.
    tiles_by_segment: Dict[int, Dict[str, TileSpec]] = {}
    segment_readers: Dict[Tuple[int, str], List[int]] = {}
    for seg_idx, (seg_kind, members) in enumerate(segments):
        if seg_kind == "solo" or not options.stage_shared:
            continue
        readers: Dict[str, List[int]] = {}
        seg_writes: Set[str] = set()
        for m in members:
            for host in constituents[m].host_arrays_read():
                readers.setdefault(host, []).append(m)
            seg_writes |= constituents[m].host_arrays_written()
        tiles: Dict[str, TileSpec] = {}
        for host, member_list in sorted(readers.items()):
            is_raw = host in raw_arrays and member_segment[raw_arrays[host][0]] == seg_idx
            if len(member_list) < 2 and not is_raw:
                continue
            if host in seg_writes and not is_raw:
                # written inside the segment without temporal blocking: a
                # plain tile would go stale — reads stay in global memory
                continue
            shape = array_shapes.get(host)
            if shape is None or len(shape) > 3:
                continue
            if len(shape) == 3 and seg_kind != "loop":
                continue  # cannot tile the vertical dim without a unified loop
            # every matching consumer contributes its radius
            radius = max(_read_radius(constituents[m], host) for m in member_list)
            k_offs: Set[int] = set()
            for m in member_list:
                k_offs |= _k_read_offsets(constituents[m], host)
            if any(off != 0 for off in k_offs):
                continue  # vertical-offset reads: leave in global memory
            tiled_dims = 1 if len(shape) == 1 else 2
            tiles[host] = TileSpec(
                array=host,
                tile_name=f"s_{host}",
                radius=radius,
                block=(block[0], block[1]),
                array_shape=tuple(shape),
                tiled_dims=tiled_dims,
            )
            segment_readers[(seg_idx, host)] = member_list
        tiles_by_segment[seg_idx] = tiles

    smem_total = sum(
        t.smem_bytes for tiles in tiles_by_segment.values() for t in tiles.values()
    )
    if options.smem_limit is not None and smem_total > options.smem_limit:
        raise TransformError(
            f"tiles need {smem_total} B shared memory "
            f"(limit {options.smem_limit} B)"
        )

    # --------------------------------------------------------------- code gen
    need_geometry = any(tiles_by_segment.get(s) for s in range(len(segments)))
    body: List[ast.Stmt] = []
    axis_used = {"x": False, "y": False, "z": False}
    for c in constituents:
        for axis in c.model.index_vars:
            axis_used[axis] = True
    for axis in ("x", "y", "z"):
        if axis_used[axis]:
            body.append(b.decl("int", UNIFIED_INDEX[axis], b.global_index(axis)))
    if need_geometry:
        body.extend(geometry_decls(need_2d=axis_used["y"]))
    # constituent pre-statements (coefficients etc.)
    for ci, c in enumerate(constituents):
        for stmt in c.model.pre_stmts:
            body.append(rename_stmt(stmt, per_const_mapping[ci]))
    # tile declarations
    all_tiles: List[TileSpec] = []
    for seg_idx in range(len(segments)):
        for tile in tiles_by_segment.get(seg_idx, {}).values():
            body.append(tile.declaration())
            all_tiles.append(tile)

    for seg_idx, (seg_kind, members) in enumerate(segments):
        tiles = tiles_by_segment.get(seg_idx, {})
        if seg_kind == "solo":
            body.extend(
                _emit_solo(constituents[members[0]], per_const_mapping[members[0]],
                           fused_extents)
            )
            continue
        body.extend(
            _emit_merged_segment(
                seg_kind,
                members,
                constituents,
                per_const_mapping,
                sigs,
                tiles,
                raw_arrays,
                waves,
                fused_extents,
                member_segment,
                seg_idx,
            )
        )

    pointer_params = tuple(
        ast.Param(
            ast.TypeSpec("double", is_pointer=True, is_const=host not in pointer_written),
            host,
        )
        for host in pointer_args
    )
    kernel = ast.KernelDef(
        name=name,
        params=pointer_params + tuple(scalar_params),
        body=ast.Block(tuple(body)),
    )

    grid = tuple(
        max(1, -(-fused_extents[axis] // max(1, block[axis]))) for axis in range(3)
    )

    traits, volume = _traits_and_volume(
        name,
        constituents,
        segments,
        tiles_by_segment,
        raw_arrays,
        block,
        grid,
        options,
        smem_total,
        passthrough,
        first_writer,
    )
    return FusedKernel(
        kernel=kernel,
        pointer_args=pointer_args,
        scalar_args=tuple(scalar_args),
        grid=grid,  # type: ignore[arg-type]
        block=block,
        traits=traits,
        volume=volume,
        constituents=tuple(c.name for c in constituents),
        is_complex=is_complex,
        tiles=tuple(all_tiles),
        scalar_values=tuple(
            fused_scalar_values[p.name] for p in scalar_params
        ),
    )


# ----------------------------------------------------------- segment emission


def _emit_solo(
    c: Constituent, mapping: Mapping[str, str], fused_extents
) -> List[ast.Stmt]:
    """A constituent emitted as its own sequential segment (no tiles)."""
    inner: List[ast.Stmt] = [rename_stmt(s, mapping) for s in c.model.body]
    if c.model.k_loop is not None:
        loop = c.model.k_loop
        inner = [
            ast.For(
                mapping.get(loop.var, loop.var),
                rename_expr(loop.start, mapping),
                loop.cmp,
                rename_expr(loop.bound, mapping),
                rename_expr(loop.step, mapping),
                ast.Block(tuple(inner)),
            )
        ]
    guard = _guard_with_extents(c, mapping, fused_extents)
    if guard is not None:
        return [b.if_(guard, inner)]
    return inner


def _emit_merged_segment(
    seg_kind: str,
    members: List[int],
    constituents: Sequence[Constituent],
    per_const_mapping: List[Dict[str, str]],
    sigs: List[Optional[Tuple[int, int, int]]],
    tiles: Dict[str, TileSpec],
    raw_arrays: Dict[str, Tuple[int, List[int]]],
    waves: List[int],
    fused_extents,
    member_segment: Dict[int, int],
    seg_idx: int,
) -> List[ast.Stmt]:
    """Emit a merged segment: staging + extended computes + guarded waves."""
    loop_var = UNIFIED_LOOP if seg_kind == "loop" else None

    # per-iteration statements
    iteration: List[ast.Stmt] = []
    for host in sorted(tiles):
        iteration.extend(staging_stmts(tiles[host], loop_var))

    # extended computes for internal-RAW arrays produced in this segment
    seg_raw = {
        host: (producer, consumers)
        for host, (producer, consumers) in raw_arrays.items()
        if member_segment.get(producer) == seg_idx and host in tiles
    }
    writeback: Dict[int, List[ast.Stmt]] = {}
    suppressed: Dict[int, Set[str]] = {}
    for host in sorted(seg_raw):
        producer, _ = seg_raw[host]
        tile = tiles[host]
        stmts, wb = _producer_extended_compute(
            constituents[producer],
            per_const_mapping[producer],
            host,
            tile,
            loop_var,
            fused_extents,
        )
        iteration.extend(stmts)
        writeback.setdefault(producer, []).extend(wb)
        suppressed.setdefault(producer, set()).add(host)

    # constituents ordered by wave then original order
    ordered = sorted(members, key=lambda m: (waves[m], m))
    previous_wave = waves[ordered[0]] if ordered else 0
    for m in ordered:
        c = constituents[m]
        mapping = per_const_mapping[m]
        if waves[m] != previous_wave:
            iteration.append(b.sync())
            previous_wave = waves[m]
        stmts = _constituent_iteration_stmts(
            c, mapping, tiles, suppressed.get(m, set()), loop_var
        )
        stmts = writeback.pop(m, []) + stmts
        guard = _guard_with_extents(c, mapping, fused_extents)
        if seg_kind == "loop":
            sig = sigs[m]
            assert sig is not None
            unified_start = min(s[0] for i in members if (s := sigs[i]) is not None)
            unified_end = max(s[1] for i in members if (s := sigs[i]) is not None)
            conds: List[ast.Expr] = []
            if sig[0] > unified_start:
                conds.append(b.ge(UNIFIED_LOOP, sig[0]))
            if sig[1] < unified_end:
                conds.append(b.lt(UNIFIED_LOOP, sig[1]))
            if conds:
                guard = b.logical_and(*( [guard] if guard is not None else [] ), *conds)
        if guard is not None:
            iteration.append(b.if_(guard, stmts))
        else:
            iteration.extend(stmts)

    if tiles:
        iteration.append(b.sync())  # WAR barrier before the next staging

    if seg_kind == "loop":
        unified_start = min(s[0] for i in members if (s := sigs[i]) is not None)
        unified_end = max(s[1] for i in members if (s := sigs[i]) is not None)
        return [b.for_(UNIFIED_LOOP, unified_start, unified_end, iteration)]
    return iteration


def _constituent_iteration_stmts(
    c: Constituent,
    mapping: Mapping[str, str],
    tiles: Dict[str, TileSpec],
    suppressed_arrays: Set[str],
    loop_var: Optional[str],
) -> List[ast.Stmt]:
    """The constituent's body, renamed, loop-var unified, tile-rewritten.

    Statements writing a temporal-blocked array are dropped (the extended
    compute already produced the values; the caller prepends the global
    writeback).
    """
    loop_mapping = dict(mapping)
    if c.model.k_loop is not None and loop_var is not None:
        loop_mapping[c.model.k_loop.var] = loop_var
    index_vars = [UNIFIED_INDEX["x"], UNIFIED_INDEX["y"]]

    def rewrite(expr: ast.Expr) -> ast.Expr:
        out = rename_expr(expr, loop_mapping)
        for tile in tiles.values():
            out = rewrite_reads_to_tile(out, tile, index_vars, loop_var)
        return out

    def emit(stmt: ast.Stmt) -> Optional[ast.Stmt]:
        if isinstance(stmt, ast.Assign):
            target = rename_expr(stmt.target, loop_mapping)
            if (
                isinstance(target, ast.Index)
                and isinstance(target.base, ast.Ident)
                and target.base.name in suppressed_arrays
            ):
                return None
            new_target: ast.Expr = target
            if isinstance(target, ast.Index):
                new_target = ast.Index(
                    target.base,
                    tuple(rewrite_index(ix) for ix in target.indices),
                )
            return ast.Assign(new_target, stmt.op, rewrite(stmt.value))
        if isinstance(stmt, ast.VarDecl):
            return ast.VarDecl(
                stmt.type,
                loop_mapping.get(stmt.name, stmt.name),
                rewrite(stmt.init) if stmt.init is not None else None,
                tuple(rename_expr(d, loop_mapping) for d in stmt.array_dims),
                stmt.is_shared,
            )
        if isinstance(stmt, ast.If):
            then = [s2 for s in stmt.then.stmts if (s2 := emit(s)) is not None]
            els = None
            if stmt.els is not None:
                els_list = [s2 for s in stmt.els.stmts if (s2 := emit(s)) is not None]
                els = ast.Block(tuple(els_list)) if els_list else None
            if not then and els is None:
                return None
            return ast.If(rewrite(stmt.cond), ast.Block(tuple(then)), els)
        if isinstance(stmt, ast.For):
            inner = [s2 for s in stmt.body.stmts if (s2 := emit(s)) is not None]
            if not inner:
                return None
            return ast.For(
                loop_mapping.get(stmt.var, stmt.var),
                rewrite(stmt.start),
                stmt.cmp,
                rewrite(stmt.bound),
                rewrite(stmt.step),
                ast.Block(tuple(inner)),
            )
        if isinstance(stmt, ast.Block):
            inner = [s2 for s in stmt.stmts if (s2 := emit(s)) is not None]
            return ast.Block(tuple(inner)) if inner else None
        return rename_stmt(stmt, loop_mapping)

    def rewrite_index(ix: ast.Expr) -> ast.Expr:
        # subscripts of the *written* array are plain index math (no tiles)
        return ix

    result: List[ast.Stmt] = []
    for stmt in c.model.body:
        emitted = emit(stmt)
        if emitted is not None:
            result.append(emitted)
    return result


def _producer_extended_compute(
    producer: Constituent,
    mapping: Mapping[str, str],
    host_array: str,
    tile: TileSpec,
    loop_var: Optional[str],
    fused_extents,
) -> Tuple[List[ast.Stmt], List[ast.Stmt]]:
    """Temporal blocking: recompute ``host_array`` over the extended tile.

    Returns (statements for the cooperative extended compute, global
    write-back statements to prepend to the producer's guarded body).
    """
    loop_mapping = dict(mapping)
    if producer.model.k_loop is not None and loop_var is not None:
        loop_mapping[producer.model.k_loop.var] = loop_var

    # producer statements that write the array, in renamed form
    producing: List[ast.Assign] = []
    scalar_stmts: List[ast.Stmt] = []
    for stmt in producer.model.body:
        if isinstance(stmt, ast.VarDecl) and not stmt.is_shared:
            scalar_stmts.append(rename_stmt(stmt, loop_mapping))
        elif isinstance(stmt, ast.Assign):
            renamed = rename_stmt(stmt, loop_mapping)
            assert isinstance(renamed, ast.Assign)
            target = renamed.target
            if (
                isinstance(target, ast.Index)
                and isinstance(target.base, ast.Ident)
                and target.base.name == host_array
            ):
                producing.append(renamed)
            elif isinstance(renamed.target, ast.Ident):
                scalar_stmts.append(renamed)
    if not producing:
        raise TransformError(
            f"no producing statement found for {host_array!r} in "
            f"{producer.name!r}"
        )

    guard = producer.model.guard
    renamed_guard = rename_expr(guard, loop_mapping) if guard is not None else None

    ix, jy = UNIFIED_INDEX["x"], UNIFIED_INDEX["y"]

    def rhs_builder(gx: ast.Expr, gy: Optional[ast.Expr]) -> List[ast.Stmt]:
        subs: Dict[str, ast.Expr] = {ix: gx}
        if gy is not None:
            subs[jy] = gy
        stmts: List[ast.Stmt] = []
        halo_rename: Dict[str, str] = {}
        for stmt in scalar_stmts:
            if isinstance(stmt, ast.VarDecl):
                halo_rename[stmt.name] = stmt.name + "_h"
                init = stmt.init
                if init is not None:
                    init = substitute_expr(rename_expr(init, halo_rename), subs)
                stmts.append(
                    ast.VarDecl(stmt.type, stmt.name + "_h", init, (), False)
                )
            elif isinstance(stmt, ast.Assign) and isinstance(stmt.target, ast.Ident):
                halo_rename[stmt.target.name] = stmt.target.name + "_h"
                stmts.append(
                    ast.Assign(
                        ast.Ident(stmt.target.name + "_h"),
                        stmt.op,
                        substitute_expr(
                            rename_expr(stmt.value, halo_rename), subs
                        ),
                    )
                )
        for assign in producing:
            value = substitute_expr(rename_expr(assign.value, halo_rename), subs)
            tile_target_idx: List[ast.Expr] = [b.ident("hx")]
            if tile.tiled_dims >= 2:
                tile_target_idx.append(b.ident("hy"))
            stmts.append(
                ast.Assign(
                    ast.Index(b.ident(tile.tile_name), tuple(tile_target_idx)),
                    assign.op,
                    value,
                )
            )
        return stmts

    halo_guard = None
    if renamed_guard is not None:
        subs = {ix: b.ident(GLOBAL_X)}
        if tile.tiled_dims >= 2:
            subs[jy] = b.ident(GLOBAL_Y)
        halo_guard = substitute_expr(renamed_guard, subs)

    extended = extended_compute_stmts(tile, halo_guard, rhs_builder, loop_var)

    # global write-back of the thread's own site
    last_target = producing[-1].target
    tile_read_idx: List[ast.Expr] = [b.add(b.ident(TX), tile.radius)]
    if tile.tiled_dims >= 2:
        tile_read_idx.append(b.add(b.ident(TY), tile.radius))
    writeback = [
        ast.Assign(
            last_target,
            "=",
            ast.Index(b.ident(tile.tile_name), tuple(tile_read_idx)),
        )
    ]
    return extended, writeback


# ------------------------------------------------------------ traits & volume


def _traits_and_volume(
    name: str,
    constituents: Sequence[Constituent],
    segments: List[Tuple[str, List[int]]],
    tiles_by_segment: Dict[int, Dict[str, TileSpec]],
    raw_arrays: Dict[str, Tuple[int, List[int]]],
    block: Tuple[int, int, int],
    grid: Tuple[int, ...],
    options: FusionOptions,
    smem_total: int,
    passthrough: Set[str] = frozenset(),
    first_writer: Optional[Dict[str, int]] = None,
) -> Tuple[CodegenTraits, LaunchVolume]:
    # intermediate values consumed at the producing thread's own site are
    # served by the cache hierarchy: charge the write, not the re-reads
    on_chip: Set[str] = set()
    first_writer = first_writer or {}
    for host in passthrough:
        writer = first_writer.get(host)
        if writer is None:
            continue
        reads_before = any(
            host in constituents[ci].host_arrays_read() for ci in range(writer)
        )
        if not reads_before:
            on_chip.add(host)
    staged: Set[str] = set()
    radius: Dict[str, int] = {}
    for tiles in tiles_by_segment.values():
        for host, tile in tiles.items():
            staged.add(host)
            radius[host] = max(radius.get(host, 0), tile.radius)

    # Per-array reread counts.  A staged array is loaded once per *segment*
    # (the tile serves every constituent of the segment); an unstaged array
    # is re-fetched by every constituent reading it — on Kepler, global
    # loads bypass L1, so fusion without explicit staging does not merge
    # the constituents' reads.
    segment_reads: Dict[str, int] = {}
    for _, members in segments:
        seg_arrays: Set[str] = set()
        for m in members:
            seg_arrays |= constituents[m].host_arrays_read()
        for host in seg_arrays:
            segment_reads[host] = segment_reads.get(host, 0) + 1
    constituent_reads: Dict[str, int] = {}
    for c in constituents:
        for host in c.host_arrays_read():
            constituent_reads[host] = constituent_reads.get(host, 0) + 1
    rereads = {}
    for host, per_member in constituent_reads.items():
        count = segment_reads.get(host, 1) if host in staged else per_member
        if count > 1:
            rereads[host] = count

    # cache radii for non-staged arrays
    for c in constituents:
        for formal, host in c.array_binding.items():
            info = c.accesses.arrays.get(formal)
            if info is None:
                continue
            r = info.halo_radius(tuple(c.model.index_vars.values()))
            radius[host] = max(radius.get(host, 0), r)

    distinct_guards = len(
        {unparse_expr(c.model.guard) if c.model.guard is not None else "<none>"
         for c in constituents}
    )
    cost = options.one_sided_cost if options.one_sided_guards else options.two_sided_cost
    divergence = min(1.25, 1.0 + cost * max(0, distinct_guards - 1))

    # volumes
    arrays_read: Set[str] = set()
    arrays_written: Set[str] = set()
    points: Dict[str, int] = {}
    flops = 0.0
    active = 0
    flops_pp = 0.0
    for c in constituents:
        vol = estimate_volume(
            c.model.kernel, c.grid, c.block, c.scalar_values, c.accesses
        )
        binding = c.array_binding
        arrays_read |= {binding[a] for a in vol.arrays_read}
        arrays_written |= {binding[a] for a in vol.arrays_written}
        for formal, p in vol.points_per_array.items():
            host = binding.get(formal, formal)
            points[host] = max(points.get(host, 0), p)
        flops += vol.flops
        active = max(active, vol.active_threads)
        flops_pp += c.accesses.total_flops_per_point

    # intermediate values consumed on-chip: reads of RAW arrays whose halo
    # staging already accounts for one read — nothing extra to subtract, the
    # consumers simply do not touch global memory again (rereads unaffected).

    halo_factor = 1.0
    raw_hosts = [h for h in raw_arrays if h in staged]
    if raw_hosts and flops > 0:
        producer_flops = 0.0
        extension = 0.0
        for host in raw_hosts:
            producer_idx, _ = raw_arrays[host]
            producer_flops += constituents[producer_idx].accesses.total_flops_per_point
            extension = max(
                extension, tile_halo_factor((block[0], block[1], block[2]), radius.get(host, 0))
            )
        share = min(1.0, producer_flops / max(flops_pp, 1e-9))
        halo_factor = 1.0 + share * (extension - 1.0)

    traits = CodegenTraits(
        staged=staged,
        on_chip=on_chip - staged,
        rereads=rereads,
        radius=radius,
        divergence_factor=divergence,
        smem_per_block=smem_total,
        regs_per_thread=estimate_registers(
            len(arrays_read | arrays_written), flops_pp
        ),
        halo_compute_factor=halo_factor,
    )
    launched = 1
    for axis in range(3):
        launched *= grid[axis] * block[axis]
    volume = LaunchVolume(
        kernel_name=name,
        active_threads=active,
        launched_threads=launched,
        points_per_array=points,
        arrays_read=arrays_read,
        arrays_written=arrays_written,
        flops=flops,
    )
    return traits, volume


# ------------------------------------------------------------- no-fusion copy


def copy_kernel(kernel: ast.KernelDef, new_name: Optional[str] = None) -> ast.KernelDef:
    """The *no fusion* case: the new kernel is a copy of the original."""
    return ast.KernelDef(new_name or kernel.name, kernel.params, kernel.body)


def make_constituent(
    kernel: ast.KernelDef,
    array_args: Sequence[str],
    scalar_args: Sequence[ast.Expr],
    scalar_values: Sequence[float],
    grid: Tuple[int, int, int],
    block: Tuple[int, int, int],
) -> Constituent:
    """Build a :class:`Constituent` from a kernel and its launch binding."""
    model = extract_model(kernel)
    if model is None:
        raise TransformError(f"kernel {kernel.name!r} is not canonical")
    pointer_names = [p.name for p in kernel.pointer_params()]
    scalar_names = [p.name for p in kernel.scalar_params()]
    if len(pointer_names) != len(array_args):
        raise TransformError(f"kernel {kernel.name!r}: pointer arg mismatch")
    if len(scalar_names) != len(scalar_args) or len(scalar_names) != len(scalar_values):
        raise TransformError(f"kernel {kernel.name!r}: scalar arg mismatch")
    return Constituent(
        model=model,
        array_binding=dict(zip(pointer_names, array_args)),
        scalar_binding=dict(zip(scalar_names, scalar_args)),
        scalar_values=dict(zip(scalar_names, scalar_values)),
        grid=grid,
        block=block,
    )

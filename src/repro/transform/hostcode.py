"""Host-side code rewriting (§5.5.4).

The code generator replaces the invocations of the original kernels with
those of the new kernels: the first original launch is replaced by the new
launch sequence (in the order dictated by the new OEG), all other original
launches are removed, and every other host statement (allocations,
initialization, synchronization) is preserved.  Thread-block sizes come
from the tuning step and are emitted as inline ``dim3(...)`` literals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cudalite import ast_nodes as ast
from ..cudalite import builders as b
from ..errors import TransformError


@dataclass(frozen=True)
class NewLaunch:
    """One launch of a generated (or copied) kernel."""

    kernel: str
    grid: Tuple[int, int, int]
    block: Tuple[int, int, int]
    args: Tuple[ast.Expr, ...]

    def to_stmt(self) -> ast.Launch:
        return ast.Launch(
            self.kernel,
            ast.Call("dim3", tuple(ast.IntLit(v) for v in self.grid)),
            ast.Call("dim3", tuple(ast.IntLit(v) for v in self.block)),
            self.args,
        )


def rewrite_host(
    main: ast.HostFunc, new_launches: Sequence[NewLaunch]
) -> ast.HostFunc:
    """Replace the original launch sequence by ``new_launches``.

    The new launches are inserted at the position of the first original
    launch; every original launch statement is removed.  Host statements
    between launches (e.g. ``cudaDeviceSynchronize()``) are preserved in
    place.
    """
    inserted = False

    def rewrite_block(block: ast.Block) -> ast.Block:
        nonlocal inserted
        stmts: List[ast.Stmt] = []
        for stmt in block.stmts:
            if isinstance(stmt, ast.Launch):
                if not inserted:
                    stmts.extend(launch.to_stmt() for launch in new_launches)
                    inserted = True
                continue
            if isinstance(stmt, ast.If):
                stmts.append(
                    ast.If(
                        stmt.cond,
                        rewrite_block(stmt.then),
                        rewrite_block(stmt.els) if stmt.els is not None else None,
                    )
                )
            elif isinstance(stmt, ast.For):
                stmts.append(
                    ast.For(
                        stmt.var,
                        stmt.start,
                        stmt.cmp,
                        stmt.bound,
                        stmt.step,
                        rewrite_block(stmt.body),
                    )
                )
            elif isinstance(stmt, ast.Block):
                stmts.append(rewrite_block(stmt))
            else:
                stmts.append(stmt)
        return ast.Block(tuple(stmts))

    body = rewrite_block(main.body)
    if not inserted:
        raise TransformError("host function contains no kernel launches")
    return ast.HostFunc(main.name, main.ret_type, main.params, body)


def assemble_program(
    original: ast.Program,
    new_kernels: Sequence[ast.KernelDef],
    new_launches: Sequence[NewLaunch],
) -> ast.Program:
    """Build the transformed program: new kernels + rewritten host code."""
    launched = {l.kernel for l in new_launches}
    missing = launched - {k.name for k in new_kernels}
    if missing:
        raise TransformError(f"launches reference undefined kernels: {sorted(missing)}")
    new_main = rewrite_host(original.main(), new_launches)
    items: List[ast.Node] = list(new_kernels)
    for item in original.items:
        if isinstance(item, ast.HostFunc):
            items.append(new_main if item.name == "main" else item)
    return ast.Program(tuple(items))

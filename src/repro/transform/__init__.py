"""Code-generation package: fission, fusion, block tuning, host rewrite."""

from .blocksize import TuningDecision, smem_per_thread, tune_kernel_block
from .fission import (
    FissionFragment,
    fission_kernel,
    fission_program,
    iterative_fission,
)
from .fusion import (
    Constituent,
    FusedKernel,
    FusionOptions,
    copy_kernel,
    fuse_kernels,
    make_constituent,
)
from .hostcode import NewLaunch, assemble_program, rewrite_host
from .kernel_model import (
    CanonicalKernel,
    extract_model,
    rename_block,
    rename_expr,
    rename_stmt,
    substitute_expr,
)
from .shared_memory import TileSpec, rewrite_reads_to_tile, staging_stmts

__all__ = [
    "FissionFragment", "fission_kernel", "fission_program", "iterative_fission",
    "Constituent", "FusionOptions", "FusedKernel", "fuse_kernels",
    "copy_kernel", "make_constituent",
    "NewLaunch", "rewrite_host", "assemble_program",
    "TuningDecision", "tune_kernel_block", "smem_per_thread",
    "CanonicalKernel", "extract_model",
    "rename_expr", "rename_stmt", "rename_block", "substitute_expr",
    "TileSpec", "staging_stmts", "rewrite_reads_to_tile",
]

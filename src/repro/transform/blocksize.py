"""Thread-block-size tuning for generated kernels (§4.2).

Tuning happens at the *final* transformation step, not inside the
optimization algorithm (occupancy measures utilization, not performance —
including it in the search would pollute the performance projection).  The
tuner leverages the performance model's estimates of shared memory per
block and registers per thread, enumerates candidate block shapes and picks
the one with the highest calculated occupancy.

Because fused kernels bake tile extents into the generated code, tuning is
a *re-generation* step: the caller re-invokes the fusion generator with the
winning shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..gpu.device import DeviceSpec
from ..gpu.occupancy import BlockShape, OccupancyResult, calculate_occupancy, tune_block_size


@dataclass(frozen=True)
class TuningDecision:
    """Outcome of tuning one kernel."""

    kernel: str
    original_block: Tuple[int, int, int]
    tuned_block: Tuple[int, int, int]
    occupancy_before: float
    occupancy_after: float
    changed: bool
    #: decision restored from the persistent store instead of re-derived
    reused: bool = False

    @property
    def improvement(self) -> float:
        return self.occupancy_after - self.occupancy_before


def smem_per_thread(smem_per_block: int, block: Tuple[int, int, int]) -> float:
    """Shared-memory bytes each thread contributes (tile cost scales with
    block area, so per-thread cost is roughly shape-invariant)."""
    threads = max(1, block[0] * block[1] * block[2])
    return smem_per_block / threads


def tune_kernel_block(
    device: DeviceSpec,
    kernel_name: str,
    block: Tuple[int, int, int],
    smem_per_block: int,
    regs_per_thread: int,
    dims: int = 2,
) -> TuningDecision:
    """Tune one kernel's block shape for occupancy.

    The current configuration's occupancy is compared against the best
    achievable over the candidate shapes; the block only changes when the
    tuner strictly improves occupancy.
    """
    threads = max(1, block[0] * block[1] * block[2])
    try:
        before = calculate_occupancy(
            device, threads, smem_per_block, regs_per_thread
        ).occupancy
    except ValueError:
        before = 0.0
    per_thread = smem_per_thread(smem_per_block, block)
    shape, result = tune_block_size(
        device,
        per_thread,
        regs_per_thread,
        dims=dims,
        current=BlockShape(*block),
    )
    if result.occupancy > before + 1e-9:
        return TuningDecision(
            kernel=kernel_name,
            original_block=block,
            tuned_block=shape.as_tuple(),
            occupancy_before=before,
            occupancy_after=result.occupancy,
            changed=shape.as_tuple() != block,
        )
    return TuningDecision(
        kernel=kernel_name,
        original_block=block,
        tuned_block=block,
        occupancy_before=before,
        occupancy_after=before,
        changed=False,
    )

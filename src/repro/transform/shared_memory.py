"""Shared-memory tile staging for generated (fused) kernels (§5.5.2–§5.5.3).

Fused kernels exploit the exposed inter-kernel locality by staging each
*locality-target* array into a ``__shared__`` tile once and serving all
constituent kernels' reads from the tile.  For complex fusion (internal
producer→consumer precedence) the tile additionally holds values computed
*in this kernel* over an extended (halo) region — the temporal-blocking
technique the paper adopts for the shared-memory coherence problem.

Tiles follow the canonical horizontal mapping: the x/y thread axes are
tiled (with halo), the sequential k loop re-stages per iteration.

Emitted staging pattern (cooperative, works for any halo radius)::

    for (int ly0 = 0; ly0 < CY; ly0++) {
        for (int lx0 = 0; lx0 < CX; lx0++) {
            int yy = ty + ly0 * BY;
            int xx = tx + lx0 * BX;
            if (xx < TX && yy < TY) {
                int gx = bx0 + xx - R;
                int gy = by0 + yy - R;
                if (gx >= 0 && gx < NX && gy >= 0 && gy < NY) {
                    s_A[xx][yy] = A[gx][gy][k];
                }
            }
        }
    }
    __syncthreads();

All loop bounds are compile-time literals (block shape and radius are known
at generation time), keeping the emitted CUDA readable and the loops
canonical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cudalite import ast_nodes as ast
from ..cudalite import builders as b
from ..errors import TransformError
from .kernel_model import substitute_expr

#: Names used by generated staging code.
TX, TY = "tx", "ty"
BX0, BY0 = "bx0", "by0"
HALO_X, HALO_Y = "hx", "hy"
GLOBAL_X, GLOBAL_Y = "gx_h", "gy_h"


@dataclass(frozen=True)
class TileSpec:
    """One shared-memory tile for one staged array."""

    array: str            #: host array name (== fused-kernel parameter name)
    tile_name: str        #: e.g. ``s_A``
    radius: int           #: halo radius R
    block: Tuple[int, int]  #: (BX, BY) thread-block extents along x/y
    array_shape: Tuple[int, ...]  #: full logical array shape
    #: dims of the array mapped to (x, y); remaining dim (if any) is the
    #: sequential loop dim, indexed directly during staging.
    tiled_dims: int = 2

    @property
    def tile_extent_x(self) -> int:
        return self.block[0] + 2 * self.radius

    @property
    def tile_extent_y(self) -> int:
        return self.block[1] + 2 * self.radius if self.tiled_dims >= 2 else 1

    @property
    def smem_bytes(self) -> int:
        return self.tile_extent_x * max(1, self.tile_extent_y) * 8

    def declaration(self) -> ast.VarDecl:
        dims: List[int] = [self.tile_extent_x]
        if self.tiled_dims >= 2:
            dims.append(self.tile_extent_y)
        return b.decl("double", self.tile_name, shared=True, dims=dims)


def geometry_decls(need_2d: bool) -> List[ast.Stmt]:
    """``tx/ty`` and block-origin declarations shared by all tiles."""
    stmts: List[ast.Stmt] = [
        b.decl("int", TX, b.thread_idx("x")),
        b.decl("int", BX0, b.binop("*", b.block_idx("x"), b.block_dim("x"))),
    ]
    if need_2d:
        stmts.insert(1, b.decl("int", TY, b.thread_idx("y")))
        stmts.append(b.decl("int", BY0, b.binop("*", b.block_idx("y"), b.block_dim("y"))))
    return stmts


def _ceil_div(a: int, d: int) -> int:
    return -(-a // d)


def staging_stmts(
    tile: TileSpec, loop_var: Optional[str]
) -> List[ast.Stmt]:
    """Emit the cooperative load of ``tile`` from global memory.

    ``loop_var`` is the unified sequential loop variable indexing the
    array's last dimension (None for arrays without a loop dim).
    """
    bx, by = tile.block
    r = tile.radius
    shape = tile.array_shape
    nx = shape[0]
    read_idx: List[ast.Expr]

    if tile.tiled_dims == 1:
        cx = _ceil_div(tile.tile_extent_x, bx)
        xx = b.ident(HALO_X)
        gx = b.ident(GLOBAL_X)
        read_idx = [gx]
        if loop_var is not None and len(shape) >= 2:
            read_idx.append(b.ident(loop_var))
        store = b.assign(b.idx(tile.tile_name, xx), ast.Index(b.ident(tile.array), tuple(read_idx)))
        guarded = b.if_(
            b.logical_and(b.ge(gx, 0), b.lt(gx, nx)),
            [store],
        )
        body = [
            b.decl("int", HALO_X, b.add(b.ident(TX), b.mul(b.ident("lx0"), bx))),
        ]
        body.append(
            b.if_(
                b.lt(b.ident(HALO_X), tile.tile_extent_x),
                [
                    b.decl("int", GLOBAL_X, b.sub(b.add(b.ident(BX0), b.ident(HALO_X)), r)),
                    guarded,
                ],
            )
        )
        load_loop: ast.Stmt = b.for_("lx0", 0, cx, body)
        return [load_loop, b.sync()]

    ny = shape[1]
    cx = _ceil_div(tile.tile_extent_x, bx)
    cy = _ceil_div(tile.tile_extent_y, by)
    gx = b.ident(GLOBAL_X)
    gy = b.ident(GLOBAL_Y)
    read_idx = [gx, gy]
    if loop_var is not None and len(shape) >= 3:
        read_idx.append(b.ident(loop_var))
    store = b.assign(
        b.idx(tile.tile_name, b.ident(HALO_X), b.ident(HALO_Y)),
        ast.Index(b.ident(tile.array), tuple(read_idx)),
    )
    bounds_guard = b.if_(
        b.logical_and(b.ge(gx, 0), b.lt(gx, nx), b.ge(gy, 0), b.lt(gy, ny)),
        [store],
    )
    inner_body: List[ast.Stmt] = [
        b.decl("int", HALO_X, b.add(b.ident(TX), b.mul(b.ident("lx0"), bx))),
        b.if_(
            b.lt(b.ident(HALO_X), tile.tile_extent_x),
            [
                b.decl("int", GLOBAL_X, b.sub(b.add(b.ident(BX0), b.ident(HALO_X)), r)),
                bounds_guard,
            ],
        ),
    ]
    x_loop = b.for_("lx0", 0, cx, inner_body)
    outer_body: List[ast.Stmt] = [
        b.decl("int", HALO_Y, b.add(b.ident(TY), b.mul(b.ident("ly0"), by))),
        b.if_(
            b.lt(b.ident(HALO_Y), tile.tile_extent_y),
            [
                b.decl(
                    "int", GLOBAL_Y, b.sub(b.add(b.ident(BY0), b.ident(HALO_Y)), r)
                ),
                x_loop,
            ],
        ),
    ]
    y_loop = b.for_("ly0", 0, cy, outer_body)
    return [y_loop, b.sync()]


def rewrite_reads_to_tile(
    expr: ast.Expr,
    tile: TileSpec,
    index_vars: Sequence[str],
    loop_var: Optional[str],
) -> ast.Expr:
    """Rewrite global reads ``A[i+dx][j+dy][k]`` into tile reads.

    ``index_vars`` are the unified thread index variable names in dimension
    order (x, y).  Reads whose subscripts do not match the tiled pattern
    (wrong base variable, z offset, irregular) are left untouched.
    """
    if isinstance(expr, ast.Index) and isinstance(expr.base, ast.Ident):
        if expr.base.name == tile.array:
            rewritten = _try_tile_read(expr, tile, index_vars, loop_var)
            if rewritten is not None:
                return rewritten
        return ast.Index(
            expr.base,
            tuple(
                rewrite_reads_to_tile(i, tile, index_vars, loop_var)
                for i in expr.indices
            ),
        )
    if isinstance(expr, ast.Binary):
        return ast.Binary(
            expr.op,
            rewrite_reads_to_tile(expr.lhs, tile, index_vars, loop_var),
            rewrite_reads_to_tile(expr.rhs, tile, index_vars, loop_var),
        )
    if isinstance(expr, ast.Unary):
        return ast.Unary(
            expr.op, rewrite_reads_to_tile(expr.operand, tile, index_vars, loop_var)
        )
    if isinstance(expr, ast.Call):
        return ast.Call(
            expr.func,
            tuple(
                rewrite_reads_to_tile(a, tile, index_vars, loop_var)
                for a in expr.args
            ),
        )
    if isinstance(expr, ast.Ternary):
        return ast.Ternary(
            rewrite_reads_to_tile(expr.cond, tile, index_vars, loop_var),
            rewrite_reads_to_tile(expr.then, tile, index_vars, loop_var),
            rewrite_reads_to_tile(expr.els, tile, index_vars, loop_var),
        )
    return expr


def _axis_offset(expr: ast.Expr, var: str) -> Optional[int]:
    """Offset c when ``expr`` is ``var``, ``var + c`` or ``var - c``."""
    if isinstance(expr, ast.Ident) and expr.name == var:
        return 0
    if isinstance(expr, ast.Binary) and expr.op in ("+", "-"):
        if (
            isinstance(expr.lhs, ast.Ident)
            and expr.lhs.name == var
            and isinstance(expr.rhs, ast.IntLit)
        ):
            return expr.rhs.value if expr.op == "+" else -expr.rhs.value
        if (
            expr.op == "+"
            and isinstance(expr.rhs, ast.Ident)
            and expr.rhs.name == var
            and isinstance(expr.lhs, ast.IntLit)
        ):
            return expr.lhs.value
    return None


def _try_tile_read(
    access: ast.Index,
    tile: TileSpec,
    index_vars: Sequence[str],
    loop_var: Optional[str],
) -> Optional[ast.Expr]:
    indices = access.indices
    ndim = len(tile.array_shape)
    if len(indices) != ndim:
        return None
    # last dim must be exactly the loop variable (offset 0) when present
    if ndim > tile.tiled_dims:
        if loop_var is None:
            return None
        k_off = _axis_offset(indices[-1], loop_var)
        if k_off != 0:
            return None
    dx = _axis_offset(indices[0], index_vars[0])
    if dx is None or abs(dx) > tile.radius:
        return None
    tile_idx: List[ast.Expr] = [b.add(b.ident(TX), tile.radius + dx)]
    if tile.tiled_dims >= 2:
        if len(index_vars) < 2 or len(indices) < 2:
            return None
        dy = _axis_offset(indices[1], index_vars[1])
        if dy is None or abs(dy) > tile.radius:
            return None
        tile_idx.append(b.add(b.ident(TY), tile.radius + dy))
    return ast.Index(b.ident(tile.tile_name), tuple(tile_idx))


def extended_compute_stmts(
    tile: TileSpec,
    producer_guard: Optional[ast.Expr],
    rhs_builder,
    loop_var: Optional[str],
) -> List[ast.Stmt]:
    """Emit the temporal-blocking extended compute for a producer array.

    Every tile cell (own site *and* halo) whose global position satisfies
    the producer's guard recomputes the producer's RHS with the thread
    indices substituted by the cell's global position.  ``rhs_builder`` is
    called with (gx_expr, gy_expr_or_None) and must return the list of
    statements storing into ``tile.tile_name[hx][hy]``.
    """
    bx, by = tile.block
    r = tile.radius
    shape = tile.array_shape
    gx = b.ident(GLOBAL_X)
    gy = b.ident(GLOBAL_Y) if tile.tiled_dims >= 2 else None

    bounds = [b.ge(gx, 0), b.lt(gx, shape[0])]
    if gy is not None:
        bounds += [b.ge(gy, 0), b.lt(gy, shape[1])]
    cond = b.logical_and(*bounds)
    if producer_guard is not None:
        cond = b.logical_and(cond, producer_guard)
    body_store = rhs_builder(gx, gy)
    guarded = b.if_(cond, body_store)

    if tile.tiled_dims == 1:
        cx = _ceil_div(tile.tile_extent_x, bx)
        inner = [
            b.decl("int", HALO_X, b.add(b.ident(TX), b.mul(b.ident("lx0"), bx))),
            b.if_(
                b.lt(b.ident(HALO_X), tile.tile_extent_x),
                [
                    b.decl("int", GLOBAL_X, b.sub(b.add(b.ident(BX0), b.ident(HALO_X)), r)),
                    guarded,
                ],
            ),
        ]
        return [b.for_("lx0", 0, cx, inner), b.sync()]

    cx = _ceil_div(tile.tile_extent_x, bx)
    cy = _ceil_div(tile.tile_extent_y, by)
    x_body = [
        b.decl("int", HALO_X, b.add(b.ident(TX), b.mul(b.ident("lx0"), bx))),
        b.if_(
            b.lt(b.ident(HALO_X), tile.tile_extent_x),
            [
                b.decl("int", GLOBAL_X, b.sub(b.add(b.ident(BX0), b.ident(HALO_X)), r)),
                guarded,
            ],
        ),
    ]
    x_loop = b.for_("lx0", 0, cx, x_body)
    y_body = [
        b.decl("int", HALO_Y, b.add(b.ident(TY), b.mul(b.ident("ly0"), by))),
        b.if_(
            b.lt(b.ident(HALO_Y), tile.tile_extent_y),
            [
                b.decl("int", GLOBAL_Y, b.sub(b.add(b.ident(BY0), b.ident(HALO_Y)), r)),
                x_loop,
            ],
        ),
    ]
    return [b.for_("ly0", 0, cy, y_body), b.sync()]

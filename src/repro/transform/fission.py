"""Kernel fission (§4.1, Algorithm 2).

Splits a kernel into fragments such that each data array — and *all*
statements operating on it — lives in exactly one fragment.  The fragments
are the connected components of the statement-level array-dependency graph
(:mod:`repro.analysis.deps`); code generation filters the original body
per component, preserving guards and loops, and prunes scalar code each
fragment does not need.

The fission invariants (tested):

* fragments are pairwise disjoint and complete — every executable statement
  of the original kernel appears in exactly one fragment;
* each separable array appears in exactly one fragment;
* running the fragments in sequence is semantically identical to running
  the original kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..analysis.accesses import KernelAccesses, collect_accesses
from ..analysis.deps import separable_components
from ..cudalite import ast_nodes as ast
from ..errors import TransformError


@dataclass
class FissionFragment:
    """One kernel produced by fissioning an original kernel."""

    kernel: ast.KernelDef
    #: The separable arrays this fragment owns.
    component: FrozenSet[str]
    #: For each fragment parameter, the index of the corresponding parameter
    #: in the *original* kernel's parameter list (host-code arg slicing).
    param_indices: Tuple[int, ...]


def _scalar_needs(
    accesses: KernelAccesses, kept: Set[int]
) -> Set[str]:
    """Scalars (transitively) needed by the kept statements."""
    needed: Set[str] = set()
    for stmt in accesses.statements:
        if stmt.index in kept:
            needed |= stmt.scalars_read
    # fixed point over scalar-defining statements
    for _ in range(len(accesses.statements) + 1):
        grew = False
        for stmt in accesses.statements:
            if stmt.scalars_written & needed:
                before = len(needed)
                needed |= stmt.scalars_read
                grew = grew or len(needed) > before
        if not grew:
            break
    return needed


def _filter_block(
    block: ast.Block,
    keep: Set[int],
    needed_scalars: Set[str],
    accesses: KernelAccesses,
    counter: List[int],
) -> ast.Block:
    """Rebuild a block keeping only selected statements (structure-preserving)."""
    kept_stmts: List[ast.Stmt] = []
    for stmt in block.stmts:
        if isinstance(stmt, ast.Assign):
            index = counter[0]
            counter[0] += 1
            record = accesses.statements[index]
            if record.arrays_written:
                if index in keep:
                    kept_stmts.append(stmt)
            else:
                # pure scalar statement: keep when its results are needed
                if record.scalars_written & needed_scalars:
                    kept_stmts.append(stmt)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                counter[0] += 1  # initialized decls occupy a statement slot
            if stmt.is_shared or stmt.array_dims or stmt.name in needed_scalars:
                kept_stmts.append(stmt)
        elif isinstance(stmt, ast.If):
            then = _filter_block(stmt.then, keep, needed_scalars, accesses, counter)
            els = (
                _filter_block(stmt.els, keep, needed_scalars, accesses, counter)
                if stmt.els is not None
                else None
            )
            if then.stmts or (els is not None and els.stmts):
                kept_stmts.append(
                    ast.If(stmt.cond, then, els if els and els.stmts else None)
                )
        elif isinstance(stmt, ast.For):
            body = _filter_block(stmt.body, keep, needed_scalars, accesses, counter)
            if body.stmts:
                kept_stmts.append(
                    ast.For(stmt.var, stmt.start, stmt.cmp, stmt.bound, stmt.step, body)
                )
        elif isinstance(stmt, ast.While):
            body = _filter_block(stmt.body, keep, needed_scalars, accesses, counter)
            if body.stmts:
                kept_stmts.append(ast.While(stmt.cond, body))
        elif isinstance(stmt, ast.Block):
            inner = _filter_block(stmt, keep, needed_scalars, accesses, counter)
            if inner.stmts:
                kept_stmts.append(inner)
        else:
            kept_stmts.append(stmt)
    return ast.Block(tuple(kept_stmts))


def _used_names(block: ast.Block) -> Set[str]:
    names: Set[str] = set()
    for node in block.walk():
        if isinstance(node, ast.Ident):
            names.add(node.name)
        elif isinstance(node, ast.Index) and isinstance(node.base, ast.Ident):
            names.add(node.base.name)
    return names


def fission_kernel(
    kernel: ast.KernelDef,
    components: Optional[Sequence[FrozenSet[str]]] = None,
    seed: int = 0,
    name_format: str = "{name}_f{index}",
) -> List[FissionFragment]:
    """Fission ``kernel`` into per-component fragments.

    ``components`` defaults to the separable components found by Algorithm 2;
    passing them explicitly lets the search engine fission along a chosen
    partition.  Returns a single fragment (the kernel itself, renamed only
    if requested) when the kernel is not separable.
    """
    accesses = collect_accesses(kernel)
    if components is None:
        components = separable_components(kernel, accesses, seed=seed)
    written = accesses.arrays_written
    productive = [c for c in components if c & written]
    if len(productive) < 2:
        all_params = tuple(range(len(kernel.params)))
        return [
            FissionFragment(
                kernel=kernel,
                component=frozenset(a.name for a in accesses.arrays.values()),
                param_indices=all_params,
            )
        ]

    # fold unproductive (read-only, statement-less) components into the first
    leftovers = [c for c in components if not (c & written)]
    if leftovers:
        merged = frozenset(set(productive[0]) | set().union(*leftovers))
        productive = [merged] + productive[1:]

    fragments: List[FissionFragment] = []
    for index, component in enumerate(productive):
        keep = {
            s.index
            for s in accesses.statements
            if s.arrays_written and s.arrays_written <= component
        }
        # statements writing arrays across components would contradict
        # separability; guard against analysis drift
        for s in accesses.statements:
            if s.arrays_written and not (
                s.arrays_written <= component or not (s.arrays_written & component)
            ):
                raise TransformError(
                    f"kernel {kernel.name!r}: statement writes arrays in "
                    "multiple fission components"
                )
        needed_scalars = _scalar_needs(accesses, keep)
        # index variables are always needed
        needed_scalars |= set(accesses.index_vars)
        counter = [0]
        body = _filter_block(kernel.body, keep, needed_scalars, accesses, counter)
        used = _used_names(body)
        param_indices = tuple(
            i
            for i, p in enumerate(kernel.params)
            if (p.type.is_pointer and p.name in used)
            or (not p.type.is_pointer and p.name in used)
        )
        params = tuple(kernel.params[i] for i in param_indices)
        fragment_kernel = ast.KernelDef(
            name=name_format.format(name=kernel.name, index=index),
            params=params,
            body=body,
        )
        fragments.append(
            FissionFragment(
                kernel=fragment_kernel,
                component=component,
                param_indices=param_indices,
            )
        )
    return fragments


def iterative_fission(
    kernel: ast.KernelDef, max_rounds: int = 8
) -> List[FissionFragment]:
    """Apply fission repeatedly until no fragment is separable (§5.5).

    With component-based fission a single round is already maximal, but the
    iteration guards against partial component choices.
    """
    fragments = fission_kernel(kernel)
    for _ in range(max_rounds):
        expanded: List[FissionFragment] = []
        changed = False
        for frag in fragments:
            sub = fission_kernel(
                frag.kernel, name_format="{name}x{index}"
            )
            if len(sub) > 1:
                changed = True
                for piece in sub:
                    # compose param index mappings
                    composed = tuple(frag.param_indices[i] for i in piece.param_indices)
                    expanded.append(
                        FissionFragment(piece.kernel, piece.component, composed)
                    )
            else:
                expanded.append(frag)
        fragments = expanded
        if not changed:
            break
    return fragments


def fission_program(
    program: ast.Program, kernel_name: str, seed: int = 0
) -> Tuple[ast.Program, List[FissionFragment]]:
    """Replace ``kernel_name`` in the program by its fission fragments.

    Every launch of the kernel becomes a sequence of fragment launches with
    correspondingly sliced argument lists.  Returns the new program and the
    fragments (unchanged program if the kernel is not separable).
    """
    kernel = program.kernel(kernel_name)
    fragments = fission_kernel(kernel, seed=seed)
    if len(fragments) == 1:
        return program, fragments

    new_kernels: List[ast.KernelDef] = []
    for item in program.kernels:
        if item.name == kernel_name:
            new_kernels.extend(f.kernel for f in fragments)
        else:
            new_kernels.append(item)

    def rewrite_block(block: ast.Block) -> ast.Block:
        stmts: List[ast.Stmt] = []
        for stmt in block.stmts:
            if isinstance(stmt, ast.Launch) and stmt.kernel == kernel_name:
                for frag in fragments:
                    stmts.append(
                        ast.Launch(
                            frag.kernel.name,
                            stmt.grid,
                            stmt.block,
                            tuple(stmt.args[i] for i in frag.param_indices),
                        )
                    )
            elif isinstance(stmt, ast.If):
                stmts.append(
                    ast.If(
                        stmt.cond,
                        rewrite_block(stmt.then),
                        rewrite_block(stmt.els) if stmt.els is not None else None,
                    )
                )
            elif isinstance(stmt, ast.For):
                stmts.append(
                    ast.For(
                        stmt.var, stmt.start, stmt.cmp, stmt.bound, stmt.step,
                        rewrite_block(stmt.body),
                    )
                )
            else:
                stmts.append(stmt)
        return ast.Block(tuple(stmts))

    new_items: List[ast.Node] = []
    kernel_emitted = False
    for item in program.items:
        if isinstance(item, ast.KernelDef):
            if item.name == kernel_name:
                if not kernel_emitted:
                    new_items.extend(f.kernel for f in fragments)
                    kernel_emitted = True
            else:
                new_items.append(item)
        elif isinstance(item, ast.HostFunc):
            new_items.append(
                ast.HostFunc(item.name, item.ret_type, item.params, rewrite_block(item.body))
            )
        else:
            new_items.append(item)
    return ast.Program(tuple(new_items)), fragments

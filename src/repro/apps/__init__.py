"""Synthetic application generators matching the paper's six codebases."""

from .base import AppBuilder, AppSpec, GeneratedApp
from .registry import APP_NAMES, APPS, SPECS, build_app

__all__ = [
    "AppBuilder", "AppSpec", "GeneratedApp",
    "APPS", "SPECS", "APP_NAMES", "build_app",
]

"""B-CALM stand-in: GPU 3-D FDTD with multi-pole dispersion (§6.1.1).

B-CALM deliberately breaks the E/H update equations into separate kernels
per pole to minimize thread divergence, at the cost of extra global-memory
traffic for the intermediate pole results between kernel invocations.  The
stand-in reproduces that and the paper's fission-dependent behaviour:

* the pole kernels read the field arrays *with a halo* that the field
  update kernels later overwrite, so **whole-kernel fusion is WAR-locked**
  (fusion-only finds nothing, Fig. 4/5);
* after **fission**, a pole fragment can pair with the field-update
  fragment that consumes its pole intermediates but writes a *different*
  field component — the intermediate pole arrays then flow on-chip instead
  of through global memory, which is precisely the traffic the paper's
  high-resolution setting amplifies.
"""

from __future__ import annotations

from .base import AppBuilder, AppSpec, GeneratedApp, scaled_spec

SPEC = AppSpec(
    name="B-CALM",
    domain=(256, 128, 16),
    block=(32, 8, 1),
    paper_kernels=23,
    paper_arrays=24,
    paper_speedup=(1.00, 1.25),
    paper_targets=8,
    paper_new_kernels=3,
)


def build(scale: float = 1.0, seed: int = 208) -> GeneratedApp:
    spec = scaled_spec(SPEC, scale)
    builder = AppBuilder(spec, seed=seed)

    efield = [builder.new_array("E") for _ in range(3)]
    hfield = [builder.new_array("H") for _ in range(3)]
    poles = [builder.new_array("P") for _ in range(12)]
    eps = [builder.new_array("eps") for _ in range(6)]

    # per-pole polarization updates; component pairs share a field array
    # (separable into 3 fragments each); the r=1 field reads WAR-lock the
    # whole kernel against fusing with the field updates
    builder.fused_like_kernel(
        "pole_update_e",
        [
            (poles[j], [(efield[j // 2], 1), (eps[j // 2], 0)])
            for j in range(6)
        ],
    )
    # E update: curl of H (r=3) plus the pole intermediates of a *different*
    # component (so a pole fragment and a field fragment can fuse after
    # fission without touching the array the other one writes)
    builder.fused_like_kernel(
        "e_update",
        [
            (
                efield[i],
                [
                    (hfield[(i + 1) % 3], 3),
                    (poles[2 * ((i + 1) % 3)], 0),
                    (poles[2 * ((i + 1) % 3) + 1], 0),
                ],
            )
            for i in range(3)
        ],
    )
    builder.fused_like_kernel(
        "pole_update_h",
        [
            (poles[6 + j], [(hfield[j // 2], 1), (eps[3 + j // 2], 0)])
            for j in range(6)
        ],
    )
    builder.fused_like_kernel(
        "h_update",
        [
            (
                hfield[i],
                [
                    (efield[(i + 1) % 3], 3),
                    (poles[6 + 2 * ((i + 1) % 3)], 0),
                    (poles[6 + 2 * ((i + 1) % 3) + 1], 0),
                ],
            )
            for i in range(3)
        ],
    )
    # observable extractions (regular stencil targets)
    builder.stencil_kernel("poynting_x", eps[0], [(efield[1], 0), (hfield[2], 0)])
    builder.stencil_kernel("poynting_y", eps[1], [(efield[2], 0), (hfield[0], 0)])
    builder.stencil_kernel("flux_probe", eps[2], [(efield[0], 1)])
    builder.stencil_kernel("energy_density", eps[3], [(efield[0], 0), (hfield[0], 0)])

    # excluded: PML boundary kernels on the domain faces + source setup
    for idx in range(12):
        builder.boundary_kernel(
            f"pml{idx:02d}", poles[idx], efield[idx % 3]
        )
    builder.compute_bound_kernel("drude_setup", eps[4], eps[5], intensity=16)
    builder.compute_bound_kernel("source_wave", eps[5], eps[4], intensity=16)
    builder.boundary_kernel("inject_plane", efield[0], eps[0])

    return builder.build()

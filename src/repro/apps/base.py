"""Shared machinery for the six synthetic application generators (§6.1.1).

The paper evaluates on six production codebases we do not have.  Each
generator in this package builds a CudaLite program whose *structure* —
kernel count, array count, sharing pattern, boundary/compute-bound mix,
loop-nest depths, "almost fused" kernels with separable arrays — matches
what Table 1 and the per-application narratives report, so that the
pipeline's behaviour on it (filtering, search, fission, codegen, tuning)
reproduces the paper's evaluation shape.

All generators are deterministic (seeded) and scale-parameterized so tests
can run them small while the benchmarks run them at full structural size.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..cudalite import ast_nodes as ast
from ..cudalite import builders as b


@dataclass
class AppSpec:
    """Declared attributes of a generated application (Table 1 inputs)."""

    name: str
    domain: Tuple[int, int, int]
    block: Tuple[int, int, int]
    #: paper-reported attributes, used for reporting alongside measured ones
    paper_kernels: int
    paper_arrays: int
    paper_targets: int
    paper_new_kernels: int
    paper_speedup: Tuple[float, float]  # (fusion-only-ish, best) on K20X


def scaled_spec(spec: AppSpec, scale: float) -> AppSpec:
    """Shrink the spec's domain for fast tests (structure untouched).

    ``scale`` < 1 shrinks the x/y extents proportionally (never below one
    thread block); the z extent is kept (vertical loops are part of the
    structure).
    """
    if scale >= 1.0:
        return spec
    from dataclasses import replace

    bx, by, _ = spec.block
    nx = max(bx, int(spec.domain[0] * scale) // bx * bx or bx)
    ny = max(by, int(spec.domain[1] * scale) // by * by or by)
    return replace(spec, domain=(nx, ny, spec.domain[2]))


@dataclass
class GeneratedApp:
    """A generated application program plus metadata the benches use."""

    spec: AppSpec
    program: ast.Program
    #: kernels that are latency-bound in reality but look memory-bound to
    #: the automated filter (the Fluam anomaly); the "manual filtering"
    #: experiment excludes them
    latency_kernels: Tuple[str, ...] = ()
    #: kernels with deep nested loops (the SCALE-LES codegen gap)
    deep_loop_kernels: Tuple[str, ...] = ()
    #: kernels that stage a tile through __shared__ memory
    shared_kernels: Tuple[str, ...] = ()
    #: kernels the compiled execution mode must fall back on (race-prone
    #: in-place updates, unlowerable constructs)
    fallback_kernels: Tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return self.spec.name


class AppBuilder:
    """Composes kernels and a host driver into a CudaLite program."""

    def __init__(
        self,
        spec: AppSpec,
        seed: int = 0,
    ) -> None:
        self.spec = spec
        # zlib.crc32, not hash(): string hashing is salted per process, and
        # generated programs must be byte-identical across processes (store
        # keys, corpus replay, CI cross-run comparisons all depend on it)
        self.rng = random.Random(seed ^ zlib.crc32(spec.name.encode()) & 0xFFFF)
        self.nx, self.ny, self.nz = spec.domain
        self.kernels: List[ast.KernelDef] = []
        self.launch_args: List[Tuple[str, List[str], List[float]]] = []
        self.arrays: List[str] = []
        self.array_dims: Dict[str, int] = {}
        self.latency_kernels: List[str] = []
        self.deep_loop_kernels: List[str] = []
        self.shared_kernels: List[str] = []
        self.fallback_kernels: List[str] = []
        #: separate small launches (kernel -> (grid, block)); default launch
        #: geometry is derived from the domain
        self.custom_launch: Dict[str, Tuple[Tuple[int, int, int], Tuple[int, int, int]]] = {}

    # ------------------------------------------------------------------ arrays

    def new_array(self, prefix: str = "a", dims: int = 3) -> str:
        name = f"{prefix}{len(self.arrays):02d}"
        self.arrays.append(name)
        self.array_dims[name] = dims
        return name

    def array_pool(self, count: int, prefix: str = "a") -> List[str]:
        return [self.new_array(prefix) for _ in range(count)]

    # ----------------------------------------------------------- kernel pieces

    def _index_decls(self) -> List[ast.Stmt]:
        return [
            b.decl("int", "i", b.global_index("x")),
            b.decl("int", "j", b.global_index("y")),
        ]

    def _interior_guard(self, radius: int) -> ast.Expr:
        if radius <= 0:
            return b.logical_and(b.lt("i", "nx"), b.lt("j", "ny"))
        return b.logical_and(
            b.ge("i", radius),
            b.lt("i", b.sub("nx", radius)),
            b.ge("j", radius),
            b.lt("j", b.sub("ny", radius)),
        )

    def _stencil_sum(
        self, array: str, radius: int, k: Optional[str], coeff: float
    ) -> ast.Expr:
        """A star-stencil read combination of one array."""
        def access(di: int, dj: int) -> ast.Expr:
            idx = [b.add("i", di), b.add("j", dj)]
            if k is not None and self.array_dims.get(array, 3) == 3:
                idx.append(b.ident(k))
            return b.idx(array, *idx)

        if radius <= 0:
            return b.mul(b.lit(coeff), access(0, 0))
        terms: ast.Expr = access(0, 0)
        for d in range(1, radius + 1):
            for di, dj in ((d, 0), (-d, 0), (0, d), (0, -d)):
                terms = b.add(terms, access(di, dj))
        return b.mul(b.lit(coeff), terms)

    def _write(self, array: str, k: Optional[str], value: ast.Expr, op: str = "=") -> ast.Assign:
        idx: List[b.ExprLike] = ["i", "j"]
        if k is not None and self.array_dims.get(array, 3) == 3:
            idx.append(k)
        return b.assign(b.idx(array, *idx), value, op)

    def _params_for(self, arrays: Sequence[str], written: Set[str], extra_scalars: int = 0):
        params = [
            b.param("double", a, pointer=True, const=a not in written)
            for a in arrays
        ]
        params += [
            b.param("int", "nx"),
            b.param("int", "ny"),
            b.param("int", "nz"),
        ]
        scalar_names = []
        for s in range(extra_scalars):
            scalar_names.append(f"c{s}")
            params.append(b.param("double", f"c{s}"))
        return params, scalar_names

    def _register(
        self,
        kernel: ast.KernelDef,
        arrays: Sequence[str],
        scalars: Sequence[float],
    ) -> str:
        self.kernels.append(kernel)
        self.launch_args.append(
            (kernel.name, list(arrays), [self.nx, self.ny, self.nz] + list(scalars))
        )
        return kernel.name

    # ---------------------------------------------------------------- kernels

    def stencil_kernel(
        self,
        name: str,
        out: str,
        ins: Sequence[Tuple[str, int]],
        with_loop: bool = True,
        loop_bound: Optional[int] = None,
        flavor: float = 1.0,
    ) -> str:
        """Canonical stencil sweep: ``out = Σ coeff_i * stencil(in_i)``."""
        k = "k" if with_loop else None
        value: Optional[ast.Expr] = None
        coeffs: List[float] = []
        for idx, (array, radius) in enumerate(ins):
            coeff = round(flavor * (0.2 + 0.1 * idx + 0.05 * self.rng.random()), 6)
            coeffs.append(coeff)
            term = self._stencil_sum(array, radius, k, 1.0)
            term = b.mul(b.ident(f"c{idx}"), term)
            value = term if value is None else b.add(value, term)
        assert value is not None
        body_stmt = self._write(out, k, value)
        radius = max((r for _, r in ins), default=0)
        inner: List[ast.Stmt] = [body_stmt]
        if with_loop:
            bound = loop_bound if loop_bound is not None else None
            bound_expr: b.ExprLike = bound if bound is not None else "nz"
            inner = [b.for_("k", 0, bound_expr, inner)]
        arrays = [out] + [a for a, _ in ins if a != out]
        params, _ = self._params_for(arrays, {out}, extra_scalars=len(ins))
        kernel = b.kernel(
            name,
            params,
            self._index_decls() + [b.if_(self._interior_guard(radius), inner)],
        )
        return self._register(kernel, arrays, coeffs)

    def pointwise_kernel(
        self, name: str, out: str, ins: Sequence[str], with_loop: bool = True
    ) -> str:
        return self.stencil_kernel(
            name, out, [(a, 0) for a in ins], with_loop=with_loop
        )

    def boundary_kernel(self, name: str, out: str, src: str) -> str:
        """Applies a boundary condition to one face (i == 0 plane)."""
        k = "k"
        value = b.mul(b.lit(0.5), self._stencil_sum(src, 0, k, 1.0))
        guard = b.logical_and(b.lt("i", 1), b.lt("j", "ny"))
        body = [b.for_("k", 0, "nz", [self._write(out, k, value)])]
        arrays = [out, src] if out != src else [out]
        params, _ = self._params_for(arrays, {out})
        kernel = b.kernel(name, params, self._index_decls() + [b.if_(guard, body)])
        return self._register(kernel, arrays, [])

    def compute_bound_kernel(
        self, name: str, out: str, src: str, intensity: int = 14
    ) -> str:
        """Transcendental-heavy kernel (above the roofline ridge)."""
        k = "k"
        stmts: List[ast.Stmt] = [
            b.decl("double", "acc", b.idx(src, "i", "j", k)),
        ]
        for _ in range(intensity):
            stmts.append(
                b.assign("acc", b.add("acc", b.mul(b.call("sin", "acc"), 0.99)))
            )
        stmts.append(self._write(out, k, b.ident("acc")))
        body = [b.for_("k", 0, "nz", stmts)]
        arrays = [out, src] if out != src else [out]
        params, _ = self._params_for(arrays, {out})
        kernel = b.kernel(
            name, params, self._index_decls() + [b.if_(self._interior_guard(0), body)]
        )
        return self._register(kernel, arrays, [])

    def fused_like_kernel(
        self,
        name: str,
        components: Sequence[Tuple[str, Sequence[Tuple[str, int]]]],
    ) -> str:
        """A large "almost fused" kernel with separable array components.

        Each component is (output array, [(input array, radius), ...]);
        component inputs must be disjoint for Algorithm 2 to separate them.
        """
        k = "k"
        stmts: List[ast.Stmt] = []
        coeffs: List[float] = []
        arrays: List[str] = []
        written: Set[str] = set()
        scalar_idx = 0
        max_radius = 0
        for out, ins in components:
            value: Optional[ast.Expr] = None
            for array, radius in ins:
                max_radius = max(max_radius, radius)
                coeff = round(0.15 + 0.08 * scalar_idx, 6)
                coeffs.append(coeff)
                term = b.mul(
                    b.ident(f"c{scalar_idx}"), self._stencil_sum(array, radius, k, 1.0)
                )
                scalar_idx += 1
                value = term if value is None else b.add(value, term)
                if array not in arrays:
                    arrays.append(array)
            assert value is not None
            stmts.append(self._write(out, k, value))
            written.add(out)
            if out not in arrays:
                arrays.insert(0, out)
        arrays = sorted(set(arrays), key=arrays.index)
        body = [b.for_("k", 0, "nz", stmts)]
        params, _ = self._params_for(arrays, written, extra_scalars=scalar_idx)
        kernel = b.kernel(
            name,
            params,
            self._index_decls()
            + [b.if_(self._interior_guard(max_radius), body)],
        )
        return self._register(kernel, arrays, coeffs)

    def deep_loop_kernel(
        self, name: str, out: str, ins: Sequence[Tuple[str, int]], inner_trips: int = 4
    ) -> str:
        """A kernel with a nested inner loop (the SCALE-LES gap driver)."""
        k = "k"
        radius = max((r for _, r in ins), default=0)
        inner_stmts: List[ast.Stmt] = []
        coeffs: List[float] = []
        for idx, (array, r) in enumerate(ins):
            coeff = round(0.1 + 0.05 * idx, 6)
            coeffs.append(coeff)
            inner_stmts.append(
                b.assign(
                    "acc",
                    b.add(
                        "acc",
                        b.mul(
                            b.ident(f"c{idx}"),
                            b.mul(
                                self._stencil_sum(array, r, k, 1.0),
                                b.add(b.mul("m", 0.25), 1.0),
                            ),
                        ),
                    ),
                )
            )
        loop_body: List[ast.Stmt] = [
            b.decl("double", "acc", 0.0),
            b.for_("m", 0, inner_trips, inner_stmts),
            self._write(out, k, b.ident("acc")),
        ]
        body = [b.for_("k", 0, "nz", loop_body)]
        arrays = [out] + [a for a, _ in ins if a != out]
        params, _ = self._params_for(arrays, {out}, extra_scalars=len(ins))
        kernel = b.kernel(
            name,
            params,
            self._index_decls() + [b.if_(self._interior_guard(radius), body)],
        )
        self.deep_loop_kernels.append(name)
        return self._register(kernel, arrays, coeffs)

    def latency_kernel(self, name: str, out: str, src: str) -> str:
        """A tiny-grid kernel that *looks* memory-bound (Fluam anomaly)."""
        result = self.pointwise_kernel(name, out, [src], with_loop=True)
        self.latency_kernels.append(name)
        self.custom_launch[name] = ((1, 1, 1), (16, 4, 1))
        return result

    def _tile_prologue(self) -> List[ast.Stmt]:
        """tx/ty/i/j index declarations for blockDim-tiled kernels."""
        return [
            b.decl("int", "tx", b.thread_idx("x")),
            b.decl("int", "ty", b.thread_idx("y")),
            b.decl("int", "i", b.add(b.mul(b.block_idx("x"), b.block_dim("x")), "tx")),
            b.decl("int", "j", b.add(b.mul(b.block_idx("y"), b.block_dim("y")), "ty")),
        ]

    def shared_tile_kernel(
        self, name: str, out: str, src: str, radius: int = 1
    ) -> str:
        """Stage a blockDim-sized tile through ``__shared__`` memory.

        The global read is unguarded, so ``out``/``src`` must be 2D arrays
        on an exact-fit domain (``nx`` and ``ny`` multiples of the block).
        Batchable when ``out != src``, so the compiled mode runs it on the
        batched lattice.
        """
        bx, by, _ = self.spec.block
        r = max(1, min(radius, (min(bx, by) - 1) // 2))
        center = b.idx("t", "tx", "ty")
        value: ast.Expr = b.sub(
            b.add(
                b.add(b.idx("t", b.sub("tx", r), "ty"), b.idx("t", b.add("tx", r), "ty")),
                b.add(b.idx("t", "tx", b.sub("ty", r)), b.idx("t", "tx", b.add("ty", r))),
            ),
            b.mul(4.0, center),
        )
        body: List[ast.Stmt] = self._tile_prologue() + [
            b.decl("double", "t", shared=True, dims=(bx, by)),
            b.assign(b.idx("t", "tx", "ty"), b.idx(src, "i", "j")),
            b.sync(),
            b.if_(
                b.logical_and(
                    b.ge("tx", r), b.lt("tx", bx - r),
                    b.ge("ty", r), b.lt("ty", by - r),
                ),
                [b.assign(b.idx(out, "i", "j"), value)],
            ),
        ]
        arrays = [out, src] if out != src else [out]
        params, _ = self._params_for(arrays, {out})
        kernel = b.kernel(name, params, body)
        self.shared_kernels.append(name)
        return self._register(kernel, arrays, [])

    def inplace_shared_kernel(self, name: str, array: str) -> str:
        """Race-prone archetype: in-place update through a shared tile.

        The global read+write conflict on one array means the batched
        lattice cannot reproduce the block loop's write visibility, so
        ``auto``/``batched``/``compiled`` must all degrade this kernel to
        the per-block loop — yet every thread touches only its own
        element, so all modes still agree bitwise.  ``array`` must be 2D
        on an exact-fit domain.
        """
        bx, by, _ = self.spec.block
        body: List[ast.Stmt] = self._tile_prologue() + [
            b.decl("double", "t", shared=True, dims=(bx, by)),
            b.assign(b.idx("t", "tx", "ty"), b.idx(array, "i", "j")),
            b.sync(),
            b.assign(
                b.idx(array, "i", "j"),
                b.add(b.mul(b.idx("t", "tx", "ty"), 0.5), 1.0),
            ),
        ]
        params, _ = self._params_for([array], {array})
        kernel = b.kernel(name, params, body)
        self.shared_kernels.append(name)
        self.fallback_kernels.append(name)
        return self._register(kernel, [array], [])

    def maybe_defined_kernel(self, name: str, out: str, src: str) -> str:
        """Unlowerable archetype: a conditionally-assigned scalar read.

        ``w`` is written on only one branch path; the kernel lowerer
        refuses maybe-defined reads (:class:`~repro.errors.LoweringError`)
        so the compiled mode must negatively cache the kernel and fall
        back to tree-walking interpretation.  The thread-(0,0) disjunct
        guarantees every block has an assigning thread, keeping the read
        defined in every execution mode.  2D arrays, exact-fit domain.
        Note the undeclared ``w`` (like the compiler tests' MAYBE
        exemplar) passes the parser and interpreter but not the stricter
        :func:`~repro.cudalite.check_program`.
        """
        body: List[ast.Stmt] = self._tile_prologue() + [
            b.if_(
                ast.Binary(
                    "||",
                    ast.Binary(">", b.idx(src, "i", "j"), b.lit(0.5)),
                    ast.Binary("==", b.add("tx", "ty"), b.lit(0)),
                ),
                [b.assign("w", b.mul(b.idx(src, "i", "j"), 2.0))],
            ),
            b.assign(b.idx(out, "i", "j"), b.add(b.ident("w"), 1.0)),
        ]
        arrays = [out, src] if out != src else [out]
        params, _ = self._params_for(arrays, {out})
        kernel = b.kernel(name, params, body)
        self.fallback_kernels.append(name)
        return self._register(kernel, arrays, [])

    # ------------------------------------------------------------------- host

    def build(self) -> GeneratedApp:
        """Assemble the host driver and return the generated application."""
        nx, ny, nz = self.nx, self.ny, self.nz
        bx, by, bz = self.spec.block
        gx = -(-nx // bx)
        gy = -(-ny // by)
        stmts: List[ast.Stmt] = [
            b.decl("int", "nx", nx),
            b.decl("int", "ny", ny),
            b.decl("int", "nz", nz),
        ]
        for array in self.arrays:
            dims = self.array_dims[array]
            alloc = {
                3: b.call("cudaMalloc3D", "nx", "ny", "nz"),
                2: b.call("cudaMalloc2D", "nx", "ny"),
                1: b.call("cudaMalloc1D", "nx"),
            }[dims]
            stmts.append(
                ast.VarDecl(ast.TypeSpec("double", is_pointer=True), array, alloc)
            )
        for seed, array in enumerate(self.arrays):
            stmts.append(
                ast.ExprStmt(b.call("deviceRandom", array, seed + 11))
            )
        stmts.append(ast.VarDecl(ast.TypeSpec("dim3"), "grid", b.call("dim3", gx, gy, 1)))
        stmts.append(ast.VarDecl(ast.TypeSpec("dim3"), "block", b.call("dim3", bx, by, bz)))
        for kernel_name, arrays, scalars in self.launch_args:
            scalar_exprs: List[ast.Expr] = []
            for value in scalars:
                if isinstance(value, int) or float(value).is_integer() and abs(value) > 4:
                    # sizes are ints; coefficients stay floats
                    pass
            kernel = next(kdef for kdef in self.kernels if kdef.name == kernel_name)
            scalar_params = kernel.scalar_params()
            for param, value in zip(scalar_params, scalars):
                if param.type.base == "int":
                    if param.name == "nx":
                        scalar_exprs.append(b.ident("nx"))
                    elif param.name == "ny":
                        scalar_exprs.append(b.ident("ny"))
                    elif param.name == "nz":
                        scalar_exprs.append(b.ident("nz"))
                    else:
                        scalar_exprs.append(ast.IntLit(int(value)))
                else:
                    scalar_exprs.append(ast.FloatLit(float(value)))
            args = [b.ident(a) for a in arrays] + scalar_exprs
            if kernel_name in self.custom_launch:
                cgrid, cblock = self.custom_launch[kernel_name]
                stmts.append(b.launch(kernel_name, cgrid, cblock, args))
            else:
                stmts.append(b.launch(kernel_name, b.ident("grid"), b.ident("block"), args))
        stmts.append(ast.ExprStmt(b.call("cudaDeviceSynchronize")))
        stmts.append(ast.Return(ast.IntLit(0)))
        program = b.program(list(self.kernels) + [b.host_main(stmts)])
        return GeneratedApp(
            spec=self.spec,
            program=program,
            latency_kernels=tuple(self.latency_kernels),
            deep_loop_kernels=tuple(self.deep_loop_kernels),
            shared_kernels=tuple(self.shared_kernels),
            fallback_kernels=tuple(self.fallback_kernels),
        )

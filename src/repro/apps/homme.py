"""HOMME stand-in: CAM's dynamical core (§6.1.1).

~43 kernels over 30 arrays, 22 of them memory-bound fusion targets.  The
distinguishing structural feature is the *variety of loop bounds and guard
extents* across kernels — the source of the intra-warp divergence the
paper traces HOMME's automated-vs-manual gap to (Fig. 7): fused segments
get aligned to common bounds with conditionals, and two-sided guard
emission (automated) diverges more than the manually accumulated
one-sided form.

Problem size: paper 4x260x11 (elements x columns x levels); generator uses
a 16x64x11 grid with level loops of varying depth (11, 10, 8).
"""

from __future__ import annotations

from .base import AppBuilder, AppSpec, GeneratedApp, scaled_spec

SPEC = AppSpec(
    name="HOMME",
    domain=(64, 128, 11),
    block=(16, 4, 1),
    paper_kernels=43,
    paper_arrays=30,
    paper_targets=22,
    paper_new_kernels=9,
    paper_speedup=(1.20, 1.40),
)


def build(scale: float = 1.0, seed: int = 2604) -> GeneratedApp:
    spec = scaled_spec(SPEC, scale)
    builder = AppBuilder(spec, seed=seed)
    rng = builder.rng

    n_arrays = max(8, int(30 * scale))
    n_targets = max(4, int(22 * scale))
    n_boundary = max(1, int(9 * scale))
    n_compute = max(1, int(12 * scale))

    n_state = max(3, n_arrays // 2)
    state = builder.array_pool(n_state, prefix="u")
    tracers = builder.array_pool(n_arrays - n_state, prefix="t")

    kid = 0
    # two combined (almost-fused) dynamics kernels with separable
    # components; their halo reads of each other's outputs WAR-lock
    # whole-kernel fusion, so only fission unlocks the pairwise locality
    # (the reason programmer-guided + fission beats manual fusion, 6.2.2)
    if n_targets >= 6:
        builder.fused_like_kernel(
            "vortdiv",
            [
                (state[j], [(tracers[j], 2), (state[2 + j], 1)])
                for j in range(2)
            ],
        )
        builder.fused_like_kernel(
            "energy",
            [
                (state[2 + j], [(tracers[(j + 1) % 2], 2), (tracers[2 + j], 0)])
                for j in range(2)
            ],
        )
        n_targets -= 2

    # the divergence driver: kernels iterate different vertical extents
    level_bounds = (11, 10, 8)
    recent: list = []
    for n in range(n_targets):
        out = state[rng.randrange(len(state))]
        ins = [(tracers[rng.randrange(len(tracers))], rng.choice((0, 1)))]
        if recent and rng.random() < 0.4:
            src = recent[-1]
            if src != out:
                ins.append((src, 0))
        seen = set()
        ins = [x for x in ins if x[0] != out and (x[0] not in seen and not seen.add(x[0]))]
        if not ins:
            ins = [(tracers[0], 1)]
        builder.stencil_kernel(
            f"H{kid:02d}",
            out,
            ins,
            loop_bound=level_bounds[n % len(level_bounds)],
        )
        kid += 1
        recent.append(out)
        if len(recent) > 4:
            recent.pop(0)

    for n in range(n_boundary):
        builder.boundary_kernel(
            f"HB{kid:02d}",
            state[rng.randrange(len(state))],
            tracers[rng.randrange(len(tracers))],
        )
        kid += 1

    for n in range(n_compute):
        out = tracers[rng.randrange(len(tracers))]
        src = state[rng.randrange(len(state))]
        builder.compute_bound_kernel(f"HC{kid:02d}", out, src)
        kid += 1

    return builder.build()

"""MITgcm stand-in: oceanic general-circulation model (§6.1.1).

The non-hydrostatic setting concentrates the runtime in a 3-D conjugate
gradient pressure solve: a short chain of *simple* stencil kernels applied
repeatedly (Laplacian apply, preconditioner, pointwise vector updates).
~37 kernels over 29 arrays, 14 targets.  Occupancy is already high
(Table 2: 0.95 → 0.96), so block tuning barely moves it — the generator's
kernels are small and register-light.
"""

from __future__ import annotations

from .base import AppBuilder, AppSpec, GeneratedApp, scaled_spec

SPEC = AppSpec(
    name="MITgcm",
    domain=(128, 64, 12),
    block=(16, 16, 1),
    paper_kernels=37,
    paper_arrays=29,
    paper_targets=14,
    paper_new_kernels=6,
    paper_speedup=(1.10, 1.20),
)


def build(scale: float = 1.0, seed: int = 1206) -> GeneratedApp:
    spec = scaled_spec(SPEC, scale)
    builder = AppBuilder(spec, seed=seed)
    rng = builder.rng

    n_arrays = max(8, int(29 * scale))
    cg_rounds = max(1, int(4 * scale))
    n_boundary = max(2, int(15 * scale))
    n_compute = max(1, int(8 * scale))

    vectors = builder.array_pool(max(6, n_arrays - 4), prefix="x")
    coeffs = builder.array_pool(min(4, n_arrays), prefix="c")

    kid = 0
    # CG iterations: Laplacian apply -> preconditioner -> two axpy updates
    for round_idx in range(cg_rounds):
        base = (round_idx * 4) % max(1, len(vectors) - 4)
        p, q, r, z = vectors[base : base + 4]
        coeff = coeffs[round_idx % len(coeffs)]
        builder.stencil_kernel(f"M{kid:02d}", q, [(p, 1), (coeff, 0)])
        kid += 1
        builder.pointwise_kernel(f"M{kid:02d}", z, [q, coeff])
        kid += 1
        builder.pointwise_kernel(f"M{kid:02d}", r, [z, p])
        kid += 1
        builder.stencil_kernel(f"M{kid:02d}", p, [(r, 1)])
        kid += 1
        if kid >= max(4, int(14 * scale)):
            break

    for n in range(n_boundary):
        builder.boundary_kernel(
            f"MB{kid:02d}",
            vectors[rng.randrange(len(vectors))],
            coeffs[rng.randrange(len(coeffs))],
        )
        kid += 1

    for n in range(n_compute):
        out = vectors[rng.randrange(len(vectors))]
        src = coeffs[rng.randrange(len(coeffs))]
        builder.compute_bound_kernel(f"MC{kid:02d}", out, src, intensity=12)
        kid += 1

    return builder.build()

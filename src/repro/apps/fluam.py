"""Fluam stand-in: fluctuating-hydrodynamics solver (§6.1.1).

The largest codebase of the evaluation: ~169 kernels (144 data arrays), of
which only ~42 survive the target filter.  The structural anomaly the
paper reports: a set of *latency-bound* kernels (poor computation/memory
overlap at tiny launch sizes) whose metadata looks memory-bound, so the
automated filter keeps them as targets, bloating the search space and
slowing GGA convergence — only manual filtering removes them (Fig. 8).
"""

from __future__ import annotations

from .base import AppBuilder, AppSpec, GeneratedApp, scaled_spec

SPEC = AppSpec(
    name="Fluam",
    domain=(128, 64, 8),
    block=(32, 2, 1),
    paper_kernels=169,
    paper_arrays=144,
    paper_targets=42,
    paper_new_kernels=17,
    paper_speedup=(1.15, 1.30),
)


def build(scale: float = 1.0, seed: int = 8484) -> GeneratedApp:
    spec = scaled_spec(SPEC, scale)
    builder = AppBuilder(spec, seed=seed)
    rng = builder.rng

    n_arrays = max(10, int(144 * scale))
    n_targets = max(5, int(32 * scale))     # genuinely useful targets
    n_latency = max(2, int(10 * scale))     # false targets (the anomaly)
    n_boundary = max(2, int(60 * scale))
    n_compute = max(2, int(67 * scale))

    n_fluid = max(4, n_arrays // 3)
    fluid = builder.array_pool(n_fluid, prefix="v")
    particles = builder.array_pool(n_arrays - n_fluid, prefix="p")

    kid = 0
    recent: list = []
    for n in range(n_targets):
        out = fluid[rng.randrange(len(fluid))]
        ins = [(fluid[rng.randrange(len(fluid))], rng.choice((0, 1, 1)))]
        if recent and rng.random() < 0.3:
            src = recent[-1]
            if src != out:
                ins.append((src, 0))
        seen = set()
        ins = [x for x in ins if x[0] != out and (x[0] not in seen and not seen.add(x[0]))]
        if not ins:
            ins = [(fluid[(fluid.index(out) + 1) % len(fluid)], 1)]
        builder.stencil_kernel(f"F{kid:03d}", out, ins)
        kid += 1
        recent.append(out)
        if len(recent) > 5:
            recent.pop(0)

    for n in range(n_latency):
        out = particles[rng.randrange(len(particles))]
        src = particles[(particles.index(out) + 1) % len(particles)]
        builder.latency_kernel(f"L{kid:03d}", out, src)
        kid += 1

    for n in range(n_boundary):
        builder.boundary_kernel(
            f"FB{kid:03d}",
            particles[rng.randrange(len(particles))],
            fluid[rng.randrange(len(fluid))],
        )
        kid += 1

    for n in range(n_compute):
        out = particles[rng.randrange(len(particles))]
        src = particles[(particles.index(out) + 1) % len(particles)]
        builder.compute_bound_kernel(f"FC{kid:03d}", out, src, intensity=12)
        kid += 1

    return builder.build()

"""SCALE-LES stand-in: next-generation weather model (§6.1.1).

Structural profile reproduced from the paper: ~142 kernels over 63 data
arrays, most of them memory-bound iterative stencils in the dynamical
core; a minority of boundary-condition and compute-bound (physics) kernels
are filtered out, leaving ~117 fusion targets.  A handful of kernels carry
*deep nested loops*, the known automated-codegen weakness (Fig. 6: K_07,
K_15, K_16, K_23).

Problem size: the paper uses 1280x32x32; the generator defaults to a
reduced 128x32x16 domain (weak-scaling argument, §7 "Sensitivity to
input") so the simulator can verify outputs quickly.
"""

from __future__ import annotations

from .base import AppBuilder, AppSpec, GeneratedApp, scaled_spec

SPEC = AppSpec(
    name="SCALE-LES",
    domain=(256, 64, 16),
    block=(32, 8, 1),
    paper_kernels=142,
    paper_arrays=63,
    paper_targets=117,
    paper_new_kernels=38,
    paper_speedup=(1.30, 1.45),
)


def build(scale: float = 1.0, seed: int = 2015) -> GeneratedApp:
    """Generate the SCALE-LES stand-in.

    ``scale`` in (0, 1] shrinks the kernel/array counts proportionally
    (structure preserved) for fast tests.
    """
    spec = scaled_spec(SPEC, scale)
    builder = AppBuilder(spec, seed=seed)
    rng = builder.rng

    n_arrays = max(8, int(63 * scale))
    n_stencil = max(6, int(111 * scale))
    n_deep = max(1, int(6 * scale))
    n_boundary = max(1, int(15 * scale))
    n_compute = max(1, int(10 * scale))

    # prognostic fields (written), forcing/constant fields (read widely)
    n_forcing = max(3, n_arrays // 6)
    forcing = builder.array_pool(n_forcing, prefix="f")
    fields = builder.array_pool(n_arrays - n_forcing, prefix="q")

    kid = 0
    recent: list = []
    # The dynamical core proceeds in *phases*: each phase's kernels update
    # different prognostic fields from the same few shared inputs (density,
    # pressure, velocities, ...), which is where the reducible inter-kernel
    # traffic the paper quantifies (41% for SCALE-LES) comes from.
    emitted = 0
    while emitted < n_stencil:
        phase_size = min(rng.choice((4, 5, 6)), n_stencil - emitted)
        shared_inputs = rng.sample(forcing, min(2, len(forcing)))
        outs = rng.sample(fields, min(phase_size, len(fields)))
        for slot in range(phase_size):
            out = outs[slot % len(outs)]
            ins = [(arr, rng.choice((1, 1, 2))) for arr in shared_inputs]
            extra = forcing[rng.randrange(len(forcing))]
            if extra not in shared_inputs:
                ins.append((extra, rng.choice((0, 1))))
            # occasional chain on a recently written field (precedence)
            if recent and rng.random() < 0.15:
                src = recent[rng.randrange(len(recent))]
                if src != out and src not in [a for a, _ in ins]:
                    ins.append((src, 0))
            ins = [x for x in ins if x[0] != out]
            if not ins:
                ins = [(forcing[0], 1)]
            builder.stencil_kernel(f"K{kid:03d}", out, ins)
            kid += 1
            emitted += 1
            recent.append(out)
            if len(recent) > 6:
                recent.pop(0)

    for n in range(n_deep):
        out = fields[rng.randrange(len(fields))]
        ins = [
            (forcing[rng.randrange(len(forcing))], 1),
            (forcing[rng.randrange(len(forcing))], 0),
        ]
        seen = set()
        ins = [x for x in ins if x[0] not in seen and not seen.add(x[0])]
        builder.deep_loop_kernel(f"K{kid:03d}", out, ins, inner_trips=4)
        kid += 1

    for n in range(n_boundary):
        out = fields[rng.randrange(len(fields))]
        src = forcing[rng.randrange(len(forcing))]
        builder.boundary_kernel(f"B{kid:03d}", out, src)
        kid += 1

    for n in range(n_compute):
        out = fields[rng.randrange(len(fields))]
        src = fields[(fields.index(out) + 1) % len(fields)]
        builder.compute_bound_kernel(f"C{kid:03d}", out, src)
        kid += 1

    return builder.build()

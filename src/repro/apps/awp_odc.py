"""AWP-ODC-GPU stand-in: earthquake wave propagation (§6.1.1).

Twelve kernels over 24 arrays, only 6 targets — but the kernels are *large*
("already in an almost-fused state"): staggered-grid 4th-order (radius-4
halo) velocity and stress updates, each writing six independent components.
The structure reproduces the paper's signature behaviour:

* plain **fusion finds nothing**: the velocity kernel reads the stress
  arrays with a halo that the stress kernels later overwrite (an
  inter-block WAR hazard), and the two stress kernels together need more
  shared-memory tiles than a Kepler block owns;
* **fission + fusion wins**: splitting the stress kernels into separable
  per-component fragments relaxes the shared-memory boundary, and
  component-level regrouping (fragments of the two stress kernels share
  their velocity/work inputs pairwise) exposes the locality — hence the
  orders-of-magnitude higher fissions-per-generation (Table 1: 1.062).
"""

from __future__ import annotations

from .base import AppBuilder, AppSpec, GeneratedApp, scaled_spec

SPEC = AppSpec(
    name="AWP-ODC-GPU",
    domain=(192, 64, 12),
    block=(32, 8, 1),
    paper_kernels=12,
    paper_arrays=24,
    paper_targets=6,
    paper_new_kernels=3,
    paper_speedup=(1.00, 1.35),
)


def build(scale: float = 1.0, seed: int = 3500) -> GeneratedApp:
    spec = scaled_spec(SPEC, scale)
    builder = AppBuilder(spec, seed=seed)

    # 6 velocity components, 6 work/material fields (read-only),
    # 6 + 6 stress components: 24 arrays
    velocity = [builder.new_array("vel") for _ in range(6)]
    work = [builder.new_array("wrk") for _ in range(6)]
    stress = [builder.new_array("sig") for _ in range(6)]
    stress_b = [builder.new_array("sgb") for _ in range(6)]

    # velocity update: reads both stress families with halos the stress
    # kernels later overwrite -> WAR-locked against whole-kernel fusion
    builder.fused_like_kernel(
        "vel_update",
        [
            (velocity[j], [(stress[j], 4), (stress_b[j], 2)])
            for j in range(6)
        ],
    )
    # stress updates: per-component inputs are disjoint (separable) but the
    # two kernels share them pairwise -> fragment-level locality
    builder.fused_like_kernel(
        "stress_update_a",
        [
            (stress[j], [(velocity[(j + 1) % 6], 4), (work[j], 2)])
            for j in range(6)
        ],
    )
    builder.fused_like_kernel(
        "stress_update_b",
        [
            (stress_b[j], [(velocity[(j + 1) % 6], 4), (work[j], 2)])
            for j in range(6)
        ],
    )
    # attenuation accumulation: same sharing pattern, smaller halo
    builder.fused_like_kernel(
        "atten_update",
        [
            (stress_b[j], [(velocity[(j + 1) % 6], 2), (work[j], 0)])
            for j in range(3)
        ],
    )
    # two regular stencil kernels
    builder.stencil_kernel("src_inject", stress[0], [(velocity[1], 1)])
    builder.stencil_kernel("sponge", velocity[0], [(work[0], 1)])

    # excluded kernels: ghost-cell boundary exchanges and compute-bound setup
    for idx in range(4):
        builder.boundary_kernel(f"ghost{idx}", stress_b[idx], stress[idx])
    builder.compute_bound_kernel("material_setup", stress[5], work[5])
    builder.compute_bound_kernel("cerjan_coeff", stress_b[5], work[4])

    return builder.build()

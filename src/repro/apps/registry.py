"""Registry of the six application generators (§6.1.1)."""

from __future__ import annotations

from typing import Callable, Dict, List

from . import awp_odc, bcalm, fluam, homme, mitgcm, scale_les
from .base import GeneratedApp

#: name -> build(scale, seed) callable
APPS: Dict[str, Callable[..., GeneratedApp]] = {
    "SCALE-LES": scale_les.build,
    "HOMME": homme.build,
    "Fluam": fluam.build,
    "MITgcm": mitgcm.build,
    "AWP-ODC-GPU": awp_odc.build,
    "B-CALM": bcalm.build,
}

SPECS = {
    "SCALE-LES": scale_les.SPEC,
    "HOMME": homme.SPEC,
    "Fluam": fluam.SPEC,
    "MITgcm": mitgcm.SPEC,
    "AWP-ODC-GPU": awp_odc.SPEC,
    "B-CALM": bcalm.SPEC,
}

APP_NAMES: List[str] = list(APPS)


def build_app(name: str, scale: float = 1.0, seed: int = 0) -> GeneratedApp:
    """Build one application by name (seed 0 uses each app's default)."""
    builder = APPS[name]
    if seed:
        return builder(scale=scale, seed=seed)
    return builder(scale=scale)

"""repro.api — the stable Python entry point for the framework.

One call transforms an application::

    from repro.api import TransformConfig, transform

    result = transform("Fluam", TransformConfig(device="K20X"))
    print(result.speedup, result.verified)
    print(result.source)          # the transformed CUDA(Lite) program

:class:`TransformConfig` consolidates every knob that used to live in a
scattered set of ``REPRO_*`` environment variables (search parallelism,
fitness memoization, verification, interpreter strategy, telemetry, the
persistent artifact store).  Precedence is always

    explicit config field  >  environment variable  >  built-in default

and :meth:`TransformConfig.resolved` materializes that chain into a fully
concrete configuration (recorded verbatim in ``run.json``).  Setting a
legacy knob through the environment still works but emits an
:class:`EnvKnobDeprecationWarning` pointing at the config field that
replaces it.

Underneath :func:`transform` sits a job-oriented core::

    job = submit("Fluam", TransformConfig(device="K20X"))
    print(job.status())           # 'pending' | 'running' | 'done' | 'failed'
    result = job.result()         # blocks; re-raises the job's error

:func:`submit` validates the request up front, computes its
content-addressed ``key`` (the identity ``repro.service`` deduplicates
on) and schedules the pipeline on this process's job-worker thread;
:func:`status` and :func:`result` look jobs up by handle or id.
:func:`transform` is the synchronous facade: ``submit(...,
inline=True).result()``.
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import threading
import warnings
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, Optional, Tuple, Union

from .cudalite import ast_nodes as ast
from .cudalite.parser import parse_program
from .cudalite.unparser import unparse
from .errors import ConfigError, JobNotFound, PipelineError, ReproError
from .gpu.device import DeviceSpec, available_devices, query_device
from .observability.metrics import get_registry
from .observability.runinfo import build_run_manifest, write_run_manifest
from .observability.runtime import telemetry, telemetry_enabled
from .observability.tracing import get_tracer
from .pipeline.framework import Framework
from .pipeline.stages import STAGES, PipelineConfig, PipelineState
from .search.params import GAParams, fast_params
from .store.artifact_store import (
    ArtifactStore,
    default_store_root,
    open_store,
    store_enabled_from_env,
)

__all__ = [
    "EnvKnobDeprecationWarning",
    "JobHandle",
    "TransformConfig",
    "TransformResult",
    "result",
    "status",
    "submit",
    "transform",
]

logger = logging.getLogger(__name__)


class EnvKnobDeprecationWarning(DeprecationWarning):
    """A legacy ``REPRO_*`` environment knob supplied a configuration value.

    The environment path keeps working (scripts and CI jobs do not break),
    but the corresponding :class:`TransformConfig` field is the supported
    spelling going forward.
    """


_FALSY = {"0", "false", "off", "no"}


def _parse_bool(raw: str) -> bool:
    return raw.strip().lower() not in _FALSY


def _serialize_bool(value: bool) -> str:
    return "1" if value else "0"


def _parse_optional_float(raw: str) -> Optional[float]:
    value = float(raw)
    return value if value > 0 else None


def _serialize_optional(value: object) -> str:
    return "" if value is None else str(value)


@dataclass(frozen=True)
class _EnvKnob:
    """One environment-backed configuration field."""

    env: str
    parse: Callable[[str], object]
    serialize: Callable[[object], str]
    default: object
    #: pre-existing knob — reading it from the environment warns
    legacy: bool = True


#: every environment-backed TransformConfig field, in declaration order
ENV_KNOBS: Dict[str, _EnvKnob] = {
    "fitness_cache": _EnvKnob(
        "REPRO_FITNESS_CACHE", _parse_bool, _serialize_bool, True
    ),
    "fitness_cache_size": _EnvKnob(
        "REPRO_FITNESS_CACHE_SIZE", int, str, 1_048_576
    ),
    "search_workers": _EnvKnob("REPRO_SEARCH_WORKERS", int, str, 0),
    "search_executor": _EnvKnob(
        "REPRO_SEARCH_EXECUTOR", lambda raw: raw.strip().lower(), str, "thread"
    ),
    "eval_timeout": _EnvKnob(
        "REPRO_EVAL_TIMEOUT", _parse_optional_float, _serialize_optional, None
    ),
    "eval_retries": _EnvKnob("REPRO_EVAL_RETRIES", int, str, 1),
    "verify_groups": _EnvKnob(
        "REPRO_VERIFY_GROUPS", _parse_bool, _serialize_bool, True
    ),
    "verify_seed": _EnvKnob("REPRO_VERIFY_SEED", int, str, 0),
    "verify_rtol": _EnvKnob("REPRO_VERIFY_RTOL", float, str, 0.0),
    "block_exec": _EnvKnob(
        "REPRO_BLOCK_EXEC", lambda raw: raw.strip().lower(), str, "auto"
    ),
    # telemetry and the store are first-class environment switches (CI
    # and shells toggle them per-run); no deprecation warning
    "telemetry": _EnvKnob(
        "REPRO_TELEMETRY", _parse_bool, _serialize_bool, True, legacy=False
    ),
    # island-model search knobs (new; no deprecation path).  Default None
    # = defer to the GAParams value, so an unset config never clobbers an
    # explicit GA parameter file.
    "islands": _EnvKnob(
        "REPRO_ISLANDS", int, _serialize_optional, None, legacy=False
    ),
    "migration_interval": _EnvKnob(
        "REPRO_ISLANDS_MIGRATION_INTERVAL",
        int,
        _serialize_optional,
        None,
        legacy=False,
    ),
    "migration_size": _EnvKnob(
        "REPRO_ISLANDS_MIGRATION_SIZE",
        int,
        _serialize_optional,
        None,
        legacy=False,
    ),
    "surrogate_topk": _EnvKnob(
        "REPRO_ISLANDS_SURROGATE_TOPK",
        float,
        _serialize_optional,
        None,
        legacy=False,
    ),
}

ENV_STORE = "REPRO_STORE"


@dataclass
class TransformConfig:
    """Complete configuration of one transformation run.

    Two kinds of fields:

    * plain fields (``device`` … ``trace_out``) have ordinary defaults;
    * environment-backed fields (``fitness_cache`` … ``store_root``)
      default to ``None`` meaning *unset* — :meth:`resolved` fills each
      from its legacy ``REPRO_*`` variable when present, else from the
      built-in default.  An explicitly assigned value always wins.
    """

    # ------------------------------------------------- plain fields
    #: device model name (see ``repro.gpu.device.available_devices``)
    device: Union[str, DeviceSpec] = "K20X"
    #: 'automated' | 'guided' | 'manual' (§6.2.2)
    mode: str = "automated"
    #: GA random seed (used when ``ga_params`` is not given)
    seed: int = 12345
    #: full GA parameter set; ``None`` = ``fast_params(seed)``
    ga_params: Optional[GAParams] = None
    #: stop after this stage (``None`` = run everything)
    until: Optional[str] = None
    #: kernels manually excluded from the search
    exclude: Tuple[str, ...] = ()
    #: roofline/boundary target filtering (§3.2.2)
    filtering: bool = True
    #: kernel fission (lazy fission encoding)
    fission: bool = True
    #: thread-block tuning (§4.2)
    tuning: bool = True
    #: whole-program output verification on the interpreter
    verify: bool = True
    #: abort on search/verification failure instead of degrading
    fail_hard: bool = False
    #: directory for stage artifacts, reports and ``run.json``
    workdir: Optional[str] = None
    #: end-of-run metrics destination (.json or .prom)
    metrics_out: Optional[str] = None
    #: Chrome trace-event destination
    trace_out: Optional[str] = None

    # ------------------------- environment-backed fields (None = unset)
    #: memoize GGA fitness by partition content (REPRO_FITNESS_CACHE)
    fitness_cache: Optional[bool] = None
    #: max retained fitness entries (REPRO_FITNESS_CACHE_SIZE)
    fitness_cache_size: Optional[int] = None
    #: parallel fitness workers, 0 = auto (REPRO_SEARCH_WORKERS)
    search_workers: Optional[int] = None
    #: 'thread' | 'process' (REPRO_SEARCH_EXECUTOR)
    search_executor: Optional[str] = None
    #: per-evaluation timeout in seconds, 0 = none (REPRO_EVAL_TIMEOUT)
    eval_timeout: Optional[float] = None
    #: evaluation retry budget (REPRO_EVAL_RETRIES)
    eval_retries: Optional[int] = None
    #: per-group verification gate (REPRO_VERIFY_GROUPS)
    verify_groups: Optional[bool] = None
    #: verification input-synthesis seed (REPRO_VERIFY_SEED)
    verify_seed: Optional[int] = None
    #: 0 = bitwise comparison, >0 = allclose rtol (REPRO_VERIFY_RTOL)
    verify_rtol: Optional[float] = None
    #: interpreter strategy: 'auto' | 'loop' | 'batched' | 'compiled'
    #: (REPRO_BLOCK_EXEC)
    block_exec: Optional[str] = None
    #: observability layer on/off (REPRO_TELEMETRY)
    telemetry: Optional[bool] = None
    #: GGA island subpopulations, 1 = classic single-population search
    #: (REPRO_ISLANDS); ``None`` defers to the GA parameter set
    islands: Optional[int] = None
    #: generations between elite migrations
    #: (REPRO_ISLANDS_MIGRATION_INTERVAL)
    migration_interval: Optional[int] = None
    #: elites exchanged per migration epoch (REPRO_ISLANDS_MIGRATION_SIZE)
    migration_size: Optional[int] = None
    #: fraction of offspring admitted to exact evaluation after surrogate
    #: ranking, 1.0 = pre-filter off (REPRO_ISLANDS_SURROGATE_TOPK)
    surrogate_topk: Optional[float] = None
    #: persistent cross-run artifact store (REPRO_STORE opts in)
    store: Optional[bool] = None
    #: store root directory (default ``~/.cache/repro``)
    store_root: Optional[str] = None

    # ----------------------------------------------------- validation

    def __post_init__(self) -> None:
        if isinstance(self.exclude, list):
            self.exclude = tuple(self.exclude)
        if self.mode not in ("automated", "guided", "manual"):
            raise ConfigError(f"unknown mode {self.mode!r}")
        if self.until is not None and self.until not in STAGES:
            raise ConfigError(
                f"unknown stage {self.until!r} (expected one of {STAGES})"
            )
        if isinstance(self.device, str) and self.device not in available_devices():
            raise ConfigError(
                f"unknown device {self.device!r} "
                f"(available: {sorted(available_devices())})"
            )
        if self.search_executor is not None and self.search_executor not in (
            "thread",
            "process",
        ):
            raise ConfigError(
                f"search_executor must be 'thread' or 'process', "
                f"not {self.search_executor!r}"
            )
        if self.block_exec is not None and self.block_exec not in (
            "auto",
            "loop",
            "batched",
            "compiled",
        ):
            raise ConfigError(
                f"block_exec must be 'auto', 'loop', 'batched' or "
                f"'compiled', not {self.block_exec!r}"
            )
        if self.islands is not None and self.islands < 1:
            raise ConfigError("islands must be >= 1")
        if self.migration_interval is not None and self.migration_interval < 1:
            raise ConfigError("migration_interval must be >= 1")
        if self.migration_size is not None and self.migration_size < 1:
            raise ConfigError("migration_size must be >= 1")
        if self.surrogate_topk is not None and not (
            0.0 < self.surrogate_topk <= 1.0
        ):
            raise ConfigError("surrogate_topk must be in (0, 1]")

    # ---------------------------------------------------- env round-trip

    @classmethod
    def from_env(
        cls, environ: Optional[Dict[str, str]] = None, **overrides: Any
    ) -> "TransformConfig":
        """Build a config from the current ``REPRO_*`` environment.

        Every environment-backed field is read explicitly (no deprecation
        warnings — this *is* the migration helper); ``overrides`` are
        applied on top.
        """
        env = os.environ if environ is None else environ
        values: Dict[str, Any] = {}
        for name, knob in ENV_KNOBS.items():
            raw = env.get(knob.env)
            if raw is None or not raw.strip():
                continue
            try:
                values[name] = knob.parse(raw)
            except (TypeError, ValueError):
                continue
        if store_enabled_from_env(env):
            values["store"] = True
            values["store_root"] = default_store_root(env)
        elif (env.get(ENV_STORE) or "").strip():
            values["store"] = False
        values.update(overrides)
        return cls(**values)

    def to_env(self) -> Dict[str, str]:
        """The environment assignments equivalent to the *set* fields.

        Round-trips with :meth:`from_env`: unset (``None``) fields are
        omitted, so applying the result leaves their env state untouched.
        """
        env: Dict[str, str] = {}
        for name, knob in ENV_KNOBS.items():
            value = getattr(self, name)
            if value is not None:
                env[knob.env] = knob.serialize(value)
        if self.store is not None:
            if self.store:
                env[ENV_STORE] = str(
                    Path(self.store_root or default_store_root()).expanduser()
                )
            else:
                env[ENV_STORE] = "0"
        return env

    def resolved(self, environ: Optional[Dict[str, str]] = None) -> "TransformConfig":
        """Materialize ``explicit > env > default`` into concrete values.

        Reading a *legacy* knob from the environment emits an
        :class:`EnvKnobDeprecationWarning` naming the replacement field.
        """
        env = os.environ if environ is None else environ
        values: Dict[str, Any] = {}
        for name, knob in ENV_KNOBS.items():
            if getattr(self, name) is not None:
                continue
            raw = env.get(knob.env)
            value = knob.default
            if raw is not None and raw.strip():
                try:
                    value = knob.parse(raw)
                except (TypeError, ValueError):
                    value = knob.default
                else:
                    if knob.legacy:
                        warnings.warn(
                            f"{knob.env} is deprecated; set "
                            f"TransformConfig.{name} instead",
                            EnvKnobDeprecationWarning,
                            stacklevel=2,
                        )
            values[name] = value
        if self.store is None:
            values["store"] = store_enabled_from_env(env)
        if self.store_root is None:
            values["store_root"] = default_store_root(env)
        return replace(self, **values)

    # --------------------------------------------------- file round-trip

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TransformConfig":
        """Build a config from a plain dict (e.g. a parsed config file)."""
        if not isinstance(data, dict):
            raise ConfigError("config must be a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown config field(s): {', '.join(sorted(unknown))}"
            )
        values = dict(data)
        ga = values.get("ga_params")
        if isinstance(ga, dict):
            values["ga_params"] = _ga_params_from_dict(ga)
        if "exclude" in values and values["exclude"] is not None:
            values["exclude"] = tuple(values["exclude"])
        try:
            return cls(**values)
        except TypeError as exc:
            raise ConfigError(f"invalid config: {exc}") from None

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "TransformConfig":
        """Load a JSON config file (the CLI's ``--config``)."""
        try:
            data = json.loads(Path(path).read_text())
        except OSError as exc:
            raise ConfigError(f"cannot read config file {path}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise ConfigError(f"config file {path} is not valid JSON: {exc}") from None
        return cls.from_dict(data)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable dict (round-trips through :meth:`from_dict`)."""
        data: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "ga_params" and value is not None:
                value = asdict(value)
            elif f.name == "device" and isinstance(value, DeviceSpec):
                value = value.name
            elif isinstance(value, tuple):
                value = list(value)
            data[f.name] = value
        return data

    def to_json(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    # ------------------------------------------------------- execution

    def device_spec(self) -> DeviceSpec:
        if isinstance(self.device, DeviceSpec):
            return self.device
        return query_device(self.device)

    def resolved_ga_params(self) -> GAParams:
        params = self.ga_params or fast_params(seed=self.seed)
        overrides: Dict[str, Any] = {}
        for name in (
            "islands",
            "migration_interval",
            "migration_size",
            "surrogate_topk",
        ):
            value = getattr(self, name)
            if value is not None:
                overrides[name] = value
        return replace(params, **overrides) if overrides else params

    def pipeline_config(
        self, store: Optional[ArtifactStore] = None
    ) -> PipelineConfig:
        """The :class:`PipelineConfig` this (resolved) config describes."""
        return PipelineConfig(
            device=self.device_spec(),
            mode=self.mode,
            ga_params=self.resolved_ga_params(),
            manual_exclusions=tuple(self.exclude),
            disable_filtering=not self.filtering,
            enable_fission=self.fission,
            tune_blocks=self.tuning,
            verify=self.verify,
            verify_groups=bool(self.verify_groups),
            fail_soft=not self.fail_hard,
            workdir=self.workdir,
            store=store,
        )

    @contextmanager
    def applied_env(self) -> Iterator[None]:
        """Export the environment-backed fields for the run's duration.

        Deep configuration readers (the parallel evaluator, the
        verification gate, the interpreter) resolve ``REPRO_*`` at use
        time; scoping the resolved values into the environment makes the
        config authoritative for them — and for any worker processes they
        spawn — without threading a config object through every layer.
        """
        assignments = self.to_env()
        saved = {name: os.environ.get(name) for name in assignments}
        os.environ.update(assignments)
        try:
            yield
        finally:
            for name, value in saved.items():
                if value is None:
                    os.environ.pop(name, None)
                else:
                    os.environ[name] = value


def _ga_params_from_dict(data: Dict[str, Any]) -> GAParams:
    from .search.penalty import PenaltyParams

    values = dict(data)
    known = {f.name for f in fields(GAParams)}
    unknown = set(values) - known
    if unknown:
        raise ConfigError(
            f"unknown ga_params field(s): {', '.join(sorted(unknown))}"
        )
    penalties = values.get("penalties")
    if isinstance(penalties, dict):
        try:
            values["penalties"] = PenaltyParams(**penalties)
        except TypeError as exc:
            raise ConfigError(f"invalid ga_params.penalties: {exc}") from None
    try:
        return GAParams(**values)
    except TypeError as exc:
        raise ConfigError(f"invalid ga_params: {exc}") from None


# ------------------------------------------------------------------ result


@dataclass
class TransformResult:
    """Outcome of one :func:`transform` call."""

    #: full pipeline state (every stage artifact)
    state: PipelineState
    #: the fully resolved configuration that produced this result
    config: TransformConfig
    #: combined human-readable stage report
    report: str
    #: wall time per completed stage, in execution order
    stage_times: Dict[str, float] = field(default_factory=dict)

    @property
    def program(self) -> Optional[ast.Program]:
        """The transformed program (``None`` before the codegen stage)."""
        if self.state.transform is None:
            return None
        return self.state.transform.program

    @property
    def source(self) -> Optional[str]:
        """The transformed program's text."""
        program = self.program
        return None if program is None else unparse(program)

    @property
    def speedup(self) -> Optional[float]:
        try:
            return self.state.speedup
        except PipelineError:
            return None

    @property
    def verified(self) -> Optional[bool]:
        return self.state.verified

    @property
    def reused(self) -> Dict[str, str]:
        """Stage/artifact reuse provenance (empty on a cold run)."""
        return dict(self.state.reused)

    @property
    def reports(self) -> Dict[str, str]:
        return dict(self.state.reports)


# ------------------------------------------------------------------ facade


def _coerce_program(app_or_program: object) -> Tuple[ast.Program, str]:
    """Accept a Program, app name, source path, source text or GeneratedApp.

    Returns ``(program, source_label)`` — the label lands in ``run.json``.
    """
    if isinstance(app_or_program, ast.Program):
        return app_or_program, "<program>"
    program = getattr(app_or_program, "program", None)
    if isinstance(program, ast.Program):  # GeneratedApp
        name = getattr(app_or_program, "name", "<app>")
        return program, f"app:{name}"
    if isinstance(app_or_program, Path):
        return parse_program(app_or_program.read_text()), str(app_or_program)
    if isinstance(app_or_program, str):
        from .apps import APP_NAMES, build_app

        if app_or_program in APP_NAMES:
            return build_app(app_or_program).program, f"app:{app_or_program}"
        if "\n" not in app_or_program and Path(app_or_program).is_file():
            return (
                parse_program(Path(app_or_program).read_text()),
                app_or_program,
            )
        return parse_program(app_or_program), "<source>"
    raise ConfigError(
        f"cannot transform a {type(app_or_program).__name__}; expected a "
        "Program, app name, source path, source text or GeneratedApp"
    )


def _store_provenance(
    state: Optional[PipelineState], store: Optional[ArtifactStore]
) -> Dict[str, object]:
    if store is None:
        return {"enabled": False}
    return {
        "enabled": True,
        "root": str(store.root),
        "reused_stages": dict(state.reused) if state is not None else {},
        "stats": store.stats.as_dict(),
    }


def _compiler_provenance() -> Dict[str, int]:
    """Kernel-compiler cache counters (process-cumulative) for run.json."""
    from .gpu import compiler

    return compiler.stats().as_dict()


def _outcome_of(
    state: Optional[PipelineState],
) -> Tuple[Optional[float], Optional[bool], int]:
    """(speedup, verified, demotions) from a possibly-partial state."""
    speedup = None
    verified = None
    demotions = 0
    if state is not None:
        verified = state.verified
        if state.transform is not None:
            demotions = len(state.transform.demotions)
            try:
                speedup = state.speedup
            except PipelineError:
                speedup = None
    return speedup, verified, demotions


def _ledger_append(
    config: TransformConfig,
    source_label: str,
    framework: Optional[Framework],
    store: Optional[ArtifactStore],
    exit_code: int,
) -> None:
    """Append this run to the store's run ledger.

    Strictly fail-soft bookkeeping: skipped entirely when telemetry is
    off or no store is attached, and a failed append degrades to a
    warning — a run must never break on its own history.
    """
    if store is None or not telemetry_enabled():
        return
    from .observability.ledger import append_record, build_transform_record
    from .observability.trace_analytics import summarize_spans

    state = framework.state if framework is not None else None
    speedup, verified, demotions = _outcome_of(state)
    try:
        record = build_transform_record(
            source=source_label,
            config=config.to_dict(),
            seed=config.seed,
            stage_times=(
                framework.stage_times if framework is not None else {}
            ),
            speedup=speedup,
            verified=verified,
            demotions=demotions,
            exit_code=exit_code,
            reused=dict(state.reused) if state is not None else {},
            store_stats=store.stats.as_dict(),
            counters=get_registry().counter_totals(),
            trace=summarize_spans(get_tracer().spans()),
        )
        append_record(store, record)
    except Exception as exc:  # noqa: BLE001 - bookkeeping is best-effort
        logger.warning("ledger: could not append run record (%s)", exc)


def write_run_outputs(
    config: TransformConfig,
    source_label: str,
    framework: Optional[Framework],
    store: Optional[ArtifactStore],
    exit_code: int,
    error: Optional[Dict[str, object]] = None,
) -> None:
    """Persist ``run.json`` (+ optional metrics/trace files) for one run.

    Runs on success *and* on the failure path, so failed runs leave a
    machine-readable diagnostic; skipped when telemetry is off or when no
    destination (workdir / metrics_out / trace_out) was configured.
    """
    if not telemetry_enabled():
        return
    if not (config.workdir or config.metrics_out or config.trace_out):
        # don't surprise the caller with a run.json in their cwd
        return
    state = framework.state if framework is not None else None
    speedup, verified, demotions = _outcome_of(state)
    run_dir = Path(config.workdir) if config.workdir else Path(".")
    run_dir.mkdir(parents=True, exist_ok=True)
    manifest = build_run_manifest(
        source=source_label,
        config=config.to_dict(),
        stage_times=framework.stage_times if framework is not None else {},
        reports=dict(state.reports) if state is not None else {},
        speedup=speedup,
        verified=verified,
        demotions=demotions,
        exit_code=exit_code,
        error=error,
        extra={
            "store": _store_provenance(state, store),
            "compiled_kernels": _compiler_provenance(),
        },
    )
    write_run_manifest(str(run_dir / "run.json"), manifest)
    if config.metrics_out:
        registry = get_registry()
        if config.metrics_out.endswith(".prom"):
            registry.write_prometheus(config.metrics_out)
        else:
            registry.write_json(config.metrics_out)
    if config.trace_out:
        get_tracer().write(config.trace_out)


def _merge_overrides(
    config: Optional[TransformConfig], overrides: Dict[str, Any]
) -> TransformConfig:
    """``config`` (or a default one) with ``overrides`` applied on top."""
    base = config or TransformConfig()
    if overrides:
        known = {f.name for f in fields(TransformConfig)}
        unknown = set(overrides) - known
        if unknown:
            raise ConfigError(
                f"unknown config field(s): {', '.join(sorted(unknown))}"
            )
        base = replace(base, **overrides)
    return base


def _execute_transform(
    program: ast.Program, source_label: str, resolved: TransformConfig
) -> TransformResult:
    """Run one fully-resolved transformation end to end.

    The shared execution body behind :func:`transform` and the job core:
    env export, telemetry scope, store wiring, ``run.json`` and the run
    ledger on both the success and the failure path.
    """
    with resolved.applied_env(), telemetry(bool(resolved.telemetry)):
        store: Optional[ArtifactStore] = None
        if resolved.store:
            store = open_store(resolved.store_root)
        framework: Optional[Framework] = None
        try:
            framework = Framework(program, resolved.pipeline_config(store))
            state = framework.run(until=resolved.until)
        except ReproError as exc:
            write_run_outputs(
                resolved,
                source_label,
                framework,
                store,
                exit_code=2,
                error={
                    "type": type(exc).__name__,
                    "stage": exc.stage,
                    "message": str(exc),
                },
            )
            _ledger_append(
                resolved, source_label, framework, store, exit_code=2
            )
            raise
        write_run_outputs(
            resolved, source_label, framework, store, exit_code=0
        )
        _ledger_append(resolved, source_label, framework, store, exit_code=0)
        return TransformResult(
            state=state,
            config=resolved,
            report=framework.report(),
            stage_times=dict(framework.stage_times),
        )


# ---------------------------------------------------------------- job core

#: lifecycle of a job, in order
JOB_STATES = ("pending", "running", "done", "failed")


class JobHandle:
    """One submitted transformation job.

    Returned by :func:`submit`; thread-safe.  ``job_id`` is unique per
    submission while ``key`` is the content-addressed request identity
    (two submissions of the same program + semantic config share a
    ``key`` but never a ``job_id``) — the same key the service layer
    deduplicates on.
    """

    def __init__(self, job_id: str, key: str, source_label: str) -> None:
        self.job_id = job_id
        self.key = key
        self.source_label = source_label
        self._done = threading.Event()
        self._lock = threading.Lock()
        self._status = "pending"
        self._result: Optional[TransformResult] = None
        self._error: Optional[BaseException] = None

    # ------------------------------------------------------- state queries

    def status(self) -> str:
        """'pending' | 'running' | 'done' | 'failed'."""
        with self._lock:
            return self._status

    def done(self) -> bool:
        """Has the job reached a terminal state (done or failed)?"""
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> TransformResult:
        """Block until the job finishes; return or re-raise its outcome."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"job {self.job_id} still {self.status()!r} "
                f"after {timeout} s"
            )
        with self._lock:
            if self._error is not None:
                raise self._error
            assert self._result is not None
            return self._result

    def exception(
        self, timeout: Optional[float] = None
    ) -> Optional[BaseException]:
        """The job's error, or None once it completed successfully."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"job {self.job_id} still {self.status()!r} "
                f"after {timeout} s"
            )
        with self._lock:
            return self._error

    # -------------------------------------------------- state transitions

    def _mark_running(self) -> None:
        with self._lock:
            self._status = "running"

    def _finish(
        self,
        result: Optional[TransformResult],
        error: Optional[BaseException],
    ) -> None:
        with self._lock:
            self._result = result
            self._error = error
            self._status = "failed" if error is not None else "done"
        self._done.set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JobHandle({self.job_id!r}, status={self.status()!r}, "
            f"source={self.source_label!r})"
        )


#: submitted jobs by id, newest last; finished jobs are evicted beyond
#: _JOB_HISTORY so a long-lived process cannot grow without bound
_JOBS: "Dict[str, JobHandle]" = {}
_JOB_HISTORY = 256
_jobs_lock = threading.Lock()
_job_seq = itertools.count(1)

#: one transformation executes at a time in this process: the pipeline
#: scopes configuration through os.environ (applied_env), which is
#: process-global — concurrency comes from the service's worker
#: *processes*, not from in-process threads
_EXEC_LOCK = threading.Lock()

_executor: Optional[ThreadPoolExecutor] = None
_executor_lock = threading.Lock()


def _job_executor() -> ThreadPoolExecutor:
    global _executor
    with _executor_lock:
        if _executor is None:
            _executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-job"
            )
        return _executor


def request_key(program: ast.Program, resolved: TransformConfig) -> str:
    """The content-addressed identity of one transformation request.

    Digest of the program fingerprint and the *semantic* configuration
    (output paths, store wiring and telemetry excluded) — the dedup key
    of the service layer and the ``key`` on every :class:`JobHandle`.
    """
    from .observability.ledger import config_digest
    from .store.keys import program_fingerprint, service_request_key

    return service_request_key(
        program_fingerprint(program), config_digest(resolved.to_dict())
    )


def _register_job(handle: JobHandle) -> None:
    with _jobs_lock:
        _JOBS[handle.job_id] = handle
        if len(_JOBS) > _JOB_HISTORY:
            for job_id in [
                j for j, h in _JOBS.items() if h.done()
            ][: len(_JOBS) - _JOB_HISTORY]:
                del _JOBS[job_id]


def _run_job(
    handle: JobHandle, program: ast.Program, resolved: TransformConfig
) -> None:
    with _EXEC_LOCK:
        handle._mark_running()
        try:
            result = _execute_transform(
                program, handle.source_label, resolved
            )
        except BaseException as exc:  # noqa: BLE001 - stored, re-raised
            handle._finish(None, exc)
        else:
            handle._finish(result, None)


def submit(
    app_or_program: object,
    config: Optional[TransformConfig] = None,
    *,
    inline: bool = False,
    **overrides: Any,
) -> JobHandle:
    """Submit a transformation job; returns immediately with its handle.

    Input coercion, override validation and config resolution happen
    here in the caller's thread (bad requests fail fast, deprecation
    warnings surface at the call site); the pipeline itself runs on this
    process's single job-worker thread.  With ``inline=True`` the job
    executes to completion in the calling thread before ``submit``
    returns — the path :func:`transform` uses.
    """
    base = _merge_overrides(config, overrides)
    resolved = base.resolved()
    try:
        program, source_label = _coerce_program(app_or_program)
    except ReproError as exc:
        # unparseable input still leaves a machine-readable diagnostic,
        # exactly as a failed pipeline stage would
        with resolved.applied_env(), telemetry(bool(resolved.telemetry)):
            store = open_store(resolved.store_root) if resolved.store else None
            write_run_outputs(
                resolved,
                "<unknown>",
                None,
                store,
                exit_code=2,
                error={
                    "type": type(exc).__name__,
                    "stage": exc.stage,
                    "message": str(exc),
                },
            )
            _ledger_append(resolved, "<unknown>", None, store, exit_code=2)
        raise
    key = request_key(program, resolved)
    handle = JobHandle(
        job_id=f"{key[:16]}-{next(_job_seq)}",
        key=key,
        source_label=source_label,
    )
    _register_job(handle)
    if inline:
        _run_job(handle, program, resolved)
    else:
        _job_executor().submit(_run_job, handle, program, resolved)
    return handle


def _resolve_handle(job: "JobHandle | str") -> JobHandle:
    if isinstance(job, JobHandle):
        return job
    with _jobs_lock:
        handle = _JOBS.get(job)
    if handle is None:
        raise JobNotFound(f"unknown job id {job!r}")
    return handle


def status(job: "JobHandle | str") -> str:
    """The state of a job (by handle or id): pending/running/done/failed."""
    return _resolve_handle(job).status()


def result(
    job: "JobHandle | str", timeout: Optional[float] = None
) -> TransformResult:
    """Block until a job (by handle or id) finishes; return its result."""
    return _resolve_handle(job).result(timeout)


def transform(
    app_or_program: object,
    config: Optional[TransformConfig] = None,
    **overrides: Any,
) -> TransformResult:
    """Transform an application end-to-end and return the result.

    ``app_or_program`` may be a parsed :class:`~repro.cudalite.ast_nodes.
    Program`, a generated app (or its registry name, e.g. ``"Fluam"``), a
    source file path, or CUDA(Lite) source text.  ``overrides`` are
    :class:`TransformConfig` fields applied on top of ``config``.

    The synchronous facade over the job core: equivalent to
    ``submit(..., inline=True).result()``, so the pipeline runs in the
    calling thread and the call blocks until the job finishes.

    Raises :class:`~repro.errors.ReproError` subclasses on failure; when
    a working directory is configured, ``run.json`` is written on both
    the success and the failure path.
    """
    return submit(
        app_or_program, config, inline=True, **overrides
    ).result()

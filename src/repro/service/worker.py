"""One long-lived service pool worker (``python -m repro.service.worker``).

A worker is a persistent subprocess that amortizes interpreter startup,
imports, the in-memory kernel-compiler cache and the fitness cache
across many served jobs.  It speaks the length-prefixed pickle protocol
of :mod:`repro.service.protocol` over its stdin/stdout pipes:

* announce ``ready`` once the (expensive) imports are done,
* loop: receive a ``run`` frame, execute :func:`repro.api.transform`
  with the fully-resolved config the server shipped, stream
  ``progress`` frames as pipeline stages complete (sourced from the
  tracing spans), answer with one ``result`` frame,
* exit 0 on a ``shutdown`` frame.

Failed transformations are *results* (``status: "error"``), not worker
failures — the worker stays alive.  A genuinely dead worker is detected
by the pool as EOF on the pipe; the ``service_worker`` fault seam
(:func:`repro.reliability.faults.service_worker_fault`) simulates
exactly that between accepting a job and running it.

Stage progress is sampled, not instrumented: spans record on
completion, so a 50 ms poll of the process tracer yields each
``stage:*`` span as it closes.  The tracer and metrics registry are
reset per job — a long-lived worker must not replay one tenant's spans
into the next tenant's event stream.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, BinaryIO, Dict, List, Optional

from ..api import TransformConfig, TransformResult, transform
from ..errors import ReproError
from ..observability.metrics import reset_registry
from ..observability.tracing import get_tracer, reset_tracer
from ..reliability import faults
from .protocol import recv_msg, send_msg

__all__ = ["main", "run_request"]

#: seconds between polls of the tracer for newly completed stage spans
PROGRESS_POLL_S = 0.05


class _StageSampler:
    """Streams ``stage:*`` span completions as progress frames."""

    def __init__(
        self, out: BinaryIO, out_lock: threading.Lock, job_id: str
    ) -> None:
        self._out = out
        self._out_lock = out_lock
        self._job_id = job_id
        self._stop = threading.Event()
        self._sent = 0
        self._thread = threading.Thread(
            target=self._loop, name="repro-stage-sampler", daemon=True
        )

    def _new_events(self) -> List[Dict[str, Any]]:
        spans = [
            s
            for s in get_tracer().spans()
            if s.name.startswith("stage:") and s.parent_id is None
        ]
        fresh = spans[self._sent:]
        self._sent = len(spans)
        return [
            {
                "stage": s.name.split(":", 1)[1],
                "duration_s": round(s.duration_us / 1e6, 6),
                "seq": self._sent - len(fresh) + i,
            }
            for i, s in enumerate(fresh)
        ]

    def _emit(self) -> None:
        events = self._new_events()
        if events:
            send_msg(
                self._out,
                {"op": "progress", "job_id": self._job_id, "events": events},
                lock=self._out_lock,
            )

    def _loop(self) -> None:
        while not self._stop.wait(PROGRESS_POLL_S):
            try:
                self._emit()
            except Exception:  # pragma: no cover - a dead pipe ends the job
                return

    def start(self) -> None:
        self._thread.start()

    def finish(self) -> None:
        """Stop polling and flush any stages the last poll missed."""
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._emit()


def run_request(request: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one job request; returns the outcome envelope.

    ``request`` carries ``source`` or ``app`` plus the server-resolved
    ``config`` dict.  The envelope mirrors the wire response fields the
    server owns none of: status/source/speedup/verified/demotions/
    reused/wall_time_s/error.
    """
    config = TransformConfig.from_dict(request["config"])
    app_or_source = (
        request["source"] if request.get("source") is not None
        else request["app"]
    )
    start = time.perf_counter()
    try:
        result: TransformResult = transform(app_or_source, config)
    except ReproError as exc:
        return {
            "status": "error",
            "source": None,
            "speedup": None,
            "verified": None,
            "demotions": 0,
            "reused": {},
            "wall_time_s": round(time.perf_counter() - start, 6),
            "error": {
                "type": type(exc).__name__,
                "stage": exc.stage,
                "message": str(exc),
            },
        }
    transform_state = result.state.transform
    return {
        "status": "ok",
        "source": result.source,
        "speedup": result.speedup,
        "verified": result.verified,
        "demotions": (
            len(transform_state.demotions) if transform_state is not None else 0
        ),
        "reused": result.reused,
        "wall_time_s": round(time.perf_counter() - start, 6),
        "error": None,
    }


def main(argv: Optional[List[str]] = None) -> int:
    # the protocol owns the real stdout; anything the pipeline (or a
    # dependency) prints must not corrupt the frame stream
    proto_out = sys.stdout.buffer
    sys.stdout = sys.stderr
    out_lock = threading.Lock()
    proto_in = sys.stdin.buffer

    import os

    send_msg(proto_out, {"op": "ready", "pid": os.getpid()}, lock=out_lock)
    while True:
        try:
            msg = recv_msg(proto_in)
        except EOFError:
            # parent vanished; nothing left to serve
            return 0
        op = msg.get("op")
        if op == "shutdown":
            return 0
        if op != "run":
            send_msg(
                proto_out,
                {"op": "result", "job_id": msg.get("job_id"),
                 "outcome": {
                     "status": "error",
                     "error": {
                         "type": "ServiceError",
                         "stage": None,
                         "message": f"unknown worker op {op!r}",
                     },
                 }},
                lock=out_lock,
            )
            continue
        job_id = msg.get("job_id", "?")
        # the crash seam sits between accept and execute: the hardest
        # point for the pool to confuse with a clean outcome
        faults.service_worker_fault()
        reset_tracer()
        reset_registry()
        sampler = _StageSampler(proto_out, out_lock, job_id)
        sampler.start()
        try:
            outcome = run_request(msg.get("request") or {})
        except Exception as exc:  # noqa: BLE001 - a bug is a result too
            outcome = {
                "status": "error",
                "source": None,
                "speedup": None,
                "verified": None,
                "demotions": 0,
                "reused": {},
                "wall_time_s": None,
                "error": {
                    "type": type(exc).__name__,
                    "stage": None,
                    "message": str(exc),
                },
            }
        finally:
            sampler.finish()
        send_msg(
            proto_out,
            {"op": "result", "job_id": job_id, "outcome": outcome},
            lock=out_lock,
        )


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())

"""The versioned wire schema of the transformation service.

Every byte that crosses the HTTP boundary is described here — the HTTP
layer never touches raw dicts.  The schema is versioned as
``repro.service/1``: a request or response carries its schema tag, and a
payload with a different tag (or any field this version does not know)
is rejected loudly instead of being half-understood.

Two dataclasses:

* :class:`TransformRequest` — what a client asks for: the program
  (source text or a registry app name), a :class:`~repro.api.
  TransformConfig` fragment, and an optional correlation id.  The
  serving policy is encoded in validation: output-path and store-wiring
  fields are *rejected* (the server owns its filesystem and its shared
  store, and the dedup key excludes them — honoring them would break
  response bit-identity across deduplicated clients).
* :class:`TransformResponse` — what every client of one execution gets
  back, byte-identical across deduplicated requests.  Per-request
  metadata (dedup flag, echoed correlation id) rides in HTTP headers,
  never in the body, precisely so the body can be shared.

``from_json`` / ``to_json`` round-trip losslessly (property-tested) and
``to_json`` is canonical (sorted keys, fixed separators), so equal
responses are equal byte strings.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Optional, Union

from ..errors import ServiceError

__all__ = [
    "SERVICE_SCHEMA",
    "REJECTED_CONFIG_FIELDS",
    "TransformRequest",
    "TransformResponse",
]

#: the wire-format version tag carried by every request and response
SERVICE_SCHEMA = "repro.service/1"

#: TransformConfig fields a service request may not set: output paths
#: belong to the server's filesystem, store wiring is serving policy,
#: and none of them participate in the dedup key — accepting them would
#: let two deduplicated clients observe different responses.
REJECTED_CONFIG_FIELDS = (
    "workdir",
    "metrics_out",
    "trace_out",
    "store",
    "store_root",
)


def _load(payload: "Union[str, bytes, Dict[str, Any]]") -> Dict[str, Any]:
    if isinstance(payload, (str, bytes)):
        try:
            payload = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"payload is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ServiceError(
            f"payload must be a JSON object, not {type(payload).__name__}"
        )
    return payload


def _check_fields(cls, data: Dict[str, Any], what: str) -> None:
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ServiceError(
            f"unknown {what} field(s): {', '.join(unknown)} "
            f"(schema {SERVICE_SCHEMA})"
        )
    tag = data.get("schema", SERVICE_SCHEMA)
    if tag != SERVICE_SCHEMA:
        raise ServiceError(
            f"unsupported {what} schema {tag!r} (this server speaks "
            f"{SERVICE_SCHEMA})"
        )


@dataclass(frozen=True)
class TransformRequest:
    """One transformation request (``POST /v1/transform`` body)."""

    #: CudaLite source text (exactly one of ``source`` / ``app``)
    source: Optional[str] = None
    #: registry application name, e.g. ``"Fluam"``
    app: Optional[str] = None
    #: :class:`repro.api.TransformConfig` fragment (``to_dict`` subset);
    #: unset fields fall back to the server's base configuration
    config: Optional[Dict[str, Any]] = None
    #: client correlation id, echoed back in the ``X-Repro-Request``
    #: header (never in the body — see the module docstring)
    request_id: Optional[str] = None
    schema: str = SERVICE_SCHEMA

    def __post_init__(self) -> None:
        if (self.source is None) == (self.app is None):
            raise ServiceError(
                "a request must carry exactly one of 'source' or 'app'"
            )
        if self.source is not None and not isinstance(self.source, str):
            raise ServiceError("'source' must be CudaLite program text")
        if self.app is not None and not isinstance(self.app, str):
            raise ServiceError("'app' must be a registry application name")
        if self.config is not None:
            if not isinstance(self.config, dict):
                raise ServiceError("'config' must be a JSON object")
            rejected = sorted(
                set(self.config) & set(REJECTED_CONFIG_FIELDS)
            )
            if rejected:
                raise ServiceError(
                    f"config field(s) not accepted over the wire: "
                    f"{', '.join(rejected)} (output paths and store "
                    f"wiring are serving policy)"
                )
        if self.request_id is not None and not isinstance(
            self.request_id, str
        ):
            raise ServiceError("'request_id' must be a string")

    @classmethod
    def from_json(
        cls, payload: "Union[str, bytes, Dict[str, Any]]"
    ) -> "TransformRequest":
        data = _load(payload)
        _check_fields(cls, data, "request")
        return cls(**data)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class TransformResponse:
    """The outcome of one served transformation (shared across all
    deduplicated requesters of the execution, byte for byte)."""

    #: 'ok' or 'error'
    status: str = "ok"
    #: the executing job's id (shared by deduplicated requests)
    job_id: Optional[str] = None
    #: content-addressed request key (the dedup/store identity)
    key: Optional[str] = None
    #: the transformed program text (None before codegen / on error)
    source: Optional[str] = None
    #: predicted speedup of the transformed program
    speedup: Optional[float] = None
    #: whole-program verification verdict
    verified: Optional[bool] = None
    #: fusion demotions recorded during codegen
    demotions: int = 0
    #: per-stage store-reuse provenance (empty on a cold run)
    reused: Dict[str, str] = field(default_factory=dict)
    #: wall time of the one execution, in seconds (shared, not per-client)
    wall_time_s: Optional[float] = None
    #: worker crashes absorbed while serving this job
    worker_retries: int = 0
    #: ``{"type", "stage", "message"}`` when ``status == "error"``
    error: Optional[Dict[str, Any]] = None
    schema: str = SERVICE_SCHEMA

    def __post_init__(self) -> None:
        if self.status not in ("ok", "error"):
            raise ServiceError(
                f"response status must be 'ok' or 'error', not "
                f"{self.status!r}"
            )
        if self.status == "error" and self.error is None:
            raise ServiceError("an error response must carry 'error'")
        if self.error is not None and not isinstance(self.error, dict):
            raise ServiceError("'error' must be a JSON object")
        if not isinstance(self.reused, dict):
            raise ServiceError("'reused' must be a JSON object")

    @classmethod
    def from_json(
        cls, payload: "Union[str, bytes, Dict[str, Any]]"
    ) -> "TransformResponse":
        data = _load(payload)
        _check_fields(cls, data, "response")
        return cls(**data)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def to_json(self) -> str:
        """Canonical encoding: equal responses are equal byte strings."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

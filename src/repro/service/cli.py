"""``repro-serve`` — run the transformation service from the shell.

::

    repro-serve --port 8642 --workers 2 --store-root /tmp/store

The server logs its bound address on startup and drains gracefully on
SIGINT/SIGTERM: the listening socket closes first, in-flight jobs run
to completion, then the worker pool is shut down.
"""

from __future__ import annotations

import argparse
import asyncio
import logging
import signal
import sys
from typing import List, Optional

from ..api import TransformConfig
from ..errors import ReproError
from .server import TransformService

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="serve repro transformations over HTTP "
        "(deduplicating, multi-tenant, persistent worker pool)",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default %(default)s)"
    )
    parser.add_argument(
        "--port", type=int, default=8642,
        help="bind port, 0 = ephemeral (default %(default)s)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="persistent worker processes (default %(default)s)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=2,
        help="worker-crash retries per job (default %(default)s)",
    )
    parser.add_argument(
        "--store-root", default=None,
        help="artifact store root shared by all workers "
        "(default: the resolved REPRO_STORE root)",
    )
    parser.add_argument(
        "--base-config", default=None, metavar="FILE",
        help="JSON TransformConfig file used as the serving baseline "
        "(requests override individual fields)",
    )
    parser.add_argument(
        "--log-level", default="info",
        choices=("debug", "info", "warning", "error"),
    )
    return parser


async def _serve(args: argparse.Namespace) -> int:
    base = (
        TransformConfig.from_file(args.base_config)
        if args.base_config
        else None
    )
    service = TransformService(
        base,
        store_root=args.store_root,
        pool_size=args.workers,
        max_retries=args.max_retries,
    )
    host, port = await service.start(args.host, args.port)
    # scripts scrape this line to learn an ephemeral port
    print(f"repro-serve: listening on http://{host}:{port}", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(sig, stop.set)
    await stop.wait()
    print("repro-serve: draining and shutting down", flush=True)
    await service.stop(drain=True)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
        stream=sys.stderr,
    )
    try:
        return asyncio.run(_serve(args))
    except ReproError as exc:
        print(f"repro-serve: error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:  # pragma: no cover - double ^C
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

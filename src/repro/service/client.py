"""A small synchronous client for the transformation service.

Tests, benchmarks and the CI smoke job all speak to ``repro-serve``
through this module instead of hand-rolling ``http.client`` calls; the
client owns header casing, schema round-trips and SSE parsing, so the
wire format lives in exactly two files (here and :mod:`.schema`).

Each call opens one connection (the server closes after every
response); this keeps the client trivially thread-safe — the
concurrency tests drive one ``ServiceClient`` from many threads.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, Optional, Tuple

from ..errors import ServiceError
from .schema import TransformRequest, TransformResponse

__all__ = ["ServedResult", "ServiceClient"]


class ServedResult:
    """One served response: parsed body + the per-request header channel."""

    def __init__(
        self, status: int, body: bytes, headers: Dict[str, str]
    ) -> None:
        self.status = status
        self.body = body
        self.headers = headers

    @property
    def dedup(self) -> bool:
        return self.headers.get("x-repro-dedup") == "hit"

    @property
    def key(self) -> Optional[str]:
        return self.headers.get("x-repro-key")

    @property
    def job_id(self) -> Optional[str]:
        return self.headers.get("x-repro-job")

    @property
    def request_id(self) -> Optional[str]:
        return self.headers.get("x-repro-request")

    def response(self) -> TransformResponse:
        """The body as a schema-validated :class:`TransformResponse`."""
        return TransformResponse.from_json(self.body)

    def json(self) -> Dict[str, Any]:
        return json.loads(self.body)


class ServiceClient:
    """Synchronous HTTP client for one ``repro-serve`` endpoint."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8642, timeout: float = 600.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------- plumbing

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
    ) -> ServedResult:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request(
                method,
                path,
                body=body,
                headers={"Content-Type": "application/json"} if body else {},
            )
            response = conn.getresponse()
            payload = response.read()
            headers = {k.lower(): v for k, v in response.getheaders()}
            return ServedResult(response.status, payload, headers)
        finally:
            conn.close()

    @staticmethod
    def _build_request(
        source: Optional[str],
        app: Optional[str],
        config: Optional[Dict[str, Any]],
        request_id: Optional[str],
    ) -> bytes:
        return TransformRequest(
            source=source, app=app, config=config, request_id=request_id
        ).to_json().encode("utf-8")

    # --------------------------------------------------------------- routes

    def transform(
        self,
        *,
        source: Optional[str] = None,
        app: Optional[str] = None,
        config: Optional[Dict[str, Any]] = None,
        request_id: Optional[str] = None,
    ) -> ServedResult:
        """``POST /v1/transform`` — block until the job finishes."""
        return self._request(
            "POST",
            "/v1/transform",
            self._build_request(source, app, config, request_id),
        )

    def submit(
        self,
        *,
        source: Optional[str] = None,
        app: Optional[str] = None,
        config: Optional[Dict[str, Any]] = None,
        request_id: Optional[str] = None,
    ) -> ServedResult:
        """``POST /v1/jobs`` — returns a 202 with the job id and key."""
        return self._request(
            "POST",
            "/v1/jobs",
            self._build_request(source, app, config, request_id),
        )

    def job(self, job_id: str) -> ServedResult:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> ServedResult:
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def wait(
        self, job_id: str, timeout: float = 600.0, poll_s: float = 0.1
    ) -> ServedResult:
        """Poll ``/result`` until the job leaves the 202-pending state."""
        deadline = time.monotonic() + timeout
        while True:
            served = self.result(job_id)
            if served.status != 202:
                return served
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still pending after {timeout} s"
                )
            time.sleep(poll_s)

    def events(self, job_id: str) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """``GET /v1/jobs/{id}/events`` — yields ``(event, data)`` pairs.

        The stream ends after the terminal ``done`` event.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status != 200:
                raise ServiceError(
                    f"event stream for {job_id} refused: "
                    f"{response.status} {response.read()!r}"
                )
            event: Optional[str] = None
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.decode("utf-8").rstrip("\n")
                if line.startswith("event: "):
                    event = line[len("event: "):]
                elif line.startswith("data: ") and event is not None:
                    yield event, json.loads(line[len("data: "):])
                    if event == "done":
                        return
                    event = None
        finally:
            conn.close()

    def healthz(self) -> ServedResult:
        return self._request("GET", "/v1/healthz")

    def metrics(self) -> ServedResult:
        return self._request("GET", "/v1/metrics")

    def wait_ready(self, timeout: float = 60.0, poll_s: float = 0.1) -> None:
        """Block until the server answers ``/v1/healthz`` with 200."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                if self.healthz().status == 200:
                    return
            except (OSError, http.client.HTTPException):
                pass
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"service at {self.host}:{self.port} not ready "
                    f"after {timeout} s"
                )
            time.sleep(poll_s)

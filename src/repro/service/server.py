"""The transformation service: an asyncio HTTP front over the pool.

``TransformService`` is the tentpole of the serving layer — a
multi-tenant, deduplicating front door to :func:`repro.api.transform`:

* **Validation first.**  Every request body passes through
  :class:`repro.service.schema.TransformRequest`; the HTTP layer never
  sees a raw dict.  Schema violations are a 400 before any work starts.
* **Dedup before dispatch.**  The content-addressed request key
  (:func:`repro.api.request_key`) is computed up front; a request whose
  key matches an in-flight execution *joins* it instead of spawning a
  second one, and every joined client receives the byte-identical
  response body.  Per-request metadata (the dedup verdict, the echoed
  correlation id) rides in headers so the body can be shared.
* **Workers, not threads.**  Executions are dispatched to the
  persistent :class:`~repro.service.pool.WorkerPool`; a crashed worker
  is respawned and the job retried within a bounded budget, invisibly
  to the client except for the ``worker_retries`` field.
* **Progress as SSE.**  Stage completions stream out of the worker as
  progress frames and are re-served as ``text/event-stream`` on
  ``GET /v1/jobs/{id}/events``.
* **Observability.**  The metrics registry carries queue depth, dedup
  hits, executions and worker restarts; every execution appends a
  ``kind == "service"`` record to the shared store's run ledger.

Routes (all JSON unless noted)::

    POST /v1/transform          run to completion; 200 ok / 422 error
    POST /v1/jobs               submit; 202 with job_id + key
    GET  /v1/jobs/{id}          job status
    GET  /v1/jobs/{id}/result   200 body once done, else 202
    GET  /v1/jobs/{id}/events   SSE stage-progress stream
    GET  /v1/healthz            liveness + pool facts
    GET  /v1/metrics            counter/gauge snapshot

The HTTP/1.1 implementation is deliberately minimal (stdlib-only
constraint): one request per connection, explicit Content-Length,
``Connection: close``.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import logging
from typing import Any, Dict, List, Optional, Tuple

from ..api import TransformConfig, _coerce_program, request_key
from ..errors import ConfigError, ReproError, ServiceError
from ..observability.metrics import get_registry
from .pool import WorkerPool
from .schema import SERVICE_SCHEMA, TransformRequest, TransformResponse

logger = logging.getLogger(__name__)

__all__ = ["TransformService", "serve"]

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

MAX_BODY_BYTES = 64 * 1024 * 1024


class _Execution:
    """One deduplicated execution: N clients, one worker job, one body."""

    def __init__(self, job_id: str, key: str, source_label: str) -> None:
        self.job_id = job_id
        self.key = key
        self.source_label = source_label
        self.state = "queued"  # queued | running | done | failed
        self.clients = 1
        self.events: List[Dict[str, Any]] = []
        self.body: Optional[bytes] = None
        self.http_status = 500
        self.done = asyncio.Event()
        self.changed = asyncio.Condition()

    async def add_events(self, events: List[Dict[str, Any]]) -> None:
        async with self.changed:
            self.events.extend(events)
            self.changed.notify_all()

    async def finish(self, state: str, status: int, body: bytes) -> None:
        self.state = state
        self.http_status = status
        self.body = body
        self.done.set()
        async with self.changed:
            self.changed.notify_all()


class TransformService:
    """One service instance: pool + dedup map + job registry + ledger."""

    #: finished executions kept queryable by job id
    JOB_HISTORY = 256

    def __init__(
        self,
        base_config: Optional[TransformConfig] = None,
        *,
        store_root: Optional[str] = None,
        pool_size: int = 2,
        max_retries: int = 2,
        worker_env: Optional[Dict[str, str]] = None,
    ) -> None:
        base = (base_config or TransformConfig.from_env()).resolved()
        # serving policy: the server owns its store and filesystem; no
        # request (and no ambient base config) may redirect outputs
        self.store_root = store_root or base.store_root
        self.base_config = self._scrub(base)
        self.pool = WorkerPool(
            pool_size,
            worker_env=dict(worker_env or {}),
            max_retries=max_retries,
        )
        self._inflight: Dict[str, _Execution] = {}
        self._jobs: Dict[str, _Execution] = {}
        self._job_seq = itertools.count(1)
        self._draining = False
        self._server: Optional[asyncio.AbstractServer] = None

    def _scrub(self, config: TransformConfig) -> TransformConfig:
        from dataclasses import replace

        return replace(
            config,
            workdir=None,
            metrics_out=None,
            trace_out=None,
            store=True,
            store_root=self.store_root,
        )

    # -------------------------------------------------------------- lifecycle

    async def start(self, host: str = "127.0.0.1", port: int = 8642) -> Tuple[str, int]:
        """Spawn the pool and start listening; returns the bound address."""
        await self.pool.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        sock = self._server.sockets[0].getsockname()
        logger.info(
            "service: listening on %s:%s (%d workers, store %s)",
            sock[0], sock[1], self.pool.size, self.store_root,
        )
        return sock[0], sock[1]

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting, optionally drain in-flight jobs, shut the pool."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain and self._inflight:
            logger.info(
                "service: draining %d in-flight job(s)", len(self._inflight)
            )
            await asyncio.gather(
                *(ex.done.wait() for ex in list(self._inflight.values()))
            )
        await self.pool.shutdown()

    # ------------------------------------------------------------- execution

    def _effective_config(self, request: TransformRequest) -> TransformConfig:
        merged = self.base_config.to_dict()
        merged.update(request.config or {})
        return self._scrub(TransformConfig.from_dict(merged).resolved())

    def _admit(
        self, request: TransformRequest
    ) -> Tuple[_Execution, bool]:
        """Dedup gate: join an in-flight execution or start a new one."""
        config = self._effective_config(request)
        program, source_label = _coerce_program(
            request.source if request.source is not None else request.app
        )
        key = request_key(program, config)
        registry = get_registry()
        existing = self._inflight.get(key)
        if existing is not None:
            existing.clients += 1
            registry.inc("service_dedup_hits_total")
            return existing, True
        execution = _Execution(
            job_id=f"{key[:16]}-{next(self._job_seq)}",
            key=key,
            source_label=source_label,
        )
        self._inflight[key] = execution
        self._jobs[execution.job_id] = execution
        self._evict_history()
        registry.inc("service_executions_total")
        payload = {
            "source": request.source,
            "app": request.app,
            "config": config.to_dict(),
        }
        asyncio.get_running_loop().create_task(
            self._run_execution(execution, config, payload)
        )
        return execution, False

    def _evict_history(self) -> None:
        if len(self._jobs) <= self.JOB_HISTORY:
            return
        finished = [
            job_id for job_id, ex in self._jobs.items() if ex.done.is_set()
        ]
        for job_id in finished[: len(self._jobs) - self.JOB_HISTORY]:
            del self._jobs[job_id]

    async def _run_execution(
        self,
        execution: _Execution,
        config: TransformConfig,
        payload: Dict[str, Any],
    ) -> None:
        loop = asyncio.get_running_loop()

        def on_progress(events: List[Dict[str, Any]]) -> None:
            loop.create_task(execution.add_events(events))

        execution.state = "running"
        try:
            outcome = await self.pool.run_job(
                execution.job_id, payload, on_progress
            )
        except ServiceError as exc:
            response = TransformResponse(
                status="error",
                job_id=execution.job_id,
                key=execution.key,
                error={
                    "type": "ServiceError",
                    "stage": None,
                    "message": str(exc),
                },
            )
            await self._conclude(execution, config, response, 500)
            return
        status = outcome.get("status", "error")
        response = TransformResponse(
            status=status,
            job_id=execution.job_id,
            key=execution.key,
            source=outcome.get("source"),
            speedup=outcome.get("speedup"),
            verified=outcome.get("verified"),
            demotions=outcome.get("demotions", 0),
            reused=dict(outcome.get("reused") or {}),
            wall_time_s=outcome.get("wall_time_s"),
            worker_retries=outcome.get("worker_retries", 0),
            error=outcome.get("error"),
        )
        await self._conclude(
            execution, config, response, 200 if status == "ok" else 422
        )

    async def _conclude(
        self,
        execution: _Execution,
        config: TransformConfig,
        response: TransformResponse,
        http_status: int,
    ) -> None:
        # the one canonical body every deduplicated client receives
        body = response.to_json().encode("utf-8")
        self._ledger_append(execution, config, response)
        self._inflight.pop(execution.key, None)
        state = "done" if response.status == "ok" else "failed"
        await execution.finish(state, http_status, body)
        get_registry().inc(
            "service_requests_total",
            value=execution.clients,
            outcome=response.status,
        )

    def _ledger_append(
        self,
        execution: _Execution,
        config: TransformConfig,
        response: TransformResponse,
    ) -> None:
        try:
            from ..observability.ledger import (
                append_record,
                build_service_record,
            )
            from ..store.artifact_store import open_store

            store = open_store(self.store_root)
            record = build_service_record(
                source=execution.source_label,
                config=config.to_dict(),
                request_key=execution.key,
                job_id=execution.job_id,
                status=response.status,
                dedup_clients=execution.clients,
                speedup=response.speedup,
                verified=response.verified,
                demotions=response.demotions,
                reused=response.reused,
                wall_time_s=response.wall_time_s,
                worker_retries=response.worker_retries,
            )
            append_record(store, record)
        except Exception as exc:  # noqa: BLE001 - bookkeeping is best-effort
            logger.warning("service: ledger append failed (%s)", exc)

    # ------------------------------------------------------------------ HTTP

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            method, path, headers = await self._read_head(reader)
            body = await self._read_body(reader, headers)
            await self._route(method, path, body, writer)
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        except ServiceError as exc:
            await self._send_error(writer, 400, str(exc))
        except Exception as exc:  # noqa: BLE001 - a handler bug is a 500
            logger.exception("service: unhandled error serving a request")
            await self._send_error(writer, 500, f"internal error: {exc}")
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_head(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str]]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            raise ServiceError(f"malformed request line {request_line!r}")
        method, path, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), path, headers

    async def _read_body(
        self, reader: asyncio.StreamReader, headers: Dict[str, str]
    ) -> bytes:
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise ServiceError("malformed Content-Length header") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise ServiceError(f"request body of {length} bytes refused")
        return await reader.readexactly(length) if length else b""

    async def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        if path == "/v1/transform" and method == "POST":
            await self._post_transform(body, writer)
        elif path == "/v1/jobs" and method == "POST":
            await self._post_job(body, writer)
        elif path.startswith("/v1/jobs/") and method == "GET":
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/events"):
                await self._get_events(rest[: -len("/events")].rstrip("/"), writer)
            elif rest.endswith("/result"):
                await self._get_result(rest[: -len("/result")].rstrip("/"), writer)
            else:
                await self._get_job(rest, writer)
        elif path == "/v1/healthz" and method == "GET":
            await self._get_healthz(writer)
        elif path == "/v1/metrics" and method == "GET":
            await self._get_metrics(writer)
        else:
            code = 404 if method in ("GET", "POST") else 405
            await self._send_error(writer, code, f"no route {method} {path}")

    def _parse_and_admit(
        self, body: bytes
    ) -> Tuple[Optional[_Execution], bool, Optional[TransformRequest], Optional[Tuple[int, str]]]:
        """Shared admission for the sync and async submit routes.

        Returns ``(execution, dedup, request, error)`` where ``error`` is
        ``(http_status, message)`` when admission failed.
        """
        if self._draining:
            return None, False, None, (503, "service is shutting down")
        request = TransformRequest.from_json(body)  # ServiceError -> 400
        try:
            execution, dedup = self._admit(request)
        except (ConfigError, ServiceError) as exc:
            return None, False, request, (400, str(exc))
        except ReproError as exc:
            # the program itself is bad (parse error, unknown app):
            # a transformation outcome, not a protocol violation
            return None, False, request, (422, str(exc))
        return execution, dedup, request, None

    def _request_headers(
        self,
        execution: Optional[_Execution],
        dedup: bool,
        request: Optional[TransformRequest],
    ) -> Dict[str, str]:
        headers = {"X-Repro-Dedup": "hit" if dedup else "miss"}
        if execution is not None:
            headers["X-Repro-Key"] = execution.key
            headers["X-Repro-Job"] = execution.job_id
        if request is not None and request.request_id is not None:
            headers["X-Repro-Request"] = request.request_id
        return headers

    async def _post_transform(
        self, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        execution, dedup, request, error = self._parse_and_admit(body)
        if error is not None:
            await self._send_error(writer, error[0], error[1])
            return
        assert execution is not None
        await execution.done.wait()
        assert execution.body is not None
        await self._send(
            writer,
            execution.http_status,
            execution.body,
            extra=self._request_headers(execution, dedup, request),
        )

    async def _post_job(
        self, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        execution, dedup, request, error = self._parse_and_admit(body)
        if error is not None:
            await self._send_error(writer, error[0], error[1])
            return
        assert execution is not None
        await self._send_json(
            writer,
            202,
            {
                "schema": SERVICE_SCHEMA,
                "job_id": execution.job_id,
                "key": execution.key,
                "status": execution.state,
            },
            extra=self._request_headers(execution, dedup, request),
        )

    def _find_job(self, job_id: str) -> Optional[_Execution]:
        return self._jobs.get(job_id)

    async def _get_job(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        execution = self._find_job(job_id)
        if execution is None:
            await self._send_error(writer, 404, f"unknown job {job_id!r}")
            return
        await self._send_json(
            writer,
            200,
            {
                "schema": SERVICE_SCHEMA,
                "job_id": execution.job_id,
                "key": execution.key,
                "status": execution.state,
                "clients": execution.clients,
                "stages_completed": len(execution.events),
            },
        )

    async def _get_result(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        execution = self._find_job(job_id)
        if execution is None:
            await self._send_error(writer, 404, f"unknown job {job_id!r}")
            return
        if not execution.done.is_set():
            await self._send_json(
                writer,
                202,
                {
                    "schema": SERVICE_SCHEMA,
                    "job_id": execution.job_id,
                    "status": execution.state,
                },
            )
            return
        assert execution.body is not None
        await self._send(writer, execution.http_status, execution.body)

    async def _get_events(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        execution = self._find_job(job_id)
        if execution is None:
            await self._send_error(writer, 404, f"unknown job {job_id!r}")
            return
        writer.write(
            f"HTTP/1.1 200 {_REASONS[200]}\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n\r\n".encode("latin-1")
        )
        await writer.drain()
        sent = 0
        while True:
            async with execution.changed:
                while (
                    len(execution.events) == sent
                    and not execution.done.is_set()
                ):
                    await execution.changed.wait()
                fresh = execution.events[sent:]
                sent = len(execution.events)
                finished = execution.done.is_set()
            for event in fresh:
                data = json.dumps(event, sort_keys=True)
                writer.write(f"event: stage\ndata: {data}\n\n".encode("utf-8"))
            if finished:
                data = json.dumps(
                    {"status": execution.state, "job_id": execution.job_id},
                    sort_keys=True,
                )
                writer.write(f"event: done\ndata: {data}\n\n".encode("utf-8"))
                await writer.drain()
                return
            await writer.drain()

    async def _get_healthz(self, writer: asyncio.StreamWriter) -> None:
        await self._send_json(
            writer,
            200 if not self._draining else 503,
            {
                "schema": SERVICE_SCHEMA,
                "status": "draining" if self._draining else "ok",
                "workers": self.pool.size,
                "queue_depth": self.pool.queued,
                "worker_restarts": self.pool.restarts,
                "inflight": len(self._inflight),
                "store_root": str(self.store_root),
            },
        )

    async def _get_metrics(self, writer: asyncio.StreamWriter) -> None:
        registry = get_registry()
        await self._send_json(
            writer,
            200,
            {
                "schema": SERVICE_SCHEMA,
                "counters": registry.counter_totals(),
                "queue_depth": self.pool.queued,
                "worker_restarts": self.pool.restarts,
            },
        )

    # --------------------------------------------------------- raw responses

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        extra: Optional[Dict[str, str]] = None,
    ) -> None:
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (extra or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        extra: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        await self._send(writer, status, body.encode("utf-8"), extra=extra)

    async def _send_error(
        self, writer: asyncio.StreamWriter, status: int, message: str
    ) -> None:
        await self._send_json(
            writer,
            status,
            {"schema": SERVICE_SCHEMA, "error": message, "status": "error"},
        )


async def serve(
    host: str = "127.0.0.1",
    port: int = 8642,
    *,
    base_config: Optional[TransformConfig] = None,
    store_root: Optional[str] = None,
    pool_size: int = 2,
    max_retries: int = 2,
    worker_env: Optional[Dict[str, str]] = None,
    ready: Optional["asyncio.Event"] = None,
    shutdown: Optional["asyncio.Event"] = None,
) -> None:
    """Run a service until ``shutdown`` is set (or forever).

    ``ready`` is set once the pool is up and the socket is bound —
    embedding tests use it to know when to connect.
    """
    service = TransformService(
        base_config,
        store_root=store_root,
        pool_size=pool_size,
        max_retries=max_retries,
        worker_env=worker_env,
    )
    await service.start(host, port)
    if ready is not None:
        ready.set()
    try:
        if shutdown is not None:
            await shutdown.wait()
        else:  # pragma: no cover - interactive serving
            await asyncio.Event().wait()
    finally:
        await service.stop(drain=True)

"""Persistent worker-process pool for the transformation service.

Long-lived ``repro.service.worker`` subprocesses behind an asyncio
front: jobs are dispatched to idle workers over length-prefixed pickle
frames (:mod:`repro.service.protocol`), and the pipe itself is the
health check — EOF mid-job means the worker died, and the pool respawns
it and retries the job within a bounded budget.  Modeled on the
long-lived compile-worker pools production compilers use (one spawn +
import cost amortized over the process lifetime), wired to this repo's
reliability seams: the ``service_worker`` fault seam kills a worker at
the worst moment, and these retries are what absorb it.

Worker environment hygiene
--------------------------
Workers are spawned with every ``REPRO_*`` variable stripped and only
the pool's explicit ``worker_env`` re-added.  The server ships each job
a *fully resolved* config, so ambient server environment must never
leak into request semantics — without the scrub, a stray
``REPRO_ISLANDS=4`` in the server's shell would silently reshape every
tenant's search (and break response bit-identity across a pool whose
workers were spawned under different shells).  The four island knobs —
and every other env-backed field — reach nested *search* worker
processes through ``TransformConfig.applied_env()`` inside the worker,
which is covered by the config round-trip tests.
"""

from __future__ import annotations

import asyncio
import logging
import os
import struct
import sys
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from ..errors import ServiceError
from ..observability.metrics import get_registry
from .protocol import MAX_FRAME_BYTES, send_msg

logger = logging.getLogger(__name__)

__all__ = ["WorkerPool", "worker_environment"]

_HEADER = struct.Struct(">I")

#: seconds to wait for a fresh worker's ``ready`` frame (cold imports)
READY_TIMEOUT_S = 120.0
#: seconds a draining worker gets to exit after ``shutdown`` before SIGKILL
SHUTDOWN_GRACE_S = 10.0


def worker_environment(
    overrides: Optional[Dict[str, str]] = None,
) -> Dict[str, str]:
    """The scrubbed environment a pool worker is spawned with.

    Ambient ``REPRO_*`` knobs are dropped (request semantics travel in
    the resolved config, not the environment); ``overrides`` — the store
    root, telemetry switches, injected fault plans — are applied on top.
    """
    env = {
        name: value
        for name, value in os.environ.items()
        if not name.startswith("REPRO_")
    }
    # the worker must import the same repro the server is running —
    # which may live on sys.path rather than in site-packages (dev
    # checkouts, PYTHONPATH=src test runs)
    import repro

    package_parent = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    if existing:
        parts = existing.split(os.pathsep)
        if package_parent not in parts:
            env["PYTHONPATH"] = os.pathsep.join([package_parent, existing])
    else:
        env["PYTHONPATH"] = package_parent
    env.update(overrides or {})
    return env


class _Worker:
    """One live subprocess plus its pipe endpoints."""

    _ids = 0

    def __init__(self, proc: asyncio.subprocess.Process) -> None:
        _Worker._ids += 1
        self.worker_id = _Worker._ids
        self.proc = proc
        self.jobs_served = 0

    async def send(self, msg: Dict[str, Any]) -> None:
        assert self.proc.stdin is not None
        # reuse the sync framer against a buffer, then write it out
        import io

        buf = io.BytesIO()
        send_msg(buf, msg)
        self.proc.stdin.write(buf.getvalue())
        await self.proc.stdin.drain()

    async def recv(self) -> Dict[str, Any]:
        assert self.proc.stdout is not None
        try:
            header = await self.proc.stdout.readexactly(_HEADER.size)
            (length,) = _HEADER.unpack(header)
            if length > MAX_FRAME_BYTES:
                raise ServiceError(
                    f"worker {self.worker_id} announced a {length}-byte "
                    f"frame (corrupt stream)"
                )
            payload = await self.proc.stdout.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
            raise EOFError(
                f"worker {self.worker_id} pipe closed mid-frame"
            ) from exc
        import pickle

        return pickle.loads(payload)

    async def kill(self) -> None:
        if self.proc.returncode is None:
            try:
                self.proc.kill()
            except ProcessLookupError:  # pragma: no cover - already gone
                pass
        await self.proc.wait()


class WorkerPool:
    """A fixed-size pool of persistent transformation workers."""

    def __init__(
        self,
        size: int = 2,
        *,
        worker_env: Optional[Dict[str, str]] = None,
        max_retries: int = 2,
    ) -> None:
        if size < 1:
            raise ServiceError("worker pool size must be >= 1")
        if max_retries < 0:
            raise ServiceError("max_retries must be >= 0")
        self.size = size
        self.worker_env = dict(worker_env or {})
        self.max_retries = max_retries
        self._idle: "asyncio.Queue[_Worker]" = asyncio.Queue()
        self._workers: List[_Worker] = []
        self._closed = False
        #: workers respawned after a crash, over the pool's lifetime
        self.restarts = 0
        #: jobs currently waiting for an idle worker
        self.queued = 0

    # ------------------------------------------------------------ lifecycle

    async def _spawn(self) -> _Worker:
        proc = await asyncio.create_subprocess_exec(
            sys.executable,
            "-m",
            "repro.service.worker",
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            stderr=None,  # worker diagnostics share the server's stderr
            env=worker_environment(self.worker_env),
        )
        worker = _Worker(proc)
        ready = await asyncio.wait_for(worker.recv(), READY_TIMEOUT_S)
        if ready.get("op") != "ready":
            await worker.kill()
            raise ServiceError(
                f"worker {worker.worker_id} sent {ready.get('op')!r} "
                f"instead of 'ready'"
            )
        logger.info(
            "pool: worker %d ready (pid %s)", worker.worker_id, ready.get("pid")
        )
        return worker

    async def start(self) -> None:
        """Spawn the full complement of workers (concurrently)."""
        workers = await asyncio.gather(
            *(self._spawn() for _ in range(self.size))
        )
        for worker in workers:
            self._workers.append(worker)
            self._idle.put_nowait(worker)

    async def _respawn(self, dead: _Worker) -> None:
        self.restarts += 1
        get_registry().inc("service_worker_restarts_total")
        await dead.kill()
        self._workers.remove(dead)
        logger.warning(
            "pool: worker %d died (exit %s); respawning",
            dead.worker_id,
            dead.proc.returncode,
        )
        replacement = await self._spawn()
        self._workers.append(replacement)
        self._idle.put_nowait(replacement)

    async def shutdown(self) -> None:
        """Drain idle workers gracefully; callers must have finished (or
        abandoned) their in-flight ``run_job`` calls first."""
        self._closed = True
        for worker in list(self._workers):
            try:
                await worker.send({"op": "shutdown"})
                await asyncio.wait_for(worker.proc.wait(), SHUTDOWN_GRACE_S)
            except (
                OSError,
                ConnectionResetError,
                BrokenPipeError,
                asyncio.TimeoutError,
            ):
                await worker.kill()
        self._workers.clear()
        while not self._idle.empty():
            self._idle.get_nowait()

    # ------------------------------------------------------------ dispatch

    async def _acquire(self) -> _Worker:
        registry = get_registry()
        self.queued += 1
        registry.set_gauge("service_queue_depth", self.queued)
        try:
            worker = await self._idle.get()
        finally:
            self.queued -= 1
            registry.set_gauge("service_queue_depth", self.queued)
        return worker

    async def run_job(
        self,
        job_id: str,
        request: Dict[str, Any],
        on_progress: Optional[Callable[[List[Dict[str, Any]]], None]] = None,
    ) -> Dict[str, Any]:
        """Run one job to completion; returns its outcome envelope.

        The envelope gains a ``worker_retries`` field counting the
        crashes absorbed on the way.  Raises :class:`ServiceError` once
        the retry budget is exhausted.
        """
        if self._closed:
            raise ServiceError("worker pool is shut down")
        retries = 0
        while True:
            worker = await self._acquire()
            healthy = True
            try:
                await worker.send(
                    {"op": "run", "job_id": job_id, "request": request}
                )
                while True:
                    msg = await worker.recv()
                    op = msg.get("op")
                    if op == "progress":
                        if on_progress is not None:
                            on_progress(list(msg.get("events") or []))
                    elif op == "result":
                        worker.jobs_served += 1
                        outcome = dict(msg.get("outcome") or {})
                        outcome["worker_retries"] = retries
                        return outcome
                    else:
                        raise EOFError(
                            f"worker {worker.worker_id} sent unexpected "
                            f"op {op!r}"
                        )
            except (EOFError, OSError, BrokenPipeError, ConnectionResetError):
                healthy = False
                await self._respawn(worker)
                retries += 1
                if retries > self.max_retries:
                    raise ServiceError(
                        f"job {job_id} failed after {retries} worker "
                        f"crash(es); retry budget exhausted"
                    ) from None
                logger.warning(
                    "pool: retrying job %s (attempt %d/%d)",
                    job_id,
                    retries + 1,
                    self.max_retries + 1,
                )
            finally:
                if healthy:
                    self._idle.put_nowait(worker)

"""Length-prefixed pickle framing between the service and its workers.

One frame is a 4-byte big-endian payload length followed by a pickled
Python object.  The protocol is deliberately tiny: the pool and the
worker are the same codebase on the same machine (the pool spawns the
worker from this package), so pickle's trust model is acceptable and its
coverage of the config/result dicts is exact.

Frames flow over the worker's stdin/stdout pipes.  A clean EOF — or a
short read mid-frame — raises :class:`EOFError`, which is the pool's
crash-detection signal; anything else that arrives is a well-formed
message dict with an ``op`` field:

========== =========================================================
op          direction and meaning
========== =========================================================
``ready``   worker → pool, once, after imports complete
``run``     pool → worker: one job (request + resolved config)
``progress`` worker → pool: stage-completion events mid-job
``result``  worker → pool: the job's outcome envelope
``shutdown`` pool → worker: drain and exit 0
========== =========================================================
"""

from __future__ import annotations

import pickle
import struct
import threading
from typing import Any, BinaryIO, Optional

from ..errors import ServiceError

__all__ = ["MAX_FRAME_BYTES", "recv_msg", "send_msg"]

_HEADER = struct.Struct(">I")

#: upper bound on one frame; a larger announced length means the stream
#: is corrupt (a transformed program is a few hundred KB at most)
MAX_FRAME_BYTES = 256 * 1024 * 1024


def send_msg(
    stream: BinaryIO, obj: Any, lock: Optional[threading.Lock] = None
) -> None:
    """Write one frame; ``lock`` serializes writers sharing a stream."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    frame = _HEADER.pack(len(payload)) + payload
    if lock is not None:
        with lock:
            stream.write(frame)
            stream.flush()
    else:
        stream.write(frame)
        stream.flush()


def _read_exactly(stream: BinaryIO, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            raise EOFError(
                f"stream closed {remaining} byte(s) short of a frame"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_msg(stream: BinaryIO) -> Any:
    """Read one frame; raises :class:`EOFError` on a closed stream."""
    header = _read_exactly(stream, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ServiceError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte "
            f"protocol bound (corrupt stream?)"
        )
    payload = _read_exactly(stream, length)
    return pickle.loads(payload)

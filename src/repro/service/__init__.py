"""repro.service — transformation-as-a-service over the job-oriented API.

The serving layer turns :func:`repro.api.transform` into a multi-tenant
network service:

* :mod:`.schema` — the versioned ``repro.service/1`` wire format
  (:class:`TransformRequest` / :class:`TransformResponse`);
* :mod:`.protocol` — length-prefixed pickle frames between the server
  and its workers;
* :mod:`.worker` — the long-lived worker subprocess that actually runs
  the pipeline;
* :mod:`.pool` — the asyncio worker pool with crash detection, respawn
  and bounded retry;
* :mod:`.server` — the HTTP front: request validation, in-flight
  deduplication on content-addressed keys, SSE stage progress, graceful
  drain;
* :mod:`.client` — a small synchronous client (tests, benchmarks, CI);
* :mod:`.cli` — the ``repro-serve`` entry point.
"""

from .client import ServedResult, ServiceClient
from .pool import WorkerPool
from .schema import (
    REJECTED_CONFIG_FIELDS,
    SERVICE_SCHEMA,
    TransformRequest,
    TransformResponse,
)
from .server import TransformService, serve

__all__ = [
    "REJECTED_CONFIG_FIELDS",
    "SERVICE_SCHEMA",
    "ServedResult",
    "ServiceClient",
    "TransformRequest",
    "TransformResponse",
    "TransformService",
    "WorkerPool",
    "serve",
]

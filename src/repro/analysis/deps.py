"""Statement-level dependency analysis for kernel fission (§4.1).

The paper determines whether two data arrays inside one kernel are
*separable* — "altering values of one array has no side effect on the values
of the other" — using statement-granularity analysis, then finds the
connected components of the array-dependency graph (Algorithm 2).

Two arrays are connected when

* one statement writes one of them while reading the other (direct flow), or
* they communicate through kernel-local scalars (a scalar defined from array
  ``X`` flows into a statement writing array ``Y``), or
* they appear in the same statement's write set (aggregate updates).

Scalar flow is computed with a simple transitive closure over the kernel's
def-use chains — sufficient because CudaLite kernels are structured programs
without aliasing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

import networkx as nx

from ..cudalite import ast_nodes as ast
from .accesses import KernelAccesses, StatementAccess, collect_accesses


def _scalar_sources(statements: Sequence[StatementAccess]) -> Dict[str, Set[str]]:
    """For each local scalar, the set of arrays its value (transitively) derives from.

    Statements are processed in program order; a scalar's source set is the
    union over all its definitions (conservative for loops).
    """
    sources: Dict[str, Set[str]] = {}
    changed = True
    # iterate to a fixed point to handle use-before-redefinition inside loops
    for _ in range(len(statements) + 2):
        if not changed:
            break
        changed = False
        for stmt in statements:
            derived: Set[str] = set(stmt.arrays_read)
            for scalar in stmt.scalars_read:
                derived |= sources.get(scalar, set())
            for scalar in stmt.scalars_written:
                current = sources.setdefault(scalar, set())
                if not derived <= current:
                    current |= derived
                    changed = True
    return sources


def array_dependency_graph(
    kernel: ast.KernelDef, accesses: KernelAccesses = None
) -> nx.Graph:
    """Build the undirected dependency graph over the kernel's device arrays.

    Nodes are the kernel's pointer-parameter arrays; an edge means the two
    arrays are *not* separable.  Connected components of this graph are the
    fission fragments of Algorithm 2.
    """
    acc = accesses if accesses is not None else collect_accesses(kernel)
    graph = nx.Graph()
    pointer_params = [p.name for p in kernel.pointer_params()]
    graph.add_nodes_from(pointer_params)
    scalar_sources = _scalar_sources(acc.statements)

    for stmt in acc.statements:
        influencing: Set[str] = set(stmt.arrays_read)
        for scalar in stmt.scalars_read:
            influencing |= scalar_sources.get(scalar, set())
        touched = set(stmt.arrays_written) | influencing
        touched &= set(pointer_params)
        written = set(stmt.arrays_written) & set(pointer_params)
        # every influencing array is inseparable from every written array
        for w in written:
            for other in touched:
                if other != w:
                    graph.add_edge(w, other)
        # two arrays written by one statement are inseparable
        written_list = sorted(written)
        for i, a in enumerate(written_list):
            for b in written_list[i + 1 :]:
                graph.add_edge(a, b)
    return graph


def dependency_exists(kernel: ast.KernelDef, a: str, b: str) -> bool:
    """The paper's ``dependencyExists(D_i, D_j)`` predicate."""
    graph = array_dependency_graph(kernel)
    if a not in graph or b not in graph:
        return False
    return nx.has_path(graph, a, b)


def separable_components(
    kernel: ast.KernelDef, accesses: KernelAccesses = None, seed: int = 0
) -> List[FrozenSet[str]]:
    """Enumerate the disconnected subgraphs of the array-dependency graph.

    Follows Algorithm 2's structure: pick a node, BFS to collect its
    component, remove, repeat.  A deterministic order (sorted nodes walked
    with a seeded start offset) replaces the paper's random choice so runs
    are reproducible.

    Returns the components in discovery order; a single component means the
    kernel has no separable arrays (not fissionable).
    """
    graph = array_dependency_graph(kernel, accesses)
    remaining = sorted(graph.nodes)
    if not remaining:
        return []
    components: List[FrozenSet[str]] = []
    offset = seed % len(remaining)
    order = remaining[offset:] + remaining[:offset]
    visited: Set[str] = set()
    for root in order:
        if root in visited:
            continue
        queue = deque([root])
        component: Set[str] = {root}
        visited.add(root)
        while queue:
            node = queue.popleft()
            for neighbor in graph.neighbors(node):
                if neighbor not in visited:
                    visited.add(neighbor)
                    component.add(neighbor)
                    queue.append(neighbor)
        components.append(frozenset(component))
    return components


def is_fissionable(kernel: ast.KernelDef, accesses: KernelAccesses = None) -> bool:
    """True if the kernel has at least two separable array components,
    each containing at least one *written* array (a fragment that writes
    nothing would be dead code)."""
    acc = accesses if accesses is not None else collect_accesses(kernel)
    components = separable_components(kernel, acc)
    if len(components) < 2:
        return False
    written = acc.arrays_written
    productive = [c for c in components if c & written]
    return len(productive) >= 2


@dataclass(frozen=True)
class WriteReadChain:
    """A producer→consumer pair of statements on the same array."""

    array: str
    producer: int
    consumer: int


def intra_kernel_flow(
    kernel: ast.KernelDef, accesses: KernelAccesses = None
) -> List[WriteReadChain]:
    """RAW chains between statements of one kernel (ordered by index).

    Used by the fusion code generator to decide where ``__syncthreads()``
    barriers are mandatory when bodies of different kernels are aggregated.
    """
    acc = accesses if accesses is not None else collect_accesses(kernel)
    chains: List[WriteReadChain] = []
    last_writer: Dict[str, int] = {}
    for stmt in acc.statements:
        for name in sorted(stmt.arrays_read):
            if name in last_writer:
                chains.append(WriteReadChain(name, last_writer[name], stmt.index))
        for name in stmt.arrays_written:
            last_writer[name] = stmt.index
    return chains

"""Static analysis substrate: accesses, stencils, dependencies, metadata."""

from .accesses import (
    IRREGULAR,
    ArrayAccessInfo,
    KernelAccesses,
    StatementAccess,
    collect_accesses,
    find_global_index_vars,
    find_loops,
    max_loop_depth,
    shared_arrays_between,
)
from .deps import (
    array_dependency_graph,
    dependency_exists,
    intra_kernel_flow,
    is_fissionable,
    separable_components,
)
from .metadata import KernelOperations, KernelPerformance, ProgramMetadata
from .roofline import RooflinePoint, attainable_gflops, classify, ridge_point
from .stencil import (
    ArrayStencil,
    KernelStencilInfo,
    StencilShape,
    analyze_stencil,
    classify_offsets,
)
from .volume import (
    AxisBounds,
    LaunchVolume,
    bind_scalars,
    estimate_volume,
    eval_scalar_expr,
    extract_guard_bounds,
)

__all__ = [
    "collect_accesses", "KernelAccesses", "ArrayAccessInfo", "StatementAccess",
    "find_global_index_vars", "find_loops", "max_loop_depth",
    "shared_arrays_between", "IRREGULAR",
    "array_dependency_graph", "dependency_exists", "separable_components",
    "is_fissionable", "intra_kernel_flow",
    "StencilShape", "ArrayStencil", "KernelStencilInfo",
    "analyze_stencil", "classify_offsets",
    "RooflinePoint", "classify", "ridge_point", "attainable_gflops",
    "LaunchVolume", "AxisBounds", "estimate_volume", "extract_guard_bounds",
    "eval_scalar_expr", "bind_scalars",
    "ProgramMetadata", "KernelPerformance", "KernelOperations",
]
